#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

namespace tcq {
namespace {

std::vector<std::function<void()>> CountingTasks(int n,
                                                 std::atomic<int>* counter) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    tasks.push_back([counter] { counter->fetch_add(1); });
  }
  return tasks;
}

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  EXPECT_EQ(pool.width(), 4);
  std::atomic<int> counter{0};
  auto tasks = CountingTasks(100, &counter);
  pool.RunAll(&tasks);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  EXPECT_EQ(pool.width(), 1);
  std::atomic<int> counter{0};
  auto tasks = CountingTasks(17, &counter);
  pool.RunAll(&tasks);
  EXPECT_EQ(counter.load(), 17);
}

TEST(ThreadPoolTest, NullPoolHelperRunsInline) {
  std::atomic<int> counter{0};
  auto tasks = CountingTasks(9, &counter);
  RunTasks(nullptr, &tasks);
  EXPECT_EQ(counter.load(), 9);
}

TEST(ThreadPoolTest, EmptyBatchIsNoOp) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  pool.RunAll(&tasks);  // must not hang
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    auto tasks = CountingTasks(8, &counter);
    pool.RunAll(&tasks);
  }
  EXPECT_EQ(counter.load(), 160);
}

TEST(ThreadPoolTest, NestedRunAllDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> inner_count{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&pool, &inner_count] {
      auto inner = CountingTasks(16, &inner_count);
      pool.RunAll(&inner);
    });
  }
  pool.RunAll(&outer);
  EXPECT_EQ(inner_count.load(), 8 * 16);
}

TEST(ThreadPoolTest, HardwareThreadsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace tcq
