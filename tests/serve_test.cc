#include "serve/server.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "api/tcq.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "util/status.h"
#include "workload/generators.h"

namespace tcq {
namespace {

constexpr int kTuples = 2000;
constexpr uint64_t kWorkloadSeed = 7;

Catalog MakeCatalog() {
  auto workload = MakeIntersectionWorkload(kTuples, kWorkloadSeed);
  EXPECT_TRUE(workload.ok());
  return std::move(workload->catalog);
}

Server::Options GenerousOptions() {
  Server::Options options;
  options.admission.global_budget_s = 100.0;
  options.admission.max_concurrent = 32;
  return options;
}

TEST(ServerTest, SingleQueryBitIdenticalToStandaloneSession) {
  Session standalone(MakeCatalog());
  auto lone = standalone.Query("r1 INTERSECT r2").WithSeed(21).Run();
  ASSERT_TRUE(lone.ok()) << lone.status().ToString();

  Server server(MakeCatalog(), GenerousOptions());
  Session session = server.OpenSession();
  auto served = session.Query("r1 INTERSECT r2").WithSeed(21).Run();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  EXPECT_EQ(served->estimate, lone->estimate);
  EXPECT_EQ(served->variance, lone->variance);
  EXPECT_EQ(served->blocks_sampled, lone->blocks_sampled);

  // The standalone run is unserved; the served run carries its ledger.
  EXPECT_EQ(lone->admission.outcome, AdmissionReport::Outcome::kStandalone);
  EXPECT_EQ(served->admission.outcome, AdmissionReport::Outcome::kAdmitted);
  EXPECT_EQ(served->admission.requested_quota_s, 5.0);
  EXPECT_EQ(served->admission.granted_quota_s, 5.0);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.submitted, 1);
  EXPECT_EQ(stats.admission.admitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.admission.active, 0);
  EXPECT_EQ(stats.admission.outstanding_s, 0.0);
}

TEST(ServerTest, OversizedQuotaIsRejectedWithTypedStatus) {
  Server::Options options;
  options.admission.global_budget_s = 2.0;
  options.admission.allow_shrink = false;
  options.admission.allow_queue = false;
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  auto r = session.Query("r1 INTERSECT r2").WithQuota(20.0).Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.submitted, 1);
  EXPECT_EQ(stats.admission.rejected, 1);
  EXPECT_EQ(stats.completed, 0);  // a rejected submission never executes
}

TEST(ServerTest, ShrunkGrantRunsAtReducedQuotaBitIdentically) {
  Server::Options options;
  options.admission.global_budget_s = 2.0;
  options.admission.min_shrunk_quota_s = 0.25;
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  auto shrunk = session.Query("r1 INTERSECT r2")
                    .WithSeed(21)
                    .WithQuota(8.0)
                    .Run();
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(shrunk->admission.outcome, AdmissionReport::Outcome::kShrunk);
  EXPECT_EQ(shrunk->admission.requested_quota_s, 8.0);
  EXPECT_EQ(shrunk->admission.granted_quota_s, 2.0);

  // The engine saw exactly the shrunk quota: a standalone run asking for
  // 2 s outright reproduces the estimate bit for bit.
  Session standalone(MakeCatalog());
  auto direct =
      standalone.Query("r1 INTERSECT r2").WithSeed(21).WithQuota(2.0).Run();
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(shrunk->estimate, direct->estimate);
  EXPECT_EQ(shrunk->variance, direct->variance);
  EXPECT_EQ(shrunk->blocks_sampled, direct->blocks_sampled);
}

TEST(ServerTest, ParseErrorsNeverReachAdmission) {
  Server server(MakeCatalog(), GenerousOptions());
  Session session = server.OpenSession();

  QueryBuilder bad = session.Query("SELECT[key <](r1)");
  EXPECT_FALSE(bad.status().ok());
  auto r = bad.Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The malformed query was turned away before it could draw budget.
  EXPECT_EQ(server.stats().admission.submitted, 0);
}

TEST(ServerTest, DeadlineMissIsRecorded) {
  Metrics metrics;
  Server::Options options = GenerousOptions();
  options.metrics = &metrics;
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  // An unmeetable serving deadline: the (simulated) run completes, but
  // its real latency exceeds a nanosecond-scale deadline.
  auto r = session.Query("r1 INTERSECT r2")
               .WithSeed(21)
               .WithServeDeadline(1e-9)
               .Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->admission.deadline_missed);
  EXPECT_EQ(r->admission.deadline_s, 1e-9);
  EXPECT_GT(r->admission.serve_latency_s, 0.0);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.deadline_missed, 1);
  EXPECT_EQ(metrics.counter("serve.deadline_missed")->value(), 1);
  EXPECT_EQ(metrics.histogram("serve.deadline_miss_s")->count(), 1);
  EXPECT_EQ(metrics.histogram("serve.latency_s")->count(), 1);
}

TEST(ServerTest, QueuedSubmissionRunsAfterRelease) {
  Server::Options options;
  options.admission.global_budget_s = 5.0;  // exactly one default quota
  Server server(MakeCatalog(), options);

  ThreadPool submitters(1);  // two concurrent submitters
  Result<QueryResult> first = Status::Internal("not run");
  Result<QueryResult> second = Status::Internal("not run");
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    Session session = server.OpenSession();
    first = session.Query("r1 INTERSECT r2")
                .WithSeed(21)
                .WithServeDeadline(30.0)
                .Run();
  });
  tasks.push_back([&] {
    Session session = server.OpenSession();
    second = session.Query("r1 INTERSECT r2")
                 .WithSeed(21)
                 .WithServeDeadline(30.0)
                 .Run();
  });
  RunTasks(&submitters, &tasks);

  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Same seed, same catalog: however the two interleaved, both estimates
  // are the bit-identical sim-mode result.
  EXPECT_EQ(first->estimate, second->estimate);
  EXPECT_EQ(first->blocks_sampled, second->blocks_sampled);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.admission.admitted + stats.admission.shrunk +
                stats.admission.queued + stats.admission.rejected,
            2);
  EXPECT_EQ(stats.admission.rejected, 0);
  EXPECT_EQ(stats.admission.outstanding_s, 0.0);
}

// The TSan target of the serving layer: many sessions of one server run
// concurrently, sharing the fixed-width ThreadPool, the sharded warm
// cache, and the admission books.
TEST(ServerTest, EightConcurrentWarmQueriesShareOnePoolAndCache) {
  Metrics metrics;
  Server::Options options = GenerousOptions();
  options.pool_workers = 3;
  options.session.warm_start = true;
  options.session.threads = 2;
  options.metrics = &metrics;
  Server server(MakeCatalog(), options);
  EXPECT_EQ(server.pool_workers(), 3);

  constexpr int kQueries = 8;
  ThreadPool submitters(kQueries - 1);
  std::vector<Result<QueryResult>> results(kQueries,
                                           Status::Internal("not run"));
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kQueries; ++i) {
    tasks.push_back([&, i] {
      Session session = server.OpenSession();
      results[static_cast<size_t>(i)] =
          session.Query(i % 2 == 0 ? "r1 INTERSECT r2" : "r1 UNION r2")
              .WithSeed(100 + static_cast<uint64_t>(i))
              .WithServeDeadline(60.0)
              .Run();
    });
  }
  RunTasks(&submitters, &tasks);

  for (int i = 0; i < kQueries; ++i) {
    const auto& r = results[static_cast<size_t>(i)];
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    // A sparse intersection can estimate 0 from the blocks it sampled;
    // what admission guarantees is that every run got its full grant.
    EXPECT_EQ(r->admission.granted_quota_s, r->admission.requested_quota_s)
        << i;
  }

  // Admission at this budget is deterministic whatever the interleaving:
  // the budget fits all eight, so every submission is plainly admitted.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.submitted, kQueries);
  EXPECT_EQ(stats.admission.admitted, kQueries);
  EXPECT_EQ(stats.admission.shrunk, 0);
  EXPECT_EQ(stats.admission.queued, 0);
  EXPECT_EQ(stats.admission.rejected, 0);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.admission.active, 0);
  EXPECT_EQ(stats.admission.outstanding_s, 0.0);
  EXPECT_EQ(metrics.counter("serve.submitted")->value(), kQueries);
  EXPECT_EQ(metrics.counter("serve.completed")->value(), kQueries);

  // The shared cache's books reconcile: every pooled block was retained
  // from a fresh draw exactly once, concurrent appends included.
  WarmStartStats cache = server.CacheStats();
  EXPECT_GT(cache.relations, 0);
  EXPECT_GT(cache.pooled_blocks, 0);
  EXPECT_EQ(cache.pooled_blocks, cache.fresh_blocks);
  EXPECT_GT(cache.prior_hits + cache.prior_misses, 0);

  // A later warm query replays the pools those eight filled.
  const int64_t replayed_before = cache.replayed_blocks;
  Session warm = server.OpenSession();
  auto replay = warm.Query("r1 INTERSECT r2").WithSeed(500).Run();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(server.CacheStats().replayed_blocks, replayed_before);
}

TEST(ServerTest, AdminSurfacesMatchSessions) {
  Server server(MakeCatalog(), GenerousOptions());
  Session session = server.OpenSession();

  // Catalog and cache views are the same shared state through either
  // handle.
  EXPECT_EQ(&server.catalog(), &session.catalog());
  Session warm = server.OpenSession();
  auto r = warm.Query("r1 INTERSECT r2").WithWarmStart().Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(server.CacheStats().pooled_blocks, 0);
  EXPECT_EQ(server.CacheStats().pooled_blocks,
            session.CacheStats().pooled_blocks);
  server.ClearCache();
  EXPECT_EQ(session.CacheStats().pooled_blocks, 0);
}

TEST(ServerTest, HardAbortAndServeDeadlineStayConsistent) {
  // A hard-deadline abort inside the engine and a serving-deadline miss
  // at the server are independent events; whatever their combination,
  // the report must stay self-consistent: the aborted stage appears in
  // stages_run but not stages_counted, and deadline_missed reflects the
  // *serving* clock, never the simulated abort.
  bool saw_abort = false;
  for (uint64_t seed = 1; seed <= 30 && !saw_abort; ++seed) {
    auto workload = MakeSelectionWorkload(3000, 7);
    ASSERT_TRUE(workload.ok());
    Server server(std::move(workload->catalog), GenerousOptions());
    Session session = server.OpenSession();
    auto r = session.Query("SELECT[key < 3000](r1)")
                 .WithSeed(seed)
                 .WithQuota(2.0)
                 .WithRiskMargin(0.0)
                 .WithDeadline(DeadlineMode::kHard)
                 .WithServeDeadline(60.0)
                 .Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->admission.outcome, AdmissionReport::Outcome::kAdmitted);
    EXPECT_EQ(r->admission.deadline_s, 60.0);
    EXPECT_FALSE(r->admission.deadline_missed);  // a real minute is ample
    EXPECT_EQ(r->stages_run,
              static_cast<int>(r->stage_reports.size()));
    if (r->overspent) {
      saw_abort = true;
      EXPECT_EQ(r->stages_counted, r->stages_run - 1);
      EXPECT_FALSE(r->stage_reports.back().within_quota);
      EXPECT_EQ(server.stats().deadline_missed, 0);
    } else {
      EXPECT_EQ(r->stages_counted, r->stages_run);
    }
  }
  EXPECT_TRUE(saw_abort) << "no seed in 1..30 aborted a hard-deadline stage";

  // The reverse combination: the simulated run finishes cleanly but the
  // serving deadline (nanosecond-scale) is missed.
  Server server(MakeCatalog(), GenerousOptions());
  Session session = server.OpenSession();
  auto r = session.Query("r1 INTERSECT r2")
               .WithSeed(21)
               .WithQuota(2.0)
               .WithDeadline(DeadlineMode::kHard)
               .WithServeDeadline(1e-9)
               .Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->admission.deadline_missed);
  EXPECT_EQ(r->admission.deadline_s, 1e-9);
  EXPECT_EQ(r->stages_run, static_cast<int>(r->stage_reports.size()));
  EXPECT_EQ(server.stats().deadline_missed, 1);
}

// ---------------------------------------------------------------------
// Circuit breaker: fault storms at the serving layer.

FaultOptions StormFaults(uint64_t fault_seed) {
  FaultOptions f;
  f.enabled = true;
  f.transient_rate = 0.30;
  f.permanent_rate = 0.05;
  f.fault_seed = fault_seed;
  return f;
}

TEST(ServerTest, BreakerTripsOnAStormThenProbesAndRecloses) {
  // Deterministic walk through the breaker state machine: closed → open
  // (faulty run) → half-open (zero cooldown) → closed (clean probe).
  Server::Options options = GenerousOptions();
  options.admission.breaker.enabled = true;
  options.admission.breaker.fault_rate_threshold = 0.05;
  options.admission.breaker.min_reads = 10;
  options.admission.breaker.cooldown_s = 0.0;
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  auto stormy = session.Query("r1 INTERSECT r2")
                    .WithSeed(21)
                    .WithFaults(StormFaults(3))
                    .Run();
  ASSERT_TRUE(stormy.ok()) << stormy.status().ToString();
  EXPECT_TRUE(stormy->faults.any());
  EXPECT_GE(server.stats().breaker.trips, 1);

  // Cooldown already over: the next query is the half-open probe. Its
  // clean (faults-off) completion recloses the breaker, so a third
  // query passes without shedding or probing.
  auto probe = session.Query("r1 INTERSECT r2").WithSeed(22).Run();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  auto after = session.Query("r1 INTERSECT r2").WithSeed(23).Run();
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  ServerStats stats = server.stats();
  EXPECT_GE(stats.breaker.probes, 1);
  EXPECT_EQ(stats.breaker.sheds, 0);
  EXPECT_EQ(stats.breaker.open, 0);  // reclosed
  EXPECT_EQ(stats.completed, 3);
}

TEST(ServerTest, OpenBreakerShedsWithTypedUnavailable) {
  Server::Options options = GenerousOptions();
  options.admission.breaker.enabled = true;
  options.admission.breaker.fault_rate_threshold = 0.05;
  options.admission.breaker.min_reads = 10;
  options.admission.breaker.cooldown_s = 3600.0;  // stays open
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  auto stormy = session.Query("r1 INTERSECT r2")
                    .WithSeed(21)
                    .WithFaults(StormFaults(3))
                    .Run();
  ASSERT_TRUE(stormy.ok()) << stormy.status().ToString();
  ASSERT_GE(server.stats().breaker.trips, 1);

  auto shed = session.Query("r1 INTERSECT r2").WithSeed(22).Run();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  ServerStats stats = server.stats();
  EXPECT_GE(stats.breaker.sheds, 1);
  EXPECT_GE(stats.breaker.open, 1);
  // A shed query never reached admission or execution.
  EXPECT_EQ(stats.admission.submitted, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(ServerTest, OpenBreakerShrinksInsteadWhenConfigured) {
  Server::Options options = GenerousOptions();
  options.admission.breaker.enabled = true;
  options.admission.breaker.fault_rate_threshold = 0.05;
  options.admission.breaker.min_reads = 10;
  options.admission.breaker.cooldown_s = 3600.0;
  options.admission.breaker.shed = false;
  options.admission.breaker.shrink_factor = 0.5;
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  auto stormy = session.Query("r1 INTERSECT r2")
                    .WithSeed(21)
                    .WithQuota(4.0)
                    .WithFaults(StormFaults(3))
                    .Run();
  ASSERT_TRUE(stormy.ok()) << stormy.status().ToString();
  ASSERT_GE(server.stats().breaker.trips, 1);

  auto shrunk = session.Query("r1 INTERSECT r2")
                    .WithSeed(22)
                    .WithQuota(4.0)
                    .Run();
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(shrunk->admission.granted_quota_s, 2.0);
  EXPECT_GE(server.stats().breaker.shrinks, 1);
}

// ---------------------------------------------------------------------
// Breaker probe lifecycle: granted probes are tracked by token and can
// never wedge a relation. Direct unit tests on the virtual clock.

CircuitBreakerOptions TightBreaker() {
  CircuitBreakerOptions o;
  o.enabled = true;
  o.fault_rate_threshold = 0.10;
  o.min_reads = 10;
  o.cooldown_s = 5.0;
  return o;
}

using ProbeGrant = RelationCircuitBreaker::ProbeGrant;
using BreakerState = RelationCircuitBreaker::State;

TEST(CircuitBreakerTest, AbortedProbeIsHandedBackToTheNextArrival) {
  RelationCircuitBreaker breaker(TightBreaker());
  breaker.UseVirtualClockForTest();
  breaker.Report("r1", 100, 50);  // 50% storm trips the breaker
  ASSERT_EQ(breaker.state("r1"), BreakerState::kOpen);
  breaker.AdvanceClockForTest(5.0);

  double scale = 1.0;
  std::vector<ProbeGrant> probes;
  ASSERT_TRUE(breaker.Check({"r1"}, &scale, &probes).ok());
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(breaker.state("r1"), BreakerState::kHalfOpen);

  // While the probe is fresh, concurrent arrivals are shed.
  std::vector<ProbeGrant> other;
  EXPECT_EQ(breaker.Check({"r1"}, &scale, &other).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(other.empty());

  // The probe's query never ran (admission rejection / engine error):
  // the grant is handed back and the next arrival probes instead of
  // being shed until the reclaim backstop.
  breaker.AbortProbes(probes);
  EXPECT_EQ(breaker.stats().probe_aborts, 1);
  std::vector<ProbeGrant> retry;
  ASSERT_TRUE(breaker.Check({"r1"}, &scale, &retry).ok());
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_NE(retry[0].token, probes[0].token);

  breaker.Report("r1", 20, 0, retry[0].token);
  EXPECT_EQ(breaker.state("r1"), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().open, 0);
}

TEST(CircuitBreakerTest, LostProbeIsReclaimedAfterACooldown) {
  RelationCircuitBreaker breaker(TightBreaker());
  breaker.UseVirtualClockForTest();
  breaker.Report("r1", 100, 50);
  breaker.AdvanceClockForTest(5.0);

  double scale = 1.0;
  std::vector<ProbeGrant> probes;
  ASSERT_TRUE(breaker.Check({"r1"}, &scale, &probes).ok());
  ASSERT_EQ(probes.size(), 1u);
  // The probe's query hangs: no Report, no AbortProbes. After another
  // cooldown the probe is presumed lost and the relation probes again.
  breaker.AdvanceClockForTest(5.0);
  std::vector<ProbeGrant> retry;
  ASSERT_TRUE(breaker.Check({"r1"}, &scale, &retry).ok());
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_NE(retry[0].token, probes[0].token);
  EXPECT_EQ(breaker.stats().probes, 2);
  EXPECT_EQ(breaker.stats().probe_aborts, 1);

  // The lost probe's verdict, arriving after the reclaim, is stale and
  // must not drive the state machine.
  breaker.Report("r1", 20, 20, probes[0].token);
  EXPECT_EQ(breaker.state("r1"), BreakerState::kHalfOpen);
  breaker.Report("r1", 20, 0, retry[0].token);
  EXPECT_EQ(breaker.state("r1"), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenVerdictRequiresTheProbeToken) {
  RelationCircuitBreaker breaker(TightBreaker());
  breaker.UseVirtualClockForTest();
  breaker.Report("r1", 100, 50);
  breaker.AdvanceClockForTest(5.0);

  double scale = 1.0;
  std::vector<ProbeGrant> probes;
  ASSERT_TRUE(breaker.Check({"r1"}, &scale, &probes).ok());
  ASSERT_EQ(probes.size(), 1u);

  // A faulty query admitted before the trip completes during the
  // half-open window. Its tallies fold into the window, but it is not
  // the probe: the breaker must not re-trip on its verdict.
  breaker.Report("r1", 200, 100);
  EXPECT_EQ(breaker.state("r1"), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stats().trips, 1);

  // The actual probe's clean verdict still closes the breaker.
  breaker.Report("r1", 20, 0, probes[0].token);
  EXPECT_EQ(breaker.state("r1"), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().open, 0);
}

TEST(CircuitBreakerTest, ShedHandsBackProbesGrantedInTheSameCall) {
  RelationCircuitBreaker breaker(TightBreaker());
  breaker.UseVirtualClockForTest();
  breaker.Report("r1", 100, 50);
  breaker.Report("r2", 100, 50);
  breaker.AdvanceClockForTest(5.0);

  // Occupy r2's probe with a fresh grant.
  double scale = 1.0;
  std::vector<ProbeGrant> r2_probe;
  ASSERT_TRUE(breaker.Check({"r2"}, &scale, &r2_probe).ok());
  ASSERT_EQ(r2_probe.size(), 1u);

  // A query scanning both relations is granted r1's probe, then shed on
  // r2 — the r1 grant must be handed back within the same call.
  std::vector<ProbeGrant> both;
  EXPECT_EQ(breaker.Check({"r1", "r2"}, &scale, &both).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(both.empty());
  EXPECT_EQ(breaker.stats().probe_aborts, 1);
  std::vector<ProbeGrant> r1_probe;
  ASSERT_TRUE(breaker.Check({"r1"}, &scale, &r1_probe).ok());
  ASSERT_EQ(r1_probe.size(), 1u);
}

TEST(ServerTest, AdmissionRejectedProbeDoesNotWedgeTheBreaker) {
  // The end-to-end shape of the probe-leak bug: the query that won the
  // half-open probe is rejected by admission before it runs, so it can
  // never report a verdict. The abort guard must hand the probe back.
  Server::Options options = GenerousOptions();
  options.admission.allow_shrink = false;
  options.admission.allow_queue = false;
  options.admission.breaker.enabled = true;
  options.admission.breaker.fault_rate_threshold = 0.05;
  options.admission.breaker.min_reads = 10;
  options.admission.breaker.cooldown_s = 0.0;
  Server server(MakeCatalog(), options);
  Session session = server.OpenSession();

  auto stormy = session.Query("r1 INTERSECT r2")
                    .WithSeed(21)
                    .WithFaults(StormFaults(3))
                    .Run();
  ASSERT_TRUE(stormy.ok()) << stormy.status().ToString();
  ASSERT_GE(server.stats().breaker.trips, 1);

  // Cooldown over: this query is granted the probe, then rejected for
  // an oversized quota without ever executing.
  auto rejected = session.Query("r1 INTERSECT r2")
                      .WithSeed(22)
                      .WithQuota(1000.0)
                      .Run();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server.stats().breaker.probe_aborts, 1);

  // The relation is not wedged: the next clean query probes and
  // recloses the breaker.
  auto after = session.Query("r1 INTERSECT r2").WithSeed(23).Run();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker.sheds, 0);
  EXPECT_EQ(stats.breaker.open, 0);
  EXPECT_EQ(stats.completed, 2);
}

// The TSan target of the fault path: concurrent faulty queries exercise
// retry/backoff inside the engine and the breaker's shared books at once.
TEST(ServerTest, ConcurrentFaultStormKeepsTheServerCoherent) {
  Metrics metrics;
  Server::Options options = GenerousOptions();
  options.pool_workers = 3;
  options.session.threads = 2;
  options.metrics = &metrics;
  options.admission.breaker.enabled = true;
  options.admission.breaker.fault_rate_threshold = 0.05;
  options.admission.breaker.min_reads = 20;
  options.admission.breaker.cooldown_s = 3600.0;
  Server server(MakeCatalog(), options);

  constexpr int kQueries = 8;
  ThreadPool submitters(kQueries - 1);
  std::vector<Result<QueryResult>> results(kQueries,
                                           Status::Internal("not run"));
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kQueries; ++i) {
    tasks.push_back([&, i] {
      Session session = server.OpenSession();
      results[static_cast<size_t>(i)] =
          session.Query(i % 2 == 0 ? "r1 INTERSECT r2" : "r1 UNION r2")
              .WithSeed(100 + static_cast<uint64_t>(i))
              .WithFaults(StormFaults(40 + static_cast<uint64_t>(i)))
              .WithServeDeadline(60.0)
              .Run();
    });
  }
  RunTasks(&submitters, &tasks);

  // Depending on the interleaving a query either ran (possibly degraded)
  // or was shed once an earlier report tripped the breaker — nothing
  // else.
  int ran = 0;
  int shed = 0;
  for (int i = 0; i < kQueries; ++i) {
    const auto& r = results[static_cast<size_t>(i)];
    if (r.ok()) {
      ++ran;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << i;
      ++shed;
    }
  }
  EXPECT_EQ(ran + shed, kQueries);
  EXPECT_GT(ran, 0);  // the first reporter ran before any trip

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, ran);
  EXPECT_EQ(stats.breaker.sheds, shed);
  EXPECT_GE(stats.breaker.trips, 1);  // a 30%+ storm cannot stay unnoticed
  EXPECT_EQ(stats.admission.active, 0);
  EXPECT_EQ(stats.admission.outstanding_s, 0.0);
  if (shed > 0) {
    EXPECT_EQ(metrics.counter("serve.breaker_sheds")->value(), shed);
  }
}

}  // namespace
}  // namespace tcq
