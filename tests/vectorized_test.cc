// The columnar layout's load-bearing contract (DESIGN.md §11): the
// vectorized kernels produce bit-identical outputs, comparison counts and
// simulated-time charges to the row kernels, so a whole query run under
// Layout::kColumnar returns the very same estimate, variance and stage
// schedule as under Layout::kRow — at any thread count, with warm-start
// replay, and under fault injection.

#include "exec/vectorized.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "cache/warm_start.h"
#include "engine/executor.h"
#include "exec/operators.h"
#include "ra/predicate.h"
#include "sim/ledger.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tcq {
namespace {

Schema MixedSchema() {
  return Schema({{"i", DataType::kInt64, 0},
                 {"d", DataType::kDouble, 0},
                 {"s", DataType::kString, 8}});
}

int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

std::vector<Tuple> RandomMixedTuples(int n, uint64_t seed) {
  Rng rng(seed);
  const std::vector<int64_t> int_edges = {
      0, 1, -1, int64_t{1} << 40, -(int64_t{1} << 40),
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max()};
  const std::vector<double> dbl_edges = {0.0,  -0.0, 1.5,
                                         -1.5, 1e300, -1e300};
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    int64_t i = rng.Uniform(4) == 0
                    ? int_edges[rng.Uniform(int_edges.size())]
                    : rng.UniformInt(-1000, 1000);
    double d = rng.Uniform(4) == 0
                   ? dbl_edges[rng.Uniform(dbl_edges.size())]
                   : static_cast<double>(rng.UniformInt(-50, 50)) / 4.0;
    std::string s;
    uint64_t len = rng.Uniform(9);  // 0..8, full width included
    for (uint64_t c = 0; c < len; ++c) {
      s.push_back(static_cast<char>('a' + rng.Uniform(4)));
    }
    out.push_back(Tuple{i, d, std::move(s)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Encoded keys
// ---------------------------------------------------------------------------

TEST(EncodedKeyTest, MemcmpOrderMatchesTupleComparison) {
  Schema schema = MixedSchema();
  std::vector<Tuple> tuples = RandomMixedTuples(64, 1234);
  std::vector<uint8_t> keys;
  EncodeKeyColumns(std::span<const Tuple>(tuples), schema, {}, &keys);
  const int w = EncodedKeyWidth(schema, {});
  ASSERT_EQ(keys.size(), tuples.size() * static_cast<size_t>(w));
  for (size_t a = 0; a < tuples.size(); ++a) {
    for (size_t b = 0; b < tuples.size(); ++b) {
      int by_key = Sign(std::memcmp(keys.data() + a * w, keys.data() + b * w,
                                    static_cast<size_t>(w)));
      int by_value = Sign(CompareTuples(tuples[a], tuples[b]));
      ASSERT_EQ(by_key, by_value) << "rows " << a << " vs " << b;
    }
  }
}

TEST(EncodedKeyTest, SubsetKeyMatchesKeyComparison) {
  Schema schema = MixedSchema();
  std::vector<Tuple> tuples = RandomMixedTuples(48, 77);
  const std::vector<int> key = {2, 0};  // string + int, out of order
  std::vector<uint8_t> keys;
  EncodeKeyColumns(std::span<const Tuple>(tuples), schema, key, &keys);
  const int w = EncodedKeyWidth(schema, key);
  EXPECT_EQ(w, 16);
  for (size_t a = 0; a < tuples.size(); ++a) {
    for (size_t b = 0; b < tuples.size(); ++b) {
      int by_key = Sign(std::memcmp(keys.data() + a * w, keys.data() + b * w,
                                    static_cast<size_t>(w)));
      int by_value = Sign(CompareTuplesOnKey(tuples[a], tuples[b], key));
      ASSERT_EQ(by_key, by_value);
    }
  }
}

TEST(EncodedKeyTest, JoinKeyCompatibility) {
  Schema a({{"x", DataType::kInt64, 0}, {"y", DataType::kDouble, 0}});
  Schema b({{"u", DataType::kDouble, 0}, {"v", DataType::kInt64, 0}});
  Schema c({{"s", DataType::kString, 8}, {"t", DataType::kString, 16}});
  EXPECT_TRUE(ColumnarJoinKeysCompatible(a, {0}, b, {1}));
  EXPECT_TRUE(ColumnarJoinKeysCompatible(a, {1}, b, {0}));
  EXPECT_FALSE(ColumnarJoinKeysCompatible(a, {0}, b, {0}));  // int vs double
  EXPECT_FALSE(ColumnarJoinKeysCompatible(c, {0}, c, {1}));  // widths differ
  EXPECT_TRUE(ColumnarJoinKeysCompatible(c, {0}, c, {0}));
}

// ---------------------------------------------------------------------------
// Sort / merge kernel parity
// ---------------------------------------------------------------------------

TEST(VectorizedSortTest, OrderAndComparisonCountMatchRowKernel) {
  Schema schema = MixedSchema();
  for (const std::vector<int>& key :
       {std::vector<int>{}, std::vector<int>{1}, std::vector<int>{0, 2}}) {
    std::vector<Tuple> rows = RandomMixedTuples(200, 42);
    std::vector<Tuple> cols = rows;
    int64_t row_comp = 0, col_comp = 0;
    SortRunRange(&rows, key, &row_comp);
    std::vector<uint8_t> keys;
    SortRunRangeColumnar(&cols, schema, key, &keys, &col_comp);
    EXPECT_EQ(row_comp, col_comp);
    ASSERT_EQ(rows.size(), cols.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      // Same permutation, not just same key order: the layouts must stay
      // interchangeable even among equal-key tuples.
      ASSERT_EQ(CompareTuples(rows[i], cols[i]), 0) << i;
    }
    // The returned key buffer is the sorted encoding of the run.
    std::vector<uint8_t> expect_keys;
    EncodeKeyColumns(std::span<const Tuple>(cols), schema, key, &expect_keys);
    EXPECT_EQ(keys, expect_keys);
  }
}

TEST(VectorizedMergeTest, IntersectOutputAndComparisonsMatchRowKernel) {
  Schema schema = MixedSchema();
  std::vector<Tuple> left = RandomMixedTuples(150, 7);
  std::vector<Tuple> right = RandomMixedTuples(150, 7);  // heavy overlap
  std::vector<Tuple> extra = RandomMixedTuples(60, 8);
  right.insert(right.end(), extra.begin(), extra.end());
  int64_t ignore = 0;
  SortRunRange(&left, {}, &ignore);
  SortRunRange(&right, {}, &ignore);
  std::vector<uint8_t> lkeys, rkeys;
  EncodeKeyColumns(std::span<const Tuple>(left), schema, {}, &lkeys);
  EncodeKeyColumns(std::span<const Tuple>(right), schema, {}, &rkeys);

  int64_t row_comp = 0, col_comp = 0;
  std::vector<Tuple> row_out =
      MergeIntersectRange(left, right, &row_comp);
  std::vector<Tuple> col_out = MergeIntersectRangeColumnar(
      left, lkeys.data(), right, rkeys.data(), EncodedKeyWidth(schema, {}),
      &col_comp);
  EXPECT_EQ(row_comp, col_comp);
  ASSERT_EQ(row_out.size(), col_out.size());
  for (size_t i = 0; i < row_out.size(); ++i) {
    ASSERT_EQ(CompareTuples(row_out[i], col_out[i]), 0) << i;
  }
}

TEST(VectorizedMergeTest, JoinOutputAndComparisonsMatchRowKernel) {
  Schema schema = MixedSchema();
  const std::vector<int> key = {0};
  std::vector<Tuple> left = RandomMixedTuples(120, 5);
  std::vector<Tuple> right = RandomMixedTuples(140, 6);
  // Collapse int keys into a small domain so groups have multiplicity.
  for (auto* run : {&left, &right}) {
    for (Tuple& t : *run) {
      t[0] = std::get<int64_t>(t[0]) % 16;
    }
  }
  int64_t ignore = 0;
  auto sort_on_key = [&](std::vector<Tuple>* run) {
    SortRunRange(run, key, &ignore);
  };
  sort_on_key(&left);
  sort_on_key(&right);
  std::vector<uint8_t> lkeys, rkeys;
  EncodeKeyColumns(std::span<const Tuple>(left), schema, key, &lkeys);
  EncodeKeyColumns(std::span<const Tuple>(right), schema, key, &rkeys);

  int64_t row_comp = 0, col_comp = 0;
  std::vector<Tuple> row_out =
      MergeJoinRange(left, key, right, key, &row_comp);
  std::vector<Tuple> col_out = MergeJoinRangeColumnar(
      left, lkeys.data(), right, rkeys.data(), EncodedKeyWidth(schema, key),
      &col_comp);
  EXPECT_EQ(row_comp, col_comp);
  ASSERT_EQ(row_out.size(), col_out.size());
  for (size_t i = 0; i < row_out.size(); ++i) {
    ASSERT_EQ(CompareTuples(row_out[i], col_out[i]), 0) << i;
  }
}

// ---------------------------------------------------------------------------
// Batch predicate evaluation
// ---------------------------------------------------------------------------

TEST(EvalBatchTest, MatchesScalarEvalOnEveryRow) {
  // Two columns per type so column-vs-column comparisons (same-type only,
  // enforced at Bind) exercise non-degenerate masks.
  Schema schema({{"i", DataType::kInt64, 0},
                 {"j", DataType::kInt64, 0},
                 {"d", DataType::kDouble, 0},
                 {"e", DataType::kDouble, 0},
                 {"s", DataType::kString, 8},
                 {"t", DataType::kString, 8}});
  std::vector<Tuple> base = RandomMixedTuples(300, 2024);
  std::vector<Tuple> shifted = RandomMixedTuples(300, 4048);
  std::vector<Tuple> tuples;
  tuples.reserve(base.size());
  for (size_t k = 0; k < base.size(); ++k) {
    tuples.push_back(Tuple{base[k][0], shifted[k][0], base[k][1],
                           shifted[k][1], base[k][2], shifted[k][2]});
  }
  ColumnBatch batch;
  batch.Configure(schema);
  for (const Tuple& t : tuples) batch.AppendRow(t);

  const std::vector<PredicatePtr> predicates = {
      CmpLiteral("i", CompareOp::kLt, int64_t{10}),
      CmpLiteral("d", CompareOp::kGe, -0.0),
      CmpLiteral("s", CompareOp::kEq, std::string("ab")),
      CmpLiteral("s", CompareOp::kLe, std::string("abcdefgh")),
      // Literal longer than the column width: every cell is a strict
      // prefix, so only kLt/kNe-style outcomes can hold.
      CmpLiteral("s", CompareOp::kLt, std::string("abcdefghi")),
      CmpColumns("i", CompareOp::kLt, "j"),
      CmpColumns("d", CompareOp::kGe, "e"),
      CmpColumns("s", CompareOp::kGt, "t"),
      CmpColumns("s", CompareOp::kEq, "s"),
      And(CmpLiteral("i", CompareOp::kGe, int64_t{-100}),
          Or(CmpLiteral("d", CompareOp::kNe, 0.0),
             Not(CmpLiteral("s", CompareOp::kEq, std::string())))),
  };
  for (const PredicatePtr& p : predicates) {
    auto bound = BoundPredicate::Bind(p, schema);
    ASSERT_TRUE(bound.ok()) << p->ToString();
    std::vector<uint8_t> mask;
    bound->EvalBatch(batch, &mask);
    ASSERT_EQ(mask.size(), tuples.size());
    for (size_t i = 0; i < tuples.size(); ++i) {
      ASSERT_EQ(mask[i] != 0, bound->Eval(tuples[i]))
          << p->ToString() << " row " << i;
    }
  }
}

TEST(SelectColumnarTest, OutputAndChargesMatchRowPath) {
  Schema schema = MixedSchema();
  std::vector<Tuple> tuples = RandomMixedTuples(250, 99);
  ColumnBatch batch;
  batch.Configure(schema);
  for (const Tuple& t : tuples) batch.AppendRow(t);
  auto bound = BoundPredicate::Bind(
      And(CmpLiteral("i", CompareOp::kGe, int64_t{0}),
          CmpLiteral("d", CompareOp::kLt, 10.0)),
      schema);
  ASSERT_TRUE(bound.ok());
  CostModel model = CostModel::Deterministic();

  CostLedger row_ledger, col_ledger;
  OpMetrics row_metrics, col_metrics;
  std::vector<Tuple> row_out = SelectTuples(tuples, *bound, schema,
                                            &row_ledger, model, &row_metrics);
  std::vector<Tuple> col_out =
      SelectTuplesColumnar(tuples, batch, *bound, schema, &col_ledger, model,
                           &col_metrics);
  ASSERT_EQ(row_out.size(), col_out.size());
  for (size_t i = 0; i < row_out.size(); ++i) {
    ASSERT_EQ(CompareTuples(row_out[i], col_out[i]), 0);
  }
  EXPECT_EQ(row_ledger.GrandTotal(), col_ledger.GrandTotal());
  EXPECT_EQ(row_metrics.process.comparisons, col_metrics.process.comparisons);
  EXPECT_EQ(row_metrics.process.in_tuples, col_metrics.process.in_tuples);
  EXPECT_EQ(row_metrics.output.out_tuples, col_metrics.output.out_tuples);
  EXPECT_EQ(row_metrics.output.out_pages, col_metrics.output.out_pages);
}

// ---------------------------------------------------------------------------
// Whole-query bit-identity across layouts
// ---------------------------------------------------------------------------

void ExpectStageReportsIdentical(const QueryResult& row,
                                 const QueryResult& col) {
  ASSERT_EQ(row.stage_reports.size(), col.stage_reports.size());
  for (size_t i = 0; i < row.stage_reports.size(); ++i) {
    const StageReport& r = row.stage_reports[i];
    const StageReport& c = col.stage_reports[i];
    EXPECT_EQ(r.planned_fraction, c.planned_fraction) << "stage " << i;
    EXPECT_EQ(r.blocks_drawn, c.blocks_drawn) << "stage " << i;
    EXPECT_EQ(r.estimate_after, c.estimate_after) << "stage " << i;
    EXPECT_EQ(r.variance_after, c.variance_after) << "stage " << i;
    EXPECT_EQ(r.ledger_spend_s, c.ledger_spend_s) << "stage " << i;
    EXPECT_EQ(r.within_quota, c.within_quota) << "stage " << i;
    EXPECT_EQ(r.transient_faults, c.transient_faults) << "stage " << i;
    EXPECT_EQ(r.blocks_lost, c.blocks_lost) << "stage " << i;
    // The one intended difference: the reported evaluation path.
    EXPECT_EQ(r.layout, Layout::kRow);
    EXPECT_EQ(c.layout, Layout::kColumnar);
  }
}

void ExpectBitIdentical(const QueryResult& row, const QueryResult& col) {
  EXPECT_EQ(row.estimate, col.estimate);
  EXPECT_EQ(row.variance, col.variance);
  EXPECT_EQ(row.ci.lo, col.ci.lo);
  EXPECT_EQ(row.ci.hi, col.ci.hi);
  EXPECT_EQ(row.stages_run, col.stages_run);
  EXPECT_EQ(row.stages_counted, col.stages_counted);
  EXPECT_EQ(row.blocks_sampled, col.blocks_sampled);
  EXPECT_EQ(row.blocks_wasted, col.blocks_wasted);
  EXPECT_EQ(row.elapsed_seconds, col.elapsed_seconds);
  EXPECT_EQ(row.overspent, col.overspent);
  EXPECT_EQ(row.degraded, col.degraded);
  ExpectStageReportsIdentical(row, col);
}

ExecutorOptions BaseOptions(int threads, bool faults) {
  ExecutorOptions options;
  options.quota_s = 2.5;
  options.seed = 20260808;
  options.threads = threads;
  if (faults) {
    options.faults.enabled = true;
    options.faults.transient_rate = 0.05;
    options.faults.permanent_rate = 0.01;
    options.faults.straggler_rate = 0.05;
    options.faults.fault_seed = 17;
  }
  return options;
}

QueryResult MustRun(const Workload& w, const AggregateSpec& aggregate,
                    ExecutorOptions options, Layout layout) {
  options.layout = layout;
  auto result =
      RunTimeConstrainedAggregate(w.query, aggregate, w.catalog, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : QueryResult{};
}

class LayoutBitIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(LayoutBitIdentityTest, SelectionCountSumAvg) {
  auto w = MakeSelectionWorkload(2000, 7);
  ASSERT_TRUE(w.ok());
  const AggregateSpec aggregates[] = {AggregateSpec::Count(),
                                      AggregateSpec::Sum("key"),
                                      AggregateSpec::Avg("key")};
  for (const AggregateSpec& agg : aggregates) {
    for (bool faults : {false, true}) {
      ExecutorOptions options = BaseOptions(GetParam(), faults);
      QueryResult row = MustRun(*w, agg, options, Layout::kRow);
      QueryResult col = MustRun(*w, agg, options, Layout::kColumnar);
      ExpectBitIdentical(row, col);
    }
  }
}

TEST_P(LayoutBitIdentityTest, IntersectionCount) {
  auto w = MakeIntersectionWorkload(5000, 9);
  ASSERT_TRUE(w.ok());
  for (bool faults : {false, true}) {
    ExecutorOptions options = BaseOptions(GetParam(), faults);
    QueryResult row = MustRun(*w, AggregateSpec::Count(), options,
                              Layout::kRow);
    QueryResult col = MustRun(*w, AggregateSpec::Count(), options,
                              Layout::kColumnar);
    ExpectBitIdentical(row, col);
  }
}

TEST_P(LayoutBitIdentityTest, JoinCount) {
  auto w = MakeJoinWorkload(7000, 3);
  ASSERT_TRUE(w.ok());
  for (bool faults : {false, true}) {
    ExecutorOptions options = BaseOptions(GetParam(), faults);
    options.quota_s = 1.5;
    QueryResult row = MustRun(*w, AggregateSpec::Count(), options,
                              Layout::kRow);
    QueryResult col = MustRun(*w, AggregateSpec::Count(), options,
                              Layout::kColumnar);
    ExpectBitIdentical(row, col);
  }
}

TEST_P(LayoutBitIdentityTest, WarmStartReplay) {
  auto w = MakeSelectionWorkload(2000, 7);
  ASSERT_TRUE(w.ok());
  WarmStartCache row_cache, col_cache;
  ExecutorOptions options = BaseOptions(GetParam(), /*faults=*/false);
  // Two warm queries per layout: the second replays the first's sample
  // pool. Both the cold-fill run and the replay run must agree across
  // layouts — the caches are filled independently per layout, so any
  // divergence in what the columnar path pools would surface here.
  for (int round = 0; round < 2; ++round) {
    ExecutorOptions row_options = options;
    row_options.warm_cache = &row_cache;
    ExecutorOptions col_options = options;
    col_options.warm_cache = &col_cache;
    QueryResult row = MustRun(*w, AggregateSpec::Count(), row_options,
                              Layout::kRow);
    QueryResult col = MustRun(*w, AggregateSpec::Count(), col_options,
                              Layout::kColumnar);
    ExpectBitIdentical(row, col);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, LayoutBitIdentityTest,
                         ::testing::Values(1, 4, 8));

// Goodman-variance parity on the vectorized intersect: the unbiased
// product-estimator variance (estimator/goodman.*) is computed from the
// per-block hit counts the merge kernels produce, so a single extra or
// missing comparison/output tuple in the columnar merge would move it.
TEST(GoodmanParityTest, VectorizedIntersectVarianceMatchesRowPath) {
  auto w = MakeIntersectionWorkload(1000, 21);
  ASSERT_TRUE(w.ok());
  for (uint64_t seed : {1u, 2u, 3u}) {
    ExecutorOptions options = BaseOptions(/*threads=*/4, /*faults=*/false);
    options.seed = seed;
    QueryResult row = MustRun(*w, AggregateSpec::Count(), options,
                              Layout::kRow);
    QueryResult col = MustRun(*w, AggregateSpec::Count(), options,
                              Layout::kColumnar);
    EXPECT_EQ(row.variance, col.variance) << "seed " << seed;
    ASSERT_EQ(row.stage_reports.size(), col.stage_reports.size());
    for (size_t i = 0; i < row.stage_reports.size(); ++i) {
      EXPECT_EQ(row.stage_reports[i].variance_after,
                col.stage_reports[i].variance_after)
          << "seed " << seed << " stage " << i;
    }
  }
}

// EXPLAIN surfaces the chosen path without running anything.
TEST(ExplainLayoutTest, ReportsChosenLayout) {
  auto w = MakeSelectionWorkload(2000, 7);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options = BaseOptions(/*threads=*/1, /*faults=*/false);
  options.layout = Layout::kColumnar;
  auto explain = ExplainTimeConstrainedAggregate(
      w->query, AggregateSpec::Count(), w->catalog, options);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain->layout, Layout::kColumnar);
  EXPECT_NE(explain->ToString().find("columnar layout"), std::string::npos);

  // Simulated plans are layout-independent: same stage schedule either way.
  options.layout = Layout::kRow;
  auto row_explain = ExplainTimeConstrainedAggregate(
      w->query, AggregateSpec::Count(), w->catalog, options);
  ASSERT_TRUE(row_explain.ok());
  ASSERT_EQ(explain->stages.size(), row_explain->stages.size());
  for (size_t i = 0; i < explain->stages.size(); ++i) {
    EXPECT_EQ(explain->stages[i].planned_fraction,
              row_explain->stages[i].planned_fraction);
    EXPECT_EQ(explain->stages[i].blocks_planned,
              row_explain->stages[i].blocks_planned);
  }
}

}  // namespace
}  // namespace tcq
