#include "storage/page_codec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "exec/exact.h"
#include "workload/generators.h"

namespace tcq {
namespace {

Schema Mixed() {
  return Schema({{"i", DataType::kInt64, 0},
                 {"d", DataType::kDouble, 0},
                 {"s", DataType::kString, 8}});
}

std::string TempDir() {
  auto dir = std::filesystem::temp_directory_path() / "tcq_codec_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(TupleCodecTest, RoundTripMixedTypes) {
  Schema schema = Mixed();
  Tuple t{int64_t{-42}, 3.25, std::string("hi")};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeTuple(t, schema, &bytes).ok());
  EXPECT_EQ(bytes.size(), 24u);  // 8 + 8 + 8
  auto back = DecodeTuple(bytes, 0, schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(CompareTuples(*back, t), 0);
}

TEST(TupleCodecTest, ExtremeValues) {
  Schema schema = Mixed();
  Tuple t{std::numeric_limits<int64_t>::min(), -0.0,
          std::string("abcdefgh")};  // full-width string
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeTuple(t, schema, &bytes).ok());
  auto back = DecodeTuple(bytes, 0, schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<int64_t>((*back)[0]),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(std::get<std::string>((*back)[2]), "abcdefgh");
}

TEST(TupleCodecTest, RejectsInvalidTuple) {
  Schema schema = Mixed();
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(EncodeTuple({int64_t{1}}, schema, &bytes).ok());
}

TEST(TupleCodecTest, DecodePastEndFails) {
  Schema schema = Mixed();
  std::vector<uint8_t> tiny(10, 0);
  EXPECT_FALSE(DecodeTuple(tiny, 0, schema).ok());
}

TEST(PageCodecTest, RoundTripPartialPage) {
  Schema schema = Mixed();  // 24 bytes/tuple
  Block block;
  block.tuples.push_back(Tuple{int64_t{1}, 1.5, std::string("a")});
  block.tuples.push_back(Tuple{int64_t{2}, 2.5, std::string("bb")});
  auto page = EncodePage(block, schema, 128);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 128u);
  auto back = DecodePage(*page, 2, schema);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->tuples.size(), 2u);
  EXPECT_EQ(CompareTuples(back->tuples[1], block.tuples[1]), 0);
}

TEST(PageCodecTest, RejectsOverfullBlock) {
  Schema schema = Mixed();
  Block block;
  for (int i = 0; i < 10; ++i) {
    block.tuples.push_back(Tuple{int64_t{i}, 0.0, std::string()});
  }
  EXPECT_FALSE(EncodePage(block, schema, 128).ok());  // 240 > 128
}

TEST(RelationFileTest, RoundTripPaperRelation) {
  auto w = MakeSelectionWorkload(2000, 77);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  std::string path = TempDir() + "/r1.tcq";
  ASSERT_TRUE(SaveRelation(**rel, path).ok());

  auto loaded = LoadRelation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "r1");
  EXPECT_EQ(loaded->NumTuples(), 10000);
  EXPECT_EQ(loaded->NumBlocks(), 2000);
  EXPECT_EQ(loaded->blocking_factor(), 5);
  // Every tuple identical, block by block.
  for (int64_t b = 0; b < loaded->NumBlocks(); ++b) {
    const Block& orig = (*rel)->block(b);
    const Block& copy = loaded->block(b);
    ASSERT_EQ(orig.tuples.size(), copy.tuples.size()) << b;
    for (size_t i = 0; i < orig.tuples.size(); ++i) {
      ASSERT_EQ(CompareTuples(orig.tuples[i], copy.tuples[i]), 0);
    }
  }
}

TEST(PageChecksumTest, DeterministicAndSensitiveToEveryByte) {
  std::vector<uint8_t> page(64, 0xab);
  const uint64_t sum = PageChecksum(page);
  EXPECT_EQ(sum, PageChecksum(page));  // pure function of the bytes
  for (size_t i = 0; i < page.size(); ++i) {
    std::vector<uint8_t> flipped = page;
    flipped[i] ^= 0x01;
    EXPECT_NE(PageChecksum(flipped), sum) << "byte " << i;
  }
  EXPECT_NE(PageChecksum({}), sum);
}

TEST(RelationFileTest, CorruptedPageFailsWithDataLoss) {
  auto w = MakeSelectionWorkload(50, 11);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  std::string path = TempDir() + "/corrupt.tcq";
  ASSERT_TRUE(SaveRelation(**rel, path).ok());

  // Flip one payload byte of the last page (the final 8 bytes are its
  // stored checksum). v2 readers must refuse the file with kDataLoss.
  std::vector<uint8_t> bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  ASSERT_GT(bytes.size(), 9u);
  bytes[bytes.size() - 9] ^= 0xff;
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  auto loaded = LoadRelation(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(RelationFileTest, VersionOneFileStillLoads) {
  // A v1 file written by hand: no per-page checksums. One int64 column,
  // one block of one tuple (value 7), 8-byte pages.
  std::vector<uint8_t> out;
  auto put_u32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto put_u64 = [&out](uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  for (char c : {'T', 'C', 'Q', 'F'}) out.push_back(static_cast<uint8_t>(c));
  put_u32(1);  // version 1
  put_u32(2);  // name length
  out.push_back('v');
  out.push_back('1');
  put_u32(1);  // one column
  put_u32(1);  // column name length
  out.push_back('i');
  put_u32(0);  // DataType::kInt64
  put_u32(0);  // width
  put_u32(8);  // block_bytes
  put_u64(1);  // num_blocks
  put_u64(1);  // num_tuples
  put_u32(1);  // tuples in block 0
  put_u64(7);  // the page: one int64
  std::string path = TempDir() + "/v1.tcq";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
  }
  auto loaded = LoadRelation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "v1");
  ASSERT_EQ(loaded->NumTuples(), 1);
  EXPECT_EQ(std::get<int64_t>(loaded->block(0).tuples[0][0]), 7);
}

TEST(RelationFileTest, LoadRejectsGarbage) {
  std::string path = TempDir() + "/garbage.tcq";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a tcqf file at all", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadRelation(path).ok());
  EXPECT_FALSE(LoadRelation(TempDir() + "/missing.tcq").ok());
}

TEST(CatalogFileTest, RoundTripAndQuery) {
  auto w = MakeIntersectionWorkload(5000, 88);
  ASSERT_TRUE(w.ok());
  std::string dir = TempDir() + "/catalog";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveCatalog(w->catalog, dir).ok());

  auto loaded = LoadCatalog(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Names().size(), 2u);
  // The loaded catalog answers the same query identically.
  auto original = ExactCount(w->query, w->catalog);
  auto reloaded = ExactCount(w->query, *loaded);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*original, *reloaded);
  EXPECT_EQ(*reloaded, 5000);
}

TEST(CatalogFileTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(LoadCatalog(TempDir() + "/definitely_missing_dir").ok());
}

}  // namespace
}  // namespace tcq
