#include "storage/page_codec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "exec/exact.h"
#include "workload/generators.h"

namespace tcq {
namespace {

Schema Mixed() {
  return Schema({{"i", DataType::kInt64, 0},
                 {"d", DataType::kDouble, 0},
                 {"s", DataType::kString, 8}});
}

std::string TempDir() {
  auto dir = std::filesystem::temp_directory_path() / "tcq_codec_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(TupleCodecTest, RoundTripMixedTypes) {
  Schema schema = Mixed();
  Tuple t{int64_t{-42}, 3.25, std::string("hi")};
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeTuple(t, schema, &bytes).ok());
  EXPECT_EQ(bytes.size(), 24u);  // 8 + 8 + 8
  auto back = DecodeTuple(bytes, 0, schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(CompareTuples(*back, t), 0);
}

TEST(TupleCodecTest, ExtremeValues) {
  Schema schema = Mixed();
  Tuple t{std::numeric_limits<int64_t>::min(), -0.0,
          std::string("abcdefgh")};  // full-width string
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeTuple(t, schema, &bytes).ok());
  auto back = DecodeTuple(bytes, 0, schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<int64_t>((*back)[0]),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(std::get<std::string>((*back)[2]), "abcdefgh");
}

TEST(TupleCodecTest, RejectsInvalidTuple) {
  Schema schema = Mixed();
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(EncodeTuple({int64_t{1}}, schema, &bytes).ok());
}

TEST(TupleCodecTest, DecodePastEndFails) {
  Schema schema = Mixed();
  std::vector<uint8_t> tiny(10, 0);
  EXPECT_FALSE(DecodeTuple(tiny, 0, schema).ok());
}

TEST(PageCodecTest, RoundTripPartialPage) {
  Schema schema = Mixed();  // 24 bytes/tuple
  Block block;
  block.tuples.push_back(Tuple{int64_t{1}, 1.5, std::string("a")});
  block.tuples.push_back(Tuple{int64_t{2}, 2.5, std::string("bb")});
  auto page = EncodePage(block, schema, 128);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 128u);
  auto back = DecodePage(*page, 2, schema);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->tuples.size(), 2u);
  EXPECT_EQ(CompareTuples(back->tuples[1], block.tuples[1]), 0);
}

TEST(PageCodecTest, RejectsOverfullBlock) {
  Schema schema = Mixed();
  Block block;
  for (int i = 0; i < 10; ++i) {
    block.tuples.push_back(Tuple{int64_t{i}, 0.0, std::string()});
  }
  EXPECT_FALSE(EncodePage(block, schema, 128).ok());  // 240 > 128
}

TEST(RelationFileTest, RoundTripPaperRelation) {
  auto w = MakeSelectionWorkload(2000, 77);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  std::string path = TempDir() + "/r1.tcq";
  ASSERT_TRUE(SaveRelation(**rel, path).ok());

  auto loaded = LoadRelation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "r1");
  EXPECT_EQ(loaded->NumTuples(), 10000);
  EXPECT_EQ(loaded->NumBlocks(), 2000);
  EXPECT_EQ(loaded->blocking_factor(), 5);
  // Every tuple identical, block by block.
  for (int64_t b = 0; b < loaded->NumBlocks(); ++b) {
    BlockView orig = (*rel)->ViewBlock(b);
    BlockView copy = loaded->ViewBlock(b);
    ASSERT_EQ(orig.rows().size(), copy.rows().size()) << b;
    for (size_t i = 0; i < orig.rows().size(); ++i) {
      ASSERT_EQ(CompareTuples(orig.rows()[i], copy.rows()[i]), 0);
    }
  }
}

TEST(PageChecksumTest, DeterministicAndSensitiveToEveryByte) {
  std::vector<uint8_t> page(64, 0xab);
  const uint64_t sum = PageChecksum(page);
  EXPECT_EQ(sum, PageChecksum(page));  // pure function of the bytes
  for (size_t i = 0; i < page.size(); ++i) {
    std::vector<uint8_t> flipped = page;
    flipped[i] ^= 0x01;
    EXPECT_NE(PageChecksum(flipped), sum) << "byte " << i;
  }
  EXPECT_NE(PageChecksum({}), sum);
}

TEST(RelationFileTest, CorruptedPageFailsWithDataLoss) {
  auto w = MakeSelectionWorkload(50, 11);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  std::string path = TempDir() + "/corrupt.tcq";
  ASSERT_TRUE(SaveRelation(**rel, path).ok());

  // Flip one payload byte of the last page (the final 8 bytes are its
  // stored checksum). v2 readers must refuse the file with kDataLoss.
  std::vector<uint8_t> bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  ASSERT_GT(bytes.size(), 9u);
  bytes[bytes.size() - 9] ^= 0xff;
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  auto loaded = LoadRelation(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(RelationFileTest, VersionOneFileStillLoads) {
  // A v1 file written by hand: no per-page checksums. One int64 column,
  // one block of one tuple (value 7), 8-byte pages.
  std::vector<uint8_t> out;
  auto put_u32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto put_u64 = [&out](uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  for (char c : {'T', 'C', 'Q', 'F'}) out.push_back(static_cast<uint8_t>(c));
  put_u32(1);  // version 1
  put_u32(2);  // name length
  out.push_back('v');
  out.push_back('1');
  put_u32(1);  // one column
  put_u32(1);  // column name length
  out.push_back('i');
  put_u32(0);  // DataType::kInt64
  put_u32(0);  // width
  put_u32(8);  // block_bytes
  put_u64(1);  // num_blocks
  put_u64(1);  // num_tuples
  put_u32(1);  // tuples in block 0
  put_u64(7);  // the page: one int64
  std::string path = TempDir() + "/v1.tcq";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
  }
  auto loaded = LoadRelation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "v1");
  ASSERT_EQ(loaded->NumTuples(), 1);
  EXPECT_EQ(std::get<int64_t>(loaded->ViewBlock(0).rows()[0][0]), 7);
}

TEST(ColumnarPageCodecTest, RoundTripPartialPage) {
  Schema schema = Mixed();  // 24 bytes/tuple
  Block block;
  block.tuples.push_back(Tuple{int64_t{-1}, -0.0, std::string("a")});
  block.tuples.push_back(Tuple{int64_t{2}, 2.5, std::string("bbbbbbbb")});
  auto page = EncodePageColumnar(block, schema, 128);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 128u);
  auto back = DecodePageColumnar(*page, 2, schema);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->tuples.size(), 2u);
  EXPECT_EQ(CompareTuples(back->tuples[0], block.tuples[0]), 0);
  EXPECT_EQ(CompareTuples(back->tuples[1], block.tuples[1]), 0);
}

TEST(ColumnarPageCodecTest, ColumnMajorByteOrder) {
  // Two int64 columns, two tuples: the page must hold column 0's values
  // first ({1, 3}), then column 1's ({2, 4}) — not row-major {1,2,3,4}.
  Schema schema({{"a", DataType::kInt64, 0}, {"b", DataType::kInt64, 0}});
  Block block;
  block.tuples.push_back(Tuple{int64_t{1}, int64_t{2}});
  block.tuples.push_back(Tuple{int64_t{3}, int64_t{4}});
  auto page = EncodePageColumnar(block, schema, 64);
  ASSERT_TRUE(page.ok());
  auto u64_at = [&page](size_t off) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>((*page)[off + static_cast<size_t>(i)])
           << (8 * i);
    }
    return v;
  };
  EXPECT_EQ(u64_at(0), 1u);
  EXPECT_EQ(u64_at(8), 3u);
  EXPECT_EQ(u64_at(16), 2u);
  EXPECT_EQ(u64_at(24), 4u);
}

TEST(RelationFileTest, ExplicitVersionRoundTrips) {
  auto w = MakeSelectionWorkload(50, 23);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  for (uint32_t version : {1u, 2u, 3u}) {
    std::string path =
        TempDir() + "/v" + std::to_string(version) + "_explicit.tcq";
    ASSERT_TRUE(SaveRelationAtVersion(**rel, path, version).ok()) << version;
    auto loaded = LoadRelation(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->NumTuples(), (*rel)->NumTuples()) << version;
    for (int64_t b = 0; b < loaded->NumBlocks(); ++b) {
      BlockView orig = (*rel)->ViewBlock(b);
      BlockView copy = loaded->ViewBlock(b);
      ASSERT_EQ(orig.rows().size(), copy.rows().size());
      for (size_t i = 0; i < orig.rows().size(); ++i) {
        ASSERT_EQ(CompareTuples(orig.rows()[i], copy.rows()[i]), 0)
            << "version " << version << " block " << b;
      }
    }
  }
  // v1 files carry no checksums, so the three files differ in size.
  EXPECT_LT(std::filesystem::file_size(TempDir() + "/v1_explicit.tcq"),
            std::filesystem::file_size(TempDir() + "/v2_explicit.tcq"));
  EXPECT_EQ(std::filesystem::file_size(TempDir() + "/v2_explicit.tcq"),
            std::filesystem::file_size(TempDir() + "/v3_explicit.tcq"));
}

TEST(RelationFileTest, ConvertRoundTripsAcrossVersions) {
  auto w = MakeSelectionWorkload(40, 31);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  std::string v2 = TempDir() + "/convert_v2.tcq";
  std::string v3 = TempDir() + "/convert_v3.tcq";
  std::string back2 = TempDir() + "/convert_back_v2.tcq";
  ASSERT_TRUE(SaveRelationAtVersion(**rel, v2, 2).ok());
  ASSERT_TRUE(ConvertRelationFile(v2, v3, 3).ok());
  ASSERT_TRUE(ConvertRelationFile(v3, back2, 2).ok());

  auto from_v3 = LoadRelation(v3);
  ASSERT_TRUE(from_v3.ok()) << from_v3.status().ToString();
  auto from_back = LoadRelation(back2);
  ASSERT_TRUE(from_back.ok()) << from_back.status().ToString();
  ASSERT_EQ(from_v3->NumTuples(), (*rel)->NumTuples());
  ASSERT_EQ(from_back->NumTuples(), (*rel)->NumTuples());
  for (int64_t b = 0; b < (*rel)->NumBlocks(); ++b) {
    BlockView orig = (*rel)->ViewBlock(b);
    for (size_t i = 0; i < orig.rows().size(); ++i) {
      ASSERT_EQ(
          CompareTuples(orig.rows()[i], from_v3->ViewBlock(b).rows()[i]), 0);
      ASSERT_EQ(
          CompareTuples(orig.rows()[i], from_back->ViewBlock(b).rows()[i]),
          0);
    }
  }
}

TEST(RelationFileTest, CorruptedColumnarPageFailsWithDataLoss) {
  auto w = MakeSelectionWorkload(50, 13);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  std::string path = TempDir() + "/corrupt_v3.tcq";
  ASSERT_TRUE(SaveRelationAtVersion(**rel, path, 3).ok());

  std::vector<uint8_t> bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  ASSERT_GT(bytes.size(), 9u);
  bytes[bytes.size() - 9] ^= 0xff;  // payload byte, not the checksum
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  auto loaded = LoadRelation(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  // A converter pointed at the corrupt file must surface the same error,
  // never silently rewrite garbage.
  EXPECT_EQ(
      ConvertRelationFile(path, TempDir() + "/never_written.tcq", 2).code(),
      StatusCode::kDataLoss);
}

TEST(RelationFileTest, LoadRejectsGarbage) {
  std::string path = TempDir() + "/garbage.tcq";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a tcqf file at all", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadRelation(path).ok());
  EXPECT_FALSE(LoadRelation(TempDir() + "/missing.tcq").ok());
}

TEST(CatalogFileTest, RoundTripAndQuery) {
  auto w = MakeIntersectionWorkload(5000, 88);
  ASSERT_TRUE(w.ok());
  std::string dir = TempDir() + "/catalog";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveCatalog(w->catalog, dir).ok());

  auto loaded = LoadCatalog(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Names().size(), 2u);
  // The loaded catalog answers the same query identically.
  auto original = ExactCount(w->query, w->catalog);
  auto reloaded = ExactCount(w->query, *loaded);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*original, *reloaded);
  EXPECT_EQ(*reloaded, 5000);
}

TEST(CatalogFileTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(LoadCatalog(TempDir() + "/definitely_missing_dir").ok());
}

}  // namespace
}  // namespace tcq
