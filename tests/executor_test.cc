#include "engine/executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "exec/exact.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


ExecutorOptions DefaultOptions(double d_beta = 12.0) {
  ExecutorOptions options;
  options.strategy.one_at_a_time.d_beta = d_beta;
  return options;
}

TEST(ExecutorTest, GenerousQuotaSamplesEverythingExactly) {
  // With a quota large enough to scan the whole relation, the estimator
  // covers the full point space and returns the exact count.
  auto w = MakeSelectionWorkload(2000, 101);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(DefaultOptions(), 100000.0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->estimate, 2000.0);
  EXPECT_FALSE(r->overspent);
  EXPECT_EQ(r->blocks_sampled, 2000);
  EXPECT_GT(r->stages_counted, 0);
}

TEST(ExecutorTest, TightQuotaStaysReasonablyAccurate) {
  auto w = MakeSelectionWorkload(2000, 102);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(DefaultOptions(), 10.0));
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->stages_counted, 0);
  EXPECT_GT(r->blocks_sampled, 0);
  EXPECT_LT(r->blocks_sampled, 2000);
  // Sampling error at ~50+ blocks should be well within 50%.
  EXPECT_NEAR(r->estimate, 2000.0, 1000.0);
  EXPECT_GT(r->utilization, 0.2);
}

TEST(ExecutorTest, DeterministicForSameSeed) {
  auto w = MakeSelectionWorkload(2000, 103);
  ASSERT_TRUE(w.ok());
  auto opts = DefaultOptions();
  opts.seed = 77;
  auto a = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  auto b = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
  EXPECT_EQ(a->blocks_sampled, b->blocks_sampled);
  EXPECT_EQ(a->stages_run, b->stages_run);
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
}

TEST(ExecutorTest, DifferentSeedsDiffer) {
  auto w = MakeSelectionWorkload(2000, 104);
  ASSERT_TRUE(w.ok());
  // Individual estimates can collide (same hits/blocks ratio), so check
  // that a handful of seeds does not produce a single repeated outcome.
  std::set<std::pair<double, double>> outcomes;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto opts = DefaultOptions();
    opts.seed = seed;
    auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
    ASSERT_TRUE(r.ok());
    outcomes.insert({r->estimate, r->elapsed_seconds});
  }
  EXPECT_GT(outcomes.size(), 1u);
}

TEST(ExecutorTest, HardDeadlineDiscardsAbortedStage) {
  auto w = MakeSelectionWorkload(2000, 105);
  ASSERT_TRUE(w.ok());
  // dβ = 0 gives ~50% overspend probability; scan seeds until a run
  // overspends, then verify the hard-deadline bookkeeping.
  bool found = false;
  for (uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    auto opts = DefaultOptions(/*d_beta=*/0.0);
    opts.seed = seed;
    opts.deadline_mode = DeadlineMode::kHard;
    auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
    ASSERT_TRUE(r.ok());
    if (!r->overspent) continue;
    found = true;
    EXPECT_GT(r->overspend_seconds, 0.0);
    EXPECT_GT(r->elapsed_seconds, 10.0);
    EXPECT_EQ(r->stages_counted, r->stages_run - 1);
    // The returned estimate must match the last within-quota stage.
    if (r->stages_counted > 0) {
      EXPECT_DOUBLE_EQ(
          r->estimate,
          r->stages()[static_cast<size_t>(r->stages_counted - 1)]
              .estimate_after);
    } else {
      EXPECT_DOUBLE_EQ(r->estimate, 0.0);
    }
  }
  EXPECT_TRUE(found) << "no overspending run found at d_beta = 0";
}

TEST(ExecutorTest, SoftDeadlineCountsFinalStage) {
  auto w = MakeSelectionWorkload(2000, 106);
  ASSERT_TRUE(w.ok());
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto opts = DefaultOptions(/*d_beta=*/0.0);
    opts.seed = seed;
    opts.deadline_mode = DeadlineMode::kSoft;
    auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
    ASSERT_TRUE(r.ok());
    if (!r->overspent) continue;
    EXPECT_EQ(r->stages_counted, r->stages_run);
    EXPECT_DOUBLE_EQ(r->estimate, r->stages().back().estimate_after);
    return;
  }
  FAIL() << "no overspending run found";
}

TEST(ExecutorTest, IntersectionQueryEndToEnd) {
  auto w = MakeIntersectionWorkload(5000, 107);
  ASSERT_TRUE(w.ok());
  auto opts = DefaultOptions(12.0);
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->stages_counted, 0);
  // Intersection estimates are noisy at small samples; sanity band only.
  EXPECT_GT(r->estimate, 0.0);
  EXPECT_LT(r->estimate, 50000.0);
}

TEST(ExecutorTest, JoinQueryEndToEnd) {
  auto w = MakeJoinWorkload(70000, 108);
  ASSERT_TRUE(w.ok());
  auto opts = DefaultOptions(12.0);
  opts.selectivity.initial_join = 0.1;  // paper §5.C
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 2.5));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->stages_run, 1);
}

TEST(ExecutorTest, BareScanCountIsExactWithoutSampling) {
  // COUNT(r1) is known from the catalog: no stages, no sampling, zero
  // variance.
  auto w = MakeSelectionWorkload(2000, 120);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(Scan("r1"), w->catalog, WithQuota(DefaultOptions(), 0.001));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 10000.0);
  EXPECT_DOUBLE_EQ(r->variance, 0.0);
  EXPECT_EQ(r->stages_run, 0);
  EXPECT_EQ(r->blocks_sampled, 0);
}

TEST(ExecutorTest, UnionUsesConstantScanTerms) {
  // COUNT(r1 ∪ r2) = |r1| + |r2| − COUNT(r1 ∩ r2): the scan terms are
  // free, so the estimate is 20,000 minus the sampled intersect estimate
  // and can never stray below 10,000.
  auto w = MakeIntersectionWorkload(5000, 121);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(Union(Scan("r1"), Scan("r2")), w->catalog, WithQuota(DefaultOptions(), 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->estimate, 10000.0);
  EXPECT_LE(r->estimate, 20000.0);
}

TEST(ExecutorTest, UnionQueryViaInclusionExclusion) {
  auto w = MakeIntersectionWorkload(5000, 109);
  ASSERT_TRUE(w.ok());
  auto query = Union(Scan("r1"), Scan("r2"));
  auto exact = ExactCount(query, w->catalog);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 15000);
  // Generous quota: all three terms fully sampled -> exact.
  auto r = RunTimeConstrainedCount(query, w->catalog, WithQuota(DefaultOptions(), 100000.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 15000.0);
}

TEST(ExecutorTest, DifferenceQuery) {
  auto w = MakeIntersectionWorkload(4000, 110);
  ASSERT_TRUE(w.ok());
  auto query = Difference(Scan("r1"), Scan("r2"));
  auto r = RunTimeConstrainedCount(query, w->catalog, WithQuota(DefaultOptions(), 100000.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 6000.0);
}

TEST(ExecutorTest, ZeroMatchQueryDoesNotBlowUp) {
  auto w = MakeSelectionWorkload(0, 111);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(DefaultOptions(12.0), 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 0.0);
  EXPECT_GT(r->stages_counted, 0);
}

TEST(ExecutorTest, PrecisionStopEndsEarly) {
  auto w = MakeSelectionWorkload(5000, 112);
  ASSERT_TRUE(w.ok());
  auto opts = DefaultOptions(12.0);
  opts.precision.rel_halfwidth = 0.5;  // very loose: met quickly
  opts.precision.confidence = 0.95;
  // A quota under the full-scan cost, so stage 1 is a partial sample and
  // the precision criterion (not exhaustion) is what stops the run.
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 30.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stopped_for_precision);
  EXPECT_LT(r->blocks_sampled, 2000);
}

TEST(ExecutorTest, ProjectionQuery) {
  // COUNT(DISTINCT key%) via projection: relation with 100 distinct keys.
  Catalog catalog;
  auto rel = MakeUniformRelation("u", 10000, 100, 7);
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto query = Project(Scan("u"), {"key"});
  auto exact = ExactCount(query, catalog);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 100);
  auto r = RunTimeConstrainedCount(query, catalog, WithQuota(DefaultOptions(), 100000.0));
  ASSERT_TRUE(r.ok());
  // Full coverage: all keys observed.
  EXPECT_NEAR(r->estimate, 100.0, 1.0);
}

TEST(ExecutorTest, RejectsNonPositiveQuota) {
  auto w = MakeSelectionWorkload(2000, 113);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(
      RunTimeConstrainedCount(w->query, w->catalog, WithQuota(DefaultOptions(), 0.0))
          .ok());
}

TEST(ExecutorTest, StageTracesAreConsistent) {
  auto w = MakeSelectionWorkload(2000, 114);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(DefaultOptions(24.0), 10.0));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(static_cast<int>(r->stages().size()), r->stages_run);
  double time_left = 10.0;
  for (const StageTrace& t : r->stages()) {
    EXPECT_NEAR(t.time_left_before, time_left, 1e-9);
    EXPECT_GT(t.planned_fraction, 0.0);
    EXPECT_GT(t.blocks_drawn, 0);
    EXPECT_GT(t.actual_seconds, 0.0);
    time_left -= t.actual_seconds;
  }
}

TEST(ExecutorTest, PredictionsAreHonoredWithinQuota) {
  // With a positive d_beta, the predicted stage cost should not exceed
  // the time left, and most stages should complete within it.
  auto w = MakeSelectionWorkload(2000, 115);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(DefaultOptions(48.0), 10.0));
  ASSERT_TRUE(r.ok());
  for (const StageTrace& t : r->stages()) {
    EXPECT_LE(t.predicted_seconds, t.time_left_before + 1e-9);
  }
}

TEST(ExecutorTest, SingleIntervalStrategyRuns) {
  auto w = MakeSelectionWorkload(2000, 116);
  ASSERT_TRUE(w.ok());
  ExecutorOptions opts;
  opts.strategy.kind = StrategyConfig::Kind::kSingleInterval;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stages_counted, 0);
  EXPECT_NEAR(r->estimate, 2000.0, 1200.0);
}

TEST(ExecutorTest, HeuristicStrategyRuns) {
  auto w = MakeSelectionWorkload(2000, 117);
  ASSERT_TRUE(w.ok());
  ExecutorOptions opts;
  opts.strategy.kind = StrategyConfig::Kind::kHeuristic;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stages_counted, 1);  // spends ~half the budget per stage
  EXPECT_NEAR(r->estimate, 2000.0, 1200.0);
}

TEST(ExecutorTest, HybridFinalPartialStagesUseResidualTime) {
  // The paper's §5.C join at large d_β cannot afford another full stage;
  // with final_partial_stages the residual time funds cheap partial
  // stages instead of being wasted.
  auto w = MakeJoinWorkload(70000, 130);
  ASSERT_TRUE(w.ok());
  auto base = DefaultOptions(48.0);
  base.selectivity.initial_join = 0.1;
  int64_t blocks_plain = 0, blocks_hybrid = 0;
  double util_plain = 0.0, util_hybrid = 0.0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    auto opts = base;
    opts.seed = 500 + static_cast<uint64_t>(rep);
    auto plain = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 2.5));
    opts.final_partial_stages = true;
    auto hybrid = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 2.5));
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(hybrid.ok());
    blocks_plain += plain->blocks_sampled;
    blocks_hybrid += hybrid->blocks_sampled;
    util_plain += plain->utilization;
    util_hybrid += hybrid->utilization;
  }
  EXPECT_GT(blocks_hybrid, blocks_plain);
  EXPECT_GT(util_hybrid, util_plain);
}

TEST(ExecutorTest, PartialFulfillmentRuns) {
  auto w = MakeIntersectionWorkload(5000, 118);
  ASSERT_TRUE(w.ok());
  auto opts = DefaultOptions(12.0);
  opts.fulfillment = Fulfillment::kPartial;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stages_counted, 0);
}

}  // namespace
}  // namespace tcq
