#include "sampling/block_sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/generators.h"

namespace tcq {
namespace {

RelationPtr SmallRel() {
  return MakeUniformRelation("r", 100, 10, 5, 200, 1024);  // 20 blocks
}

TEST(BlockSamplerTest, InitialState) {
  BlockSampler sampler(SmallRel());
  EXPECT_EQ(sampler.total_blocks(), 20);
  EXPECT_EQ(sampler.remaining_blocks(), 20);
  EXPECT_EQ(sampler.drawn_blocks(), 0);
}

TEST(BlockSamplerTest, DrawsWithoutReplacement) {
  auto rel = SmallRel();
  BlockSampler sampler(rel);
  Rng rng(1);
  std::set<const Block*> seen;
  for (int stage = 0; stage < 4; ++stage) {
    auto blocks = sampler.Draw(5, &rng);
    ASSERT_EQ(blocks.size(), 5u);
    for (const Block* b : blocks) {
      EXPECT_TRUE(seen.insert(b).second) << "block drawn twice";
    }
  }
  EXPECT_EQ(sampler.remaining_blocks(), 0);
  EXPECT_EQ(seen.size(), 20u);
}

TEST(BlockSamplerTest, DrawCappedByRemaining) {
  BlockSampler sampler(SmallRel());
  Rng rng(2);
  EXPECT_EQ(sampler.Draw(15, &rng).size(), 15u);
  EXPECT_EQ(sampler.Draw(15, &rng).size(), 5u);
  EXPECT_TRUE(sampler.Draw(15, &rng).empty());
}

TEST(BlockSamplerTest, DeterministicPerSeed) {
  auto rel = SmallRel();
  BlockSampler a(rel), b(rel);
  Rng ra(7), rb(7);
  EXPECT_EQ(a.Draw(10, &ra), b.Draw(10, &rb));
}

TEST(BlockSamplerTest, UniformOverBlocks) {
  auto rel = SmallRel();
  std::map<const Block*, int> counts;
  Rng rng(3);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    BlockSampler sampler(rel);
    for (const Block* b : sampler.Draw(4, &rng)) ++counts[b];
  }
  // Each of the 20 blocks should be drawn in ~1/5 of the reps.
  for (const auto& [block, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / reps, 0.2, 0.05);
  }
}

}  // namespace
}  // namespace tcq
