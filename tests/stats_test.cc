#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace tcq {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MatchesBatchComputation) {
  Rng rng(5);
  RunningStat s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Gaussian() * 3.0 + 10.0;
    xs.push_back(v);
    s.Add(v);
  }
  double mean = 0.0;
  for (double v : xs) mean += v;
  mean /= xs.size();
  double var = 0.0;
  for (double v : xs) var += (v - mean) * (v - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.84134474), 1.0, 1e-5);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p = 0.001; p < 0.999; p += 0.0177) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST(SrsVarianceTest, MatchesFormula) {
  // S(1-S)(N-m)/(m(N-1))
  double v = SrsProportionVariance(0.3, 1000.0, 100.0);
  EXPECT_NEAR(v, 0.3 * 0.7 * 900.0 / (100.0 * 999.0), 1e-15);
}

TEST(SrsVarianceTest, ZeroWhenSampleIsPopulation) {
  EXPECT_EQ(SrsProportionVariance(0.5, 100.0, 100.0), 0.0);
}

TEST(SrsVarianceTest, ZeroWhenEmptySample) {
  EXPECT_EQ(SrsProportionVariance(0.5, 100.0, 0.0), 0.0);
}

TEST(SrsVarianceTest, ClampsProportion) {
  EXPECT_EQ(SrsProportionVariance(-0.1, 100.0, 10.0), 0.0);
  EXPECT_EQ(SrsProportionVariance(1.2, 100.0, 10.0), 0.0);
}

TEST(SrsVarianceTest, DecreasesWithSampleSize) {
  double v10 = SrsProportionVariance(0.4, 10000.0, 10.0);
  double v100 = SrsProportionVariance(0.4, 10000.0, 100.0);
  double v1000 = SrsProportionVariance(0.4, 10000.0, 1000.0);
  EXPECT_GT(v10, v100);
  EXPECT_GT(v100, v1000);
}

TEST(ZeroHitTest, MatchesClosedForm) {
  // (1 - s)^m = beta at the bound.
  for (int64_t m : {1, 5, 50, 500}) {
    double s = ZeroHitUpperBound(m, 0.05);
    EXPECT_NEAR(std::pow(1.0 - s, static_cast<double>(m)), 0.05, 1e-9);
  }
}

TEST(ZeroHitTest, ShrinksWithSampleSize) {
  EXPECT_GT(ZeroHitUpperBound(10, 0.05), ZeroHitUpperBound(100, 0.05));
  EXPECT_GT(ZeroHitUpperBound(100, 0.05), ZeroHitUpperBound(1000, 0.05));
}

TEST(ZeroHitTest, AlwaysPositive) {
  EXPECT_GT(ZeroHitUpperBound(1000000, 0.5), 0.0);
}

TEST(CovarianceTest, KnownValue) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  // cov = 2 * var(xs) = 2 * (5/3)
  EXPECT_NEAR(SampleCovariance(xs, ys), 10.0 / 3.0, 1e-12);
}

TEST(CovarianceTest, IndependentNearZero) {
  Rng rng(77);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.Gaussian());
    ys.push_back(rng.Gaussian());
  }
  EXPECT_NEAR(SampleCovariance(xs, ys), 0.0, 0.03);
}

TEST(CovarianceTest, FewerThanTwoIsZero) {
  EXPECT_EQ(SampleCovariance({}, {}), 0.0);
  EXPECT_EQ(SampleCovariance({1.0}, {2.0}), 0.0);
}

}  // namespace
}  // namespace tcq
