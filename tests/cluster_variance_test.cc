#include "estimator/cluster_variance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ra/predicate.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace tcq {
namespace {

TEST(ClusterVarianceTest, ZeroForConstantBlocks) {
  // Every block has the same hit count -> no between-block variance.
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(100.0, {3, 3, 3, 3}), 0.0);
}

TEST(ClusterVarianceTest, ZeroForDegenerateSamples) {
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(100.0, {}), 0.0);
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(100.0, {5}), 0.0);
}

TEST(ClusterVarianceTest, MatchesHandComputation) {
  // B=10, b=4, y = {0, 2, 4, 6}: ȳ=3, s² = (9+1+1+9)/3 = 20/3.
  // Var = 100 · (1 − 0.4) · (20/3) / 4 = 100.
  EXPECT_NEAR(ClusterVarianceEstimate(10.0, {0, 2, 4, 6}), 100.0, 1e-9);
}

TEST(ClusterVarianceTest, FpcZeroWhenCensus) {
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(4.0, {0, 2, 4, 6}), 0.0);
}

TEST(SrsApproxTest, MatchesCountEstimatorFormula) {
  double v = SrsApproxVarianceEstimate(10000.0, 500.0, 100);
  double sel = 0.2;
  double expected = 1e8 * sel * (1 - sel) * (10000.0 - 500.0) /
                    (500.0 * 9999.0);
  EXPECT_NEAR(v, expected, 1e-6);
}

TEST(DesignEffectTest, NearOneForUniformData) {
  auto w = MakeSelectionWorkload(2000, 5);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  auto pred =
      BoundPredicate::Bind(w->query->predicate, (*rel)->schema());
  ASSERT_TRUE(pred.ok());
  Rng rng(3);
  RunningStat deff;
  for (int rep = 0; rep < 100; ++rep) {
    auto idx = rng.SampleWithoutReplacement(2000, 100);
    std::vector<int64_t> hits;
    int64_t points = 0;
    for (uint32_t i : idx) {
      int64_t y = 0;
      for (const Tuple& t : (*rel)->ViewBlock(i).rows()) {
        if (pred->Eval(t)) ++y;
      }
      hits.push_back(y);
      points += 5;
    }
    deff.Add(DesignEffect(2000.0, 10000.0, static_cast<double>(points),
                          hits));
  }
  EXPECT_NEAR(deff.mean(), 1.0, 0.15);
}

TEST(DesignEffectTest, GrowsWithClustering) {
  Rng rng(7);
  RunningStat deff_uniform, deff_clustered;
  for (int variant = 0; variant < 2; ++variant) {
    double clustering = variant == 0 ? 0.0 : 0.9;
    auto w = MakeSelectionWorkload(2000, 11, kPaperTuples,
                                   kPaperTupleBytes, clustering);
    ASSERT_TRUE(w.ok());
    auto rel = w->catalog.Find("r1");
    auto pred =
        BoundPredicate::Bind(w->query->predicate, (*rel)->schema());
    ASSERT_TRUE(pred.ok());
    RunningStat& out = variant == 0 ? deff_uniform : deff_clustered;
    for (int rep = 0; rep < 100; ++rep) {
      auto idx = rng.SampleWithoutReplacement(2000, 100);
      std::vector<int64_t> hits;
      int64_t points = 0;
      for (uint32_t i : idx) {
        int64_t y = 0;
        for (const Tuple& t : (*rel)->ViewBlock(i).rows()) {
          if (pred->Eval(t)) ++y;
        }
        hits.push_back(y);
        points += 5;
      }
      out.Add(DesignEffect(2000.0, 10000.0, static_cast<double>(points),
                           hits));
    }
  }
  EXPECT_GT(deff_clustered.mean(), 2.5 * deff_uniform.mean());
}

TEST(ClusterVarianceTest, TracksEmpiricalSpreadUnderClustering) {
  // The A8 ablation as a regression test: on clustered data the exact
  // cluster estimate stays within a factor of the empirical variance
  // while the SRS approximation falls far below it.
  auto w = MakeSelectionWorkload(2000, 13, kPaperTuples, kPaperTupleBytes,
                                 0.9);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  auto pred =
      BoundPredicate::Bind(w->query->predicate, (*rel)->schema());
  ASSERT_TRUE(pred.ok());
  Rng rng(17);
  RunningStat estimates, cluster_mean, srs_mean;
  for (int rep = 0; rep < 300; ++rep) {
    auto idx = rng.SampleWithoutReplacement(2000, 100);
    std::vector<int64_t> hits;
    int64_t total_hits = 0;
    for (uint32_t i : idx) {
      int64_t y = 0;
      for (const Tuple& t : (*rel)->ViewBlock(i).rows()) {
        if (pred->Eval(t)) ++y;
      }
      hits.push_back(y);
      total_hits += y;
    }
    estimates.Add(2000.0 * static_cast<double>(total_hits) / 100.0);
    cluster_mean.Add(ClusterVarianceEstimate(2000.0, hits));
    srs_mean.Add(SrsApproxVarianceEstimate(10000.0, 500.0, total_hits));
  }
  double empirical = estimates.variance();
  EXPECT_GT(cluster_mean.mean(), 0.5 * empirical);
  EXPECT_LT(cluster_mean.mean(), 1.5 * empirical);
  EXPECT_LT(srs_mean.mean(), 0.4 * empirical);
}

}  // namespace
}  // namespace tcq
