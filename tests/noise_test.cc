#include <gtest/gtest.h>

#include <cmath>

#include "sim/ledger.h"
#include "util/stats.h"

namespace tcq {
namespace {

TEST(LedgerNoiseTest, DisabledByDefault) {
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.ChargeN(CostCategory::kBlockRead, 10, 0.1);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.0);
  EXPECT_DOUBLE_EQ(ledger.current_stage_factor(), 1.0);
}

TEST(LedgerNoiseTest, StageFactorAppliesUniformly) {
  VirtualClock clock;
  CostLedger ledger(&clock);
  Rng rng(5);
  ledger.AttachNoise(&rng, /*stage_speed_cv=*/0.2,
                     /*block_read_jitter=*/0.0);
  double factor = ledger.current_stage_factor();
  EXPECT_NE(factor, 1.0);
  ledger.Charge(CostCategory::kSortCompare, 1.0);
  EXPECT_NEAR(clock.Now(), factor, 1e-12);
  ledger.ChargeN(CostCategory::kTupleMove, 3, 1.0);
  EXPECT_NEAR(clock.Now(), 4.0 * factor, 1e-12);
}

TEST(LedgerNoiseTest, BeginStageRedrawsFactor) {
  VirtualClock clock;
  CostLedger ledger(&clock);
  Rng rng(5);
  ledger.AttachNoise(&rng, 0.2, 0.0);
  double f1 = ledger.current_stage_factor();
  ledger.BeginStage();
  double f2 = ledger.current_stage_factor();
  EXPECT_NE(f1, f2);
}

TEST(LedgerNoiseTest, StageFactorIsLognormalWithGivenCv) {
  Rng rng(17);
  RunningStat log_factors;
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.AttachNoise(&rng, 0.15, 0.0);
  for (int i = 0; i < 20000; ++i) {
    ledger.BeginStage();
    log_factors.Add(std::log(ledger.current_stage_factor()));
  }
  EXPECT_NEAR(log_factors.mean(), 0.0, 0.005);
  EXPECT_NEAR(log_factors.stddev(), 0.15, 0.01);
}

TEST(LedgerNoiseTest, BlockReadJitterPerUnit) {
  // With jitter, N block reads cost N·unit on average but individual
  // reads vary within ±jitter.
  Rng rng(23);
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.AttachNoise(&rng, 0.0, /*block_read_jitter=*/0.5);
  const int n = 20000;
  ledger.ChargeN(CostCategory::kBlockRead, n, 0.01);
  double total = clock.Now();
  EXPECT_NEAR(total, n * 0.01, 0.02 * n * 0.01);
  // And some variation happened (not exactly the deterministic value).
  EXPECT_NE(total, n * 0.01);
}

TEST(LedgerNoiseTest, NonReadCategoriesUnjittered) {
  Rng rng(29);
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.AttachNoise(&rng, 0.0, 0.5);  // cv 0 => stage factor 1
  ledger.ChargeN(CostCategory::kSortCompare, 100, 0.01);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.0);
}

TEST(LedgerNoiseTest, ZeroCvMeansFactorOne) {
  Rng rng(31);
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.AttachNoise(&rng, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(ledger.current_stage_factor(), 1.0);
  ledger.BeginStage();
  EXPECT_DOUBLE_EQ(ledger.current_stage_factor(), 1.0);
}

}  // namespace
}  // namespace tcq
