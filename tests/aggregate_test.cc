#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "estimator/sum_estimator.h"
#include "exec/exact.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


ExecutorOptions Opts(double d_beta = 24.0) {
  ExecutorOptions options;
  options.strategy.one_at_a_time.d_beta = d_beta;
  return options;
}

TEST(SumEstimatorTest, FullCoverageExact) {
  // All 10 space blocks covered, value sum 55 over 100 points of 100.
  auto e = ClusterSumEstimate(10.0, 10.0, 55.0, 385.0, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(e.value, 55.0);
  EXPECT_DOUBLE_EQ(e.variance, 0.0);
}

TEST(SumEstimatorTest, ScalesByCoverage) {
  // Half the space blocks covered: estimate doubles the observed sum.
  auto e = ClusterSumEstimate(10.0, 5.0, 30.0, 200.0, 50.0, 100.0);
  EXPECT_DOUBLE_EQ(e.value, 60.0);
  EXPECT_GT(e.variance, 0.0);
}

TEST(SumEstimatorTest, EmptySampleSafe) {
  auto e = ClusterSumEstimate(10.0, 0.0, 0.0, 0.0, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.variance, 0.0);
}

TEST(ExactAggregateTest, SumAndAvgOfSelection) {
  auto w = MakeSelectionWorkload(2000, 9);
  ASSERT_TRUE(w.ok());
  // keys are a permutation of 0..9999; qualifying keys are 0..1999.
  auto sum = ExactSum(w->query, "key", w->catalog);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 1999.0 * 2000.0 / 2.0);
  auto avg = ExactAvg(w->query, "key", w->catalog);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 1999.0 / 2.0);
}

TEST(ExactAggregateTest, RejectsStringColumnAndEmptyAvg) {
  auto w = MakeSelectionWorkload(2000, 9);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(ExactSum(w->query, "payload", w->catalog).ok());
  EXPECT_FALSE(ExactSum(w->query, "nope", w->catalog).ok());
  auto empty = MakeSelectionWorkload(0, 9);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(ExactAvg(empty->query, "key", empty->catalog).ok());
}

TEST(AggregateQueryTest, SumFullCoverageExact) {
  auto w = MakeSelectionWorkload(2000, 10);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedAggregate(w->query, AggregateSpec::Sum("key"), w->catalog, WithQuota(Opts(), 100000.0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->estimate, 1999.0 * 2000.0 / 2.0);
}

TEST(AggregateQueryTest, SumTightQuotaApproximates) {
  auto w = MakeSelectionWorkload(2000, 11);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedAggregate(w->query, AggregateSpec::Sum("key"), w->catalog, WithQuota(Opts(), 10.0));
  ASSERT_TRUE(r.ok());
  double exact = 1999.0 * 2000.0 / 2.0;
  EXPECT_NEAR(r->estimate, exact, 0.5 * exact);
  EXPECT_GT(r->variance, 0.0);
}

TEST(AggregateQueryTest, AvgFullCoverageExact) {
  auto w = MakeSelectionWorkload(2000, 12);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedAggregate(w->query, AggregateSpec::Avg("key"), w->catalog, WithQuota(Opts(), 100000.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 1999.0 / 2.0);
}

TEST(AggregateQueryTest, AvgTightQuotaCloseToExact) {
  // AVG is a ratio estimator: numerator and denominator share the same
  // sample, so it is far more stable than either alone.
  auto w = MakeSelectionWorkload(2000, 13);
  ASSERT_TRUE(w.ok());
  auto r = RunTimeConstrainedAggregate(w->query, AggregateSpec::Avg("key"), w->catalog, WithQuota(Opts(), 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 999.5, 150.0);
}

TEST(AggregateQueryTest, SumOverUnionViaInclusionExclusion) {
  auto w = MakeIntersectionWorkload(5000, 14);
  ASSERT_TRUE(w.ok());
  auto query = Union(Scan("r1"), Scan("r2"));
  auto exact = ExactSum(query, "key", w->catalog);
  ASSERT_TRUE(exact.ok());
  auto r = RunTimeConstrainedAggregate(query, AggregateSpec::Sum("key"), w->catalog, WithQuota(Opts(), 100000.0));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, *exact, 1e-6);
}

TEST(AggregateQueryTest, SumRejectsUnknownColumn) {
  auto w = MakeSelectionWorkload(2000, 15);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(RunTimeConstrainedAggregate(w->query, AggregateSpec::Sum("missing"), w->catalog, WithQuota(Opts(), 10.0))
                   .ok());
}

TEST(AggregateQueryTest, SumRejectsStringColumn) {
  auto w = MakeSelectionWorkload(2000, 16);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(RunTimeConstrainedAggregate(w->query, AggregateSpec::Sum("payload"), w->catalog, WithQuota(Opts(), 10.0))
                   .ok());
}

TEST(AggregateQueryTest, SumOverProjectionRejected) {
  auto w = MakeSelectionWorkload(2000, 17);
  ASSERT_TRUE(w.ok());
  auto query = Project(Scan("r1"), {"key"});
  EXPECT_EQ(RunTimeConstrainedAggregate(query, AggregateSpec::Sum("key"), w->catalog, WithQuota(Opts(), 10.0))
                .status()
                .code(),
            StatusCode::kNotImplemented);
}

TEST(AggregateQueryTest, CountSpecMatchesCountEntryPoint) {
  auto w = MakeSelectionWorkload(2000, 18);
  ASSERT_TRUE(w.ok());
  auto opts = Opts();
  opts.seed = 3;
  auto a = RunTimeConstrainedAggregate(w->query, AggregateSpec::Count(), w->catalog, WithQuota(opts, 10.0));
  auto b = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
}

TEST(AggregateQueryTest, AvgVariancePinsCovarianceFreeDeltaMethod) {
  // Pins the AVG variance to the delta-method composition of the SUM and
  // COUNT results from the same draws:
  //
  //   Var[S/C] ≈ (Var[S] + (S/C)² Var[C]) / C²
  //
  // The full delta method has a third term, −2 (S/C) Cov[S, C] / C², that
  // the engine deliberately omits (DESIGN.md §2): S and C come from the
  // same blocks, so Cov[S, C] > 0 for non-negative values and the
  // reported variance is conservative. This test documents the omission;
  // it must be updated in step with any covariance-tracking change.
  auto w = MakeSelectionWorkload(2000, 18);
  ASSERT_TRUE(w.ok());
  auto opts = Opts();
  opts.seed = 3;
  // The aggregate kind only changes the final combine, never the draws,
  // so all three runs see identical samples.
  auto count = RunTimeConstrainedAggregate(w->query, AggregateSpec::Count(), w->catalog, WithQuota(opts, 10.0));
  auto sum = RunTimeConstrainedAggregate(w->query, AggregateSpec::Sum("key"), w->catalog, WithQuota(opts, 10.0));
  auto avg = RunTimeConstrainedAggregate(w->query, AggregateSpec::Avg("key"), w->catalog, WithQuota(opts, 10.0));
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(count->blocks_sampled, avg->blocks_sampled);
  ASSERT_GT(count->estimate, 0.0);
  double ratio = sum->estimate / count->estimate;
  EXPECT_DOUBLE_EQ(avg->estimate, ratio);
  double expected_variance =
      (sum->variance + ratio * ratio * count->variance) /
      (count->estimate * count->estimate);
  EXPECT_DOUBLE_EQ(avg->variance, expected_variance);
  EXPECT_GT(avg->variance, 0.0);
}

/// Property sweep: the SUM estimator is unbiased — over many independent
/// runs its mean approaches the exact sum, at several d_β values.
class SumUnbiasednessTest : public ::testing::TestWithParam<double> {};

TEST_P(SumUnbiasednessTest, MeanApproachesExact) {
  auto w = MakeSelectionWorkload(2000, 19);
  ASSERT_TRUE(w.ok());
  double exact = 1999.0 * 2000.0 / 2.0;
  double sum = 0.0;
  const int reps = 60;
  for (int rep = 0; rep < reps; ++rep) {
    auto opts = Opts(GetParam());
    opts.seed = 100 + static_cast<uint64_t>(rep);
    auto r = RunTimeConstrainedAggregate(w->query, AggregateSpec::Sum("key"), w->catalog, WithQuota(opts, 10.0));
    ASSERT_TRUE(r.ok());
    sum += r->estimate;
  }
  EXPECT_NEAR(sum / reps, exact, 0.10 * exact);
}

INSTANTIATE_TEST_SUITE_P(DBetas, SumUnbiasednessTest,
                         ::testing::Values(0.0, 24.0, 48.0));

}  // namespace
}  // namespace tcq
