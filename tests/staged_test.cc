#include "exec/staged.h"

#include <gtest/gtest.h>

#include "exec/exact.h"
#include "util/random.h"

namespace tcq {
namespace {

Schema KV() {
  return Schema({{"k", DataType::kInt64, 0}, {"v", DataType::kInt64, 0}});
}

RelationPtr MakeRel(const std::string& name,
                    const std::vector<std::pair<int64_t, int64_t>>& rows) {
  auto rel = Relation::Create(name, KV(), /*block_bytes=*/64);  // bf = 4
  EXPECT_TRUE(rel.ok());
  for (const auto& [k, v] : rows) rel->AppendUnchecked({k, v});
  return std::make_shared<Relation>(std::move(*rel));
}

/// Returns pointers to the blocks of `rel` with the given indices.
std::vector<const Block*> BlocksOf(const RelationPtr& rel,
                                   const std::vector<int64_t>& indices) {
  std::vector<const Block*> out;
  for (int64_t i : indices) out.push_back(rel->ViewBlock(i).raw());
  return out;
}

std::vector<int64_t> Range(int64_t lo, int64_t hi) {
  std::vector<int64_t> out;
  for (int64_t i = lo; i < hi; ++i) out.push_back(i);
  return out;
}

class StagedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 16 tuples -> 4 blocks each (blocking factor 4).
    std::vector<std::pair<int64_t, int64_t>> a_rows, b_rows;
    for (int64_t i = 0; i < 16; ++i) {
      a_rows.push_back({i, 100 + i});
      // B shares keys {4..11} with A but tuple-equality only where v
      // matches; give B the same (k,v) for k in 4..7.
      int64_t v = (i >= 4 && i < 8) ? 100 + i : 500 + i;
      b_rows.push_back({i, v});
    }
    a_ = MakeRel("A", a_rows);
    b_ = MakeRel("B", b_rows);
    ASSERT_TRUE(catalog_.Register(a_).ok());
    ASSERT_TRUE(catalog_.Register(b_).ok());
  }

  std::unique_ptr<StagedTermEvaluator> Make(const ExprPtr& term,
                                            Fulfillment f) {
    auto ev = StagedTermEvaluator::Create(term, catalog_, f, &ledger_,
                                          CostModel::Sun360());
    EXPECT_TRUE(ev.ok()) << ev.status().ToString();
    return std::move(*ev);
  }

  Catalog catalog_;
  RelationPtr a_, b_;
  VirtualClock clock_;
  CostLedger ledger_{&clock_};
};

TEST_F(StagedTest, SelectFullCoverageOneStageMatchesExact) {
  auto term = Select(Scan("A"), CmpLiteral("k", CompareOp::kLt, int64_t{5}));
  auto ev = Make(term, Fulfillment::kFull);
  std::map<std::string, std::vector<const Block*>> blocks{
      {"A", BlocksOf(a_, Range(0, 4))}};
  ASSERT_TRUE(ev->ExecuteStage(blocks).ok());
  auto exact = ExactCount(term, catalog_);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(ev->cum_hits(), *exact);
  EXPECT_EQ(ev->cum_points(), 16.0);
  EXPECT_EQ(ev->total_points(), 16.0);
  EXPECT_EQ(ev->cum_space_blocks(), 4.0);
  EXPECT_EQ(ev->total_space_blocks(), 4.0);
  EXPECT_EQ(ev->num_stages(), 1);
}

TEST_F(StagedTest, SelectTwoStagesSameTotals) {
  auto term = Select(Scan("A"), CmpLiteral("k", CompareOp::kLt, int64_t{5}));
  auto ev = Make(term, Fulfillment::kFull);
  ASSERT_TRUE(
      ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 2))}}).ok());
  ASSERT_TRUE(
      ev->ExecuteStage({{"A", BlocksOf(a_, Range(2, 4))}}).ok());
  auto exact = ExactCount(term, catalog_);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(ev->cum_hits(), *exact);
  EXPECT_EQ(ev->cum_points(), 16.0);
  EXPECT_EQ(ev->num_stages(), 2);
}

TEST_F(StagedTest, PartialSampleCountsOnlySampledTuples) {
  auto term = Select(Scan("A"), CmpLiteral("k", CompareOp::kLt, int64_t{5}));
  auto ev = Make(term, Fulfillment::kFull);
  // Blocks 0..1 hold keys 0..7 -> 5 hits among keys {0,1,2,3,4}.
  ASSERT_TRUE(
      ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 2))}}).ok());
  EXPECT_EQ(ev->cum_points(), 8.0);
  EXPECT_EQ(ev->cum_hits(), 5);
  EXPECT_EQ(ev->cum_space_blocks(), 2.0);
}

TEST_F(StagedTest, IntersectFullCoverageMatchesExactAcrossStages) {
  auto term = Intersect(Scan("A"), Scan("B"));
  auto exact = ExactCount(term, catalog_);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(*exact, 4);  // tuples (4..7, 104..107)

  auto ev = Make(term, Fulfillment::kFull);
  // Stage 1: first half of A, second half of B; stage 2: the rest. Only
  // full fulfillment's cross-stage merges can find all matches.
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 2))},
                                {"B", BlocksOf(b_, Range(2, 4))}})
                  .ok());
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(2, 4))},
                                {"B", BlocksOf(b_, Range(0, 2))}})
                  .ok());
  EXPECT_EQ(ev->cum_hits(), *exact);
  EXPECT_EQ(ev->cum_points(), 256.0);
  EXPECT_EQ(ev->total_points(), 256.0);
  EXPECT_EQ(ev->cum_space_blocks(), 16.0);
  EXPECT_EQ(ev->total_space_blocks(), 16.0);
}

TEST_F(StagedTest, PartialFulfillmentCoversOnlyStagePairs) {
  auto term = Intersect(Scan("A"), Scan("B"));
  auto ev = Make(term, Fulfillment::kPartial);
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 2))},
                                {"B", BlocksOf(b_, Range(2, 4))}})
                  .ok());
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(2, 4))},
                                {"B", BlocksOf(b_, Range(0, 2))}})
                  .ok());
  // Each stage covers 8×8 = 64 points; two stages cover 128 < 256.
  EXPECT_EQ(ev->cum_points(), 128.0);
  EXPECT_EQ(ev->cum_space_blocks(), 8.0);
  // The matching tuples (k=4..7) live in A blocks 1 (k 4..7) and B blocks
  // 1; stage 1 evaluated A[0,1]×B[2,3], stage 2 A[2,3]×B[0,1]: no match
  // pair was co-evaluated.
  EXPECT_EQ(ev->cum_hits(), 0);
}

TEST_F(StagedTest, JoinFullCoverageMatchesExact) {
  auto term = Join(Scan("A"), Scan("B"), {{"k", "k"}});
  auto exact = ExactCount(term, catalog_);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(*exact, 16);  // keys 0..15 all match exactly once

  auto ev = Make(term, Fulfillment::kFull);
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 1))},
                                {"B", BlocksOf(b_, Range(3, 4))}})
                  .ok());
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(1, 4))},
                                {"B", BlocksOf(b_, Range(0, 3))}})
                  .ok());
  EXPECT_EQ(ev->cum_hits(), *exact);
  EXPECT_EQ(ev->cum_points(), 256.0);
}

TEST_F(StagedTest, SelectOverJoinComposes) {
  auto term = Select(Join(Scan("A"), Scan("B"), {{"k", "k"}}),
                     CmpLiteral("k", CompareOp::kLt, int64_t{6}));
  auto exact = ExactCount(term, catalog_);
  ASSERT_TRUE(exact.ok());
  auto ev = Make(term, Fulfillment::kFull);
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 2))},
                                {"B", BlocksOf(b_, Range(0, 2))}})
                  .ok());
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(2, 4))},
                                {"B", BlocksOf(b_, Range(2, 4))}})
                  .ok());
  EXPECT_EQ(ev->cum_hits(), *exact);
}

TEST_F(StagedTest, ProjectRootCountsDistinctGroups) {
  // v % values: A's v = 100+i all distinct, so project onto (k % ...) —
  // instead build a relation with duplicate v values.
  Catalog catalog;
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int64_t i = 0; i < 16; ++i) rows.push_back({i, i % 3});
  auto d = MakeRel("D", rows);
  ASSERT_TRUE(catalog.Register(d).ok());
  auto term = Project(Scan("D"), {"v"});
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        nullptr, CostModel::Sun360());
  ASSERT_TRUE(ev.ok());
  ASSERT_TRUE((*ev)
                  ->ExecuteStage({{"D", BlocksOf(d, Range(0, 2))}})
                  .ok());
  ASSERT_TRUE((*ev)
                  ->ExecuteStage({{"D", BlocksOf(d, Range(2, 4))}})
                  .ok());
  EXPECT_TRUE((*ev)->root_is_project());
  EXPECT_EQ((*ev)->cum_hits(), 3);  // groups 0, 1, 2
  auto occ = (*ev)->RootOccupancies();
  int64_t total = 0;
  for (int64_t c : occ) total += c;
  EXPECT_EQ(total, 16);
}

TEST_F(StagedTest, StageRecordsTrackNewPointsAndCosts) {
  auto term = Intersect(Scan("A"), Scan("B"));
  auto ev = Make(term, Fulfillment::kFull);
  double before = clock_.Now();
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 2))},
                                {"B", BlocksOf(b_, Range(0, 2))}})
                  .ok());
  double mid = clock_.Now();
  EXPECT_GT(mid, before);
  ASSERT_TRUE(ev->ExecuteStage({{"A", BlocksOf(a_, Range(2, 4))},
                                {"B", BlocksOf(b_, Range(2, 4))}})
                  .ok());
  const StagedNode& root = ev->root();
  ASSERT_EQ(root.stages.size(), 2u);
  EXPECT_EQ(root.stages[0].new_points, 64.0);
  // Stage 2 full fulfillment: 16*16 - 8*8 = 192 new points.
  EXPECT_EQ(root.stages[1].new_points, 192.0);
  // Full fulfillment does three merges at stage 2 (new×new, new×old,
  // old×new) vs one at stage 1, so it reads more tuples even though the
  // realized seconds can be lower (stage 1 found more matches to write).
  EXPECT_GT(root.stages[1].process.in_tuples,
            root.stages[0].process.in_tuples);
  EXPECT_GT(root.stages[0].seconds, 0.0);
  EXPECT_GT(root.stages[1].seconds, 0.0);
  // Node ids are assigned pre-order: intersect=0, scans 1 and 2.
  auto nodes = ev->NodesPreOrder();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->kind, ExprKind::kIntersect);
  EXPECT_EQ(nodes[0]->id, 0);
  EXPECT_EQ(nodes[1]->kind, ExprKind::kScan);
  EXPECT_EQ(nodes[2]->kind, ExprKind::kScan);
}

TEST_F(StagedTest, RejectsUnionTerm) {
  auto bad = StagedTermEvaluator::Create(Union(Scan("A"), Scan("B")),
                                         catalog_, Fulfillment::kFull,
                                         nullptr, CostModel::Sun360());
  EXPECT_FALSE(bad.ok());
}

TEST_F(StagedTest, RejectsNestedProject) {
  auto term = Select(Project(Scan("A"), {"k"}),
                     CmpLiteral("k", CompareOp::kLt, int64_t{3}));
  auto bad = StagedTermEvaluator::Create(term, catalog_, Fulfillment::kFull,
                                         nullptr, CostModel::Sun360());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotImplemented);
}

TEST_F(StagedTest, RejectsRepeatedRelation) {
  auto bad = StagedTermEvaluator::Create(
      Join(Scan("A"), Scan("A"), {{"k", "k"}}), catalog_, Fulfillment::kFull,
      nullptr, CostModel::Sun360());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotImplemented);
}

TEST_F(StagedTest, HybridModeCoverageAccounting) {
  auto term = Intersect(Scan("A"), Scan("B"));
  auto ev = Make(term, Fulfillment::kFull);
  // Stage 1 full: 2×2 blocks -> covers 4 space blocks.
  ASSERT_TRUE(ev->ExecuteStageWithMode({{"A", BlocksOf(a_, Range(0, 2))},
                                        {"B", BlocksOf(b_, Range(0, 2))}},
                                       Fulfillment::kFull)
                  .ok());
  EXPECT_EQ(ev->cum_space_blocks(), 4.0);
  // Stage 2 partial: only the new 1×1 combination adds coverage.
  ASSERT_TRUE(ev->ExecuteStageWithMode({{"A", BlocksOf(a_, Range(2, 3))},
                                        {"B", BlocksOf(b_, Range(2, 3))}},
                                       Fulfillment::kPartial)
                  .ok());
  EXPECT_EQ(ev->cum_space_blocks(), 5.0);
  // bf = 4: stage 1 covers (2·4)² = 64 points, stage 2 adds 4·4 = 16.
  EXPECT_EQ(ev->cum_points(), 80.0);
  // A full stage after a partial one is rejected: its all-pairs merges
  // would assume combinations the partial stage never evaluated.
  EXPECT_FALSE(
      ev->ExecuteStageWithMode({{"A", BlocksOf(a_, Range(3, 4))},
                                {"B", BlocksOf(b_, Range(3, 4))}},
                               Fulfillment::kFull)
          .ok());
  // Another partial stage is fine.
  EXPECT_TRUE(
      ev->ExecuteStageWithMode({{"A", BlocksOf(a_, Range(3, 4))},
                                {"B", BlocksOf(b_, Range(3, 4))}},
                               Fulfillment::kPartial)
          .ok());
  EXPECT_EQ(ev->cum_space_blocks(), 6.0);
}

TEST_F(StagedTest, MissingRelationInStageFails) {
  auto term = Intersect(Scan("A"), Scan("B"));
  auto ev = Make(term, Fulfillment::kFull);
  EXPECT_FALSE(
      ev->ExecuteStage({{"A", BlocksOf(a_, Range(0, 1))}}).ok());
}

/// Property: pooling random cluster samples, the ratio estimator
/// B·hits/b applied to a select term is unbiased — its mean over many
/// independent samples approaches the exact count.
class ClusterUnbiasednessTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterUnbiasednessTest, SelectEstimatorCentersOnExact) {
  const int sample_blocks = GetParam();
  Schema schema = KV();
  auto rel = Relation::Create("R", schema, 64);
  ASSERT_TRUE(rel.ok());
  Rng data_rng(99);
  for (int64_t i = 0; i < 200; ++i) {
    rel->AppendUnchecked({data_rng.UniformInt(0, 9), i});
  }
  auto r = std::make_shared<Relation>(std::move(*rel));
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(r).ok());
  auto term = Select(Scan("R"), CmpLiteral("k", CompareOp::kLt, int64_t{3}));
  auto exact = ExactCount(term, catalog);
  ASSERT_TRUE(exact.ok());

  Rng rng(1234 + static_cast<uint64_t>(sample_blocks));
  const int reps = 600;
  double sum = 0.0;
  const int64_t num_blocks = r->NumBlocks();
  for (int rep = 0; rep < reps; ++rep) {
    auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                          nullptr, CostModel::Sun360());
    ASSERT_TRUE(ev.ok());
    auto idx = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(num_blocks),
        static_cast<uint32_t>(sample_blocks));
    std::vector<const Block*> blocks;
    for (uint32_t i : idx) blocks.push_back(r->ViewBlock(i).raw());
    ASSERT_TRUE((*ev)->ExecuteStage({{"R", blocks}}).ok());
    double estimate = (*ev)->total_space_blocks() *
                      static_cast<double>((*ev)->cum_hits()) /
                      (*ev)->cum_space_blocks();
    sum += estimate;
  }
  double mean = sum / reps;
  // Standard error of the mean across 600 reps is small; 10% tolerance.
  EXPECT_NEAR(mean, static_cast<double>(*exact), 0.1 * *exact);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, ClusterUnbiasednessTest,
                         ::testing::Values(5, 10, 25));

}  // namespace
}  // namespace tcq
