// Edge cases of the Goodman/Chao distinct-count path and the cluster
// variance estimator: empty samples, all-singleton occupancies (f2 = 0),
// census-sized samples, and the b−1 cluster denominator at b = 1.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "estimator/cluster_variance.h"
#include "estimator/goodman.h"

namespace tcq {
namespace {

// ---------------------------------------------------------------------------
// Empty sample.
// ---------------------------------------------------------------------------

TEST(GoodmanEdgeTest, EmptySampleEstimatesZero) {
  EXPECT_DOUBLE_EQ(GoodmanEstimate(1000.0, {}), 0.0);
  EXPECT_DOUBLE_EQ(GoodmanRawEstimate(1000.0, {}), 0.0);
}

TEST(GoodmanEdgeTest, EmptySampleEmptyPopulation) {
  EXPECT_DOUBLE_EQ(GoodmanEstimate(0.0, {}), 0.0);
}

TEST(GoodmanEdgeTest, Chao1EmptySampleClampsToZero) {
  // d = 0, f1 = f2 = 0: the lower bound is the observed distinct count.
  EXPECT_DOUBLE_EQ(Chao1Estimate(1000.0, {}), 0.0);
}

// ---------------------------------------------------------------------------
// All-singleton occupancies: f1 = d, f2 = 0 — the raw alternating series is
// at its most unstable and Chao1 must take its f2 = 0 branch.
// ---------------------------------------------------------------------------

TEST(GoodmanEdgeTest, AllSingletonsChaoUsesF2ZeroBranch) {
  // d = 4 singletons, no doubletons: Chao1 = d + f1(f1-1)/2 = 4 + 6 = 10.
  EXPECT_DOUBLE_EQ(Chao1Estimate(1000.0, {1, 1, 1, 1}), 10.0);
}

TEST(GoodmanEdgeTest, AllSingletonsChaoClampedToPopulation) {
  // The f2 = 0 extrapolation (4 + 6 = 10) exceeds N = 7: clamp to N.
  EXPECT_DOUBLE_EQ(Chao1Estimate(7.0, {1, 1, 1, 1}), 7.0);
}

TEST(GoodmanEdgeTest, AllSingletonsGuardedStaysInRange) {
  // Tiny sampling fraction with every class seen once: whatever path the
  // guarded estimator takes, the result lies in [d, N].
  std::vector<int64_t> singletons(25, 1);
  double est = GoodmanEstimate(1.0e6, singletons);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GE(est, 25.0);
  EXPECT_LE(est, 1.0e6);
}

TEST(GoodmanEdgeTest, SingleSingletonUsesLinearRawSeries) {
  // One class seen once: the raw series has a single i = 1 term,
  // D̂ = 1 + C(N−n, 1)/C(n, 1) = 1 + (N−1)/1 = N (lgamma evaluation, so
  // exact up to rounding). The raw value sits exactly on the guard's
  // upper boundary; one ulp of lgamma rounding decides whether the guard
  // keeps it or falls back to Chao1 (= d here), so the guarded value is
  // only pinned to [d, N].
  EXPECT_NEAR(GoodmanRawEstimate(10.0, {1}), 10.0, 1e-9);
  double guarded = GoodmanEstimate(10.0, {1});
  EXPECT_GE(guarded, 1.0);
  EXPECT_LE(guarded, 10.0);
}

// ---------------------------------------------------------------------------
// Census and over-sampled inputs.
// ---------------------------------------------------------------------------

TEST(GoodmanEdgeTest, CensusReturnsObservedDistinct) {
  // n = N = 6: the sample is the population; D̂ = d exactly.
  EXPECT_DOUBLE_EQ(GoodmanRawEstimate(6.0, {3, 2, 1}), 3.0);
  EXPECT_DOUBLE_EQ(GoodmanEstimate(6.0, {3, 2, 1}), 3.0);
}

TEST(GoodmanEdgeTest, GuardedNeverExceedsPopulation) {
  // Adversarial occupancy mixes; the guarded value must stay in [d, N].
  const std::vector<std::vector<int64_t>> cases = {
      {1, 1, 1, 1, 1, 1, 1, 1},
      {2, 1, 1},
      {5, 1},
      {1},
      {7, 7, 7},
  };
  for (const auto& occ : cases) {
    double d = static_cast<double>(occ.size());
    for (double n : {50.0, 1000.0, 1.0e8}) {
      double est = GoodmanEstimate(n, occ);
      EXPECT_TRUE(std::isfinite(est));
      EXPECT_GE(est, d);
      EXPECT_LE(est, n);
    }
  }
}

// ---------------------------------------------------------------------------
// Cluster variance: the sample variance divides by b−1, so b = 1 (a
// single-block sample) must short-circuit to 0 rather than divide by zero.
// ---------------------------------------------------------------------------

TEST(ClusterVarianceEdgeTest, SingleBlockSampleIsZero) {
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(100.0, {17}), 0.0);
}

TEST(ClusterVarianceEdgeTest, TwoBlocksUseDenominatorOne) {
  // b = 2, y = {0, 4}: s² = ((−2)² + 2²)/(b−1) = 8.
  // Var = B²·(1 − b/B)·s²/b = 100·0.8·8/2 = 320.
  EXPECT_NEAR(ClusterVarianceEstimate(10.0, {0, 4}), 320.0, 1e-9);
}

TEST(ClusterVarianceEdgeTest, EmptyAndZeroTotalSafe) {
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(0.0, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(ClusterVarianceEstimate(-5.0, {1, 2}), 0.0);
}

TEST(ClusterVarianceEdgeTest, DesignEffectDegeneratesToOne) {
  // A single block gives no between-block information: the SRS
  // approximation with zero hits also degenerates, deff falls back to 1.
  EXPECT_DOUBLE_EQ(DesignEffect(100.0, 1000.0, 10.0, {0}), 1.0);
}

}  // namespace
}  // namespace tcq
