// The threading contract of DESIGN.md: at the same seed, a simulated run
// is bit-identical for ANY thread count — substream-seeded sampling, a
// data-dependent task decomposition, and fixed-order post-barrier
// reductions make the worker count unobservable to the estimates.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "ra/expr.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


ExecutorOptions BaseOptions(int threads) {
  ExecutorOptions options;
  options.strategy.one_at_a_time.d_beta = 24.0;
  options.seed = 42;
  options.threads = threads;
  return options;
}

QueryResult MustRun(const ExprPtr& query, const Catalog& catalog,
                    double quota_s, const ExecutorOptions& options) {
  auto r = RunTimeConstrainedCount(query, catalog, WithQuota(options, quota_s));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

void ExpectBitIdentical(const QueryResult& serial,
                        const QueryResult& parallel) {
  EXPECT_EQ(serial.estimate, parallel.estimate);
  EXPECT_EQ(serial.variance, parallel.variance);
  EXPECT_EQ(serial.ci.lo, parallel.ci.lo);
  EXPECT_EQ(serial.ci.hi, parallel.ci.hi);
  EXPECT_EQ(serial.blocks_sampled, parallel.blocks_sampled);
  EXPECT_EQ(serial.stages_run, parallel.stages_run);
  EXPECT_EQ(serial.stages_counted, parallel.stages_counted);
  EXPECT_EQ(serial.elapsed_seconds, parallel.elapsed_seconds);
  ASSERT_EQ(serial.stages().size(), parallel.stages().size());
  for (size_t i = 0; i < serial.stages().size(); ++i) {
    EXPECT_EQ(serial.stages()[i].planned_fraction,
              parallel.stages()[i].planned_fraction);
    EXPECT_EQ(serial.stages()[i].blocks_drawn, parallel.stages()[i].blocks_drawn);
    EXPECT_EQ(serial.stages()[i].predicted_seconds,
              parallel.stages()[i].predicted_seconds);
    EXPECT_EQ(serial.stages()[i].actual_seconds,
              parallel.stages()[i].actual_seconds);
    EXPECT_EQ(serial.stages()[i].estimate_after,
              parallel.stages()[i].estimate_after);
    EXPECT_EQ(serial.stages()[i].variance_after,
              parallel.stages()[i].variance_after);
  }
}

TEST(ParallelDeterminismTest, SelectionQuery) {
  auto workload = MakeSelectionWorkload(2000, /*seed=*/2024);
  ASSERT_TRUE(workload.ok());
  QueryResult serial = MustRun(workload->query, workload->catalog, 5.0,
                               BaseOptions(/*threads=*/1));
  QueryResult parallel = MustRun(workload->query, workload->catalog, 5.0,
                                 BaseOptions(/*threads=*/4));
  ASSERT_GT(serial.stages_counted, 0);
  ExpectBitIdentical(serial, parallel);
}

TEST(ParallelDeterminismTest, JoinQuery) {
  auto workload = MakeJoinWorkload(70000, /*seed=*/777);
  ASSERT_TRUE(workload.ok());
  ExecutorOptions serial_opts = BaseOptions(1);
  serial_opts.selectivity.initial_join = 0.1;
  ExecutorOptions parallel_opts = BaseOptions(4);
  parallel_opts.selectivity.initial_join = 0.1;
  QueryResult serial =
      MustRun(workload->query, workload->catalog, 2.5, serial_opts);
  QueryResult parallel =
      MustRun(workload->query, workload->catalog, 2.5, parallel_opts);
  ASSERT_GT(serial.stages_counted, 0);
  ExpectBitIdentical(serial, parallel);
}

TEST(ParallelDeterminismTest, UnionWithInclusionExclusion) {
  // COUNT(σ(r1) ∪ σ(r2)) expands into three sampled terms
  // (+σr1, +σr2, −σr1∩σr2), so the term-level fan-out is exercised.
  auto workload = MakeIntersectionWorkload(5000, /*seed=*/12);
  ASSERT_TRUE(workload.ok());
  ExprPtr query = Union(
      Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, 6000)),
      Select(Scan("r2"), CmpLiteral("key", CompareOp::kLt, 8000)));
  QueryResult serial =
      MustRun(query, workload->catalog, 8.0, BaseOptions(/*threads=*/1));
  QueryResult parallel =
      MustRun(query, workload->catalog, 8.0, BaseOptions(/*threads=*/4));
  ASSERT_GT(serial.stages_counted, 0);
  ExpectBitIdentical(serial, parallel);
}

TEST(ParallelDeterminismTest, WidthsTwoAndEightMatchToo) {
  auto workload = MakeIntersectionWorkload(5000, /*seed=*/31);
  ASSERT_TRUE(workload.ok());
  QueryResult w2 = MustRun(workload->query, workload->catalog, 4.0,
                           BaseOptions(/*threads=*/2));
  QueryResult w8 = MustRun(workload->query, workload->catalog, 4.0,
                           BaseOptions(/*threads=*/8));
  ASSERT_GT(w2.stages_counted, 0);
  ExpectBitIdentical(w2, w8);
}

TEST(ParallelDeterminismTest, FinalPartialStagesStayDeterministic) {
  auto workload = MakeIntersectionWorkload(5000, /*seed=*/9);
  ASSERT_TRUE(workload.ok());
  ExecutorOptions serial_opts = BaseOptions(1);
  serial_opts.final_partial_stages = true;
  ExecutorOptions parallel_opts = BaseOptions(4);
  parallel_opts.final_partial_stages = true;
  QueryResult serial =
      MustRun(workload->query, workload->catalog, 3.0, serial_opts);
  QueryResult parallel =
      MustRun(workload->query, workload->catalog, 3.0, parallel_opts);
  ExpectBitIdentical(serial, parallel);
}

}  // namespace
}  // namespace tcq
