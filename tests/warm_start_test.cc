// Cross-query warm-start cache: pooled-prefix replay, selectivity priors,
// cost-snapshot reuse, and the accounting bugfixes that rode along
// (blocks_wasted reconciliation, unclamped utilization).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/tcq.h"
#include "cache/sample_pool.h"
#include "cache/signature.h"
#include "cache/warm_start.h"
#include "exec/exact.h"
#include "obs/metrics.h"
#include "ra/expr.h"
#include "ra/predicate.h"
#include "sampling/block_sampler.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tcq {
namespace {

Session MakeSelectSession(Session::Options options = {},
                          int64_t output_tuples = 3000, uint64_t seed = 7) {
  auto workload = MakeSelectionWorkload(output_tuples, seed);
  EXPECT_TRUE(workload.ok());
  return Session(std::move(workload->catalog), std::move(options));
}

/// The deterministic slice of a QueryResult: everything except the
/// wall-time measurements (work/span seconds are real-clock and vary run
/// to run even in simulation).
void ExpectIdenticalResults(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.variance, b.variance);
  EXPECT_EQ(a.ci.lo, b.ci.lo);
  EXPECT_EQ(a.ci.hi, b.ci.hi);
  EXPECT_EQ(a.stages_run, b.stages_run);
  EXPECT_EQ(a.stages_counted, b.stages_counted);
  EXPECT_EQ(a.overspent, b.overspent);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.blocks_sampled, b.blocks_sampled);
  EXPECT_EQ(a.blocks_wasted, b.blocks_wasted);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  ASSERT_EQ(a.stage_reports.size(), b.stage_reports.size());
  for (size_t i = 0; i < a.stage_reports.size(); ++i) {
    const StageReport& ra = a.stage_reports[i];
    const StageReport& rb = b.stage_reports[i];
    EXPECT_EQ(ra.planned_fraction, rb.planned_fraction);
    EXPECT_EQ(ra.predicted_seconds, rb.predicted_seconds);
    EXPECT_EQ(ra.blocks_drawn, rb.blocks_drawn);
    EXPECT_EQ(ra.estimate_after, rb.estimate_after);
    EXPECT_EQ(ra.variance_after, rb.variance_after);
    EXPECT_EQ(ra.ledger_spend_s, rb.ledger_spend_s);
    ASSERT_EQ(ra.selectivities.size(), rb.selectivities.size());
    for (size_t s = 0; s < ra.selectivities.size(); ++s) {
      EXPECT_EQ(ra.selectivities[s].selectivity,
                rb.selectivities[s].selectivity);
    }
  }
}

// ---------------------------------------------------------------------
// Canonical signatures.

TEST(CacheKeyTest, CommutativeAndSetCanonicalization) {
  ExprPtr a = Scan("r1");
  ExprPtr b = Scan("r2");
  EXPECT_TRUE(CanonicalSignature(*Intersect(a, b)) ==
              CanonicalSignature(*Intersect(b, a)));
  EXPECT_FALSE(CanonicalSignature(*Difference(a, b)) ==
               CanonicalSignature(*Difference(b, a)));
  EXPECT_TRUE(CanonicalSignature(*Project(a, {"key", "id"})) ==
              CanonicalSignature(*Project(a, {"id", "key"})));
  EXPECT_FALSE(CanonicalSignature(*a) == CanonicalSignature(*b));
}

// ---------------------------------------------------------------------
// Sample pool without-replacement invariants.

TEST(SamplePoolTest, ReplayPrefixThenFreshWithoutReplacement) {
  auto workload = MakeSelectionWorkload(3000, /*seed=*/7);
  ASSERT_TRUE(workload.ok());
  RelationPtr rel = *workload->catalog.Find("r1");
  RelationSamplePool pool(rel->NumBlocks());

  // Query 1: draw 40 fresh blocks.
  BlockSampler first(rel, &pool);
  Rng rng1(11);
  auto q1 = first.Draw(40, &rng1);
  EXPECT_EQ(static_cast<int64_t>(q1.size()), 40);
  EXPECT_EQ(first.last_draw_replayed(), 0);
  EXPECT_EQ(pool.size(), 40);
  EXPECT_EQ(pool.fresh_total(), 40);
  EXPECT_EQ(pool.replayed_total(), 0);

  // Query 2: the first 40 draws replay the pooled prefix in draw order,
  // then fresh draws extend the pool without ever repeating a block.
  BlockSampler second(rel, &pool);
  EXPECT_EQ(second.pooled_remaining(), 40);
  Rng rng2(12);
  auto q2a = second.Draw(25, &rng2);
  EXPECT_EQ(second.last_draw_replayed(), 25);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(q2a[i], q1[i]);
  auto q2b = second.Draw(30, &rng2);
  EXPECT_EQ(second.last_draw_replayed(), 15);  // prefix exhausted mid-draw
  EXPECT_EQ(pool.size(), 55);                  // 40 + 15 fresh
  EXPECT_EQ(pool.replayed_total(), 40);

  // WOR within query 2 across replay + fresh.
  std::vector<const Block*> all(q2a);
  all.insert(all.end(), q2b.begin(), q2b.end());
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
  // Every pooled block is marked consumed exactly once.
  int64_t marked = 0;
  for (int64_t blk = 0; blk < pool.total_blocks(); ++blk) {
    if (pool.Contains(static_cast<uint32_t>(blk))) ++marked;
  }
  EXPECT_EQ(marked, pool.size());
}

// ---------------------------------------------------------------------
// Determinism contract.

TEST(WarmStartTest, WarmOffSessionsAreBitIdentical) {
  for (int threads : {1, 4, 8}) {
    Session a = MakeSelectSession();
    Session b = MakeSelectSession();
    auto ra = a.Query("SELECT[key < 3000](r1)")
                  .WithSeed(42)
                  .WithQuota(3.0)
                  .WithThreads(threads)
                  .Run();
    auto rb = b.Query("SELECT[key < 3000](r1)")
                  .WithSeed(42)
                  .WithQuota(3.0)
                  .WithThreads(threads)
                  .Run();
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ExpectIdenticalResults(*ra, *rb);
  }
}

TEST(WarmStartTest, ColdWarmQueryIsBitIdenticalToWarmOff) {
  // The first warm query of a session sees only empty pools and missing
  // priors, so it must take exactly the cold code paths: same estimate,
  // variance, and stage reports, at every thread count.
  for (int threads : {1, 4, 8}) {
    Session off = MakeSelectSession();
    Session on = MakeSelectSession();
    auto r_off = off.Query("SELECT[key < 3000](r1)")
                     .WithSeed(42)
                     .WithQuota(3.0)
                     .WithThreads(threads)
                     .WithWarmStart(false)
                     .Run();
    auto r_on = on.Query("SELECT[key < 3000](r1)")
                    .WithSeed(42)
                    .WithQuota(3.0)
                    .WithThreads(threads)
                    .WithWarmStart(true)
                    .Run();
    ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
    ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
    ExpectIdenticalResults(*r_off, *r_on);
  }
}

TEST(WarmStartTest, WarmSequenceIsBitIdenticalAcrossThreadCounts) {
  std::vector<QueryResult> per_width;
  for (int threads : {1, 4, 8}) {
    Session session = MakeSelectSession();
    session.SetWarmStart(true);
    auto first = session.Query("SELECT[key < 3000](r1)")
                     .WithSeed(42)
                     .WithQuota(2.0)
                     .WithThreads(threads)
                     .Run();
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    auto second = session.Query("SELECT[key < 3000](r1)")
                      .WithSeed(43)
                      .WithQuota(2.0)
                      .WithThreads(threads)
                      .Run();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    per_width.push_back(*second);
  }
  ExpectIdenticalResults(per_width[0], per_width[1]);
  ExpectIdenticalResults(per_width[0], per_width[2]);
}

// ---------------------------------------------------------------------
// Warm-start effectiveness.

TEST(WarmStartTest, SecondQueryStageZeroPredictionImproves) {
  // Cold stage 0 plans with the generic pessimistic priors; a warm
  // second query plans from the first run's fitted coefficients and
  // observed selectivities, so its stage-0 |predicted - actual| relative
  // error must not exceed the cold one's.
  Session session = MakeSelectSession();
  session.SetWarmStart(true);
  auto cold = session.Query("SELECT[key < 3000](r1)")
                  .WithSeed(42)
                  .WithQuota(2.0)
                  .Run();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_GT(cold->stages_run, 0);
  auto warm = session.Query("SELECT[key < 3000](r1)")
                  .WithSeed(43)
                  .WithQuota(2.0)
                  .Run();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_GT(warm->stages_run, 0);
  auto rel_error = [](const StageReport& s) {
    return std::abs(s.predicted_seconds - s.actual_seconds) /
           std::max(s.actual_seconds, 1e-9);
  };
  EXPECT_LE(rel_error(warm->stage_reports[0]),
            rel_error(cold->stage_reports[0]));

  WarmStartStats stats = session.CacheStats();
  EXPECT_GT(stats.pooled_blocks, 0);
  EXPECT_GT(stats.replayed_blocks, 0);
  EXPECT_GT(stats.prior_entries, 0);
  EXPECT_GT(stats.prior_hits, 0);
  EXPECT_EQ(stats.cost_snapshot_hits, 1);  // second run restored one
}

TEST(WarmStartTest, PriorSeedsStageZeroSelectivity) {
  // Cold stage 0 assumes the maximally pessimistic select selectivity
  // (1.0). After one warm run on a 30%-selective predicate, the second
  // query's stage-0 revision must start from the cached prior instead.
  Session session = MakeSelectSession();
  session.SetWarmStart(true);
  auto first = session.Query("SELECT[key < 3000](r1)")
                   .WithSeed(42)
                   .WithQuota(2.0)
                   .Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_GT(first->stages_run, 0);
  EXPECT_EQ(first->stage_reports[0].selectivities[0].selectivity, 1.0);
  auto second = session.Query("SELECT[key < 3000](r1)")
                    .WithSeed(43)
                    .WithQuota(2.0)
                    .Run();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_GT(second->stages_run, 0);
  double prior = second->stage_reports[0].selectivities[0].selectivity;
  EXPECT_LT(prior, 1.0);
  EXPECT_NEAR(prior, 0.3, 0.1);

  // The prior is keyed canonically: a WarmStartCache fed directly must
  // return the same value for the canonically equal expression.
  WarmStartCache cache;
  ExprPtr expr =
      Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, 3000));
  cache.RecordPrior(CanonicalSignature(*expr), prior);
  std::optional<double> looked_up =
      cache.LookupPrior(CanonicalSignature(*expr));
  ASSERT_TRUE(looked_up.has_value());
  EXPECT_EQ(*looked_up, prior);
}

TEST(WarmStartTest, CacheStatsAndClear) {
  Session session = MakeSelectSession();
  // No warm query yet: stats are all-zero and ClearCache is a no-op.
  WarmStartStats empty = session.CacheStats();
  EXPECT_EQ(empty.relations, 0);
  EXPECT_EQ(empty.pooled_blocks, 0);
  session.ClearCache();

  auto r = session.Query("SELECT[key < 3000](r1)")
               .WithSeed(42)
               .WithQuota(2.0)
               .WithWarmStart()
               .Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  WarmStartStats warm = session.CacheStats();
  EXPECT_EQ(warm.relations, 1);
  EXPECT_EQ(warm.pooled_blocks, r->blocks_sampled + r->blocks_wasted);
  EXPECT_EQ(warm.fresh_blocks, warm.pooled_blocks);
  EXPECT_EQ(warm.cost_snapshots, 1);

  session.ClearCache();
  WarmStartStats cleared = session.CacheStats();
  EXPECT_EQ(cleared.relations, 0);
  EXPECT_EQ(cleared.pooled_blocks, 0);
  EXPECT_EQ(cleared.prior_entries, 0);
  EXPECT_EQ(cleared.cost_snapshots, 0);
}

// ---------------------------------------------------------------------
// Accounting bugfixes.

TEST(AccountingTest, BlocksWastedReconcilesWithStageReportsAndMetric) {
  // Find hard-deadline runs whose final stage aborts (d_beta = 0 gives
  // ~50% overspend risk) and check the reconciliation identity on every
  // run, aborted or not.
  bool saw_abort = false;
  for (uint64_t seed = 1; seed <= 30 && !saw_abort; ++seed) {
    Session session = MakeSelectSession();
    Metrics metrics;
    auto r = session.Query("SELECT[key < 3000](r1)")
                 .WithSeed(seed)
                 .WithQuota(2.0)
                 .WithRiskMargin(0.0)
                 .WithDeadline(DeadlineMode::kHard)
                 .WithMetrics(&metrics)
                 .Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t reported = 0;
    for (const StageReport& s : r->stage_reports) reported += s.blocks_drawn;
    EXPECT_EQ(r->blocks_sampled + r->blocks_wasted, reported);
    EXPECT_EQ(metrics.counter("engine.blocks_drawn")->value(), reported);
    if (r->overspent) {
      saw_abort = true;
      EXPECT_GT(r->blocks_wasted, 0);
      EXPECT_EQ(r->blocks_wasted,
                r->stage_reports.back().blocks_drawn);
    }
  }
  EXPECT_TRUE(saw_abort) << "no seed in 1..30 aborted a hard-deadline stage";
}

TEST(AccountingTest, FaultRetriesNeverDoubleCountBlocksDrawn) {
  // With transient faults armed, a retried read is another *attempt* at
  // the same drawn block — blocks_drawn (stage reports and the
  // engine.blocks_drawn counter) must count it exactly once, and the
  // reconciliation identity must keep holding with lost blocks wasted.
  bool saw_retry = false;
  bool saw_loss = false;
  for (uint64_t seed = 1; seed <= 30 && !(saw_retry && saw_loss); ++seed) {
    Session session = MakeSelectSession();
    Metrics metrics;
    FaultOptions faults;
    faults.enabled = true;
    faults.transient_rate = 0.15;
    faults.permanent_rate = 0.03;
    faults.fault_seed = seed;
    auto r = session.Query("SELECT[key < 3000](r1)")
                 .WithSeed(seed)
                 .WithQuota(2.0)
                 .WithRiskMargin(0.0)
                 .WithDeadline(DeadlineMode::kHard)
                 .WithMetrics(&metrics)
                 .WithFaults(faults)
                 .Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t reported = 0;
    for (const StageReport& s : r->stage_reports) reported += s.blocks_drawn;
    EXPECT_EQ(r->blocks_sampled + r->blocks_wasted, reported);
    EXPECT_EQ(metrics.counter("engine.blocks_drawn")->value(), reported);
    // Attempts exceed draws by exactly the retry count, never more.
    int64_t attempts = 0;
    for (const RelationFaultCounts& rf : r->faults.per_relation) {
      attempts += rf.read_attempts;
    }
    EXPECT_EQ(attempts, reported + r->faults.retries);
    if (r->faults.retries > 0) {
      saw_retry = true;
      EXPECT_EQ(metrics.counter("fault.retries")->value(),
                r->faults.retries);
    }
    if (r->faults.blocks_lost > 0) {
      saw_loss = true;
      if (r->overspent) {
        // The aborted stage wastes all its draws, lost or not.
        EXPECT_GE(r->blocks_wasted, r->faults.blocks_lost);
      } else {
        // Every stage counted: wasted quota is exactly the lost blocks.
        EXPECT_EQ(r->blocks_wasted, r->faults.blocks_lost);
      }
    }
  }
  EXPECT_TRUE(saw_retry) << "no seed in 1..30 retried a transient fault";
  EXPECT_TRUE(saw_loss) << "no seed in 1..30 lost a block";
}

TEST(AccountingTest, SoftOverrunReportsUtilizationAboveOne) {
  // Under a soft deadline the overrunning final stage counts, so the true
  // quota-spend ratio exceeds 1 and must no longer be clamped away.
  bool saw_overrun = false;
  for (uint64_t seed = 1; seed <= 30 && !saw_overrun; ++seed) {
    Session session = MakeSelectSession();
    auto r = session.Query("SELECT[key < 3000](r1)")
                 .WithSeed(seed)
                 .WithQuota(2.0)
                 .WithRiskMargin(0.0)
                 .WithDeadline(DeadlineMode::kSoft)
                 .Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->overspent) {
      saw_overrun = true;
      EXPECT_GT(r->utilization, 1.0);
      EXPECT_NEAR(r->utilization, r->elapsed_seconds / 2.0, 1e-9);
      EXPECT_GT(r->overspend_seconds, 0.0);
    } else {
      EXPECT_LE(r->utilization, 1.0);
    }
  }
  EXPECT_TRUE(saw_overrun) << "no seed in 1..30 overran the soft deadline";
}

}  // namespace
}  // namespace tcq
