#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tcq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMeanAndVariance) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 37);
  ASSERT_EQ(sample.size(), 37u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 37u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleZero) {
  Rng rng(29);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, SampleIsUniform) {
  // Each element of {0..9} should appear in a 5-of-10 sample about half the
  // time.
  Rng rng(31);
  int counts[10] = {0};
  const int reps = 4000;
  for (int r = 0; r < reps; ++r) {
    for (uint32_t v : rng.SampleWithoutReplacement(10, 5)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / reps, 0.5, 0.05);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ForkIndependent) {
  Rng a(41);
  Rng b = a.Fork();
  // Child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace tcq
