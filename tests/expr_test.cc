#include "ra/expr.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

Schema BaseSchema() {
  return Schema({{"id", DataType::kInt64, 0},
                 {"key", DataType::kInt64, 0},
                 {"payload", DataType::kString, 184}});
}

Catalog MakeCatalog() {
  Catalog catalog;
  for (const char* name : {"r1", "r2", "r3"}) {
    auto rel = Relation::Create(name, BaseSchema());
    EXPECT_TRUE(rel.ok());
    EXPECT_TRUE(
        catalog.Register(std::make_shared<Relation>(std::move(*rel))).ok());
  }
  return catalog;
}

TEST(ExprTest, ScanSchema) {
  Catalog c = MakeCatalog();
  auto schema = InferSchema(Scan("r1"), c);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3);
}

TEST(ExprTest, ScanUnknownRelation) {
  Catalog c = MakeCatalog();
  EXPECT_EQ(InferSchema(Scan("zz"), c).status().code(),
            StatusCode::kNotFound);
}

TEST(ExprTest, SelectKeepsSchema) {
  Catalog c = MakeCatalog();
  auto e = Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, int64_t{5}));
  auto schema = InferSchema(e, c);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3);
}

TEST(ExprTest, SelectValidatesPredicate) {
  Catalog c = MakeCatalog();
  auto e = Select(Scan("r1"), CmpLiteral("nope", CompareOp::kLt, int64_t{5}));
  EXPECT_FALSE(InferSchema(e, c).ok());
}

TEST(ExprTest, ProjectSchema) {
  Catalog c = MakeCatalog();
  auto e = Project(Scan("r1"), {"key"});
  auto schema = InferSchema(e, c);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->num_columns(), 1);
  EXPECT_EQ(schema->column(0).name, "key");
}

TEST(ExprTest, ProjectRejectsEmptyAndUnknown) {
  Catalog c = MakeCatalog();
  EXPECT_FALSE(InferSchema(Project(Scan("r1"), {}), c).ok());
  EXPECT_FALSE(InferSchema(Project(Scan("r1"), {"zz"}), c).ok());
}

TEST(ExprTest, JoinSchemaConcatenates) {
  Catalog c = MakeCatalog();
  auto e = Join(Scan("r1"), Scan("r2"), {{"key", "key"}});
  auto schema = InferSchema(e, c);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 6);
  EXPECT_EQ(schema->column(3).name, "r_id");
}

TEST(ExprTest, JoinRequiresKeys) {
  Catalog c = MakeCatalog();
  EXPECT_FALSE(InferSchema(Join(Scan("r1"), Scan("r2"), {}), c).ok());
}

TEST(ExprTest, SetOpsRequireCompatibleSchemas) {
  Catalog c = MakeCatalog();
  EXPECT_TRUE(InferSchema(Union(Scan("r1"), Scan("r2")), c).ok());
  EXPECT_TRUE(InferSchema(Intersect(Scan("r1"), Scan("r2")), c).ok());
  EXPECT_TRUE(InferSchema(Difference(Scan("r1"), Scan("r2")), c).ok());
  auto projected = Project(Scan("r2"), {"key"});
  EXPECT_FALSE(InferSchema(Union(Scan("r1"), projected), c).ok());
}

TEST(ExprTest, CollectScansInOrder) {
  auto e = Union(Join(Scan("r1"), Scan("r2"), {{"key", "key"}}),
                 Intersect(Scan("r3"), Scan("r1")));
  std::vector<std::string> scans;
  CollectScans(e, &scans);
  EXPECT_EQ(scans, (std::vector<std::string>{"r1", "r2", "r3", "r1"}));
}

TEST(ExprTest, StructuralEquality) {
  auto a = Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, int64_t{5}));
  auto b = Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, int64_t{5}));
  auto c = Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, int64_t{6}));
  auto d = Select(Scan("r2"), CmpLiteral("key", CompareOp::kLt, int64_t{5}));
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_FALSE(ExprEquals(a, c));
  EXPECT_FALSE(ExprEquals(a, d));
  EXPECT_TRUE(ExprEquals(Intersect(a, b), Intersect(b, a)));
  EXPECT_FALSE(ExprEquals(Union(a, b), Intersect(a, b)));
}

TEST(ExprTest, ContainsSetOps) {
  auto plain = Join(Scan("r1"), Scan("r2"), {{"key", "key"}});
  EXPECT_FALSE(ContainsSetDifferenceOrUnion(plain));
  EXPECT_TRUE(ContainsSetDifferenceOrUnion(Union(Scan("r1"), Scan("r2"))));
  EXPECT_TRUE(ContainsSetDifferenceOrUnion(
      Select(Difference(Scan("r1"), Scan("r2")),
             CmpLiteral("key", CompareOp::kEq, int64_t{0}))));
}

TEST(ExprTest, ToStringReadable) {
  auto e = Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, int64_t{5}));
  EXPECT_EQ(e->ToString(), "Select[key < 5](r1)");
}

}  // namespace
}  // namespace tcq
