// Observability contracts (DESIGN.md §7): the Chrome trace_event JSON
// schema, the metrics determinism guarantee (counter/histogram sections
// bit-identical across thread counts at a fixed seed), the telescoping
// per-stage ledger-spend identity, and the ProgressObserver stream.

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "api/tcq.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "sim/ledger.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough to reject anything a
// trace/metrics exporter could plausibly get wrong (unbalanced brackets,
// trailing commas, bad escapes, NaN/Inf leaking into number positions).
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't' && e != 'u') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[start] == '-' ? s_[start + 1] : s_[start]));
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

Session MakeSession(int64_t tuples = 2000, uint64_t seed = 7) {
  auto workload = MakeIntersectionWorkload(tuples, seed);
  EXPECT_TRUE(workload.ok());
  return Session(std::move(workload->catalog));
}

// ---------------------------------------------------------------------------
// Trace schema.
// ---------------------------------------------------------------------------

TEST(TraceTest, ChromeJsonSchema) {
  Session session = MakeSession();
  Tracer tracer;
  auto r = session.Query("r1 INTERSECT r2")
               .WithSeed(3)
               .WithQuota(2.0)
               .WithTracer(&tracer)
               .Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0);

  std::string json = tracer.ExportChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  // Chrome trace_event envelope + the span taxonomy the engine emits.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"virtual\""), std::string::npos);
  for (const char* name :
       {"\"query\"", "\"stage\"", "\"plan_stage\"", "\"draw_blocks\"",
        "\"eval_terms\"", "\"term_stage\"", "\"sample_size_determine\"",
        "\"combine_estimates\"", "\"ledger_spend_s\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing " << name;
  }
}

TEST(TraceTest, SimulatedTraceIsDeterministicGolden) {
  // In simulation the tracer reads the engine's VirtualClock, so the
  // entire serialized trace is a pure function of the seed.
  std::string runs[2];
  for (std::string& out : runs) {
    Session session = MakeSession();
    Tracer tracer;
    auto r = session.Query("r1 INTERSECT r2")
                 .WithSeed(17)
                 .WithQuota(1.5)
                 .WithTracer(&tracer)
                 .Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    out = tracer.ExportChromeJson();
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Session session = MakeSession();
  TraceOptions off;
  off.enabled = false;
  Tracer tracer(off);
  auto r = session.Query("r1 INTERSECT r2").WithTracer(&tracer).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TraceTest, WithTraceExportsToFile) {
  Session session = MakeSession();
  TraceOptions trace;
  trace.export_path =
      ::testing::TempDir() + "/tcq_obs_test_trace.json";
  auto r = session.Query("r1 INTERSECT r2").WithTrace(trace).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  FILE* f = std::fopen(trace.export_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(trace.export_path.c_str());
  EXPECT_TRUE(JsonChecker(content).Valid()) << content.substr(0, 400);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST(MetricsTest, DeterministicSectionBitIdenticalAcrossThreads) {
  std::vector<std::string> deterministic;
  for (int threads : {1, 4, 8}) {
    Session session = MakeSession();
    Metrics metrics;
    auto r = session.Query("r1 INTERSECT r2")
                 .WithSeed(42)
                 .WithQuota(2.0)
                 .WithThreads(threads)
                 .WithMetrics(&metrics)
                 .Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(JsonChecker(metrics.ToJson()).Valid());
    deterministic.push_back(metrics.DeterministicJson());
  }
  EXPECT_EQ(deterministic[0], deterministic[1]);
  EXPECT_EQ(deterministic[0], deterministic[2]);
}

TEST(MetricsTest, CountersCoverThePipeline) {
  Session session = MakeSession();
  Metrics metrics;
  auto r = session.Query("r1 INTERSECT r2")
               .WithSeed(5)
               .WithMetrics(&metrics)
               .Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(metrics.counter("engine.stages_run")->value(), r->stages_run);
  EXPECT_EQ(metrics.counter("engine.blocks_drawn")->value(),
            r->blocks_sampled + r->blocks_wasted);
  EXPECT_GT(metrics.counter("sampling.blocks_drawn")->value(), 0);
  EXPECT_GT(metrics.counter("exec.tuples_scanned")->value(), 0);
  EXPECT_GT(metrics.counter("timectrl.ssd_probes")->value(), 0);
  EXPECT_GT(metrics.counter("estimator.combines")->value(), 0);
  EXPECT_EQ(metrics.gauge("engine.quota_s")->value(), 5.0);
  // The full simulated spend splits between the engine's shared ledger
  // (stage overhead, block reads) and the per-term operator ledgers; the
  // two exports together account for every simulated second.
  double accounted = metrics.gauge("ledger.total_s")->value();
  for (size_t c = 0; c < static_cast<size_t>(CostCategory::kNumCategories);
       ++c) {
    const std::string name =
        std::string("ledger.terms.") +
        std::string(CostCategoryName(static_cast<CostCategory>(c))) + "_s";
    accounted += metrics.gauge(name)->value();
  }
  EXPECT_NEAR(accounted, r->elapsed_seconds, 1e-9);
}

// ---------------------------------------------------------------------------
// Stage reports: the telescoping ledger-spend identity and the observer.
// ---------------------------------------------------------------------------

TEST(StageReportTest, LedgerSpendsTelescopeToElapsed) {
  Session session = MakeSession();
  auto r = session.Query("r1 INTERSECT r2").WithSeed(9).WithQuota(2.0).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->stages().size(), 0u);
  double sum = 0.0;
  double cumulative = 0.0;
  for (const StageReport& report : r->stages()) {
    EXPECT_GE(report.ledger_spend_s, 0.0);
    sum += report.ledger_spend_s;
    EXPECT_GE(report.cumulative_spend_s, cumulative);
    cumulative = report.cumulative_spend_s;
    EXPECT_EQ(report.quota_s, 2.0);
    EXPECT_FALSE(report.selectivities.empty());
  }
  // The virtual clock only advances inside stages, so per-stage spends
  // telescope to the run's total.
  EXPECT_NEAR(sum, r->elapsed_seconds, 1e-9);
  EXPECT_NEAR(cumulative, r->elapsed_seconds, 1e-9);
}

class RecordingObserver : public ProgressObserver {
 public:
  void OnQueryBegin(double quota_s, int num_terms) override {
    ++begins;
    last_quota = quota_s;
    terms = num_terms;
  }
  void OnStage(const StageReport& report) override {
    stage_indices.push_back(report.index);
  }
  void OnQueryEnd(double estimate, double, bool) override {
    ++ends;
    final_estimate = estimate;
  }

  int begins = 0;
  int ends = 0;
  int terms = 0;
  double last_quota = 0.0;
  double final_estimate = 0.0;
  std::vector<int> stage_indices;
};

TEST(StageReportTest, ObserverStreamsEveryStage) {
  Session session = MakeSession();
  RecordingObserver observer;
  auto r = session.Query("r1 INTERSECT r2")
               .WithSeed(13)
               .WithQuota(2.0)
               .WithObserver(observer)
               .Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(observer.begins, 1);
  EXPECT_EQ(observer.ends, 1);
  EXPECT_EQ(observer.last_quota, 2.0);
  EXPECT_GT(observer.terms, 0);
  EXPECT_EQ(observer.final_estimate, r->estimate);
  ASSERT_EQ(observer.stage_indices.size(), r->stages().size());
  for (size_t i = 0; i < observer.stage_indices.size(); ++i) {
    EXPECT_EQ(observer.stage_indices[i], r->stages()[i].index);
  }
}

// TSan regression: event_count()/dropped_events() once summed the
// per-thread event vectors (and a plain int64 drop tally) that recording
// threads mutate lock-free — polling them mid-run was a data race. They
// now read atomic published counters; this test runs concurrent
// recorders against a polling reader under the sanitizer matrix, with a
// cap small enough to exercise the dropped path too.
TEST(TraceTest, CountersReadableWhileRecording) {
  TraceOptions options;
  options.max_events_per_thread = 64;
  Tracer tracer(options);

  constexpr int kRecorders = 4;
  constexpr int kEventsPerRecorder = 500;
  ThreadPool pool(kRecorders);
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < kRecorders; ++t) {
    tasks.push_back([&tracer] {
      for (int i = 0; i < kEventsPerRecorder; ++i) {
        tracer.Instant("race_probe", "test");
      }
    });
  }
  // The reader races the recorders on purpose; it runs as one more task
  // so the pool supplies all the concurrency.
  tasks.push_back([&tracer] {
    size_t last = 0;
    for (int i = 0; i < 2000; ++i) {
      size_t now = tracer.event_count();
      EXPECT_GE(now, last);  // published counts only move forward
      last = now;
      (void)tracer.dropped_events();
    }
  });
  pool.RunAll(&tasks);

  // Every recording attempt either landed in a buffer or was counted
  // dropped; with the cap at 64 per thread, drops must have occurred.
  const size_t total = kRecorders * kEventsPerRecorder;
  EXPECT_EQ(tracer.event_count() +
                static_cast<size_t>(tracer.dropped_events()),
            total);
  EXPECT_GT(tracer.dropped_events(), 0);
}

// ---------------------------------------------------------------------------
// Session pool reuse (high-water sizing).
// ---------------------------------------------------------------------------

TEST(SessionPoolTest, PoolKeepsHighWaterSize) {
  Session session = MakeSession();
  EXPECT_EQ(session.pool_workers(), 0);
  auto wide = session.Query("r1 INTERSECT r2").WithSeed(3).WithThreads(8).Run();
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(session.pool_workers(), 7);
  // A narrower query reuses the wide pool instead of rebuilding it...
  auto narrow =
      session.Query("r1 INTERSECT r2").WithSeed(3).WithThreads(2).Run();
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  EXPECT_EQ(session.pool_workers(), 7);
  // ...and determinism makes the width switch unobservable in the result.
  EXPECT_EQ(wide->estimate, narrow->estimate);
  EXPECT_EQ(wide->blocks_sampled, narrow->blocks_sampled);
  // A wider request grows the pool.
  auto wider =
      session.Query("r1 INTERSECT r2").WithSeed(3).WithThreads(12).Run();
  ASSERT_TRUE(wider.ok()) << wider.status().ToString();
  EXPECT_EQ(session.pool_workers(), 11);
  EXPECT_EQ(wider->estimate, wide->estimate);
}

}  // namespace
}  // namespace tcq
