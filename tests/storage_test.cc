#include <gtest/gtest.h>

#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace tcq {
namespace {

Schema PaperSchema() {
  // The paper's experimental tuples: 200 bytes each.
  return Schema({{"id", DataType::kInt64, 0},
                 {"key", DataType::kInt64, 0},
                 {"payload", DataType::kString, 184}});
}

TEST(ValueTest, TypeOfAlternatives) {
  EXPECT_EQ(ValueType(Value(int64_t{1})), DataType::kInt64);
  EXPECT_EQ(ValueType(Value(1.5)), DataType::kDouble);
  EXPECT_EQ(ValueType(Value(std::string("x"))), DataType::kString);
}

TEST(ValueTest, CompareInts) {
  EXPECT_LT(CompareValues(Value(int64_t{1}), Value(int64_t{2})), 0);
  EXPECT_GT(CompareValues(Value(int64_t{5}), Value(int64_t{2})), 0);
  EXPECT_EQ(CompareValues(Value(int64_t{3}), Value(int64_t{3})), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(CompareValues(Value(std::string("a")), Value(std::string("b"))),
            0);
  EXPECT_EQ(CompareValues(Value(std::string("ab")), Value(std::string("ab"))),
            0);
}

TEST(ValueTest, CompareTuplesLexicographic) {
  Tuple a{int64_t{1}, int64_t{5}};
  Tuple b{int64_t{1}, int64_t{7}};
  EXPECT_LT(CompareTuples(a, b), 0);
  EXPECT_EQ(CompareTuples(a, a), 0);
}

TEST(ValueTest, CompareTuplesOnKeySubset) {
  Tuple a{int64_t{1}, int64_t{5}, int64_t{9}};
  Tuple b{int64_t{2}, int64_t{5}, int64_t{0}};
  std::vector<int> key{1};
  EXPECT_EQ(CompareTuplesOnKey(a, b, key), 0);
  std::vector<int> key2{1, 2};
  EXPECT_GT(CompareTuplesOnKey(a, b, key2), 0);
}

TEST(SchemaTest, TupleBytes) {
  EXPECT_EQ(PaperSchema().TupleBytes(), 200);
}

TEST(SchemaTest, IndexOf) {
  Schema s = PaperSchema();
  ASSERT_TRUE(s.IndexOf("key").ok());
  EXPECT_EQ(*s.IndexOf("key"), 1);
  EXPECT_EQ(s.IndexOf("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, CompatibilityIgnoresNames) {
  Schema a({{"x", DataType::kInt64, 0}, {"y", DataType::kString, 8}});
  Schema b({{"p", DataType::kInt64, 0}, {"q", DataType::kString, 8}});
  Schema c({{"p", DataType::kInt64, 0}, {"q", DataType::kString, 9}});
  Schema d({{"p", DataType::kInt64, 0}});
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));  // width differs
  EXPECT_FALSE(a.CompatibleWith(d));  // arity differs
}

TEST(SchemaTest, SelectColumns) {
  Schema s = PaperSchema();
  Schema proj = s.SelectColumns({2, 0});
  ASSERT_EQ(proj.num_columns(), 2);
  EXPECT_EQ(proj.column(0).name, "payload");
  EXPECT_EQ(proj.column(1).name, "id");
}

TEST(SchemaTest, ConcatForJoinRenamesCollisions) {
  Schema l({{"id", DataType::kInt64, 0}, {"a", DataType::kInt64, 0}});
  Schema r({{"id", DataType::kInt64, 0}, {"b", DataType::kInt64, 0}});
  Schema j = l.ConcatForJoin(r);
  ASSERT_EQ(j.num_columns(), 4);
  EXPECT_EQ(j.column(0).name, "id");
  EXPECT_EQ(j.column(2).name, "r_id");
  EXPECT_EQ(j.column(3).name, "b");
}

TEST(SchemaTest, ValidateTuple) {
  Schema s({{"x", DataType::kInt64, 0}, {"s", DataType::kString, 4}});
  EXPECT_TRUE(s.ValidateTuple({int64_t{1}, std::string("abcd")}).ok());
  EXPECT_FALSE(s.ValidateTuple({int64_t{1}}).ok());           // arity
  EXPECT_FALSE(s.ValidateTuple({1.0, std::string("a")}).ok());  // type
  EXPECT_FALSE(
      s.ValidateTuple({int64_t{1}, std::string("abcde")}).ok());  // width
}

TEST(RelationTest, PaperGeometry) {
  // 10,000 tuples of 200 bytes in 1 KiB blocks -> 5 per block, 2000 blocks.
  auto rel = Relation::Create("r1", PaperSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->blocking_factor(), 5);
  for (int i = 0; i < 10000; ++i) {
    rel->AppendUnchecked(
        {int64_t{i}, int64_t{i % 100}, std::string("p")});
  }
  EXPECT_EQ(rel->NumTuples(), 10000);
  EXPECT_EQ(rel->NumBlocks(), 2000);
  EXPECT_EQ(rel->ViewBlock(0).rows().size(), 5u);
  EXPECT_EQ(rel->ViewBlock(1999).rows().size(), 5u);
}

TEST(RelationTest, PartialLastBlock) {
  auto rel = Relation::Create("r", PaperSchema());
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 7; ++i) {
    rel->AppendUnchecked({int64_t{i}, int64_t{0}, std::string()});
  }
  EXPECT_EQ(rel->NumBlocks(), 2);
  EXPECT_EQ(rel->ViewBlock(1).rows().size(), 2u);
}

TEST(RelationTest, AppendValidates) {
  auto rel = Relation::Create("r", PaperSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->Append({int64_t{1}}).ok());
  EXPECT_TRUE(
      rel->Append({int64_t{1}, int64_t{2}, std::string("ok")}).ok());
  EXPECT_EQ(rel->NumTuples(), 1);
}

TEST(RelationTest, CreateRejectsBadGeometry) {
  EXPECT_FALSE(Relation::Create("r", Schema(), 1024).ok());
  Schema wide({{"s", DataType::kString, 4096}});
  EXPECT_FALSE(Relation::Create("r", wide, 1024).ok());
}

TEST(CatalogTest, RegisterAndFind) {
  Catalog catalog;
  auto rel = Relation::Create("r1", PaperSchema());
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(
      catalog.Register(std::make_shared<Relation>(std::move(*rel))).ok());
  EXPECT_TRUE(catalog.Find("r1").ok());
  EXPECT_EQ(catalog.Find("r2").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsDuplicatesAndNull) {
  Catalog catalog;
  auto r1 = Relation::Create("r1", PaperSchema());
  auto r1b = Relation::Create("r1", PaperSchema());
  ASSERT_TRUE(catalog.Register(std::make_shared<Relation>(std::move(*r1))).ok());
  EXPECT_EQ(
      catalog.Register(std::make_shared<Relation>(std::move(*r1b))).code(),
      StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Register(nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.Names(), std::vector<std::string>{"r1"});
}

}  // namespace
}  // namespace tcq
