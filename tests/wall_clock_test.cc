#include <gtest/gtest.h>

#include "engine/executor.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


TEST(WallClockModeTest, AnswersWithinRealQuota) {
  auto w = MakeSelectionWorkload(2000, 1);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options;
  options.use_wall_clock = true;
  options.physical = CostModel::ModernInMemory();
  options.strategy.one_at_a_time.d_beta = 24.0;
  options.epsilon_s = 0.001;
  // 50 real milliseconds: on any modern machine this covers the whole
  // 2,000-block relation many times over after the coefficients adapt.
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(options, 0.050));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stages_counted, 0);
  EXPECT_GT(r->estimate, 0.0);
  // The wall clock really advanced and stayed near the quota even if the
  // last stage overshot; generous bound for noisy CI machines.
  EXPECT_GT(r->elapsed_seconds, 0.0);
  EXPECT_LT(r->elapsed_seconds, 5.0);
}

TEST(WallClockModeTest, CoefficientsAdaptFromWrongInitialScale) {
  // Seed the coefficients with the 1989 disk-era constants — about four
  // orders of magnitude too slow for an in-memory run. Stage 1 is
  // therefore tiny, but the coefficients are re-fitted from the real
  // timings it produces, so stage 2 samples vastly more blocks: the
  // paper's adaptive-formula argument, live against a wall clock.
  auto w = MakeSelectionWorkload(2000, 2);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options;
  options.use_wall_clock = true;
  options.physical = CostModel::Sun360();  // deliberately wrong scale
  options.strategy.one_at_a_time.d_beta = 12.0;
  options.epsilon_s = 0.0005;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(options, 1.0));
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->stages_run, 2) << "expected multiple stages in 1 s";
  EXPECT_GT(r->stages()[1].blocks_drawn, r->stages()[0].blocks_drawn);
  // Real elapsed time is far below what the 1989 constants predicted for
  // the work done (the run should finish the relation quickly).
  EXPECT_LT(r->elapsed_seconds, 5.0);
}

TEST(WallClockModeTest, SamplingStillSeedDeterministic) {
  // Timing is real, but which blocks get drawn at a given stage size is
  // still driven by the seeded RNG.
  auto w = MakeSelectionWorkload(2000, 3);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options;
  options.use_wall_clock = true;
  options.physical = CostModel::ModernInMemory();
  options.seed = 9;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(options, 0.050));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->blocks_sampled, 0);
}

}  // namespace
}  // namespace tcq
