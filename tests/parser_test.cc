#include "ra/parser.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

ExprPtr MustParse(const std::string& text) {
  auto e = ParseQuery(text);
  EXPECT_TRUE(e.ok()) << text << " -> " << e.status().ToString();
  return e.ok() ? *e : nullptr;
}

TEST(ParserTest, BareScan) {
  auto e = MustParse("orders");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kScan);
  EXPECT_EQ(e->relation, "orders");
}

TEST(ParserTest, SimpleSelect) {
  auto e = MustParse("SELECT[key < 2000](r1)");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(ExprEquals(
      e, Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, int64_t{2000}))));
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto e = MustParse("select[key >= 10](r1)");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kSelect);
}

TEST(ParserTest, AllComparisonOperators) {
  struct Case {
    const char* text;
    CompareOp op;
  } cases[] = {
      {"SELECT[a = 1](r)", CompareOp::kEq},
      {"SELECT[a != 1](r)", CompareOp::kNe},
      {"SELECT[a < 1](r)", CompareOp::kLt},
      {"SELECT[a <= 1](r)", CompareOp::kLe},
      {"SELECT[a > 1](r)", CompareOp::kGt},
      {"SELECT[a >= 1](r)", CompareOp::kGe},
  };
  for (const auto& c : cases) {
    auto e = MustParse(c.text);
    ASSERT_NE(e, nullptr) << c.text;
    EXPECT_EQ(e->predicate->op, c.op) << c.text;
  }
}

TEST(ParserTest, LiteralTypes) {
  auto ints = MustParse("SELECT[a = -42](r)");
  EXPECT_EQ(std::get<int64_t>(ints->predicate->literal), -42);
  auto floats = MustParse("SELECT[a = 2.5](r)");
  EXPECT_DOUBLE_EQ(std::get<double>(floats->predicate->literal), 2.5);
  auto strings = MustParse("SELECT[name = 'bob'](r)");
  EXPECT_EQ(std::get<std::string>(strings->predicate->literal), "bob");
}

TEST(ParserTest, ColumnToColumnComparison) {
  auto e = MustParse("SELECT[a = b](r)");
  EXPECT_EQ(e->predicate->kind, Predicate::Kind::kCompareColumns);
  EXPECT_EQ(e->predicate->rhs_column, "b");
}

TEST(ParserTest, BooleanStructureAndPrecedence) {
  // AND binds tighter than OR.
  auto e = MustParse("SELECT[a < 1 OR b > 2 AND c = 3](r)");
  ASSERT_EQ(e->predicate->kind, Predicate::Kind::kOr);
  EXPECT_EQ(e->predicate->right->kind, Predicate::Kind::kAnd);
  auto n = MustParse("SELECT[NOT a = 1](r)");
  EXPECT_EQ(n->predicate->kind, Predicate::Kind::kNot);
  auto p = MustParse("SELECT[(a < 1 OR b > 2) AND c = 3](r)");
  EXPECT_EQ(p->predicate->kind, Predicate::Kind::kAnd);
}

TEST(ParserTest, ProjectMultipleColumns) {
  auto e = MustParse("PROJECT[region, year](sales)");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kProject);
  EXPECT_EQ(e->columns, (std::vector<std::string>{"region", "year"}));
}

TEST(ParserTest, JoinWithMultipleKeys) {
  auto e = MustParse("JOIN[a = x, b = y](r1, r2)");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kJoin);
  ASSERT_EQ(e->join_keys.size(), 2u);
  EXPECT_EQ(e->join_keys[0], (std::pair<std::string, std::string>{"a", "x"}));
  EXPECT_EQ(e->join_keys[1], (std::pair<std::string, std::string>{"b", "y"}));
}

TEST(ParserTest, SetOperatorsLeftAssociative) {
  auto e = MustParse("r1 UNION r2 MINUS r3");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kDifference);
  EXPECT_EQ(e->left->kind, ExprKind::kUnion);
  auto i = MustParse("r1 INTERSECT r2");
  EXPECT_EQ(i->kind, ExprKind::kIntersect);
}

TEST(ParserTest, ParenthesesOverrideAssociativity) {
  auto e = MustParse("r1 MINUS (r2 UNION r3)");
  EXPECT_EQ(e->kind, ExprKind::kDifference);
  EXPECT_EQ(e->right->kind, ExprKind::kUnion);
}

TEST(ParserTest, NestedComposition) {
  auto e = MustParse(
      "PROJECT[region](SELECT[amount >= 100 AND region != 'EU']("
      "JOIN[id = order_id](customers, orders)))");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kProject);
  EXPECT_EQ(e->left->kind, ExprKind::kSelect);
  EXPECT_EQ(e->left->left->kind, ExprKind::kJoin);
}

TEST(ParserTest, RoundTripThroughToString) {
  // ToString of a parsed query re-parses to an equal tree (for the
  // operators whose printed form is in the grammar).
  auto e = MustParse("SELECT[key < 2000](r1)");
  auto again = ParseQuery(e->ToString());
  ASSERT_TRUE(again.ok()) << e->ToString();
  EXPECT_TRUE(ExprEquals(e, *again));
}

TEST(ParserTest, WhitespaceInsensitive) {
  auto a = MustParse("SELECT[key<2000](r1)");
  auto b = MustParse("  SELECT [ key  <  2000 ] ( r1 )  ");
  EXPECT_TRUE(ExprEquals(a, b));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT[](r1)").ok());
  EXPECT_FALSE(ParseQuery("SELECT[key < 2000](r1").ok());     // missing )
  EXPECT_FALSE(ParseQuery("SELECT[key 2000](r1)").ok());      // missing op
  EXPECT_FALSE(ParseQuery("JOIN[a = b](r1)").ok());           // one child
  EXPECT_FALSE(ParseQuery("r1 UNION").ok());                  // dangling op
  EXPECT_FALSE(ParseQuery("r1 r2").ok());                     // trailing
  EXPECT_FALSE(ParseQuery("SELECT[name = 'oops](r1)").ok());  // bad quote
  EXPECT_FALSE(ParseQuery("SELECT[a ! b](r1)").ok());         // stray !
  EXPECT_FALSE(ParseQuery("#").ok());                         // bad char
  EXPECT_FALSE(ParseQuery("PROJECT[](r1)").ok());             // no columns
}

}  // namespace
}  // namespace tcq
