#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/ledger.h"

namespace tcq {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.75);
}

TEST(WallClockTest, MonotonicNonNegative) {
  WallClock clock;
  double a = clock.Now();
  double b = clock.Now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(DeadlineTest, RemainingAndExpiry) {
  VirtualClock clock;
  Deadline deadline = Deadline::StartingNow(clock, 10.0);
  EXPECT_DOUBLE_EQ(deadline.Remaining(clock), 10.0);
  EXPECT_FALSE(deadline.Expired(clock));
  clock.Advance(4.0);
  EXPECT_DOUBLE_EQ(deadline.Remaining(clock), 6.0);
  EXPECT_DOUBLE_EQ(deadline.Elapsed(clock), 4.0);
  clock.Advance(7.0);
  EXPECT_TRUE(deadline.Expired(clock));
  EXPECT_DOUBLE_EQ(deadline.Remaining(clock), -1.0);
}

TEST(DeadlineTest, AnchoredAtNonZeroStart) {
  VirtualClock clock;
  clock.Advance(5.0);
  Deadline deadline = Deadline::StartingNow(clock, 2.0);
  clock.Advance(1.0);
  EXPECT_DOUBLE_EQ(deadline.Elapsed(clock), 1.0);
  EXPECT_DOUBLE_EQ(deadline.Remaining(clock), 1.0);
}

TEST(CostLedgerTest, ChargesAdvanceVirtualClock) {
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.Charge(CostCategory::kBlockRead, 0.05);
  ledger.ChargeN(CostCategory::kPredicate, 10, 0.001);
  EXPECT_DOUBLE_EQ(clock.Now(), 0.06);
  EXPECT_DOUBLE_EQ(ledger.Total(CostCategory::kBlockRead), 0.05);
  EXPECT_DOUBLE_EQ(ledger.Total(CostCategory::kPredicate), 0.01);
  EXPECT_EQ(ledger.Count(CostCategory::kBlockRead), 1);
  EXPECT_EQ(ledger.Count(CostCategory::kPredicate), 10);
  EXPECT_DOUBLE_EQ(ledger.GrandTotal(), 0.06);
}

TEST(CostLedgerTest, NullClockOnlyAccounts) {
  CostLedger ledger(nullptr);
  ledger.Charge(CostCategory::kSortCompare, 0.5);
  EXPECT_DOUBLE_EQ(ledger.GrandTotal(), 0.5);
}

TEST(CostLedgerTest, ChargeNZeroCountIsNoop) {
  VirtualClock clock;
  CostLedger ledger(&clock);
  ledger.ChargeN(CostCategory::kTupleMove, 0, 1.0);
  ledger.ChargeN(CostCategory::kTupleMove, -5, 1.0);
  EXPECT_EQ(clock.Now(), 0.0);
  EXPECT_EQ(ledger.Count(CostCategory::kTupleMove), 0);
}

TEST(CostLedgerTest, ReportMentionsCategories) {
  CostLedger ledger(nullptr);
  ledger.Charge(CostCategory::kBlockRead, 1.0);
  std::string report = ledger.Report();
  EXPECT_NE(report.find("block_read"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(CostModelTest, DefaultsArePositive) {
  CostModel m = CostModel::Sun360();
  EXPECT_GT(m.block_read_s, 0.0);
  EXPECT_GT(m.block_write_s, 0.0);
  EXPECT_GT(m.predicate_compare_s, 0.0);
  EXPECT_GT(m.sort_compare_s, 0.0);
  EXPECT_GT(m.merge_compare_s, 0.0);
  EXPECT_GT(m.tuple_move_s, 0.0);
  EXPECT_GT(m.stage_overhead_s, 0.0);
}

TEST(CostModelTest, ReadsDominateComparisons) {
  // Sanity: one block read should cost much more than one comparison, or
  // the cluster-sampling rationale evaporates.
  CostModel m = CostModel::Sun360();
  EXPECT_GT(m.block_read_s, 20 * m.sort_compare_s);
}

}  // namespace
}  // namespace tcq
