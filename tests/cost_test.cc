#include <gtest/gtest.h>

#include <cmath>

#include "cost/adaptive_model.h"
#include "cost/predictor.h"
#include "exec/staged.h"
#include "util/random.h"

namespace tcq {
namespace {

TEST(BlocksForFractionTest, RoundingAndClamping) {
  EXPECT_EQ(BlocksForFraction(0.0, 100), 0);
  EXPECT_EQ(BlocksForFraction(-0.5, 100), 0);
  EXPECT_EQ(BlocksForFraction(0.5, 100), 50);
  EXPECT_EQ(BlocksForFraction(0.004, 100), 0);
  EXPECT_EQ(BlocksForFraction(0.006, 100), 1);
  EXPECT_EQ(BlocksForFraction(1.5, 100), 100);
  EXPECT_EQ(BlocksForFraction(1.0, 2000), 2000);
}

TEST(SortCostUnitsTest, Shape) {
  EXPECT_EQ(SortCostUnits(0.0), 0.0);
  EXPECT_GT(SortCostUnits(100.0), 100.0);
  // Superlinear but subquadratic.
  EXPECT_GT(SortCostUnits(200.0), 2.0 * SortCostUnits(100.0) * 0.99);
  EXPECT_LT(SortCostUnits(200.0), 4.0 * SortCostUnits(100.0));
}

TEST(AdaptiveCostModelTest, InitialValuesScaled) {
  CostModel physical;
  AdaptiveCostModel::Options opts;
  opts.initial_scale = 2.0;
  AdaptiveCostModel m(physical, opts);
  EXPECT_DOUBLE_EQ(m.Coef(0, CostStep::kFetch), 2.0 * physical.block_read_s);
  EXPECT_DOUBLE_EQ(m.Coef(5, CostStep::kSort),
                   2.0 * physical.sort_compare_s);
}

TEST(AdaptiveCostModelTest, FirstObservationReplacesInitial) {
  CostModel physical;
  AdaptiveCostModel m(physical);
  m.Observe(3, CostStep::kMerge, 1000.0, 0.5);
  EXPECT_DOUBLE_EQ(m.Coef(3, CostStep::kMerge), 0.0005);
  // Other nodes unaffected.
  EXPECT_NE(m.Coef(4, CostStep::kMerge), 0.0005);
}

TEST(AdaptiveCostModelTest, EwmaBlendsSubsequentObservations) {
  CostModel physical;
  AdaptiveCostModel::Options opts;
  opts.ewma = 0.5;
  AdaptiveCostModel m(physical, opts);
  m.Observe(1, CostStep::kOutput, 100.0, 1.0);   // coef = 0.01
  m.Observe(1, CostStep::kOutput, 100.0, 3.0);   // obs 0.03 -> 0.02
  EXPECT_NEAR(m.Coef(1, CostStep::kOutput), 0.02, 1e-12);
}

TEST(AdaptiveCostModelTest, NonAdaptiveIgnoresObservations) {
  CostModel physical;
  AdaptiveCostModel::Options opts;
  opts.adaptive = false;
  AdaptiveCostModel m(physical, opts);
  double before = m.Coef(0, CostStep::kMerge);
  m.Observe(0, CostStep::kMerge, 100.0, 50.0);
  EXPECT_DOUBLE_EQ(m.Coef(0, CostStep::kMerge), before);
}

TEST(AdaptiveCostModelTest, IgnoresDegenerateObservations) {
  CostModel physical;
  AdaptiveCostModel m(physical);
  double before = m.Coef(0, CostStep::kSort);
  m.Observe(0, CostStep::kSort, 0.0, 5.0);
  m.Observe(0, CostStep::kSort, -10.0, 5.0);
  m.Observe(0, CostStep::kSort, 10.0, -5.0);
  EXPECT_DOUBLE_EQ(m.Coef(0, CostStep::kSort), before);
}

// ---------------------------------------------------------------------
// Predictor integration: after one observed stage, the adaptive formulas
// should predict the realized cost of the next stage closely.

Schema KV() {
  return Schema({{"k", DataType::kInt64, 0}, {"v", DataType::kInt64, 0}});
}

RelationPtr MakeUniformRel(const std::string& name, int64_t n,
                           uint64_t seed) {
  auto rel = Relation::Create(name, KV(), /*block_bytes=*/64);
  EXPECT_TRUE(rel.ok());
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    rel->AppendUnchecked({rng.UniformInt(0, 99), i});
  }
  return std::make_shared<Relation>(std::move(*rel));
}

std::vector<const Block*> SampleBlocks(const RelationPtr& rel, Rng* rng,
                                       int64_t count,
                                       std::vector<bool>* used) {
  std::vector<const Block*> out;
  std::vector<uint32_t> available;
  for (int64_t i = 0; i < rel->NumBlocks(); ++i) {
    if (!(*used)[static_cast<size_t>(i)]) {
      available.push_back(static_cast<uint32_t>(i));
    }
  }
  auto picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(available.size()),
      static_cast<uint32_t>(std::min<int64_t>(
          count, static_cast<int64_t>(available.size()))));
  for (uint32_t p : picks) {
    (*used)[available[p]] = true;
    out.push_back(rel->ViewBlock(available[p]).raw());
  }
  return out;
}

TEST(PredictorTest, SelectPredictionConvergesAfterOneStage) {
  Catalog catalog;
  auto rel = MakeUniformRel("R", 400, 7);  // 100 blocks of 4 tuples
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto term =
      Select(Scan("R"), CmpLiteral("k", CompareOp::kLt, int64_t{30}));

  VirtualClock clock;
  CostLedger ledger(&clock);
  CostModel physical;
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        &ledger, physical);
  ASSERT_TRUE(ev.ok());
  AdaptiveCostModel coefs(physical);
  Rng rng(11);
  std::vector<bool> used(static_cast<size_t>(rel->NumBlocks()), false);

  // Stage 1: 20 blocks; observe.
  double t0 = clock.Now();
  ASSERT_TRUE(
      (*ev)->ExecuteStage({{"R", SampleBlocks(rel, &rng, 20, &used)}}).ok());
  double realized1 = clock.Now() - t0;
  ASSERT_GT(realized1, 0.0);
  ObserveTermStage(**ev, &coefs);

  // Predict stage 2 at f = 0.2 (20 more blocks) using the *true* realized
  // selectivity as sel+.
  const StagedNode& root = (*ev)->root();
  double sel = static_cast<double>(root.cum_tuples) / root.cum_points;
  std::map<int, double> sel_plus{{root.id, sel}};
  auto prediction = PredictTermStageCost(**ev, 0.2, sel_plus, coefs);
  ASSERT_TRUE(prediction.ok());

  double t1 = clock.Now();
  ASSERT_TRUE(
      (*ev)->ExecuteStage({{"R", SampleBlocks(rel, &rng, 20, &used)}}).ok());
  double realized2 = clock.Now() - t1;
  // The prediction excludes block fetches (engine's job); compare to the
  // operator-side realized cost.
  double op_realized = root.stages[1].seconds;
  EXPECT_NEAR(prediction->seconds, op_realized, 0.25 * op_realized);
  EXPECT_DOUBLE_EQ(prediction->new_points, 80.0);
  (void)realized2;
}

TEST(PredictorTest, IntersectFullFulfillmentCostGrowsWithStage) {
  Catalog catalog;
  auto r1 = MakeUniformRel("R1", 400, 21);
  auto r2 = MakeUniformRel("R2", 400, 22);
  ASSERT_TRUE(catalog.Register(r1).ok());
  ASSERT_TRUE(catalog.Register(r2).ok());
  auto term = Intersect(Scan("R1"), Scan("R2"));
  CostModel physical;
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        nullptr, physical);
  ASSERT_TRUE(ev.ok());
  AdaptiveCostModel coefs(physical);
  Rng rng(31);
  std::vector<bool> used1(static_cast<size_t>(r1->NumBlocks()), false);
  std::vector<bool> used2(static_cast<size_t>(r2->NumBlocks()), false);

  const StagedNode& root = (*ev)->root();
  std::map<int, double> sel_plus{{root.id, 1e-4}};
  auto p0 = PredictTermStageCost(**ev, 0.1, sel_plus, coefs);
  ASSERT_TRUE(p0.ok());

  ASSERT_TRUE(
      (*ev)
          ->ExecuteStage({{"R1", SampleBlocks(r1, &rng, 10, &used1)},
                          {"R2", SampleBlocks(r2, &rng, 10, &used2)}})
          .ok());
  ObserveTermStage(**ev, &coefs);
  // At stage 2 the same fraction must cost more: full fulfillment merges
  // the new runs against all previous runs.
  auto p1 = PredictTermStageCost(**ev, 0.1, sel_plus, coefs);
  ASSERT_TRUE(p1.ok());
  EXPECT_GT(p1->new_points, p0->new_points);

  // And the predicted operator cost at stage 2 should approximate the
  // realized one.
  ASSERT_TRUE(
      (*ev)
          ->ExecuteStage({{"R1", SampleBlocks(r1, &rng, 10, &used1)},
                          {"R2", SampleBlocks(r2, &rng, 10, &used2)}})
          .ok());
  double realized = root.stages[1].seconds;
  EXPECT_NEAR(p1->seconds, realized, 0.35 * realized);
}

TEST(PredictorTest, MissingSelPlusIsError) {
  Catalog catalog;
  auto rel = MakeUniformRel("R", 100, 5);
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto term = Select(Scan("R"), CmpLiteral("k", CompareOp::kLt, int64_t{3}));
  CostModel physical;
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        nullptr, physical);
  ASSERT_TRUE(ev.ok());
  AdaptiveCostModel coefs(physical);
  auto p = PredictTermStageCost(**ev, 0.1, {}, coefs);
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PredictorTest, ScanFractionCappedByRemainingBlocks) {
  Catalog catalog;
  auto rel = MakeUniformRel("R", 40, 5);  // 10 blocks
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto term = Select(Scan("R"), CmpLiteral("k", CompareOp::kLt, int64_t{50}));
  CostModel physical;
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        nullptr, physical);
  ASSERT_TRUE(ev.ok());
  // Sample 8 of 10 blocks first.
  std::vector<const Block*> blocks;
  for (int64_t i = 0; i < 8; ++i) blocks.push_back(rel->ViewBlock(i).raw());
  ASSERT_TRUE((*ev)->ExecuteStage({{"R", blocks}}).ok());
  AdaptiveCostModel coefs(physical);
  const StagedNode& root = (*ev)->root();
  std::map<int, double> sel_plus{{root.id, 0.5}};
  // Asking for f = 0.5 (5 blocks) can only deliver the 2 remaining.
  auto p = PredictTermStageCost(**ev, 0.5, sel_plus, coefs);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->new_points, 8.0);  // 2 blocks × 4 tuples
}

}  // namespace
}  // namespace tcq
