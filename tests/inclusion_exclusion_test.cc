#include "ra/inclusion_exclusion.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tcq {
namespace {

PredicatePtr KeyLt(int64_t v) {
  return CmpLiteral("key", CompareOp::kLt, v);
}

/// Counts Union/Difference nodes in a tree.
int CountSetOps(const ExprPtr& e) {
  if (e == nullptr) return 0;
  int n = (e->kind == ExprKind::kUnion || e->kind == ExprKind::kDifference)
              ? 1
              : 0;
  return n + CountSetOps(e->left) + CountSetOps(e->right);
}

/// Verifies no ∪/− appears below a non-set-op node.
bool SetOpsAtTopOnly(const ExprPtr& e) {
  if (e == nullptr) return true;
  if (e->kind == ExprKind::kUnion || e->kind == ExprKind::kDifference) {
    return SetOpsAtTopOnly(e->left) && SetOpsAtTopOnly(e->right);
  }
  return !ContainsSetDifferenceOrUnion(e);
}

TEST(PullUpTest, NoSetOpsIsIdentity) {
  auto e = Select(Scan("r1"), KeyLt(5));
  auto r = PullUpSetOps(e);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ExprEquals(*r, e));
}

TEST(PullUpTest, SelectOverUnionDistributes) {
  auto e = Select(Union(Scan("r1"), Scan("r2")), KeyLt(5));
  auto r = PullUpSetOps(e);
  ASSERT_TRUE(r.ok());
  auto expected = Union(Select(Scan("r1"), KeyLt(5)),
                        Select(Scan("r2"), KeyLt(5)));
  EXPECT_TRUE(ExprEquals(*r, expected)) << (*r)->ToString();
}

TEST(PullUpTest, SelectOverDifferenceDistributes) {
  auto e = Select(Difference(Scan("r1"), Scan("r2")), KeyLt(5));
  auto r = PullUpSetOps(e);
  ASSERT_TRUE(r.ok());
  auto expected = Difference(Select(Scan("r1"), KeyLt(5)),
                             Select(Scan("r2"), KeyLt(5)));
  EXPECT_TRUE(ExprEquals(*r, expected));
}

TEST(PullUpTest, JoinOverUnionBothSides) {
  std::vector<std::pair<std::string, std::string>> keys{{"key", "key"}};
  auto e = Join(Union(Scan("r1"), Scan("r2")),
                Union(Scan("r3"), Scan("r4")), keys);
  auto r = PullUpSetOps(e);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SetOpsAtTopOnly(*r)) << (*r)->ToString();
  // (r1∪r2)⋈(r3∪r4) -> 4 joins combined by 3 unions.
  EXPECT_EQ(CountSetOps(*r), 3);
}

TEST(PullUpTest, ProjectOverUnionDistributes) {
  auto e = Project(Union(Scan("r1"), Scan("r2")), {"key"});
  auto r = PullUpSetOps(e);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SetOpsAtTopOnly(*r));
}

TEST(PullUpTest, ProjectOverDifferenceRejected) {
  auto e = Project(Difference(Scan("r1"), Scan("r2")), {"key"});
  EXPECT_EQ(PullUpSetOps(e).status().code(), StatusCode::kNotImplemented);
}

TEST(PullUpTest, NestedPullUp) {
  auto e = Select(Intersect(Union(Scan("r1"), Scan("r2")), Scan("r3")),
                  KeyLt(9));
  auto r = PullUpSetOps(e);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SetOpsAtTopOnly(*r)) << (*r)->ToString();
}

TEST(ExpandTest, PlainExpressionSingleTerm) {
  auto e = Select(Scan("r1"), KeyLt(5));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 1u);
  EXPECT_EQ((*terms)[0].sign, 1);
  EXPECT_TRUE(ExprEquals((*terms)[0].expr, e));
}

TEST(ExpandTest, UnionThreeTerms) {
  // COUNT(r1 ∪ r2) = COUNT(r1) + COUNT(r2) − COUNT(r1 ∩ r2)
  auto terms = ExpandCount(Union(Scan("r1"), Scan("r2")));
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 3u);
  int plus = 0, minus = 0;
  for (const auto& t : *terms) {
    EXPECT_FALSE(ContainsSetDifferenceOrUnion(t.expr));
    if (t.sign > 0) {
      plus += t.sign;
    } else {
      minus -= t.sign;
    }
  }
  EXPECT_EQ(plus, 2);
  EXPECT_EQ(minus, 1);
}

TEST(ExpandTest, DifferenceTwoTerms) {
  // COUNT(r1 − r2) = COUNT(r1) − COUNT(r1 ∩ r2)
  auto terms = ExpandCount(Difference(Scan("r1"), Scan("r2")));
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 2u);
  EXPECT_EQ((*terms)[0].sign, 1);
  EXPECT_TRUE(ExprEquals((*terms)[0].expr, Scan("r1")));
  EXPECT_EQ((*terms)[1].sign, -1);
  EXPECT_TRUE(ExprEquals((*terms)[1].expr, Intersect(Scan("r1"), Scan("r2"))));
}

TEST(ExpandTest, SelectionPushedIntoTerms) {
  auto e = Select(Union(Scan("r1"), Scan("r2")), KeyLt(5));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 3u);
  // Every term must contain a Select over its scans.
  for (const auto& t : *terms) {
    EXPECT_FALSE(ContainsSetDifferenceOrUnion(t.expr));
  }
}

TEST(ExpandTest, ThreeWayUnionInclusionExclusion) {
  // |A∪B∪C| = |A|+|B|+|C| −|A∩B|−|A∩C|−|B∩C| +|A∩B∩C|
  auto e = Union(Union(Scan("r1"), Scan("r2")), Scan("r3"));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  int total_sign = 0;
  int singles = 0, pairs = 0, triples = 0;
  for (const auto& t : *terms) {
    std::vector<std::string> scans;
    CollectScans(t.expr, &scans);
    total_sign += t.sign;
    if (scans.size() == 1) singles += t.sign;
    if (scans.size() == 2) pairs += t.sign;
    if (scans.size() == 3) triples += t.sign;
  }
  EXPECT_EQ(singles, 3);
  EXPECT_EQ(pairs, -3);
  EXPECT_EQ(triples, 1);
  EXPECT_EQ(total_sign, 1);
}

TEST(ExpandTest, DifferenceOfUnion) {
  // (A ∪ B) − C: signed counts must sum to the right combination.
  auto e = Difference(Union(Scan("r1"), Scan("r2")), Scan("r3"));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  for (const auto& t : *terms) {
    EXPECT_FALSE(ContainsSetDifferenceOrUnion(t.expr));
  }
  // Signed sum over all terms with k scans: 2 singles, then the
  // inclusion-exclusion corrections.
  int total_sign = 0;
  for (const auto& t : *terms) total_sign += t.sign;
  // |A∪B−C| as signed measure: |A|+|B|−|A∩B|−|A∩C|−|B∩C|+|A∩B∩C| -> sum 0.
  EXPECT_EQ(total_sign, 0);
}

TEST(ExpandTest, SelectHoistingCollapsesSharedScans) {
  // σp(A ∩ (B ∪ C)) expands to terms whose union cross term would be
  // σp(A∩B) ∩ σp(A∩C); hoisting σp through ∩ and deduplicating operands
  // must collapse it to σp(A∩B∩C) — one scan per relation per term.
  auto e = Select(Intersect(Scan("A"), Union(Scan("B"), Scan("C"))),
                  KeyLt(7));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  for (const auto& t : *terms) {
    std::vector<std::string> scans;
    CollectScans(t.expr, &scans);
    std::sort(scans.begin(), scans.end());
    EXPECT_EQ(std::unique(scans.begin(), scans.end()), scans.end())
        << t.expr->ToString();
  }
}

TEST(ExpandTest, JoinFactoringCollapsesSharedSides) {
  // A ⋈ (B ∪ C): the cross term (A⋈B) ∩ (A⋈C) must factor to
  // A ⋈ (B∩C), so A appears once per term.
  std::vector<std::pair<std::string, std::string>> keys{{"key", "key"}};
  auto e = Join(Scan("A"), Union(Scan("B"), Scan("C")), keys);
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 3u);
  for (const auto& t : *terms) {
    std::vector<std::string> scans;
    CollectScans(t.expr, &scans);
    std::sort(scans.begin(), scans.end());
    EXPECT_EQ(std::unique(scans.begin(), scans.end()), scans.end())
        << t.expr->ToString();
  }
}

TEST(ExpandTest, DuplicatePredicatesDeduplicated) {
  // σp(A) ∪ σp(B): the cross term σp(A) ∩ σp(B) becomes σp(A∩B) with the
  // predicate applied once.
  auto e = Union(Select(Scan("A"), KeyLt(5)), Select(Scan("B"), KeyLt(5)));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  for (const auto& t : *terms) {
    // Count select nodes along the spine.
    int selects = 0;
    ExprPtr cur = t.expr;
    while (cur->kind == ExprKind::kSelect) {
      ++selects;
      cur = cur->left;
    }
    EXPECT_LE(selects, 1) << t.expr->ToString();
  }
}

TEST(ExpandTest, IdenticalTermsMerged) {
  // A ∪ A expands to 2·COUNT(A) − COUNT(A∩A); terms are merged by
  // structural equality so at most two terms remain.
  auto e = Union(Scan("r1"), Scan("r1"));
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  EXPECT_LE(terms->size(), 2u);
}

}  // namespace
}  // namespace tcq
