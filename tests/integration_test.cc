// End-to-end integration across module boundaries: relations persisted to
// disk, reloaded, queried through the textual parser, and estimated under
// a time quota — the full path a downstream user of the library takes.

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/error_constrained.h"
#include "engine/executor.h"
#include "exec/exact.h"
#include "ra/parser.h"
#include "storage/page_codec.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


std::string TempDir(const char* leaf) {
  auto dir = std::filesystem::temp_directory_path() / "tcq_integration" /
             leaf;
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(IntegrationTest, DiskToParserToEngine) {
  // Build the paper workload, persist it, reload it, and answer a parsed
  // query under a quota against the reloaded catalog.
  auto w = MakeIntersectionWorkload(5000, 21);
  ASSERT_TRUE(w.ok());
  std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveCatalog(w->catalog, dir).ok());
  auto catalog = LoadCatalog(dir);
  ASSERT_TRUE(catalog.ok());

  auto query = ParseQuery("SELECT[key < 3000](r1)");
  ASSERT_TRUE(query.ok());
  auto exact = ExactCount(*query, *catalog);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 3000);

  ExecutorOptions options;
  options.strategy.one_at_a_time.d_beta = 24.0;
  options.seed = 4;
  auto r = RunTimeConstrainedCount(*query, *catalog, WithQuota(options, 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 3000.0, 1200.0);
  EXPECT_GT(r->stages_counted, 0);
}

TEST(IntegrationTest, ParsedSetQueryThroughEngine) {
  auto w = MakeIntersectionWorkload(5000, 22);
  ASSERT_TRUE(w.ok());
  auto query = ParseQuery("(r1 UNION r2) MINUS (r1 INTERSECT r2)");
  ASSERT_TRUE(query.ok());
  auto exact = ExactCount(*query, w->catalog);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 10000);  // symmetric difference: 2 × 5,000 unique
  ExecutorOptions options;
  options.seed = 5;
  auto r = RunTimeConstrainedCount(*query, w->catalog, WithQuota(options, 1e9));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 10000.0);
}

TEST(IntegrationTest, ParsedAggregateOverReloadedCatalog) {
  auto w = MakeSelectionWorkload(2000, 23);
  ASSERT_TRUE(w.ok());
  std::string dir = TempDir("aggregate");
  ASSERT_TRUE(SaveCatalog(w->catalog, dir).ok());
  auto catalog = LoadCatalog(dir);
  ASSERT_TRUE(catalog.ok());
  auto query = ParseQuery("SELECT[key < 2000](r1)");
  ASSERT_TRUE(query.ok());
  auto r = RunTimeConstrainedAggregate(*query, AggregateSpec::Avg("key"), *catalog, WithQuota(ExecutorOptions(), 1e9));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 999.5);
}

TEST(IntegrationTest, ErrorConstrainedOverParsedQuery) {
  auto w = MakeSelectionWorkload(2000, 24);
  ASSERT_TRUE(w.ok());
  auto query = ParseQuery("SELECT[key < 2000](r1)");
  ASSERT_TRUE(query.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.2;
  options.seed = 6;
  auto r = RunErrorConstrainedCount(*query, w->catalog, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->met_target);
  EXPECT_NEAR(r->estimate, 2000.0, 600.0);
}

TEST(IntegrationTest, HybridAndPrecisionComposeWithHardDeadline) {
  // All the stopping/fulfillment options together on one query.
  auto w = MakeIntersectionWorkload(10000, 25);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options;
  options.strategy.one_at_a_time.d_beta = 48.0;
  options.final_partial_stages = true;
  options.precision.rel_halfwidth = 0.10;
  options.deadline_mode = DeadlineMode::kHard;
  options.seed = 7;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(options, 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stages_counted, 0);
  EXPECT_LE(r->utilization, 1.0);
}

TEST(IntegrationTest, WallClockOverParsedQuery) {
  auto w = MakeSelectionWorkload(2000, 26);
  ASSERT_TRUE(w.ok());
  auto query = ParseQuery("SELECT[key >= 8000](r1)");
  ASSERT_TRUE(query.ok());
  ExecutorOptions options;
  options.use_wall_clock = true;
  options.physical = CostModel::ModernInMemory();
  options.seed = 8;
  auto r = RunTimeConstrainedCount(*query, w->catalog, WithQuota(options, 0.050));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stages_counted, 0);
  EXPECT_NEAR(r->estimate, 2000.0, 1500.0);
}

}  // namespace
}  // namespace tcq
