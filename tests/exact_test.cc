#include "exec/exact.h"

#include <gtest/gtest.h>

#include "ra/inclusion_exclusion.h"
#include "util/random.h"

namespace tcq {
namespace {

Schema KV() {
  return Schema({{"k", DataType::kInt64, 0}, {"v", DataType::kInt64, 0}});
}

RelationPtr MakeRel(const std::string& name,
                    const std::vector<std::pair<int64_t, int64_t>>& rows,
                    int block_bytes = 64) {
  auto rel = Relation::Create(name, KV(), block_bytes);
  EXPECT_TRUE(rel.ok());
  for (const auto& [k, v] : rows) {
    rel->AppendUnchecked({k, v});
  }
  return std::make_shared<Relation>(std::move(*rel));
}

class ExactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Duplicate-free relations (classical set-based RA).
    ASSERT_TRUE(catalog_
                    .Register(MakeRel(
                        "A", {{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}))
                    .ok());
    ASSERT_TRUE(
        catalog_.Register(MakeRel("B", {{3, 30}, {4, 40}, {5, 51}, {6, 60}}))
            .ok());
    ASSERT_TRUE(catalog_
                    .Register(MakeRel("C", {{1, 7}, {3, 30}, {6, 60}}))
                    .ok());
  }
  Catalog catalog_;
};

TEST_F(ExactTest, ScanCount) {
  auto c = ExactCount(Scan("A"), catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 5);
}

TEST_F(ExactTest, SelectCount) {
  auto e = Select(Scan("A"), CmpLiteral("k", CompareOp::kLe, int64_t{3}));
  auto c = ExactCount(e, catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 3);
}

TEST_F(ExactTest, ProjectDeduplicates) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.Register(MakeRel("D", {{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 2}}))
          .ok());
  auto c = ExactCount(Project(Scan("D"), {"v"}), catalog);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 2);
}

TEST_F(ExactTest, JoinCount) {
  // A.k = B.k matches on {3,4,5}.
  auto e = Join(Scan("A"), Scan("B"), {{"k", "k"}});
  auto c = ExactCount(e, catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 3);
}

TEST_F(ExactTest, JoinSchemaAndValues) {
  auto e = Join(Scan("A"), Scan("B"), {{"k", "k"}});
  auto r = EvaluateExact(e, catalog_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema.num_columns(), 4);
  for (const Tuple& t : r->tuples) {
    EXPECT_EQ(std::get<int64_t>(t[0]), std::get<int64_t>(t[2]));
  }
}

TEST_F(ExactTest, IntersectCount) {
  // Full-tuple equality: (3,30) and (4,40) only ((5,50) vs (5,51) differ).
  auto c = ExactCount(Intersect(Scan("A"), Scan("B")), catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 2);
}

TEST_F(ExactTest, UnionCount) {
  auto c = ExactCount(Union(Scan("A"), Scan("B")), catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 7);  // 5 + 4 - 2
}

TEST_F(ExactTest, DifferenceCount) {
  auto c = ExactCount(Difference(Scan("A"), Scan("B")), catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 3);  // 5 - 2
}

TEST_F(ExactTest, ComposedExpression) {
  // σ_{k<=4}(A) ⋈ B on k: A side {1..4}, B keys {3,4,5,6} -> matches 3,4.
  auto e = Select(Join(Scan("A"), Scan("B"), {{"k", "k"}}),
                  CmpLiteral("k", CompareOp::kLe, int64_t{4}));
  auto c = ExactCount(e, catalog_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 2);
}

TEST_F(ExactTest, InclusionExclusionIdentityHandChecked) {
  // COUNT(A ∪ B) computed exactly must equal the signed sum of the
  // expanded terms (each term evaluated exactly).
  auto e = Union(Scan("A"), Scan("B"));
  auto exact = ExactCount(e, catalog_);
  ASSERT_TRUE(exact.ok());
  auto terms = ExpandCount(e);
  ASSERT_TRUE(terms.ok());
  int64_t sum = 0;
  for (const auto& t : *terms) {
    auto c = ExactCount(t.expr, catalog_);
    ASSERT_TRUE(c.ok());
    sum += t.sign * *c;
  }
  EXPECT_EQ(sum, *exact);
}

/// Property sweep: on random duplicate-free relations, the signed sum of
/// inclusion-exclusion terms equals the exact count, for several nested
/// set expressions.
class InclusionExclusionPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InclusionExclusionPropertyTest, SignedSumMatchesExact) {
  Rng rng(GetParam());
  Catalog catalog;
  // Build three relations with random subsets of a small key domain so
  // overlaps are common. v is derived from k, keeping tuples duplicate-free.
  for (const std::string name : {"A", "B", "C"}) {
    std::vector<std::pair<int64_t, int64_t>> rows;
    for (int64_t k = 0; k < 30; ++k) {
      if (rng.UniformDouble() < 0.45) rows.push_back({k, k * 2});
    }
    ASSERT_TRUE(catalog.Register(MakeRel(name, rows)).ok());
  }
  std::vector<ExprPtr> exprs = {
      Union(Scan("A"), Scan("B")),
      Difference(Scan("A"), Scan("B")),
      Union(Union(Scan("A"), Scan("B")), Scan("C")),
      Difference(Union(Scan("A"), Scan("B")), Scan("C")),
      Union(Difference(Scan("A"), Scan("B")), Scan("C")),
      Intersect(Union(Scan("A"), Scan("B")), Scan("C")),
      Select(Union(Scan("A"), Scan("B")),
             CmpLiteral("k", CompareOp::kLt, int64_t{15})),
      Difference(Difference(Scan("A"), Scan("B")), Scan("C")),
  };
  for (const ExprPtr& e : exprs) {
    auto exact = ExactCount(e, catalog);
    ASSERT_TRUE(exact.ok()) << e->ToString();
    auto terms = ExpandCount(e);
    ASSERT_TRUE(terms.ok()) << e->ToString();
    int64_t sum = 0;
    for (const auto& t : *terms) {
      auto c = ExactCount(t.expr, catalog);
      ASSERT_TRUE(c.ok()) << t.expr->ToString();
      sum += t.sign * *c;
    }
    EXPECT_EQ(sum, *exact) << e->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionExclusionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace tcq
