#include "ra/predicate.h"

#include <gtest/gtest.h>

namespace tcq {
namespace {

Schema TestSchema() {
  return Schema({{"a", DataType::kInt64, 0},
                 {"b", DataType::kInt64, 0},
                 {"name", DataType::kString, 16}});
}

TEST(PredicateTest, CompareLiteralAllOps) {
  Schema s = TestSchema();
  Tuple t{int64_t{5}, int64_t{10}, std::string("x")};
  struct Case {
    CompareOp op;
    int64_t rhs;
    bool expected;
  } cases[] = {
      {CompareOp::kEq, 5, true},  {CompareOp::kEq, 6, false},
      {CompareOp::kNe, 5, false}, {CompareOp::kNe, 6, true},
      {CompareOp::kLt, 6, true},  {CompareOp::kLt, 5, false},
      {CompareOp::kLe, 5, true},  {CompareOp::kLe, 4, false},
      {CompareOp::kGt, 4, true},  {CompareOp::kGt, 5, false},
      {CompareOp::kGe, 5, true},  {CompareOp::kGe, 6, false},
  };
  for (const auto& c : cases) {
    auto p = CmpLiteral("a", c.op, c.rhs);
    auto bound = BoundPredicate::Bind(p, s);
    ASSERT_TRUE(bound.ok());
    EXPECT_EQ(bound->Eval(t), c.expected)
        << "op=" << CompareOpSymbol(c.op) << " rhs=" << c.rhs;
  }
}

TEST(PredicateTest, CompareColumns) {
  Schema s = TestSchema();
  auto p = CmpColumns("a", CompareOp::kLt, "b");
  auto bound = BoundPredicate::Bind(p, s);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Eval({int64_t{1}, int64_t{2}, std::string()}));
  EXPECT_FALSE(bound->Eval({int64_t{2}, int64_t{2}, std::string()}));
}

TEST(PredicateTest, StringComparison) {
  Schema s = TestSchema();
  auto p = CmpLiteral("name", CompareOp::kEq, std::string("bob"));
  auto bound = BoundPredicate::Bind(p, s);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Eval({int64_t{0}, int64_t{0}, std::string("bob")}));
  EXPECT_FALSE(bound->Eval({int64_t{0}, int64_t{0}, std::string("eve")}));
}

TEST(PredicateTest, BooleanConnectives) {
  Schema s = TestSchema();
  auto lt = CmpLiteral("a", CompareOp::kLt, int64_t{10});
  auto gt = CmpLiteral("b", CompareOp::kGt, int64_t{0});
  Tuple both{int64_t{5}, int64_t{5}, std::string()};
  Tuple neither{int64_t{15}, int64_t{-5}, std::string()};
  Tuple onlyA{int64_t{5}, int64_t{-5}, std::string()};

  auto and_bound = BoundPredicate::Bind(And(lt, gt), s);
  ASSERT_TRUE(and_bound.ok());
  EXPECT_TRUE(and_bound->Eval(both));
  EXPECT_FALSE(and_bound->Eval(onlyA));
  EXPECT_FALSE(and_bound->Eval(neither));

  auto or_bound = BoundPredicate::Bind(Or(lt, gt), s);
  ASSERT_TRUE(or_bound.ok());
  EXPECT_TRUE(or_bound->Eval(both));
  EXPECT_TRUE(or_bound->Eval(onlyA));
  EXPECT_FALSE(or_bound->Eval(neither));

  auto not_bound = BoundPredicate::Bind(Not(lt), s);
  ASSERT_TRUE(not_bound.ok());
  EXPECT_FALSE(not_bound->Eval(both));
  EXPECT_TRUE(not_bound->Eval(neither));
}

TEST(PredicateTest, CountsComparisons) {
  Schema s = TestSchema();
  auto p = And(CmpLiteral("a", CompareOp::kLt, int64_t{1}),
               Or(CmpLiteral("b", CompareOp::kGt, int64_t{2}),
                  CmpColumns("a", CompareOp::kEq, "b")));
  auto bound = BoundPredicate::Bind(p, s);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->num_comparisons(), 3);
}

TEST(PredicateTest, BindRejectsUnknownColumn) {
  auto p = CmpLiteral("zz", CompareOp::kEq, int64_t{1});
  EXPECT_EQ(BoundPredicate::Bind(p, TestSchema()).status().code(),
            StatusCode::kNotFound);
}

TEST(PredicateTest, BindRejectsTypeMismatch) {
  auto p = CmpLiteral("a", CompareOp::kEq, std::string("text"));
  EXPECT_EQ(BoundPredicate::Bind(p, TestSchema()).status().code(),
            StatusCode::kInvalidArgument);
  auto q = CmpColumns("a", CompareOp::kEq, "name");
  EXPECT_EQ(BoundPredicate::Bind(q, TestSchema()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PredicateTest, BindRejectsNull) {
  EXPECT_FALSE(BoundPredicate::Bind(nullptr, TestSchema()).ok());
}

TEST(PredicateTest, ToStringReadable) {
  auto p = And(CmpLiteral("a", CompareOp::kLt, int64_t{7}),
               Not(CmpColumns("a", CompareOp::kEq, "b")));
  EXPECT_EQ(p->ToString(), "(a < 7 AND NOT (a = b))");
}

}  // namespace
}  // namespace tcq
