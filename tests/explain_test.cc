// Session::Explain / QueryBuilder::Explain — the planner's stage-0 view:
// runs the strategy and Sample-Size-Determine over the priors without
// drawing a sample, and agrees with a real run wherever the real run has
// not yet learned anything (stage 1 uses exactly the same priors).

#include <gtest/gtest.h>

#include <string>

#include "api/tcq.h"
#include "engine/executor.h"
#include "workload/generators.h"

namespace tcq {
namespace {

Session MakeSession(int64_t tuples = 2000, uint64_t seed = 7) {
  auto workload = MakeIntersectionWorkload(tuples, seed);
  EXPECT_TRUE(workload.ok());
  return Session(std::move(workload->catalog));
}

TEST(ExplainTest, PredictsStagesWithoutRunning) {
  Session session = MakeSession();
  auto plan = session.Explain("r1 INTERSECT r2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->strategy.empty());
  EXPECT_EQ(plan->quota_s, 5.0);
  EXPECT_EQ(plan->num_sampled_terms, 1);
  EXPECT_GT(plan->total_blocks, 0);
  ASSERT_GE(plan->stages.size(), 1u);
  const StagePrediction& first = plan->stages[0];
  EXPECT_EQ(first.index, 0);  // stage indices are 0-based, as in a run
  EXPECT_EQ(first.time_left_before, 5.0);
  EXPECT_GT(first.planned_fraction, 0.0);
  EXPECT_GT(first.blocks_planned, 0);
  // Explaining again is free of side effects: identical output.
  auto again = session.Explain("r1 INTERSECT r2");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(plan->ToString(), again->ToString());
}

TEST(ExplainTest, FirstStageMatchesARealRunsFirstStage) {
  // Stage 1 of a real run plans from the same priors EXPLAIN uses, so the
  // first predicted stage must coincide with the first executed one.
  Session session = MakeSession();
  auto plan = session.Query("r1 INTERSECT r2").WithQuota(2.0).Explain();
  auto run = session.Query("r1 INTERSECT r2").WithQuota(2.0).WithSeed(3).Run();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GE(plan->stages.size(), 1u);
  ASSERT_GE(run->stages().size(), 1u);
  const StagePrediction& predicted = plan->stages[0];
  const StageReport& actual = run->stages()[0];
  EXPECT_EQ(predicted.time_left_before, actual.time_left_before);
  EXPECT_EQ(predicted.planned_fraction, actual.planned_fraction);
  EXPECT_EQ(predicted.d_beta_used, actual.d_beta_used);
  EXPECT_EQ(predicted.predicted_seconds, actual.predicted_seconds);
}

TEST(ExplainTest, StageCountTracksTheActualRun) {
  // EXPLAIN does not simulate what the run learns from its samples, but
  // its stage count must stay in the same ballpark as a real run's: both
  // are driven by the same quota and block-exhaustion accounting.
  Session session = MakeSession();
  auto plan = session.Query("r1 INTERSECT r2").WithQuota(2.0).Explain();
  auto run = session.Query("r1 INTERSECT r2").WithQuota(2.0).WithSeed(3).Run();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(static_cast<int>(plan->stages.size()), 1);
  EXPECT_GE(run->stages_run, 1);
}

TEST(ExplainTest, ToStringIsHumanReadable) {
  Session session = MakeSession();
  auto plan = session.Explain("r1 INTERSECT r2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = plan->ToString();
  EXPECT_NE(text.find("strategy"), std::string::npos);
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("quota"), std::string::npos);
}

TEST(ExplainTest, ConstantQueryNeedsNoStages) {
  // COUNT(r1) is answered from the catalog; the plan has no sampled terms.
  Session session = MakeSession();
  auto plan = session.Explain("r1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_sampled_terms, 0);
  EXPECT_EQ(plan->num_constant_terms, 1);
  EXPECT_EQ(plan->stages.size(), 0u);
}

TEST(ExplainTest, ParseErrorsCarryLineAndColumn) {
  Session session = MakeSession();
  auto plan = session.Explain("SELECT[key <\n  !2000](r1)");
  ASSERT_FALSE(plan.ok());
  const std::string message = plan.status().message();
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("column"), std::string::npos) << message;
}

TEST(ExplainTest, InvalidOptionsAreRejected) {
  Session session = MakeSession();
  auto plan = session.Query("r1 INTERSECT r2").WithQuota(-1.0).Explain();
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace tcq
