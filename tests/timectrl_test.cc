#include <gtest/gtest.h>

#include <cmath>

#include "exec/staged.h"
#include "timectrl/sample_size.h"
#include "timectrl/selectivity.h"
#include "timectrl/stopping.h"
#include "timectrl/strategy.h"
#include "workload/generators.h"

namespace tcq {
namespace {

std::unique_ptr<StagedTermEvaluator> MakeEval(const Workload& w,
                                              Fulfillment f,
                                              CostLedger* ledger) {
  auto ev = StagedTermEvaluator::Create(w.query, w.catalog, f, ledger,
                                        CostModel::Sun360());
  EXPECT_TRUE(ev.ok()) << ev.status().ToString();
  return std::move(*ev);
}

std::map<std::string, std::vector<const Block*>> FirstBlocks(
    const Catalog& catalog, const std::vector<std::string>& names,
    int64_t count) {
  std::map<std::string, std::vector<const Block*>> out;
  for (const std::string& name : names) {
    auto rel = catalog.Find(name);
    EXPECT_TRUE(rel.ok());
    std::vector<const Block*> blocks;
    for (int64_t i = 0; i < count && i < (*rel)->NumBlocks(); ++i) {
      blocks.push_back((*rel)->ViewBlock(i).raw());
    }
    out[name] = std::move(blocks);
  }
  return out;
}

TEST(ReviseSelectivitiesTest, FirstStageDefaults) {
  auto w = MakeSelectionWorkload(2000, 1);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  SelectivityOptions opts;
  auto sels = ReviseSelectivities(*ev, opts);
  // Select node is the root (id 0); scan has no entry.
  ASSERT_EQ(sels.size(), 1u);
  EXPECT_DOUBLE_EQ(sels.at(0), 1.0);
}

TEST(ReviseSelectivitiesTest, IntersectDefaultIsOneOverMax) {
  auto w = MakeIntersectionWorkload(1000, 2);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  SelectivityOptions opts;
  auto sels = ReviseSelectivities(*ev, opts);
  ASSERT_EQ(sels.size(), 1u);
  EXPECT_DOUBLE_EQ(sels.at(0), 1.0 / 10000.0);
}

TEST(ReviseSelectivitiesTest, JoinInitialOverridable) {
  auto w = MakeJoinWorkload(70000, 3);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  SelectivityOptions opts;
  opts.initial_join = 0.1;  // the paper's §5.C choice
  auto sels = ReviseSelectivities(*ev, opts);
  EXPECT_DOUBLE_EQ(sels.at(0), 0.1);
}

TEST(ReviseSelectivitiesTest, AfterStageUsesSampleRatio) {
  auto w = MakeSelectionWorkload(2000, 4);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  ASSERT_TRUE(ev->ExecuteStage(FirstBlocks(w->catalog, {"r1"}, 100)).ok());
  SelectivityOptions opts;
  auto sels = ReviseSelectivities(*ev, opts);
  const StagedNode& root = ev->root();
  EXPECT_DOUBLE_EQ(
      sels.at(0),
      static_cast<double>(root.cum_tuples) / root.cum_points);
  // ~20% of tuples qualify.
  EXPECT_NEAR(sels.at(0), 0.2, 0.1);
}

TEST(ReviseSelectivitiesTest, ZeroHitsGetPositiveBound) {
  // A selection with no qualifying tuples anywhere.
  auto w = MakeSelectionWorkload(0, 5);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  ASSERT_TRUE(ev->ExecuteStage(FirstBlocks(w->catalog, {"r1"}, 50)).ok());
  SelectivityOptions opts;
  auto sels = ReviseSelectivities(*ev, opts);
  EXPECT_GT(sels.at(0), 0.0);
  // 250 sampled points, beta 0.05: bound = 1 - 0.05^(1/250) ≈ 0.012.
  EXPECT_NEAR(sels.at(0), 1.0 - std::pow(0.05, 1.0 / 250.0), 1e-9);
}

TEST(PredictNodePointsTest, SelectNewPointsMatchFraction) {
  auto w = MakeSelectionWorkload(2000, 6);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  auto points = PredictNodePoints(*ev, 0.01);  // 20 of 2000 blocks
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points.at(0).new_points, 100.0);  // 20 blocks × 5
  EXPECT_DOUBLE_EQ(points.at(0).remaining_points, 10000.0);
}

TEST(PredictNodePointsTest, IntersectFullFulfillmentGrows) {
  auto w = MakeIntersectionWorkload(1000, 7);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  auto p1 = PredictNodePoints(*ev, 0.01);
  // Stage 1 at f=0.01: 100×100 points.
  EXPECT_DOUBLE_EQ(p1.at(0).new_points, 10000.0);
  ASSERT_TRUE(
      ev->ExecuteStage(FirstBlocks(w->catalog, {"r1", "r2"}, 20)).ok());
  // Stage 2 same fraction: (200·200 − 100·100) new points.
  auto p2 = PredictNodePoints(*ev, 0.01);
  EXPECT_DOUBLE_EQ(p2.at(0).new_points, 30000.0);
}

TEST(ComputeSelPlusTest, InflationGrowsWithDBeta) {
  auto w = MakeSelectionWorkload(2000, 8);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  ASSERT_TRUE(ev->ExecuteStage(FirstBlocks(w->catalog, {"r1"}, 100)).ok());
  SelectivityOptions opts;
  auto sel = ReviseSelectivities(*ev, opts);
  auto plus0 = ComputeSelPlus(*ev, sel, 0.05, 0.0);
  auto plus12 = ComputeSelPlus(*ev, sel, 0.05, 12.0);
  auto plus48 = ComputeSelPlus(*ev, sel, 0.05, 48.0);
  EXPECT_DOUBLE_EQ(plus0.at(0), sel.at(0));
  EXPECT_GT(plus12.at(0), plus0.at(0));
  EXPECT_GT(plus48.at(0), plus12.at(0));
  EXPECT_LE(plus48.at(0), 1.0);
}

TEST(ComputeSelPlusTest, ClampedAtOne) {
  auto w = MakeSelectionWorkload(9900, 9);
  ASSERT_TRUE(w.ok());
  auto ev = MakeEval(*w, Fulfillment::kFull, nullptr);
  ASSERT_TRUE(ev->ExecuteStage(FirstBlocks(w->catalog, {"r1"}, 10)).ok());
  SelectivityOptions opts;
  auto sel = ReviseSelectivities(*ev, opts);
  auto plus = ComputeSelPlus(*ev, sel, 0.01, 1000.0);
  EXPECT_DOUBLE_EQ(plus.at(0), 1.0);
}

// ---------------------------------------------------------------------

TEST(SampleSizeTest, TakesEverythingWhenCheap) {
  auto qcost = [](double f) -> Result<double> { return f * 1.0; };
  auto r = SampleSizeDetermine(qcost, /*time_left=*/10.0, 0.01, 0.8, 0.001);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->fraction, 0.8);
}

TEST(SampleSizeTest, ZeroWhenNothingFits) {
  auto qcost = [](double f) -> Result<double> { return 5.0 + f; };
  auto r = SampleSizeDetermine(qcost, 1.0, 0.01, 1.0, 0.001);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->fraction, 0.0);
}

TEST(SampleSizeTest, BisectsToBudget) {
  // cost = 100·f: budget 5 -> f = 0.05.
  auto qcost = [](double f) -> Result<double> { return 100.0 * f; };
  auto r = SampleSizeDetermine(qcost, 5.0, 0.001, 1.0, 1e-5);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->fraction, 0.05, 0.001);
  EXPECT_LE(r->predicted_seconds, 5.0);
}

TEST(SampleSizeTest, NeverExceedsBudget) {
  // Step-function cost (block granularity).
  auto qcost = [](double f) -> Result<double> {
    return 0.5 * std::floor(f * 100.0);
  };
  auto r = SampleSizeDetermine(qcost, 3.2, 0.01, 1.0, 0.01);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->predicted_seconds, 3.2);
  EXPECT_GT(r->fraction, 0.0);
}

TEST(SampleSizeTest, PropagatesErrors) {
  auto qcost = [](double) -> Result<double> {
    return Status::Internal("boom");
  };
  EXPECT_FALSE(SampleSizeDetermine(qcost, 1.0, 0.01, 1.0, 0.001).ok());
}

// ---------------------------------------------------------------------

StagePlanContext LinearContext(double time_left) {
  StagePlanContext ctx;
  ctx.next_stage = 0;
  ctx.time_left = time_left;
  ctx.quota = time_left;
  ctx.f_max = 1.0;
  ctx.f_min_step = 1e-4;
  ctx.epsilon = 0.001;
  // Cost grows with f and with d_beta.
  ctx.qcost = [](double f, double d_beta) -> Result<double> {
    return f * (100.0 + 10.0 * d_beta);
  };
  ctx.qcost_sigma = [](double f) -> Result<double> { return 20.0 * f; };
  return ctx;
}

TEST(StrategyTest, OneAtATimeLargerDBetaSmallerStage) {
  auto ctx = LinearContext(5.0);
  OneAtATimeStrategy s0({.d_beta = 0.0, .decay_with_time_left = false});
  OneAtATimeStrategy s48({.d_beta = 48.0, .decay_with_time_left = false});
  auto p0 = s0.PlanStage(ctx);
  auto p48 = s48.PlanStage(ctx);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p48.ok());
  EXPECT_GT(p0->fraction, p48->fraction);
  EXPECT_NEAR(p0->fraction, 0.05, 0.002);
  EXPECT_NEAR(p48->fraction, 5.0 / 580.0, 0.002);
}

TEST(StrategyTest, OneAtATimeDecaySchedule) {
  OneAtATimeStrategy s({.d_beta = 48.0, .decay_with_time_left = true});
  auto ctx = LinearContext(5.0);
  ctx.quota = 10.0;  // half the quota left -> effective d_beta 24
  auto p = s.PlanStage(ctx);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->d_beta_used, 24.0, 1e-9);
}

TEST(StrategyTest, SingleIntervalReservesSigma) {
  auto ctx = LinearContext(5.0);
  SingleIntervalStrategy s({.d_alpha = 1.0});
  auto p = s.PlanStage(ctx);
  ASSERT_TRUE(p.ok());
  // Solves 100f + 20f = 5 -> f ≈ 0.0417 < 0.05.
  EXPECT_NEAR(p->fraction, 5.0 / 120.0, 0.002);
}

TEST(StrategyTest, HeuristicSpendsGammaShare) {
  auto ctx = LinearContext(10.0);
  HeuristicStrategy s({.gamma = 0.5, .shrink = 0.7, .grow = 1.05,
                       .gamma_max = 0.9});
  auto p = s.PlanStage(ctx);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->fraction, 0.05, 0.002);  // 100f = 5 (half of 10)
  // After an overspend the share shrinks.
  s.OnStageOutcome(5.0, 6.0, /*overspent=*/true);
  EXPECT_NEAR(s.gamma(), 0.35, 1e-9);
  s.OnStageOutcome(5.0, 4.0, /*overspent=*/false);
  EXPECT_NEAR(s.gamma(), 0.3675, 1e-9);
}

// ---------------------------------------------------------------------

TEST(PrecisionStopTest, DisabledByDefault) {
  PrecisionStop stop;
  CountEstimate e;
  e.value = 100.0;
  e.variance = 1.0;
  EXPECT_FALSE(ShouldStopForPrecision(stop, e, std::nan("")));
}

TEST(PrecisionStopTest, RelativeHalfwidth) {
  PrecisionStop stop;
  stop.rel_halfwidth = 0.1;
  CountEstimate wide;
  wide.value = 100.0;
  wide.variance = 400.0;  // sd 20 -> half-width ~39
  CountEstimate narrow;
  narrow.value = 100.0;
  narrow.variance = 4.0;  // sd 2 -> half-width ~3.9
  EXPECT_FALSE(ShouldStopForPrecision(stop, wide, std::nan("")));
  EXPECT_TRUE(ShouldStopForPrecision(stop, narrow, std::nan("")));
}

TEST(PrecisionStopTest, AbsoluteHalfwidth) {
  PrecisionStop stop;
  stop.abs_halfwidth = 10.0;
  CountEstimate e;
  e.value = 1000.0;
  e.variance = 16.0;  // half-width ~7.8
  EXPECT_TRUE(ShouldStopForPrecision(stop, e, std::nan("")));
}

TEST(PrecisionStopTest, NoImprovement) {
  PrecisionStop stop;
  stop.min_improvement = 0.01;
  CountEstimate e;
  e.value = 100.0;
  e.variance = 1e6;
  EXPECT_FALSE(ShouldStopForPrecision(stop, e, std::nan("")));
  EXPECT_TRUE(ShouldStopForPrecision(stop, e, 100.5));
  EXPECT_FALSE(ShouldStopForPrecision(stop, e, 150.0));
}

}  // namespace
}  // namespace tcq
