// Randomized property tests: generate random RA expressions over small
// duplicate-free relations and check the system-level invariants that
// hold regardless of the expression shape:
//
//   P1  the signed sum of the inclusion–exclusion terms, each evaluated
//       exactly, equals the exact COUNT of the whole expression;
//   P2  the staged sampled evaluator at FULL COVERAGE (every block of
//       every relation in one stage) reproduces the exact COUNT for every
//       Union/Difference-free term;
//   P3  the full engine with an effectively unlimited quota returns the
//       exact COUNT;
//   P4  with a tight quota the engine still returns a finite estimate and
//       a valid trace.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "exec/exact.h"
#include "exec/staged.h"
#include "ra/inclusion_exclusion.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


/// Small relations so exact evaluation of deep trees stays fast. Keys are
/// drawn from a narrow domain so joins/intersections actually match;
/// tuples are duplicate-free (unique ids would break set-compatibility of
/// Union, so the whole tuple is (key, tag) with tag from a tiny domain
/// and duplicates removed).
Catalog MakeFuzzCatalog(Rng* rng) {
  Catalog catalog;
  Schema schema({{"key", DataType::kInt64, 0},
                 {"tag", DataType::kInt64, 0}});
  for (const std::string name : {"A", "B", "C"}) {
    auto rel = Relation::Create(name, schema, /*block_bytes=*/64);
    EXPECT_TRUE(rel.ok());
    std::vector<Tuple> rows;
    for (int64_t key = 0; key < 12; ++key) {
      for (int64_t tag = 0; tag < 3; ++tag) {
        if (rng->UniformDouble() < 0.5) {
          rows.push_back(Tuple{key, tag});
        }
      }
    }
    rng->Shuffle(rows);
    for (Tuple& row : rows) rel->AppendUnchecked(std::move(row));
    if (rel->NumTuples() == 0) rel->AppendUnchecked(Tuple{int64_t{0}, int64_t{0}});
    EXPECT_TRUE(
        catalog.Register(std::make_shared<Relation>(std::move(*rel))).ok());
  }
  return catalog;
}

/// Random expression over {A, B, C}. `depth` bounds the tree height.
/// Never puts Project over Difference (the rewriter rejects it by
/// design) — Project appears only as an optional outermost operator.
ExprPtr RandomExpr(Rng* rng, int depth, std::vector<std::string>* used) {
  const char* names[] = {"A", "B", "C"};
  if (depth <= 0 || rng->UniformDouble() < 0.25) {
    // Pick a relation not used yet (the sampled evaluator rejects
    // repeats within one term).
    for (int attempt = 0; attempt < 8; ++attempt) {
      std::string name = names[rng->Uniform(3)];
      bool seen = false;
      for (const auto& u : *used) seen |= (u == name);
      if (!seen) {
        used->push_back(name);
        return Scan(name);
      }
    }
    return nullptr;  // all three used
  }
  switch (rng->Uniform(4)) {
    case 0: {  // Select
      ExprPtr child = RandomExpr(rng, depth - 1, used);
      if (child == nullptr) return nullptr;
      auto pred = CmpLiteral("key", rng->UniformDouble() < 0.5
                                        ? CompareOp::kLt
                                        : CompareOp::kGe,
                             rng->UniformInt(2, 10));
      if (rng->UniformDouble() < 0.3) {
        pred = And(std::move(pred),
                   CmpLiteral("tag", CompareOp::kNe, rng->UniformInt(0, 2)));
      }
      return Select(std::move(child), std::move(pred));
    }
    case 1: {  // Union
      ExprPtr l = RandomExpr(rng, depth - 1, used);
      ExprPtr r = RandomExpr(rng, depth - 1, used);
      if (l == nullptr || r == nullptr) return nullptr;
      return Union(std::move(l), std::move(r));
    }
    case 2: {  // Intersect
      ExprPtr l = RandomExpr(rng, depth - 1, used);
      ExprPtr r = RandomExpr(rng, depth - 1, used);
      if (l == nullptr || r == nullptr) return nullptr;
      return Intersect(std::move(l), std::move(r));
    }
    default: {  // Difference
      ExprPtr l = RandomExpr(rng, depth - 1, used);
      ExprPtr r = RandomExpr(rng, depth - 1, used);
      if (l == nullptr || r == nullptr) return nullptr;
      return Difference(std::move(l), std::move(r));
    }
  }
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, InvariantsHold) {
  Rng rng(GetParam() * 7919 + 13);
  Catalog catalog = MakeFuzzCatalog(&rng);
  int checked = 0;
  for (int attempt = 0; attempt < 40 && checked < 12; ++attempt) {
    std::vector<std::string> used;
    ExprPtr expr = RandomExpr(&rng, 3, &used);
    if (expr == nullptr) continue;
    auto exact = ExactCount(expr, catalog);
    ASSERT_TRUE(exact.ok()) << expr->ToString();

    // P1: inclusion–exclusion identity on exact evaluation.
    auto terms = ExpandCount(expr);
    ASSERT_TRUE(terms.ok()) << expr->ToString();
    int64_t signed_sum = 0;
    for (const auto& term : *terms) {
      auto c = ExactCount(term.expr, catalog);
      ASSERT_TRUE(c.ok()) << term.expr->ToString();
      signed_sum += term.sign * *c;
    }
    EXPECT_EQ(signed_sum, *exact) << expr->ToString();

    // P2: every term at full coverage matches its exact count.
    for (const auto& term : *terms) {
      auto ev = StagedTermEvaluator::Create(term.expr, catalog,
                                            Fulfillment::kFull, nullptr,
                                            CostModel::Deterministic());
      ASSERT_TRUE(ev.ok()) << term.expr->ToString();
      std::map<std::string, std::vector<const Block*>> blocks;
      std::vector<std::string> scans;
      CollectScans(term.expr, &scans);
      for (const std::string& name : scans) {
        auto rel = catalog.Find(name);
        ASSERT_TRUE(rel.ok());
        std::vector<const Block*> all;
        for (int64_t i = 0; i < (*rel)->NumBlocks(); ++i) {
          all.push_back((*rel)->ViewBlock(i).raw());
        }
        blocks[name] = std::move(all);
      }
      ASSERT_TRUE((*ev)->ExecuteStage(blocks).ok());
      auto term_exact = ExactCount(term.expr, catalog);
      ASSERT_TRUE(term_exact.ok());
      EXPECT_EQ((*ev)->cum_hits(), *term_exact) << term.expr->ToString();
      EXPECT_DOUBLE_EQ((*ev)->cum_points(), (*ev)->total_points());
    }

    // P3: the engine with an unlimited quota is exact.
    ExecutorOptions generous;
    generous.seed = GetParam();
    auto full = RunTimeConstrainedCount(expr, catalog, WithQuota(generous, 1e9));
    ASSERT_TRUE(full.ok()) << expr->ToString();
    EXPECT_DOUBLE_EQ(full->estimate, static_cast<double>(*exact))
        << expr->ToString();

    // P4: a tight quota still yields a sane result.
    ExecutorOptions tight;
    tight.seed = GetParam() + 1;
    auto quick = RunTimeConstrainedCount(expr, catalog, WithQuota(tight, 2.0));
    ASSERT_TRUE(quick.ok()) << expr->ToString();
    EXPECT_TRUE(std::isfinite(quick->estimate));
    EXPECT_EQ(static_cast<int>(quick->stages().size()), quick->stages_run);

    ++checked;
  }
  EXPECT_GE(checked, 8) << "random generator produced too few queries";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tcq
