// Hybrid stage-0 selectivity predictor (DESIGN.md §12): chooser
// convergence on a drifting query stream, predictor-off bit-identity
// across thread counts under warm start and fault injection, and the
// sel⁺ edge-case fixes that rode along (zero-prior sanitizing, the
// exhausted-side m = 0 guard, the intersect stage-1 fallback).

#include "cost/sel_predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "api/tcq.h"
#include "cache/signature.h"
#include "cache/warm_start.h"
#include "engine/executor.h"
#include "exec/staged.h"
#include "ra/expr.h"
#include "ra/predicate.h"
#include "sim/ledger.h"
#include "timectrl/selectivity.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace tcq {
namespace {

ExprPtr KeyBelow(int64_t bound) {
  return Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, bound));
}

// ---------------------------------------------------------------------
// Options and structural signatures.

TEST(SelPredictorOptionsTest, ValidateRejectsNonsense) {
  SelPredictorOptions good;
  EXPECT_TRUE(good.Validate().ok());

  SelPredictorOptions bad = good;
  bad.max_ngram = 0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.table_size = 1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.error_alpha = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.width_scale_min = 0.8;
  bad.width_scale_max = 0.5;  // min > max
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SelPredictorTest, StructuralSignatureStripsPredicates) {
  ExprPtr a = KeyBelow(100);
  ExprPtr b = KeyBelow(7000);
  EXPECT_EQ(StructuralSignature(*a), StructuralSignature(*b));
  // Canonical signatures, in contrast, must differ (different constants).
  EXPECT_FALSE(CanonicalSignature(*a) == CanonicalSignature(*b));
  // Different shape or relation set changes the structural key.
  ExprPtr c = Intersect(Scan("r1"), Scan("r2"));
  EXPECT_NE(StructuralSignature(*a), StructuralSignature(*c));
  // Commutative children order-insensitively.
  ExprPtr d = Intersect(Scan("r2"), Scan("r1"));
  EXPECT_EQ(StructuralSignature(*c), StructuralSignature(*d));
}

// ---------------------------------------------------------------------
// Chooser convergence on a drifting stream.

// Two regimes A/B alternate per epoch. Each epoch starts with a
// regime-specific marker query, then the shared main query runs. The
// exact-signature prior is always one regime stale; the 2-gram history
// context (marker, main) is regime-specific, so after one full A/B cycle
// the history component predicts the main query's new-regime selectivity
// at the epoch boundary and the chooser should learn to prefer it.
TEST(SelPredictorTest, ChooserConvergesOnDriftingStream) {
  SelPredictorOptions options;
  options.enabled = true;
  SelPredictor predictor(options);

  const ExprPtr marker_a = KeyBelow(100);
  const ExprPtr marker_b = KeyBelow(200);
  const ExprPtr main_q = KeyBelow(150);
  const std::string structural = StructuralSignature(*main_q);
  const double sel_a = 0.1;
  const double sel_b = 0.5;

  std::optional<double> prior;  // simulated warm-start prior (stale)
  SelPrediction last_epoch_start;
  for (int epoch = 0; epoch < 8; ++epoch) {
    const bool regime_a = (epoch % 2) == 0;
    const double realized = regime_a ? sel_a : sel_b;
    const ExprPtr& marker = regime_a ? marker_a : marker_b;

    // Marker run: one stage.
    predictor.BeginQuery(CanonicalSignature(*marker));
    (void)predictor.Predict(CanonicalSignature(*marker),
                            StructuralSignature(*marker), std::nullopt,
                            std::nullopt, 1.0);
    predictor.Update(CanonicalSignature(*marker),
                     StructuralSignature(*marker), realized);

    // Main run: three stages; stage 0 has no observation yet.
    predictor.BeginQuery(CanonicalSignature(*main_q));
    last_epoch_start =
        predictor.Predict(CanonicalSignature(*main_q), structural,
                          std::nullopt, prior, 1.0);
    predictor.Update(CanonicalSignature(*main_q), structural, realized);
    for (int stage = 1; stage < 3; ++stage) {
      (void)predictor.Predict(CanonicalSignature(*main_q), structural,
                              realized, prior, 1.0);
      predictor.Update(CanonicalSignature(*main_q), structural, realized);
    }
    prior = realized;  // RecordPrior at end of run: stale next epoch
  }

  // Final epoch is regime B (epoch 7): the stale prior says 0.1, the
  // history context (marker_b, main) says 0.5.
  EXPECT_EQ(last_epoch_start.component, SelComponent::kHistory);
  EXPECT_TRUE(last_epoch_start.history_hit);
  EXPECT_NEAR(last_epoch_start.selectivity, sel_b, 0.05);
  // Confidence has accrued, so the inflation width dropped below the
  // cold maximum.
  EXPECT_GT(last_epoch_start.confidence, 0.0);
  EXPECT_LT(last_epoch_start.width_scale, options.width_scale_max);

  SelPredictorStats stats = predictor.stats();
  EXPECT_GT(stats.predictions, 0);
  EXPECT_GT(stats.updates, 0);
  EXPECT_GT(stats.history_hits, 0);
  EXPECT_GT(stats.chooser_entries, 0);
}

TEST(SelPredictorTest, PeekDoesNotMutate) {
  SelPredictorOptions options;
  options.enabled = true;
  SelPredictor predictor(options);
  const ExprPtr q = KeyBelow(500);

  predictor.BeginQuery(CanonicalSignature(*q));
  (void)predictor.Predict(CanonicalSignature(*q), StructuralSignature(*q),
                          std::nullopt, std::nullopt, 1.0);
  predictor.Update(CanonicalSignature(*q), StructuralSignature(*q), 0.25);
  SelPredictorStats before = predictor.stats();

  SelPrediction peeked = predictor.Peek(
      CanonicalSignature(*q), CanonicalSignature(*q),
      StructuralSignature(*q), std::nullopt, std::nullopt, 1.0);
  (void)peeked;
  SelPredictorStats after = predictor.stats();
  EXPECT_EQ(after.predictions, before.predictions);
  EXPECT_EQ(after.updates, before.updates);
  EXPECT_EQ(after.history_hits, before.history_hits);
  EXPECT_EQ(after.history_misses, before.history_misses);
}

// ---------------------------------------------------------------------
// Predictor-off bit-identity at threads 1|4|8 under warm start and
// fault injection.

void ExpectIdenticalResults(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.variance, b.variance);
  EXPECT_EQ(a.ci.lo, b.ci.lo);
  EXPECT_EQ(a.ci.hi, b.ci.hi);
  EXPECT_EQ(a.stages_run, b.stages_run);
  EXPECT_EQ(a.stages_counted, b.stages_counted);
  EXPECT_EQ(a.overspent, b.overspent);
  EXPECT_EQ(a.blocks_sampled, b.blocks_sampled);
  EXPECT_EQ(a.blocks_wasted, b.blocks_wasted);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.degraded, b.degraded);
  ASSERT_EQ(a.stage_reports.size(), b.stage_reports.size());
  for (size_t i = 0; i < a.stage_reports.size(); ++i) {
    const StageReport& ra = a.stage_reports[i];
    const StageReport& rb = b.stage_reports[i];
    EXPECT_EQ(ra.planned_fraction, rb.planned_fraction);
    EXPECT_EQ(ra.predicted_seconds, rb.predicted_seconds);
    EXPECT_EQ(ra.blocks_drawn, rb.blocks_drawn);
    EXPECT_EQ(ra.estimate_after, rb.estimate_after);
    EXPECT_EQ(ra.variance_after, rb.variance_after);
    EXPECT_EQ(ra.ledger_spend_s, rb.ledger_spend_s);
    EXPECT_EQ(ra.transient_faults, rb.transient_faults);
    EXPECT_EQ(ra.blocks_lost, rb.blocks_lost);
    EXPECT_FALSE(ra.predictor_used);
    EXPECT_FALSE(rb.predictor_used);
    ASSERT_EQ(ra.selectivities.size(), rb.selectivities.size());
    for (size_t s = 0; s < ra.selectivities.size(); ++s) {
      EXPECT_EQ(ra.selectivities[s].selectivity,
                rb.selectivities[s].selectivity);
      // Off-path reports carry the neutral annotations.
      EXPECT_TRUE(ra.selectivities[s].component.empty());
      EXPECT_EQ(ra.selectivities[s].width_scale, 1.0);
    }
  }
}

QueryResult RunWarmFaultyQuery(Session* session, int threads,
                               bool explicit_off) {
  FaultOptions faults;
  faults.enabled = true;
  faults.transient_rate = 0.05;
  faults.permanent_rate = 0.01;
  faults.straggler_rate = 0.05;
  faults.fault_seed = 17;
  QueryBuilder builder = session->Query("SELECT[key < 3000](r1)");
  builder.WithSeed(42)
      .WithQuota(1.5)
      .WithThreads(threads)
      .WithWarmStart()
      .WithFaults(faults);
  if (explicit_off) builder.WithSelPredictor(false);
  auto result = builder.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : QueryResult{};
}

TEST(SelPredictorTest, OffIsBitIdenticalAcrossThreadsWarmAndFaulty) {
  std::vector<QueryResult> defaulted;
  std::vector<QueryResult> explicit_off;
  for (int threads : {1, 4, 8}) {
    auto workload = MakeSelectionWorkload(3000, 7);
    ASSERT_TRUE(workload.ok());
    Session session(std::move(workload->catalog));
    // Two warm runs back to back: the second replays pools and priors.
    (void)RunWarmFaultyQuery(&session, threads, /*explicit_off=*/false);
    defaulted.push_back(
        RunWarmFaultyQuery(&session, threads, /*explicit_off=*/false));

    auto workload2 = MakeSelectionWorkload(3000, 7);
    ASSERT_TRUE(workload2.ok());
    Session session2(std::move(workload2->catalog));
    (void)RunWarmFaultyQuery(&session2, threads, /*explicit_off=*/true);
    explicit_off.push_back(
        RunWarmFaultyQuery(&session2, threads, /*explicit_off=*/true));
  }
  // Explicitly disabling the predictor changes nothing...
  for (size_t i = 0; i < defaulted.size(); ++i) {
    ExpectIdenticalResults(defaulted[i], explicit_off[i]);
  }
  // ...and every thread count agrees bit for bit.
  ExpectIdenticalResults(defaulted[0], defaulted[1]);
  ExpectIdenticalResults(defaulted[0], defaulted[2]);
}

// ---------------------------------------------------------------------
// Satellite regressions: zero-prior sanitizing, intersect stage-1
// fallback, exhausted-side m = 0 guard.

TEST(SelectivityFixTest, SanitizedStagePriorFloorsZeroAtZeroHitBound) {
  const double beta = 0.05;
  const double floor10k = ZeroHitUpperBound(10000, beta);
  EXPECT_EQ(SanitizedStagePrior(0.0, 10000, beta), floor10k);
  EXPECT_EQ(SanitizedStagePrior(-3.0, 10000, beta), floor10k);  // clamped
  EXPECT_EQ(SanitizedStagePrior(1e-9, 10000, beta), floor10k);
  // Healthy priors pass through untouched; > 1 clamps to 1.
  EXPECT_EQ(SanitizedStagePrior(0.3, 10000, beta), 0.3);
  EXPECT_EQ(SanitizedStagePrior(7.0, 10000, beta), 1.0);
  // Unset total_points degrades to the m = 1 bound, never a crash.
  EXPECT_EQ(SanitizedStagePrior(0.0, 0.0, beta), ZeroHitUpperBound(1, beta));
}

TEST(SelectivityFixTest, ZeroPriorDoesNotFreezeStageZeroPlanning) {
  auto workload = MakeSelectionWorkload(3000, 7);
  ASSERT_TRUE(workload.ok());
  // Poison the cache with a hard 0.0 prior for the query's select node —
  // exactly what a recorded zero-hit run (or an external writer) could
  // leave behind.
  WarmStartCache cache;
  ExprPtr node_expr = KeyBelow(3000);
  cache.RecordPrior(CanonicalSignature(*node_expr), 0.0);

  ExecutorOptions options;
  options.quota_s = 1.0;
  options.seed = 11;
  options.warm_cache = &cache;
  auto result =
      RunTimeConstrainedCount(workload->query, workload->catalog, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->stages_run, 0);
  const StageReport& first = result->stage_reports[0];
  ASSERT_FALSE(first.selectivities.empty());
  // The planner saw the sanitized floor, not a frozen 0.
  const double floor =
      ZeroHitUpperBound(10000, SelectivityOptions().zero_hit_beta);
  EXPECT_EQ(first.selectivities[0].selectivity, floor);
  EXPECT_GT(result->estimate, 0.0);
}

TEST(SelectivityFixTest, IntersectInitialFallsBackWhenTotalPointsUnset) {
  StagedNode node;
  node.kind = ExprKind::kIntersect;
  node.left = std::make_unique<StagedNode>();
  node.right = std::make_unique<StagedNode>();
  SelectivityOptions options;
  options.initial_select = 0.37;

  bool fell_back = false;
  EXPECT_EQ(InitialSelectivity(node, options, &fell_back), 0.37);
  EXPECT_TRUE(fell_back);

  // With a known point space the paper's 1/max(|r1|, |r2|) applies.
  node.left->total_points = 100.0;
  node.right->total_points = 50.0;
  EXPECT_EQ(InitialSelectivity(node, options, &fell_back), 1.0 / 100.0);
  EXPECT_FALSE(fell_back);
  // The flag pointer is optional.
  EXPECT_EQ(InitialSelectivity(node, options), 1.0 / 100.0);
}

TEST(SelectivityFixTest, StageZeroInflatesOnlyWithPredictorWidths) {
  auto workload = MakeSelectionWorkload(3000, 7);
  ASSERT_TRUE(workload.ok());
  CostLedger ledger;
  auto ev = StagedTermEvaluator::Create(workload->query, workload->catalog,
                                        Fulfillment::kFull, &ledger,
                                        CostModel::Sun360());
  ASSERT_TRUE(ev.ok());
  SelectivityOptions sel_options;
  sel_options.initial_select = 0.5;  // s(1-s) > 0 so variance is visible
  std::map<int, double> sel_prev =
      ReviseSelectivities(**ev, sel_options);
  ASSERT_FALSE(sel_prev.empty());
  const int node_id = sel_prev.begin()->first;

  // Flat path: stage 0 never inflates (no samples, no variance basis).
  std::map<int, double> flat = ComputeSelPlus(**ev, sel_prev, 0.25, 2.0,
                                              Fulfillment::kFull, nullptr);
  EXPECT_EQ(flat.at(node_id), 0.5);

  // Predictor widths supply the basis: inflation applies at stage 0 and
  // scales with the width.
  std::map<int, double> narrow{{node_id, 0.25}};
  std::map<int, double> wide{{node_id, 1.25}};
  std::map<int, double> inflated_narrow = ComputeSelPlus(
      **ev, sel_prev, 0.25, 2.0, Fulfillment::kFull, &narrow);
  std::map<int, double> inflated_wide = ComputeSelPlus(
      **ev, sel_prev, 0.25, 2.0, Fulfillment::kFull, &wide);
  EXPECT_GT(inflated_narrow.at(node_id), 0.5);
  EXPECT_GT(inflated_wide.at(node_id), inflated_narrow.at(node_id));
  EXPECT_LE(inflated_wide.at(node_id), 1.0);
}

TEST(SelectivityFixTest, ExhaustedSideUnderPartialFulfillmentStaysFinite) {
  // r1 is 20x smaller than r2: it exhausts long before r2, after which a
  // partial-fulfillment stage predicts new_points = 0 for the intersect
  // node (nothing new on the exhausted side). The m = 0 guard must leave
  // those stages' selectivities finite and uninflated instead of feeding
  // a zero sample into the variance.
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(MakeUniformRelation("r1", 500, 500, 3)).ok());
  ASSERT_TRUE(
      catalog.Register(MakeUniformRelation("r2", 10000, 10000, 4)).ok());
  ExprPtr query = Intersect(Scan("r1"), Scan("r2"));

  ExecutorOptions options;
  options.quota_s = 60.0;  // generous: sampling exhausts r1 well within it
  options.seed = 5;
  options.fulfillment = Fulfillment::kPartial;
  options.sel_predictor.enabled = true;  // widths force can_inflate
  auto result = RunTimeConstrainedCount(query, catalog, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(std::isfinite(result->estimate));
  EXPECT_TRUE(std::isfinite(result->variance));
  for (const StageReport& report : result->stage_reports) {
    for (const OperatorSelectivity& sel : report.selectivities) {
      EXPECT_TRUE(std::isfinite(sel.selectivity));
      EXPECT_GE(sel.selectivity, 0.0);
      EXPECT_LE(sel.selectivity, 1.0);
    }
  }
}

// ---------------------------------------------------------------------
// Engine + API integration: reports, stats, EXPLAIN.

TEST(SelPredictorIntegrationTest, WarmSessionReportsComponentsAndStats) {
  auto workload = MakeSelectionWorkload(3000, 7);
  ASSERT_TRUE(workload.ok());
  Session session(std::move(workload->catalog));
  for (int run = 0; run < 3; ++run) {
    auto result = session.Query("SELECT[key < 3000](r1)")
                      .WithSeed(42 + run)
                      .WithQuota(1.5)
                      .WithWarmStart()
                      .WithSelPredictor()
                      .Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_GT(result->stages_run, 0);
    for (const StageReport& report : result->stage_reports) {
      EXPECT_TRUE(report.predictor_used);
      for (const OperatorSelectivity& sel : report.selectivities) {
        EXPECT_FALSE(sel.component.empty());
        EXPECT_GE(sel.confidence, 0.0);
        EXPECT_LE(sel.confidence, 1.0);
        EXPECT_GT(sel.width_scale, 0.0);
      }
    }
  }
  WarmStartStats stats = session.CacheStats();
  EXPECT_GT(stats.predictor_entries, 0);
  EXPECT_GT(stats.predictor_updates, 0);
  EXPECT_GT(stats.predictor_history_hits + stats.predictor_history_misses,
            0);
  // Clearing the cache drops the predictor with the priors.
  session.ClearCache();
  EXPECT_EQ(session.CacheStats().predictor_entries, 0);
}

TEST(SelPredictorIntegrationTest, ExplainPeeksWithoutSideEffects) {
  auto workload = MakeSelectionWorkload(3000, 7);
  ASSERT_TRUE(workload.ok());
  Session session(std::move(workload->catalog));
  auto seed_run = session.Query("SELECT[key < 3000](r1)")
                      .WithSeed(42)
                      .WithQuota(1.5)
                      .WithWarmStart()
                      .WithSelPredictor()
                      .Run();
  ASSERT_TRUE(seed_run.ok()) << seed_run.status().ToString();
  WarmStartStats before = session.CacheStats();

  auto plan = session.Query("SELECT[key < 3000](r1)")
                  .WithQuota(1.5)
                  .WithWarmStart()
                  .WithSelPredictor()
                  .Explain();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->predictor_active);
  ASSERT_FALSE(plan->predictor_nodes.empty());
  EXPECT_FALSE(plan->predictor_nodes[0].component.empty());
  EXPECT_GT(plan->predictor_nodes[0].selectivity, 0.0);
  EXPECT_NE(plan->ToString().find("predictor"), std::string::npos);

  // The peek moved no counters: prior hits/misses and predictor stats
  // are exactly what the seeding run left behind.
  WarmStartStats after = session.CacheStats();
  EXPECT_EQ(after.prior_hits, before.prior_hits);
  EXPECT_EQ(after.prior_misses, before.prior_misses);
  EXPECT_EQ(after.predictor_updates, before.predictor_updates);

  // Predictor-off EXPLAIN reports inactive and lists no nodes.
  auto cold = session.Query("SELECT[key < 3000](r1)").WithQuota(1.5).Explain();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->predictor_active);
  EXPECT_TRUE(cold->predictor_nodes.empty());
}

}  // namespace
}  // namespace tcq
