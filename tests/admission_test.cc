#include "serve/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

namespace tcq {
namespace {

AdmissionOptions Policy(double budget_s) {
  AdmissionOptions options;
  options.global_budget_s = budget_s;
  options.min_shrunk_quota_s = 0.5;
  return options;
}

TEST(AdmissionOptionsTest, ValidateRejectsNonsense) {
  EXPECT_TRUE(AdmissionOptions{}.Validate().ok());
  {
    AdmissionOptions o;
    o.global_budget_s = 0.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    AdmissionOptions o;
    o.min_shrunk_quota_s = -1.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    AdmissionOptions o;
    o.global_budget_s = 1.0;
    o.min_shrunk_quota_s = 2.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    AdmissionOptions o;
    o.max_concurrent = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    AdmissionOptions o;
    o.max_queue_depth = -1;
    EXPECT_FALSE(o.Validate().ok());
  }
}

TEST(AdmissionTest, FullGrantWithinBudget) {
  AdmissionController controller(Policy(10.0));
  auto ledger = controller.Admit(4.0, /*deadline_s=*/0.0);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  EXPECT_EQ(ledger->outcome, AdmissionReport::Outcome::kAdmitted);
  EXPECT_EQ(ledger->requested_s, 4.0);
  EXPECT_EQ(ledger->granted_s, 4.0);
  EXPECT_EQ(ledger->queue_wait_s, 0.0);
  // deadline defaults to the requested quota
  EXPECT_EQ(ledger->deadline_s, 4.0);

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.active, 1);
  EXPECT_EQ(stats.outstanding_s, 4.0);

  controller.Release(*ledger);
  stats = controller.stats();
  EXPECT_EQ(stats.active, 0);
  EXPECT_EQ(stats.outstanding_s, 0.0);
}

TEST(AdmissionTest, ShrinksToRemainingBudget) {
  AdmissionController controller(Policy(10.0));
  auto first = controller.Admit(6.0, 0.0);
  ASSERT_TRUE(first.ok());

  double probed_quota = 0.0;
  auto second = controller.Admit(6.0, 0.0, [&](double quota_s) {
    probed_quota = quota_s;
    return Status::OK();
  });
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->outcome, AdmissionReport::Outcome::kShrunk);
  EXPECT_EQ(second->granted_s, 4.0);  // 10 - 6 outstanding
  EXPECT_EQ(probed_quota, 4.0);       // fit probe saw the shrunk quota

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.shrunk, 1);
  EXPECT_EQ(stats.outstanding_s, 10.0);

  controller.Release(*first);
  controller.Release(*second);
  EXPECT_EQ(controller.stats().outstanding_s, 0.0);
}

TEST(AdmissionTest, FitProbeFailureRejectsAndReturnsReservation) {
  AdmissionController controller(Policy(10.0));
  auto first = controller.Admit(6.0, 0.0);
  ASSERT_TRUE(first.ok());

  auto second = controller.Admit(6.0, 0.0, [](double) {
    return Status::InvalidArgument("no stage fits");
  });
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.active, 1);
  EXPECT_EQ(stats.outstanding_s, 6.0);  // the failed reservation returned
  controller.Release(*first);
}

TEST(AdmissionTest, RejectsWhenShrinkAndQueueDisabled) {
  AdmissionOptions options = Policy(10.0);
  options.allow_shrink = false;
  options.allow_queue = false;
  AdmissionController controller(options);

  auto big = controller.Admit(20.0, 0.0);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(controller.stats().rejected, 1);
}

TEST(AdmissionTest, ZeroDepthQueueRejectsLikeNoQueue) {
  AdmissionOptions options = Policy(10.0);
  options.allow_shrink = false;
  options.max_queue_depth = 0;
  AdmissionController controller(options);

  auto holder = controller.Admit(10.0, 0.0);
  ASSERT_TRUE(holder.ok());
  auto next = controller.Admit(1.0, 0.0);
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kResourceExhausted);
  controller.Release(*holder);
}

TEST(AdmissionTest, QueuedSubmissionTimesOutWithDeadlineExceeded) {
  AdmissionOptions options = Policy(4.0);
  options.allow_shrink = false;
  AdmissionController controller(options);

  auto holder = controller.Admit(4.0, 0.0);
  ASSERT_TRUE(holder.ok());
  // Nothing will release the budget: the waiter must give up at its
  // serving deadline, not its (much larger) quota.
  auto waiter = controller.Admit(4.0, /*deadline_s=*/0.05);
  EXPECT_FALSE(waiter.ok());
  EXPECT_EQ(waiter.status().code(), StatusCode::kDeadlineExceeded);

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.queue_depth, 0);  // the expired waiter left the queue
  controller.Release(*holder);
}

TEST(AdmissionTest, DisabledControllerGrantsEverythingButKeepsBooks) {
  AdmissionOptions options = Policy(1.0);
  options.enabled = false;
  AdmissionController controller(options);

  auto a = controller.Admit(5.0, 0.0);
  auto b = controller.Admit(5.0, 0.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->granted_s, 5.0);
  EXPECT_EQ(b->granted_s, 5.0);

  // The books still show the overcommit an enabled controller prevents.
  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.outstanding_s, 10.0);
  EXPECT_GT(stats.outstanding_s, options.global_budget_s);

  controller.Release(*a);
  controller.Release(*b);
  EXPECT_EQ(controller.stats().outstanding_s, 0.0);
}

TEST(AdmissionTest, ReleaseWakesTheQueue) {
  AdmissionController controller(Policy(4.0));
  auto holder = controller.Admit(4.0, 0.0);
  ASSERT_TRUE(holder.ok());

  ThreadPool pool(1);  // two-wide: blocked waiter + releasing task
  Result<QuotaLedger> queued = Status::Internal("not run");
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] { queued = controller.Admit(4.0, /*deadline_s=*/30.0); });
  tasks.push_back([&] {
    while (controller.stats().queue_depth < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    controller.Release(*holder);
  });
  RunTasks(&pool, &tasks);

  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(queued->outcome, AdmissionReport::Outcome::kQueued);
  EXPECT_EQ(queued->granted_s, 4.0);
  EXPECT_GE(queued->queue_wait_s, 0.0);
  EXPECT_EQ(controller.stats().queued, 1);
  controller.Release(*queued);
  EXPECT_EQ(controller.stats().outstanding_s, 0.0);
}

TEST(AdmissionTest, QueueGrantsEarliestDeadlineFirst) {
  AdmissionController controller(Policy(4.0));
  auto holder = controller.Admit(4.0, 0.0);
  ASSERT_TRUE(holder.ok());

  // The late-deadline waiter enqueues FIRST; EDF must still serve the
  // early-deadline waiter ahead of it when budget frees up.
  std::atomic<int> grant_sequence{0};
  int early_rank = 0, late_rank = 0;
  ThreadPool pool(2);  // three-wide: two waiters + the orchestrator
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    auto late = controller.Admit(4.0, /*deadline_s=*/60.0);
    ASSERT_TRUE(late.ok()) << late.status().ToString();
    late_rank = ++grant_sequence;
    controller.Release(*late);
  });
  tasks.push_back([&] {
    while (controller.stats().queue_depth < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto early = controller.Admit(4.0, /*deadline_s=*/30.0);
    ASSERT_TRUE(early.ok()) << early.status().ToString();
    early_rank = ++grant_sequence;
    controller.Release(*early);
  });
  tasks.push_back([&] {
    while (controller.stats().queue_depth < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    controller.Release(*holder);
  });
  RunTasks(&pool, &tasks);

  EXPECT_EQ(early_rank, 1) << "the earlier deadline must be granted first";
  EXPECT_EQ(late_rank, 2);
  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.queued, 2);
  EXPECT_EQ(stats.outstanding_s, 0.0);
  EXPECT_EQ(stats.active, 0);
}

TEST(AdmissionTest, CountersPartitionSubmissionsAndReachMetrics) {
  Metrics metrics;
  AdmissionOptions options = Policy(10.0);
  options.allow_queue = false;
  AdmissionController controller(options, &metrics);

  auto a = controller.Admit(6.0, 0.0);       // admitted
  auto b = controller.Admit(6.0, 0.0);       // shrunk to 4
  auto c = controller.Admit(6.0, 0.0);       // rejected: no budget, no queue
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(c.ok());

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.admitted + stats.shrunk + stats.queued + stats.rejected,
            stats.submitted);
  EXPECT_EQ(metrics.counter("serve.submitted")->value(), 3);
  EXPECT_EQ(metrics.counter("serve.admitted")->value(), 1);
  EXPECT_EQ(metrics.counter("serve.shrunk")->value(), 1);
  EXPECT_EQ(metrics.counter("serve.rejected")->value(), 1);
  EXPECT_EQ(metrics.gauge("serve.outstanding_quota_s")->value(), 10.0);
  EXPECT_EQ(metrics.gauge("serve.active")->value(), 2.0);

  controller.Release(*a);
  controller.Release(*b);
  EXPECT_EQ(metrics.gauge("serve.active")->value(), 0.0);
}

}  // namespace
}  // namespace tcq
