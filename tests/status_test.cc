#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace tcq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, FaultCodesRenderTheirNames) {
  EXPECT_EQ(Status::DataLoss("page 3 corrupt").ToString(),
            "DataLoss: page 3 corrupt");
  EXPECT_EQ(Status::Unavailable("fault storm").ToString(),
            "Unavailable: fault storm");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  TCQ_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  TCQ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  Result<int> ok = DoublePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 10);
  Result<int> bad = DoublePositive(-5);
  EXPECT_FALSE(bad.ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace tcq
