#include "api/tcq.h"

#include <gtest/gtest.h>

#include "exec/exact.h"
#include "ra/expr.h"
#include "util/status.h"
#include "workload/generators.h"

namespace tcq {
namespace {

Session MakeSession(int tuples = 2000, uint64_t seed = 7) {
  auto workload = MakeIntersectionWorkload(tuples, seed);
  EXPECT_TRUE(workload.ok());
  return Session(std::move(workload->catalog));
}

TEST(SessionTest, RegisterAndQueryText) {
  auto workload = MakeSelectionWorkload(1000, /*seed=*/3);
  ASSERT_TRUE(workload.ok());
  Session session;
  for (const std::string& name : workload->catalog.Names()) {
    ASSERT_TRUE(session.Register(*workload->catalog.Find(name)).ok());
  }
  auto r = session.Query("SELECT[key < 2000](r1)").WithSeed(5).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stages_counted, 0);
}

TEST(SessionTest, CountWrapperIsOptional) {
  Session session = MakeSession();
  auto bare = session.Query("SELECT[key < 6000](r1)").WithSeed(9).Run();
  auto wrapped =
      session.Query("COUNT(SELECT[key < 6000](r1))").WithSeed(9).Run();
  auto spaced =
      session.Query("  count( SELECT[key < 6000](r1) ) ").WithSeed(9).Run();
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();
  ASSERT_TRUE(spaced.ok()) << spaced.status().ToString();
  EXPECT_EQ(bare->estimate, wrapped->estimate);
  EXPECT_EQ(bare->estimate, spaced->estimate);
  EXPECT_EQ(bare->blocks_sampled, wrapped->blocks_sampled);
}

TEST(SessionTest, ExprQueryMatchesTextQuery) {
  Session session = MakeSession();
  ExprPtr expr = Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt, 6000));
  auto from_expr = session.Query(std::move(expr)).WithSeed(9).Run();
  auto from_text = session.Query("SELECT[key < 6000](r1)").WithSeed(9).Run();
  ASSERT_TRUE(from_expr.ok()) << from_expr.status().ToString();
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_EQ(from_expr->estimate, from_text->estimate);
  EXPECT_EQ(from_expr->variance, from_text->variance);
  EXPECT_EQ(from_expr->blocks_sampled, from_text->blocks_sampled);
}

TEST(SessionTest, ParseErrorSurfacesFromRun) {
  Session session = MakeSession();
  auto r = session.Query("SELECT[key <](r1)").Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, ParseStatusIsAvailableBeforeRun) {
  Session session = MakeSession();
  // A malformed query is rejectable without spending any budget on it —
  // the builder carries the parse error, line/column included.
  QueryBuilder bad = session.Query("SELECT[key <](r1)");
  EXPECT_FALSE(bad.status().ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("line"), std::string::npos)
      << bad.status().ToString();
  // Run() returns exactly the status the builder already exposed.
  auto r = bad.Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), bad.status());

  QueryBuilder good = session.Query("SELECT[key < 100](r1)");
  EXPECT_TRUE(good.status().ok());
}

TEST(SessionTest, TypedSettersCoverEveryOptionsField) {
  // The typed setters and the deprecated escape hatch must configure the
  // very same ExecutorOptions: a query configured twice — once through
  // With* setters, once through a raw edit — runs bit-identically.
  Session a = MakeSession();
  Session b = MakeSession();
  auto typed = a.Query("r1 INTERSECT r2")
                   .WithSeed(21)
                   .WithQuota(6.0)
                   .WithEpsilon(0.04)
                   .WithConservativeTermVariance()
                   .WithServeDeadline(30.0)
                   .Run();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto raw = b.Query("r1 INTERSECT r2")
                 .With([](ExecutorOptions* o) {
                   o->seed = 21;
                   o->quota_s = 6.0;
                   o->epsilon_s = 0.04;
                   o->conservative_term_variance = true;
                   o->serve_deadline_s = 30.0;
                 })
                 .Run();
#pragma GCC diagnostic pop
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(typed->estimate, raw->estimate);
  EXPECT_EQ(typed->variance, raw->variance);
  EXPECT_EQ(typed->blocks_sampled, raw->blocks_sampled);
  // Outside a server, the admission report stays at its standalone
  // defaults whatever the serve deadline asks for.
  EXPECT_EQ(typed->admission.outcome, AdmissionReport::Outcome::kStandalone);
  EXPECT_FALSE(typed->admission.deadline_missed);
}

TEST(SessionTest, UnbalancedCountWrapperIsAParseError) {
  Session session = MakeSession();
  auto r = session.Query("COUNT(SELECT[key < 100](r1)").Run();
  EXPECT_FALSE(r.ok());
}

TEST(SessionTest, NullExpressionIsRejected) {
  Session session = MakeSession();
  auto r = session.Query(ExprPtr()).Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, ThreadedRunMatchesSerialRun) {
  Session session = MakeSession();
  auto serial = session.Query("r1 UNION r2").WithSeed(11).WithThreads(1).Run();
  auto threaded =
      session.Query("r1 UNION r2").WithSeed(11).WithThreads(4).Run();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(serial->estimate, threaded->estimate);
  EXPECT_EQ(serial->variance, threaded->variance);
  EXPECT_EQ(serial->blocks_sampled, threaded->blocks_sampled);
}

TEST(SessionTest, SessionDefaultsFlowIntoQueries) {
  auto workload = MakeIntersectionWorkload(2000, /*seed=*/7);
  ASSERT_TRUE(workload.ok());
  Session::Options session_options;
  session_options.defaults.seed = 77;
  session_options.defaults.strategy.one_at_a_time.d_beta = 24.0;
  Session session(std::move(workload->catalog), session_options);

  Session plain = MakeSession();
  auto defaulted = session.Query("r1 INTERSECT r2").Run();
  auto explicit_opts = plain.Query("r1 INTERSECT r2")
                           .WithSeed(77)
                           .WithRiskMargin(24.0)
                           .Run();
  ASSERT_TRUE(defaulted.ok()) << defaulted.status().ToString();
  ASSERT_TRUE(explicit_opts.ok()) << explicit_opts.status().ToString();
  EXPECT_EQ(defaulted->estimate, explicit_opts->estimate);
  EXPECT_EQ(defaulted->blocks_sampled, explicit_opts->blocks_sampled);
}

TEST(SessionTest, SumAndAvgBuilders) {
  Session session = MakeSession();
  auto sum = session.Query("SELECT[key < 6000](r1)")
                 .Sum("key")
                 .WithSeed(13)
                 .Run();
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  auto avg = session.Query("SELECT[key < 6000](r1)")
                 .Avg("key")
                 .WithSeed(13)
                 .Run();
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();
  ASSERT_GT(sum->estimate, 0.0);
  ASSERT_GT(avg->estimate, 0.0);
  // An average is a per-tuple quantity; the sum over thousands of tuples
  // must dwarf it.
  EXPECT_GT(sum->estimate, avg->estimate);
}

TEST(ValidateTest, RejectsNonsenseConfigs) {
  Session session = MakeSession();
  {
    auto r = session.Query("r1 UNION r2").WithThreads(0).Run();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto r = session.Query("r1 UNION r2").WithConfidence(1.5).Run();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto r = session.Query("r1 UNION r2").WithConfidence(0.0).Run();
    EXPECT_FALSE(r.ok());
  }
  {
    auto r = session.Query("r1 UNION r2").WithEpsilon(1.25).Run();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto r = session.Query("r1 UNION r2").WithServeDeadline(-1.0).Run();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto r = session.Query("r1 UNION r2").WithMaxStages(0).Run();
    EXPECT_FALSE(r.ok());
  }
  {
    auto r = session.Query("r1 UNION r2").WithQuota(-1.0).Run();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ValidateTest, DirectOptionsValidate) {
  ExecutorOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.threads = -3;
  EXPECT_FALSE(options.Validate().ok());
  options.threads = 8;
  EXPECT_TRUE(options.Validate().ok());
  options.epsilon_s = 0.0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace tcq
