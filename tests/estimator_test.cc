#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "estimator/combined.h"
#include "estimator/count_estimator.h"
#include "estimator/goodman.h"
#include "util/random.h"
#include "util/stats.h"

namespace tcq {
namespace {

TEST(ClusterEstimateTest, BasicRatio) {
  // B=100 space blocks, 10 covered, 7 hits -> 70.
  auto e = ClusterCountEstimate(100.0, 10.0, 7, 50.0, 500.0);
  EXPECT_DOUBLE_EQ(e.value, 70.0);
  EXPECT_GT(e.variance, 0.0);
}

TEST(ClusterEstimateTest, FullCoverageZeroVariance) {
  auto e = ClusterCountEstimate(100.0, 100.0, 42, 500.0, 500.0);
  EXPECT_DOUBLE_EQ(e.value, 42.0);
  EXPECT_DOUBLE_EQ(e.variance, 0.0);
}

TEST(ClusterEstimateTest, EmptySampleSafe) {
  auto e = ClusterCountEstimate(100.0, 0.0, 0, 0.0, 500.0);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.variance, 0.0);
}

TEST(SrsEstimateTest, MatchesDefinition) {
  // û = N·y/m = 1000·(3/10).
  auto e = SrsCountEstimate(1000.0, 10.0, 3);
  EXPECT_DOUBLE_EQ(e.value, 300.0);
  double sel = 0.3;
  double expected_var =
      1000.0 * 1000.0 * sel * (1 - sel) * (1000.0 - 10.0) / (10.0 * 999.0);
  EXPECT_NEAR(e.variance, expected_var, 1e-9);
}

TEST(EstimatorTest, ZeroHitIntervalNotDegenerate) {
  // Zero observed hits must not yield a zero-width interval: the upper
  // end reflects the rule-of-three bound 1 − 0.05^(1/m).
  auto e = ClusterCountEstimate(2000.0, 100.0, 0, 500.0, 10000.0);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_GT(e.variance, 0.0);
  auto ci = NormalConfidenceInterval(e, 0.95);
  double bound = 10000.0 * (1.0 - std::pow(0.05, 1.0 / 500.0));
  EXPECT_NEAR(ci.hi, bound, 1.0);
  auto srs = SrsCountEstimate(10000.0, 500.0, 0);
  EXPECT_GT(srs.variance, 0.0);
}

TEST(SrsEstimateTest, VarianceShrinksWithSample) {
  auto small = SrsCountEstimate(1000.0, 10.0, 3);
  auto big = SrsCountEstimate(1000.0, 100.0, 30);
  EXPECT_GT(small.variance, big.variance);
}

TEST(ConfidenceIntervalTest, WidthMatchesQuantile) {
  CountEstimate e;
  e.value = 100.0;
  e.variance = 25.0;  // sd 5
  auto ci = NormalConfidenceInterval(e, 0.95);
  EXPECT_NEAR(ci.lo, 100.0 - 1.96 * 5.0, 0.01);
  EXPECT_NEAR(ci.hi, 100.0 + 1.96 * 5.0, 0.01);
  EXPECT_NEAR(ci.HalfWidth(), 1.96 * 5.0, 0.01);
}

TEST(ConfidenceIntervalTest, HigherLevelWider) {
  CountEstimate e;
  e.value = 0.0;
  e.variance = 1.0;
  EXPECT_GT(NormalConfidenceInterval(e, 0.99).HalfWidth(),
            NormalConfidenceInterval(e, 0.90).HalfWidth());
}

TEST(GoodmanTest, FullCensusReturnsDistinct) {
  // N = n = 6, three classes.
  EXPECT_DOUBLE_EQ(GoodmanEstimate(6.0, {3, 2, 1}), 3.0);
}

TEST(GoodmanTest, HandWorkedSmallCase) {
  // Population {a,a,b} (N=3), sample n=2.
  // Sample {a,b}: d=2, f1=2 -> 2 + C(1,1)/C(2,1)*2 = 3.
  EXPECT_NEAR(GoodmanEstimate(3.0, {1, 1}), 3.0, 1e-9);
  // Sample {a,a}: d=1, f2=1 -> 1 − C(2,2)/C(2,2) = 0, out of [d,N] ->
  // falls back to Chao1 = d = 1.
  EXPECT_NEAR(GoodmanEstimate(3.0, {2}), 1.0, 1e-9);
}

TEST(GoodmanTest, UnbiasedOverAllSamples) {
  // Exhaustive check of unbiasedness on a small population where the
  // condition (n > max multiplicity) holds: population of N=6 units with
  // classes sizes {2,2,1,1} (D=4), samples of size n=3.
  // Enumerate all C(6,3)=20 samples.
  std::vector<int> pop{0, 0, 1, 1, 2, 3};
  const double N = 6.0;
  double sum = 0.0;
  int count = 0;
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      for (int c = b + 1; c < 6; ++c) {
        std::map<int, int64_t> occ;
        ++occ[pop[a]];
        ++occ[pop[b]];
        ++occ[pop[c]];
        std::vector<int64_t> occupancies;
        for (auto& [cls, n] : occ) occupancies.push_back(n);
        sum += GoodmanRawEstimate(N, occupancies);
        ++count;
      }
    }
  }
  EXPECT_EQ(count, 20);
  // The raw estimator is exactly unbiased: mean over all equally likely
  // samples equals the true D = 4.
  EXPECT_NEAR(sum / count, 4.0, 1e-9);
}

TEST(GoodmanTest, GuardedVersionStaysInRange) {
  // Same enumeration: every guarded estimate lies in [d, N].
  std::vector<int> pop{0, 0, 1, 1, 2, 3};
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      for (int c = b + 1; c < 6; ++c) {
        std::map<int, int64_t> occ;
        ++occ[pop[a]];
        ++occ[pop[b]];
        ++occ[pop[c]];
        std::vector<int64_t> occupancies;
        for (auto& [cls, n] : occ) occupancies.push_back(n);
        double est = GoodmanEstimate(6.0, occupancies);
        EXPECT_GE(est, static_cast<double>(occupancies.size()));
        EXPECT_LE(est, 6.0);
      }
    }
  }
}

TEST(GoodmanTest, LargePopulationSmallSampleFallsBack) {
  // Tiny sampling fraction: raw Goodman explodes; the guard must yield a
  // finite value in [d, N].
  std::vector<int64_t> occ{1, 1, 1, 2, 5};
  double est = GoodmanEstimate(1e6, occ);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GE(est, 5.0);
  EXPECT_LE(est, 1e6);
}

TEST(Chao1Test, KnownValues) {
  // d=4, f1=2, f2=1 -> 4 + 4/2 = 6.
  EXPECT_DOUBLE_EQ(Chao1Estimate(100.0, {1, 1, 2, 3}), 6.0);
  // f2=0: d + f1(f1-1)/2 = 3 + 1 = 4.
  EXPECT_DOUBLE_EQ(Chao1Estimate(100.0, {1, 1, 3}), 4.0);
  // Clamped to N.
  EXPECT_DOUBLE_EQ(Chao1Estimate(3.0, {1, 1, 1}), 3.0);
}

TEST(CombineTest, SignedSum) {
  CountEstimate a;
  a.value = 100.0;
  a.variance = 16.0;
  CountEstimate b;
  b.value = 30.0;
  b.variance = 9.0;
  auto combined = CombineSignedEstimates({1, -1}, {a, b});
  EXPECT_DOUBLE_EQ(combined.value, 70.0);
  // Default independent sum: 16 + 9 = 25.
  EXPECT_DOUBLE_EQ(combined.variance, 25.0);
  // Opt-in Cauchy–Schwarz bound: (4 + 3)^2 = 49.
  auto conservative = CombineSignedEstimates(
      {1, -1}, {a, b}, CombineVariance::kConservative);
  EXPECT_DOUBLE_EQ(conservative.value, 70.0);
  EXPECT_DOUBLE_EQ(conservative.variance, 49.0);
}

TEST(CombineTest, SingleTermPassThrough) {
  CountEstimate a;
  a.value = 5.0;
  a.variance = 2.0;
  auto combined = CombineSignedEstimates({1}, {a});
  EXPECT_DOUBLE_EQ(combined.value, 5.0);
  EXPECT_NEAR(combined.variance, 2.0, 1e-12);
}

TEST(CombineTest, VarianceBoundDominatesIndependentSum) {
  CountEstimate a;
  a.variance = 4.0;
  CountEstimate b;
  b.variance = 9.0;
  auto combined = CombineSignedEstimates({1, 1}, {a, b});
  EXPECT_DOUBLE_EQ(combined.variance, 13.0);  // 4 + 9
  auto bound = CombineSignedEstimates({1, 1}, {a, b},
                                      CombineVariance::kConservative);
  // (2 + 3)^2 = 25: the bound always dominates the independent sum.
  EXPECT_DOUBLE_EQ(bound.variance, 25.0);
  EXPECT_GE(bound.variance, combined.variance);
}

// Monte-Carlo calibration of the two combination rules: for independent
// per-term estimators X_i ~ N(mu_i, sigma_i^2) combined as X1 - X2 + X3,
// the independent sum must match the empirical variance of the combined
// estimator, while the Cauchy-Schwarz bound must overstate it by the
// correlation-free gap. 1000 seeds, each combining fresh draws.
TEST(CombineTest, MonteCarloVarianceCalibration) {
  const std::vector<int> signs{1, -1, 1};
  const double mu[3] = {500.0, 120.0, 60.0};
  const double var[3] = {400.0, 150.0, 90.0};
  RunningStat combined_values;
  double mean_independent = 0.0;
  double mean_conservative = 0.0;
  const int kSeeds = 1000;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(9000 + static_cast<uint64_t>(seed));
    std::vector<CountEstimate> terms(3);
    for (int i = 0; i < 3; ++i) {
      terms[i].value = mu[i] + std::sqrt(var[i]) * rng.Gaussian();
      terms[i].variance = var[i];
    }
    auto independent = CombineSignedEstimates(signs, terms);
    auto conservative =
        CombineSignedEstimates(signs, terms, CombineVariance::kConservative);
    combined_values.Add(independent.value);
    mean_independent += independent.variance / kSeeds;
    mean_conservative += conservative.variance / kSeeds;
  }
  const double empirical = combined_values.variance();
  const double true_var = var[0] + var[1] + var[2];  // 640
  // The independent sum is calibrated: within Monte-Carlo noise of the
  // empirical variance of the combined estimator.
  // Exact up to summation rounding: each per-seed reported variance is
  // exactly Σaᵢ²σᵢ² because the term variances are seed-independent.
  EXPECT_NEAR(mean_independent, true_var, 1e-9 * true_var);
  EXPECT_NEAR(empirical, mean_independent, 0.15 * true_var);
  // The historical bound is not: (sigma1+sigma2+sigma3)^2 ~ 1051 > 640.
  EXPECT_GT(mean_conservative, 1.5 * empirical);
}

/// Property: SRS estimator is unbiased and its variance formula matches
/// the empirical spread, on a synthetic 0/1 population.
class SrsCalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(SrsCalibrationTest, EmpiricalMomentsMatch) {
  const double selectivity = GetParam();
  const int N = 2000;
  const int m = 100;
  std::vector<int> population(N, 0);
  int ones = static_cast<int>(selectivity * N);
  for (int i = 0; i < ones; ++i) population[i] = 1;
  Rng rng(4242 + static_cast<uint64_t>(selectivity * 1000));
  const int reps = 3000;
  RunningStat stats;
  for (int rep = 0; rep < reps; ++rep) {
    auto idx = rng.SampleWithoutReplacement(N, m);
    int64_t y = 0;
    for (uint32_t i : idx) y += population[i];
    stats.Add(SrsCountEstimate(N, m, y).value);
  }
  double true_count = static_cast<double>(ones);
  double theory_var = N * static_cast<double>(N) * selectivity *
                      (1 - selectivity) * (N - m) / (m * (N - 1.0));
  EXPECT_NEAR(stats.mean(), true_count, 0.05 * N);
  EXPECT_NEAR(stats.variance(), theory_var, 0.15 * theory_var + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, SrsCalibrationTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8));

}  // namespace
}  // namespace tcq
