// Fault-tolerant sampling (DESIGN.md §10): deterministic fault injection,
// quota-charged retries, degraded answers, and the off-switch contract —
// a run with faults disabled is bit-identical to one that never heard of
// faults, at any seed and thread count.

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "engine/executor.h"
#include "exec/exact.h"
#include "workload/generators.h"

namespace tcq {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

FaultOptions ArmedFaults() {
  FaultOptions f;
  f.enabled = true;
  f.transient_rate = 0.05;
  f.permanent_rate = 0.01;
  f.straggler_rate = 0.02;
  f.fault_seed = 7;
  return f;
}

ExecutorOptions BaseOptions(int threads = 1) {
  ExecutorOptions options;
  options.strategy.one_at_a_time.d_beta = 24.0;
  options.seed = 42;
  options.threads = threads;
  options.quota_s = 10.0;
  return options;
}

// ---------------------------------------------------------------------
// FaultOptions::Validate and the hardened ExecutorOptions::Validate.

TEST(FaultOptionsTest, DisabledOptionsAlwaysValidate) {
  FaultOptions f;
  f.enabled = false;
  f.transient_rate = kNan;  // nonsense, but the switch is off
  f.max_retries = -5;
  EXPECT_TRUE(f.Validate().ok());
}

TEST(FaultOptionsTest, ValidatesRatesAndRetryPolicy) {
  EXPECT_TRUE(ArmedFaults().Validate().ok());
  FaultOptions f = ArmedFaults();
  f.transient_rate = kNan;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.transient_rate = 1.0;  // rate 1 would retry forever
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.permanent_rate = -0.1;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.straggler_factor = 0.5;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.straggler_factor = kInf;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.max_retries = -1;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.backoff_base_s = -0.001;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
  f = ArmedFaults();
  f.backoff_multiplier = 0.9;
  EXPECT_EQ(f.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorValidateTest, RejectsNonFiniteInputs) {
  // Satellite of the fault PR: NaN used to sail through the sign checks
  // (NaN < 0.0 is false) and poison every downstream planning division.
  for (double bad : {kNan, kInf, -kInf}) {
    ExecutorOptions o = BaseOptions();
    o.quota_s = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    o = BaseOptions();
    o.epsilon_s = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    o = BaseOptions();
    o.confidence = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    o = BaseOptions();
    o.serve_deadline_s = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    // A NaN precision target would silently disable the requested stop
    // (NaN > 0 is false in PrecisionStop::enabled) instead of erroring.
    o = BaseOptions();
    o.precision.rel_halfwidth = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    o = BaseOptions();
    o.precision.abs_halfwidth = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    o = BaseOptions();
    o.precision.min_improvement = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
    o = BaseOptions();
    o.precision.rel_halfwidth = 0.05;
    o.precision.confidence = bad;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument) << bad;
  }
  ExecutorOptions o = BaseOptions();
  o.precision.rel_halfwidth = -0.1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorValidateTest, RejectsBadFaultOptions) {
  ExecutorOptions o = BaseOptions();
  o.faults = ArmedFaults();
  EXPECT_TRUE(o.Validate().ok());
  o.faults.transient_rate = 2.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// FaultInjector: pure, sticky, seed-substream determinism.

TEST(FaultInjectorTest, DisabledInjectorNeverFaults) {
  FaultInjector injector{FaultOptions{}};
  EXPECT_FALSE(injector.enabled());
  for (int64_t b = 0; b < 200; ++b) {
    EXPECT_EQ(injector.Probe("r1", b, 0), FaultClass::kNone);
    EXPECT_FALSE(injector.IsPermanentlyLost("r1", b));
  }
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfTheirCoordinates) {
  const FaultInjector a(ArmedFaults());
  const FaultInjector b(ArmedFaults());
  for (int64_t block = 0; block < 500; ++block) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.Probe("r1", block, attempt), b.Probe("r1", block, attempt));
    }
    EXPECT_EQ(a.IsPermanentlyLost("r1", block),
              b.IsPermanentlyLost("r1", block));
  }
}

TEST(FaultInjectorTest, PermanenceIsStickyAcrossAttempts) {
  FaultOptions f = ArmedFaults();
  f.permanent_rate = 0.2;
  const FaultInjector injector(f);
  int lost = 0;
  for (int64_t block = 0; block < 1000; ++block) {
    if (!injector.IsPermanentlyLost("r1", block)) continue;
    ++lost;
    for (int attempt = 0; attempt < 5; ++attempt) {
      EXPECT_EQ(injector.Probe("r1", block, attempt), FaultClass::kPermanent);
    }
  }
  // ~200 expected at rate 0.2; a loose band guards the substream wiring.
  EXPECT_GT(lost, 120);
  EXPECT_LT(lost, 280);
}

TEST(FaultInjectorTest, DifferentSeedsAndRelationsDecorrelate) {
  FaultOptions f = ArmedFaults();
  f.permanent_rate = 0.5;
  FaultOptions g = f;
  g.fault_seed = f.fault_seed + 1;
  const FaultInjector a(f);
  const FaultInjector b(g);
  int differ_seed = 0;
  int differ_relation = 0;
  for (int64_t block = 0; block < 400; ++block) {
    differ_seed += a.IsPermanentlyLost("r1", block) !=
                   b.IsPermanentlyLost("r1", block);
    differ_relation += a.IsPermanentlyLost("r1", block) !=
                       a.IsPermanentlyLost("r2", block);
  }
  EXPECT_GT(differ_seed, 50);
  EXPECT_GT(differ_relation, 50);
}

TEST(ReadBlockWithFaultsTest, CleanReadIsOneAttempt) {
  FaultOptions f;
  f.enabled = true;  // armed but all rates zero
  const FaultInjector injector(f);
  const BlockReadOutcome outcome =
      ReadBlockWithFaults(injector, "r1", 3, 0.015);
  EXPECT_FALSE(outcome.lost);
  EXPECT_EQ(outcome.read_attempts, 1);
  EXPECT_EQ(outcome.transient_faults, 0);
  EXPECT_EQ(outcome.backoff_s, 0.0);
  EXPECT_EQ(outcome.straggler_extra_s, 0.0);
}

TEST(ReadBlockWithFaultsTest, ExhaustedRetriesLoseTheBlockWithBackoff) {
  FaultOptions f;
  f.enabled = true;
  f.transient_rate = 0.999;  // effectively always faulting
  f.max_retries = 3;
  f.backoff_base_s = 0.010;
  f.backoff_multiplier = 2.0;
  const FaultInjector injector(f);
  // Find a block whose every attempt faults (overwhelmingly likely).
  for (int64_t block = 0; block < 50; ++block) {
    const BlockReadOutcome outcome =
        ReadBlockWithFaults(injector, "r1", block, 0.015);
    if (!outcome.lost) continue;
    EXPECT_EQ(outcome.read_attempts, 1 + f.max_retries);
    EXPECT_EQ(outcome.transient_faults, 1 + f.max_retries);
    // Geometric backoff: 10ms + 20ms + 40ms before attempts 1..3.
    EXPECT_NEAR(outcome.backoff_s, 0.070, 1e-12);
    return;
  }
  FAIL() << "no block exhausted its retries at rate 0.999";
}

TEST(ReadBlockWithFaultsTest, StragglerChargesTheInflationOnly) {
  FaultOptions f;
  f.enabled = true;
  f.straggler_rate = 0.999;
  f.straggler_factor = 8.0;
  const FaultInjector injector(f);
  const BlockReadOutcome outcome =
      ReadBlockWithFaults(injector, "r1", 0, 0.015);
  ASSERT_TRUE(outcome.straggler);
  EXPECT_FALSE(outcome.lost);
  // The base read is charged by the normal path; the outcome carries the
  // extra (factor - 1) * read seconds.
  EXPECT_NEAR(outcome.straggler_extra_s, 7.0 * 0.015, 1e-12);
}

TEST(FaultOptionsTest, ExpectedOverheadMatchesTheModel) {
  // Retry k costs a re-read plus backoff_base_s * multiplier^(k-1) and
  // happens with probability p^k, truncated at max_retries — exactly the
  // loop ReadBlockWithFaults runs.
  FaultOptions f = ArmedFaults();
  const double read_s = 0.015;
  const double p = f.transient_rate;
  double expected =
      f.straggler_rate * (f.straggler_factor - 1.0) * read_s;
  for (int k = 1; k <= f.max_retries; ++k) {
    expected += std::pow(p, k) *
                (read_s + f.backoff_base_s *
                              std::pow(f.backoff_multiplier, k - 1));
  }
  EXPECT_NEAR(f.ExpectedOverheadSeconds(read_s), expected, 1e-15);

  // The multiplier growth is priced in: doubling the multiplier must
  // raise the planned overhead, and pricing is monotone in the retry
  // budget (more retries, more expected backoff) — both were flat under
  // the old base-backoff-only model.
  FaultOptions steep = f;
  steep.backoff_multiplier = 2.0 * f.backoff_multiplier;
  EXPECT_GT(steep.ExpectedOverheadSeconds(read_s),
            f.ExpectedOverheadSeconds(read_s));
  FaultOptions no_retries = f;
  no_retries.max_retries = 0;
  EXPECT_NEAR(no_retries.ExpectedOverheadSeconds(read_s),
              f.straggler_rate * (f.straggler_factor - 1.0) * read_s, 1e-15);

  FaultOptions off;
  EXPECT_EQ(off.ExpectedOverheadSeconds(read_s), 0.0);
}

// ---------------------------------------------------------------------
// End-to-end: the off-switch, reproducibility, and degraded answers.

TEST(FaultExecutionTest, DisabledFaultsAreBitIdenticalToDefaultRun) {
  auto w = MakeSelectionWorkload(2000, 301);
  ASSERT_TRUE(w.ok());
  for (int threads : {1, 4, 8}) {
    ExecutorOptions plain = BaseOptions(threads);
    ExecutorOptions off = BaseOptions(threads);
    off.faults.enabled = false;  // armed-looking rates, master switch off
    off.faults.transient_rate = 0.5;
    off.faults.permanent_rate = 0.5;
    off.faults.straggler_rate = 0.5;
    auto a = RunTimeConstrainedCount(w->query, w->catalog, plain);
    auto b = RunTimeConstrainedCount(w->query, w->catalog, off);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->estimate, b->estimate) << threads;
    EXPECT_EQ(a->variance, b->variance) << threads;
    EXPECT_EQ(a->blocks_sampled, b->blocks_sampled) << threads;
    EXPECT_EQ(a->elapsed_seconds, b->elapsed_seconds) << threads;
    EXPECT_FALSE(b->degraded);
    EXPECT_FALSE(b->faults.any());
    EXPECT_EQ(b->faults.variance_widening, 1.0);
  }
}

TEST(FaultExecutionTest, FixedFaultSeedReproducibleAcrossThreadWidths) {
  auto w = MakeSelectionWorkload(2000, 302);
  ASSERT_TRUE(w.ok());
  ExecutorOptions base = BaseOptions(1);
  base.faults = ArmedFaults();
  base.faults.permanent_rate = 0.05;
  auto reference = RunTimeConstrainedCount(w->query, w->catalog, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int threads : {1, 4, 8}) {
    ExecutorOptions o = base;
    o.threads = threads;
    auto r = RunTimeConstrainedCount(w->query, w->catalog, o);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->estimate, reference->estimate) << threads;
    EXPECT_EQ(r->variance, reference->variance) << threads;
    EXPECT_EQ(r->elapsed_seconds, reference->elapsed_seconds) << threads;
    EXPECT_EQ(r->blocks_sampled, reference->blocks_sampled) << threads;
    EXPECT_EQ(r->faults.transient_faults, reference->faults.transient_faults)
        << threads;
    EXPECT_EQ(r->faults.retries, reference->faults.retries) << threads;
    EXPECT_EQ(r->faults.blocks_lost, reference->faults.blocks_lost)
        << threads;
    EXPECT_EQ(r->faults.stragglers, reference->faults.stragglers) << threads;
    EXPECT_EQ(r->faults.fault_delay_s, reference->faults.fault_delay_s)
        << threads;
  }
}

TEST(FaultExecutionTest, DifferentFaultSeedsChangeTheInjection) {
  auto w = MakeSelectionWorkload(2000, 303);
  ASSERT_TRUE(w.ok());
  ExecutorOptions a = BaseOptions();
  a.faults = ArmedFaults();
  a.faults.transient_rate = 0.2;
  ExecutorOptions b = a;
  b.faults.fault_seed = a.faults.fault_seed + 1;
  auto ra = RunTimeConstrainedCount(w->query, w->catalog, a);
  auto rb = RunTimeConstrainedCount(w->query, w->catalog, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(ra->faults.transient_faults, 0);
  EXPECT_GT(rb->faults.transient_faults, 0);
  EXPECT_NE(ra->faults.transient_faults, rb->faults.transient_faults);
}

TEST(FaultExecutionTest, LostBlocksDegradeTheAnswerAndWidenTheVariance) {
  auto w = MakeSelectionWorkload(2000, 304);
  ASSERT_TRUE(w.ok());
  ExecutorOptions o = BaseOptions();
  o.faults = ArmedFaults();
  o.faults.transient_rate = 0.0;
  o.faults.permanent_rate = 0.10;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->faults.blocks_lost, 0);
  EXPECT_TRUE(r->degraded);
  EXPECT_GT(r->faults.variance_widening, 1.0);
  // Lost blocks are wasted quota, and stage tallies add up to the totals.
  EXPECT_GE(r->blocks_wasted, r->faults.blocks_lost);
  int64_t staged_lost = 0;
  int64_t staged_drawn = 0;
  for (const StageReport& s : r->stages()) {
    staged_lost += s.blocks_lost;
    staged_drawn += s.blocks_drawn;
  }
  EXPECT_EQ(staged_lost, r->faults.blocks_lost);
  EXPECT_EQ(staged_drawn, r->blocks_sampled + r->blocks_wasted);
  // MCAR losses keep the estimator unbiased: the estimate is still in the
  // right ballpark (true count 2000) despite 10% of blocks vanishing.
  EXPECT_NEAR(r->estimate, 2000.0, 1000.0);
  // The per-relation tallies feed the serving-layer breaker.
  ASSERT_FALSE(r->faults.per_relation.empty());
  EXPECT_EQ(r->faults.per_relation[0].relation, "r1");
  EXPECT_GT(r->faults.per_relation[0].read_attempts, 0);
}

TEST(FaultExecutionTest, RetriesAreAttemptsNeverFreshDraws) {
  auto w = MakeSelectionWorkload(2000, 305);
  ASSERT_TRUE(w.ok());
  ExecutorOptions o = BaseOptions();
  o.faults = ArmedFaults();
  o.faults.transient_rate = 0.15;
  o.faults.permanent_rate = 0.0;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, o);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->faults.retries, 0);
  EXPECT_EQ(r->faults.blocks_lost, 0);
  EXPECT_FALSE(r->degraded);
  // read_attempts = one per drawn block + one per retry, exactly.
  int64_t attempts = 0;
  for (const RelationFaultCounts& rf : r->faults.per_relation) {
    attempts += rf.read_attempts;
  }
  int64_t drawn = 0;
  for (const StageReport& s : r->stages()) drawn += s.blocks_drawn;
  EXPECT_EQ(attempts, drawn + r->faults.retries);
}

TEST(FaultExecutionTest, FaultDelayIsChargedToTheClock) {
  auto w = MakeSelectionWorkload(2000, 306);
  ASSERT_TRUE(w.ok());
  ExecutorOptions with = BaseOptions();
  with.faults = ArmedFaults();
  with.faults.transient_rate = 0.30;
  with.faults.straggler_rate = 0.20;
  with.faults.permanent_rate = 0.0;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, with);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->faults.fault_delay_s, 0.0);
  double staged_delay = 0.0;
  for (const StageReport& s : r->stages()) staged_delay += s.fault_delay_s;
  EXPECT_DOUBLE_EQ(staged_delay, r->faults.fault_delay_s);
  // Charged time is real time: the run never spends past its quota by
  // more than the usual overshoot rules allow, and the planner's
  // inflated fetch cost keeps the deadline arithmetic honest.
  EXPECT_GT(r->stages_counted, 0);
}

TEST(FaultExecutionTest, ExplainPlansAgainstTheInflatedReadCost) {
  auto w = MakeSelectionWorkload(2000, 307);
  ASSERT_TRUE(w.ok());
  ExecutorOptions off = BaseOptions();
  ExecutorOptions on = BaseOptions();
  on.faults = ArmedFaults();
  on.faults.transient_rate = 0.45;  // heavy expected retry overhead
  auto cold = ExplainTimeConstrainedAggregate(w->query, AggregateSpec::Count(),
                                              w->catalog, off);
  auto faulty = ExplainTimeConstrainedAggregate(
      w->query, AggregateSpec::Count(), w->catalog, on);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  ASSERT_FALSE(cold->stages.empty());
  ASSERT_FALSE(faulty->stages.empty());
  // Pricier reads buy fewer blocks in the first planned stage.
  EXPECT_LT(faulty->stages[0].blocks_planned, cold->stages[0].blocks_planned);
}

}  // namespace
}  // namespace tcq
