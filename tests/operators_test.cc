#include "exec/operators.h"

#include <gtest/gtest.h>

#include "exec/tuple_set.h"

namespace tcq {
namespace {

Schema TwoIntSchema() {
  return Schema({{"a", DataType::kInt64, 0}, {"b", DataType::kInt64, 0}});
}

Tuple T(int64_t a, int64_t b) { return Tuple{a, b}; }

TEST(PagesForTest, Geometry) {
  Schema s = TwoIntSchema();  // 16 bytes/tuple -> 64 per 1 KiB page
  EXPECT_EQ(PagesFor(s, 0), 0);
  EXPECT_EQ(PagesFor(s, 1), 1);
  EXPECT_EQ(PagesFor(s, 64), 1);
  EXPECT_EQ(PagesFor(s, 65), 2);
  EXPECT_EQ(PagesFor(s, 64, /*block_bytes=*/64), 16);
}

TEST(SelectTuplesTest, FiltersAndCharges) {
  Schema s = TwoIntSchema();
  auto pred = CmpLiteral("a", CompareOp::kLt, int64_t{3});
  auto bound = BoundPredicate::Bind(pred, s);
  ASSERT_TRUE(bound.ok());
  std::vector<Tuple> in{T(1, 0), T(5, 0), T(2, 0), T(9, 0)};
  VirtualClock clock;
  CostLedger ledger(&clock);
  CostModel model;
  OpMetrics m;
  auto out = SelectTuples(in, *bound, s, &ledger, model, &m);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(out[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(out[1][0]), 2);
  EXPECT_EQ(m.process.in_tuples, 4);
  EXPECT_EQ(m.output.out_tuples, 2);
  EXPECT_EQ(m.process.comparisons, 4);  // one comparison per tuple
  EXPECT_GT(clock.Now(), 0.0);
  EXPECT_NEAR(m.process.seconds + m.output.seconds, ledger.GrandTotal(),
              1e-12);
}

TEST(SortRunTest, SortsAllColumnsAndCharges) {
  std::vector<Tuple> v{T(3, 1), T(1, 2), T(3, 0), T(2, 5)};
  CostLedger ledger(nullptr);
  CostModel model;
  StepMetrics m;
  SortRun(&v, {}, &ledger, model, &m);
  EXPECT_EQ(std::get<int64_t>(v[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(v[1][0]), 2);
  EXPECT_EQ(std::get<int64_t>(v[2][0]), 3);
  EXPECT_EQ(std::get<int64_t>(v[2][1]), 0);
  EXPECT_EQ(std::get<int64_t>(v[3][1]), 1);
  EXPECT_GT(m.comparisons, 0);
  EXPECT_GT(ledger.Total(CostCategory::kSortCompare), 0.0);
}

TEST(SortRunTest, SortsByKeyOnly) {
  std::vector<Tuple> v{T(9, 2), T(0, 1)};
  CostModel model;
  SortRun(&v, {1}, nullptr, model, nullptr);
  EXPECT_EQ(std::get<int64_t>(v[0][1]), 1);
}

TEST(MergeIntersectTest, CountsMatches) {
  Schema s = TwoIntSchema();
  std::vector<Tuple> l{T(1, 1), T(2, 2), T(3, 3)};
  std::vector<Tuple> r{T(2, 2), T(3, 3), T(4, 4)};
  CostModel model;
  OpMetrics m;
  auto out = MergeIntersect(l, r, s, nullptr, model, &m);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(m.output.out_tuples, 2);
  EXPECT_GT(m.process.comparisons, 0);
}

TEST(MergeIntersectTest, MultiplicityProduct) {
  // Duplicates produce one output per (left,right) pair: the number of
  // 1-points in the point space.
  Schema s = TwoIntSchema();
  std::vector<Tuple> l{T(5, 5), T(5, 5)};
  std::vector<Tuple> r{T(5, 5), T(5, 5), T(5, 5)};
  CostModel model;
  auto out = MergeIntersect(l, r, s, nullptr, model, nullptr);
  EXPECT_EQ(out.size(), 6u);
}

TEST(MergeIntersectTest, DisjointEmpty) {
  Schema s = TwoIntSchema();
  std::vector<Tuple> l{T(1, 1)};
  std::vector<Tuple> r{T(2, 2)};
  CostModel model;
  EXPECT_TRUE(MergeIntersect(l, r, s, nullptr, model, nullptr).empty());
  EXPECT_TRUE(MergeIntersect({}, r, s, nullptr, model, nullptr).empty());
}

TEST(MergeJoinTest, JoinsOnKey) {
  Schema ls({{"a", DataType::kInt64, 0}, {"k", DataType::kInt64, 0}});
  Schema rs({{"k", DataType::kInt64, 0}, {"c", DataType::kInt64, 0}});
  // Sorted by key column already.
  std::vector<Tuple> l{T(10, 1), T(20, 2), T(30, 2)};
  std::vector<Tuple> r{T(2, 100), T(2, 200), T(3, 300)};
  CostModel model;
  OpMetrics m;
  auto out = MergeJoin(l, {1}, ls, r, {0}, rs, nullptr, model, &m);
  // key 2: two left × two right = 4 joined tuples.
  ASSERT_EQ(out.size(), 4u);
  for (const Tuple& t : out) {
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(std::get<int64_t>(t[1]), 2);
    EXPECT_EQ(std::get<int64_t>(t[2]), 2);
  }
}

TEST(MergeJoinTest, NoMatches) {
  Schema ls = TwoIntSchema();
  std::vector<Tuple> l{T(1, 1)};
  std::vector<Tuple> r{T(2, 2)};
  CostModel model;
  EXPECT_TRUE(MergeJoin(l, {0}, ls, r, {0}, ls, nullptr, model, nullptr)
                  .empty());
}

TEST(DedupSortedTest, Occupancies) {
  Schema s = TwoIntSchema();
  std::vector<Tuple> v{T(1, 1), T(1, 1), T(2, 2), T(3, 3), T(3, 3)};
  CostModel model;
  auto groups = DedupSorted(v, s, nullptr, model, nullptr);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].count, 2);
  EXPECT_EQ(groups[1].count, 1);
  EXPECT_EQ(groups[2].count, 2);
}

TEST(DedupSortedTest, Empty) {
  Schema s = TwoIntSchema();
  CostModel model;
  EXPECT_TRUE(DedupSorted({}, s, nullptr, model, nullptr).empty());
}

TEST(ProjectColumnsTest, KeepsRequestedOrder) {
  std::vector<Tuple> v{T(1, 10), T(2, 20)};
  CostModel model;
  auto out = ProjectColumns(v, {1}, nullptr, model, nullptr);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out[0].size(), 1u);
  EXPECT_EQ(std::get<int64_t>(out[0][0]), 10);
}

TEST(ChargeTempWriteTest, ChargesMovesAndPages) {
  Schema s = TwoIntSchema();
  VirtualClock clock;
  CostLedger ledger(&clock);
  CostModel model;
  StepMetrics m;
  ChargeTempWrite(s, 100, &ledger, model, &m);
  EXPECT_EQ(ledger.Count(CostCategory::kTupleMove), 100);
  EXPECT_EQ(ledger.Count(CostCategory::kBlockWrite), PagesFor(s, 100));
  EXPECT_NEAR(m.seconds, ledger.GrandTotal(), 1e-12);
}

}  // namespace
}  // namespace tcq
