// Edge cases across modules that the focused suites do not reach:
// project-term cost prediction, multi-attribute joins, executor caps,
// double-typed predicates, and small-relation geometries.

#include <gtest/gtest.h>

#include "cost/predictor.h"
#include "engine/executor.h"
#include "exec/exact.h"
#include "exec/staged.h"
#include "timectrl/selectivity.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


TEST(EdgeCaseTest, ProjectTermCostPrediction) {
  // PredictTermStageCost must price a projection root (temp write + sort
  // + merge + dedup + output) and grow with the fraction.
  Catalog catalog;
  auto rel = MakeUniformRelation("u", 10000, 50, 3);
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto term = Project(Scan("u"), {"key"});
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        nullptr, CostModel::Deterministic());
  ASSERT_TRUE(ev.ok());
  AdaptiveCostModel coefs(CostModel::Deterministic());
  std::map<int, double> sel_plus{{(*ev)->root().id, 0.01}};
  auto small = PredictTermStageCost(**ev, 0.01, sel_plus, coefs);
  auto large = PredictTermStageCost(**ev, 0.10, sel_plus, coefs);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->seconds, 0.0);
  EXPECT_GT(large->seconds, small->seconds);
}

TEST(EdgeCaseTest, TwoAttributeJoinExactAndSampled) {
  // Join on (key, tag): matches require both attributes equal.
  Catalog catalog;
  Schema schema({{"key", DataType::kInt64, 0},
                 {"tag", DataType::kInt64, 0},
                 {"id", DataType::kInt64, 0}});
  auto a = Relation::Create("a", schema, 96);  // 4 tuples/block
  auto b = Relation::Create("b", schema, 96);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < 64; ++i) {
    a->AppendUnchecked({i % 8, i % 4, i});
    b->AppendUnchecked({i % 8, i % 2, 1000 + i});
  }
  ASSERT_TRUE(catalog.Register(std::make_shared<Relation>(std::move(*a))).ok());
  ASSERT_TRUE(catalog.Register(std::make_shared<Relation>(std::move(*b))).ok());
  auto query =
      Join(Scan("a"), Scan("b"), {{"key", "key"}, {"tag", "tag"}});
  auto exact = ExactCount(query, catalog);
  ASSERT_TRUE(exact.ok());
  // key matches 1/8 of pairs (8 each side per key value), tag matches
  // where i%4 == j%2, i.e. tags 0/1 on the left half the time each.
  EXPECT_GT(*exact, 0);

  // Full-coverage staged evaluation agrees.
  auto ev = StagedTermEvaluator::Create(query, catalog, Fulfillment::kFull,
                                        nullptr, CostModel::Deterministic());
  ASSERT_TRUE(ev.ok());
  std::map<std::string, std::vector<const Block*>> blocks;
  for (const char* name : {"a", "b"}) {
    auto rel = catalog.Find(name);
    std::vector<const Block*> all;
    for (int64_t i = 0; i < (*rel)->NumBlocks(); ++i) {
      all.push_back((*rel)->ViewBlock(i).raw());
    }
    blocks[name] = std::move(all);
  }
  ASSERT_TRUE((*ev)->ExecuteStage(blocks).ok());
  EXPECT_EQ((*ev)->cum_hits(), *exact);
}

TEST(EdgeCaseTest, DoubleTypedPredicateThroughEngine) {
  Catalog catalog;
  Schema schema({{"x", DataType::kDouble, 0}, {"id", DataType::kInt64, 0}});
  auto rel = Relation::Create("d", schema, 128);
  ASSERT_TRUE(rel.ok());
  Rng rng(5);
  for (int64_t i = 0; i < 2000; ++i) {
    rel->AppendUnchecked({rng.UniformDouble(), i});
  }
  ASSERT_TRUE(
      catalog.Register(std::make_shared<Relation>(std::move(*rel))).ok());
  auto query = Select(Scan("d"), CmpLiteral("x", CompareOp::kLt, 0.25));
  auto exact = ExactCount(query, catalog);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(static_cast<double>(*exact), 500.0, 80.0);
  ExecutorOptions options;
  auto r = RunTimeConstrainedCount(query, catalog, WithQuota(options, 1e9));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, static_cast<double>(*exact));
}

TEST(EdgeCaseTest, MaxStagesCapRespected) {
  auto w = MakeSelectionWorkload(2000, 9);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options;
  options.max_stages = 2;
  options.strategy.one_at_a_time.d_beta = 72.0;  // many small stages
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(options, 1e6));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stages_run, 2);
}

TEST(EdgeCaseTest, SingleBlockRelation) {
  Catalog catalog;
  auto rel = MakeUniformRelation("tiny", 5, 3, 1);  // one block
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto query =
      Select(Scan("tiny"), CmpLiteral("key", CompareOp::kGe, int64_t{0}));
  ExecutorOptions options;
  auto r = RunTimeConstrainedCount(query, catalog, WithQuota(options, 100.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 5.0);
  EXPECT_EQ(r->blocks_sampled, 1);
}

TEST(EdgeCaseTest, SoftDeadlineWithPrecisionStopComposes) {
  auto w = MakeSelectionWorkload(5000, 10);
  ASSERT_TRUE(w.ok());
  ExecutorOptions options;
  options.deadline_mode = DeadlineMode::kSoft;
  options.precision.rel_halfwidth = 0.25;
  options.seed = 3;
  auto r = RunTimeConstrainedCount(w->query, w->catalog, WithQuota(options, 60.0));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stages_counted, 0);
  // One of the two criteria ended the run before sample exhaustion.
  EXPECT_LT(r->blocks_sampled, 2000);
}

TEST(EdgeCaseTest, SelPlusOnProjectTermStaysBounded) {
  Catalog catalog;
  auto rel = MakeUniformRelation("u", 1000, 10, 7);
  ASSERT_TRUE(catalog.Register(rel).ok());
  auto term = Project(Scan("u"), {"key"});
  auto ev = StagedTermEvaluator::Create(term, catalog, Fulfillment::kFull,
                                        nullptr, CostModel::Deterministic());
  ASSERT_TRUE(ev.ok());
  SelectivityOptions sopts;
  auto sel = ReviseSelectivities(**ev, sopts);
  auto plus = ComputeSelPlus(**ev, sel, 0.1, 72.0);
  for (const auto& [id, v] : plus) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace tcq
