#include "workload/generators.h"

#include <gtest/gtest.h>

#include "exec/exact.h"

namespace tcq {
namespace {

TEST(SyntheticSchemaTest, PaperGeometry) {
  Schema s = SyntheticSchema();
  EXPECT_EQ(s.TupleBytes(), 200);
}

TEST(SelectionWorkloadTest, ExactCountMatches) {
  for (int64_t target : {0LL, 1LL, 2000LL, 10000LL}) {
    auto w = MakeSelectionWorkload(target, 42);
    ASSERT_TRUE(w.ok()) << target;
    auto exact = ExactCount(w->query, w->catalog);
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(*exact, target);
    EXPECT_EQ(*exact, w->exact_count);
  }
}

TEST(SelectionWorkloadTest, PaperBlockGeometry) {
  auto w = MakeSelectionWorkload(2000, 42);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->NumTuples(), 10000);
  EXPECT_EQ((*rel)->NumBlocks(), 2000);
  EXPECT_EQ((*rel)->blocking_factor(), 5);
}

TEST(SelectionWorkloadTest, QualifyingTuplesScattered) {
  // The qualifying tuples should not be clustered in a prefix of blocks:
  // with 20% selectivity, the first 10 blocks (50 tuples) should hold
  // roughly 10 qualifiers, not 50.
  auto w = MakeSelectionWorkload(2000, 43);
  ASSERT_TRUE(w.ok());
  auto rel = w->catalog.Find("r1");
  ASSERT_TRUE(rel.ok());
  int qualifying = 0;
  for (int64_t b = 0; b < 10; ++b) {
    for (const Tuple& t : (*rel)->ViewBlock(b).rows()) {
      if (std::get<int64_t>(t[1]) < 2000) ++qualifying;
    }
  }
  EXPECT_GT(qualifying, 1);
  EXPECT_LT(qualifying, 30);
}

TEST(SelectionWorkloadTest, RejectsOutOfRange) {
  EXPECT_FALSE(MakeSelectionWorkload(-1, 1).ok());
  EXPECT_FALSE(MakeSelectionWorkload(10001, 1).ok());
}

TEST(IntersectionWorkloadTest, ExactOverlap) {
  for (int64_t target : {1000LL, 5000LL, 10000LL}) {
    auto w = MakeIntersectionWorkload(target, 7);
    ASSERT_TRUE(w.ok());
    auto exact = ExactCount(w->query, w->catalog);
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(*exact, target) << target;
  }
}

TEST(IntersectionWorkloadTest, TwoRelationsRegistered) {
  auto w = MakeIntersectionWorkload(1000, 7);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->catalog.Find("r1").ok());
  EXPECT_TRUE(w->catalog.Find("r2").ok());
  EXPECT_EQ((*w->catalog.Find("r2"))->NumBlocks(), 2000);
}

TEST(JoinWorkloadTest, ExactOutputCount) {
  auto w = MakeJoinWorkload(70000, 11);
  ASSERT_TRUE(w.ok());
  auto exact = ExactCount(w->query, w->catalog);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 70000);
}

TEST(JoinWorkloadTest, SmallerOutputs) {
  for (int64_t target : {0LL, 10LL, 1000LL}) {
    auto w = MakeJoinWorkload(target, 13);
    ASSERT_TRUE(w.ok()) << target;
    auto exact = ExactCount(w->query, w->catalog);
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(*exact, target);
  }
}

TEST(JoinWorkloadTest, RejectsBadParameters) {
  EXPECT_FALSE(MakeJoinWorkload(75, 1).ok());  // not a multiple of 10
  EXPECT_FALSE(MakeJoinWorkload(70000, 1, 10000, 200, 3).ok());  // 3∤10000
}

TEST(UniformRelationTest, GeometryAndKeys) {
  auto rel = MakeUniformRelation("u", 500, 10, 3);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->NumTuples(), 500);
  for (const Block& b : rel->blocks()) {
    for (const Tuple& t : b.tuples) {
      int64_t key = std::get<int64_t>(t[1]);
      EXPECT_GE(key, 0);
      EXPECT_LT(key, 10);
    }
  }
}

TEST(WorkloadTest, DifferentSeedsDifferentLayouts) {
  auto a = MakeSelectionWorkload(2000, 1);
  auto b = MakeSelectionWorkload(2000, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ra = a->catalog.Find("r1");
  auto rb = b->catalog.Find("r1");
  // First block should differ with overwhelming probability.
  EXPECT_NE(CompareTuples((*ra)->ViewBlock(0).rows()[0],
                          (*rb)->ViewBlock(0).rows()[0]),
            0);
}

}  // namespace
}  // namespace tcq
