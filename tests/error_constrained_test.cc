#include "engine/error_constrained.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"
#include "workload/generators.h"

namespace tcq {
namespace {

TEST(ErrorConstrainedTest, MeetsRelativeTarget) {
  auto w = MakeSelectionWorkload(2000, 1);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.15;
  options.seed = 3;
  auto r = RunErrorConstrainedCount(w->query, w->catalog, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->met_target);
  // The achieved half-width honours the target.
  EXPECT_LE(r->ci.HalfWidth(), 0.15 * r->estimate + 1e-9);
  EXPECT_GT(r->blocks_sampled, 0);
  EXPECT_LT(r->blocks_sampled, 2000);
  EXPECT_GT(r->elapsed_seconds, 0.0);
}

TEST(ErrorConstrainedTest, TighterTargetCostsMore) {
  auto w = MakeSelectionWorkload(2000, 2);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions loose;
  loose.rel_halfwidth = 0.30;
  loose.seed = 5;
  ErrorConstrainedOptions tight = loose;
  tight.rel_halfwidth = 0.05;
  auto rl = RunErrorConstrainedCount(w->query, w->catalog, loose);
  auto rt = RunErrorConstrainedCount(w->query, w->catalog, tight);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rl->met_target);
  EXPECT_TRUE(rt->met_target);
  EXPECT_GT(rt->blocks_sampled, rl->blocks_sampled);
  EXPECT_GT(rt->elapsed_seconds, rl->elapsed_seconds);
}

TEST(ErrorConstrainedTest, AbsoluteTarget) {
  auto w = MakeSelectionWorkload(2000, 3);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.0;
  options.abs_halfwidth = 250.0;
  options.seed = 7;
  auto r = RunErrorConstrainedCount(w->query, w->catalog, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->met_target);
  EXPECT_LE(r->ci.HalfWidth(), 250.0 + 1e-9);
}

TEST(ErrorConstrainedTest, ExhaustionReportsUnmetTarget) {
  // An impossible precision on a tiny intersection: the engine runs out
  // of blocks before meeting it, and says so.
  auto w = MakeIntersectionWorkload(10, 4);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.0001;
  options.seed = 9;
  auto r = RunErrorConstrainedCount(w->query, w->catalog, options);
  ASSERT_TRUE(r.ok());
  if (!r->met_target) {
    EXPECT_EQ(r->blocks_sampled, 4000);  // both relations fully drawn
  }
  // Full coverage makes the estimate exact either way.
  EXPECT_DOUBLE_EQ(r->estimate, 10.0);
}

TEST(ErrorConstrainedTest, RequiresATarget) {
  auto w = MakeSelectionWorkload(2000, 5);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.0;
  options.abs_halfwidth = 0.0;
  EXPECT_FALSE(
      RunErrorConstrainedCount(w->query, w->catalog, options).ok());
}

TEST(ErrorConstrainedTest, ConstantQueryImmediate) {
  auto w = MakeSelectionWorkload(2000, 6);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.05;
  auto r = RunErrorConstrainedCount(Scan("r1"), w->catalog, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->met_target);
  EXPECT_DOUBLE_EQ(r->estimate, 10000.0);
  EXPECT_EQ(r->blocks_sampled, 0);
}

TEST(ErrorConstrainedTest, CoverageOfReportedIntervals) {
  // Across seeds, the exact count should land inside the reported CI at
  // roughly the stated confidence (allowing wide slack for 40 runs).
  auto w = MakeSelectionWorkload(2000, 7);
  ASSERT_TRUE(w.ok());
  int covered = 0;
  const int reps = 40;
  for (int rep = 0; rep < reps; ++rep) {
    ErrorConstrainedOptions options;
    options.rel_halfwidth = 0.15;
    options.seed = 100 + static_cast<uint64_t>(rep);
    auto r = RunErrorConstrainedCount(w->query, w->catalog, options);
    ASSERT_TRUE(r.ok());
    if (r->ci.lo <= 2000.0 && 2000.0 <= r->ci.hi) ++covered;
  }
  EXPECT_GE(covered, 30);  // ≥75% at a nominal 95%
}

TEST(ErrorConstrainedTest, DeterministicPerSeed) {
  auto w = MakeSelectionWorkload(2000, 8);
  ASSERT_TRUE(w.ok());
  ErrorConstrainedOptions options;
  options.rel_halfwidth = 0.2;
  options.seed = 77;
  auto a = RunErrorConstrainedCount(w->query, w->catalog, options);
  auto b = RunErrorConstrainedCount(w->query, w->catalog, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
  EXPECT_EQ(a->blocks_sampled, b->blocks_sampled);
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
}

}  // namespace
}  // namespace tcq
