#include "engine/experiment.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace tcq {
namespace {

ExperimentConfig SmallConfig(const Workload& w, double d_beta) {
  ExperimentConfig config;
  config.query = w.query;
  config.catalog = &w.catalog;
  config.quota_s = 10.0;
  config.options.strategy.one_at_a_time.d_beta = d_beta;
  config.repetitions = 30;
  config.base_seed = 5;
  config.exact_count = w.exact_count;
  return config;
}

TEST(ExperimentTest, AggregatesBasicColumns) {
  auto w = MakeSelectionWorkload(2000, 1);
  ASSERT_TRUE(w.ok());
  auto row = RunExperiment(SmallConfig(*w, 24.0));
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ(row->runs, 30);
  EXPECT_EQ(row->d_beta, 24.0);
  EXPECT_GT(row->mean_stages, 1.0);
  EXPECT_GE(row->risk_pct, 0.0);
  EXPECT_LE(row->risk_pct, 100.0);
  EXPECT_GT(row->utilization_pct, 50.0);
  EXPECT_LE(row->utilization_pct, 100.0);
  EXPECT_GT(row->mean_blocks, 10.0);
  EXPECT_NEAR(row->mean_estimate, 2000.0, 400.0);
  EXPECT_GT(row->mean_abs_rel_error_pct, 0.0);
  EXPECT_EQ(row->zero_stage_runs, 0);
}

TEST(ExperimentTest, DeterministicInSeed) {
  auto w = MakeSelectionWorkload(2000, 2);
  ASSERT_TRUE(w.ok());
  auto a = RunExperiment(SmallConfig(*w, 12.0));
  auto b = RunExperiment(SmallConfig(*w, 12.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean_stages, b->mean_stages);
  EXPECT_DOUBLE_EQ(a->risk_pct, b->risk_pct);
  EXPECT_DOUBLE_EQ(a->mean_blocks, b->mean_blocks);
  EXPECT_DOUBLE_EQ(a->mean_estimate, b->mean_estimate);
}

TEST(ExperimentTest, RiskDecreasesWithDBeta) {
  // The paper's central claim, as a regression test: d_β = 0 risks ~50%,
  // a large d_β nearly eliminates overspending.
  auto w = MakeSelectionWorkload(2000, 3);
  ASSERT_TRUE(w.ok());
  auto config = SmallConfig(*w, 0.0);
  config.repetitions = 60;
  auto low = RunExperiment(config);
  config.options.strategy.one_at_a_time.d_beta = 48.0;
  auto high = RunExperiment(config);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(low->risk_pct, 30.0);
  EXPECT_LT(high->risk_pct, 15.0);
  EXPECT_GT(high->utilization_pct, low->utilization_pct);
  EXPECT_GT(high->mean_stages, low->mean_stages);
}

TEST(ExperimentTest, ValidatesArguments) {
  auto w = MakeSelectionWorkload(2000, 4);
  ASSERT_TRUE(w.ok());
  ExperimentConfig config = SmallConfig(*w, 12.0);
  config.catalog = nullptr;
  EXPECT_FALSE(RunExperiment(config).ok());
  config = SmallConfig(*w, 12.0);
  config.query = nullptr;
  EXPECT_FALSE(RunExperiment(config).ok());
  config = SmallConfig(*w, 12.0);
  config.repetitions = 0;
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(ExperimentTest, FormatTableContainsColumnsAndRows) {
  ExperimentRow row;
  row.d_beta = 24;
  row.mean_stages = 3.5;
  row.risk_pct = 12.5;
  row.runs = 200;
  std::string table = FormatExperimentTable("My Table", {row});
  EXPECT_NE(table.find("My Table"), std::string::npos);
  EXPECT_NE(table.find("d_beta"), std::string::npos);
  EXPECT_NE(table.find("24"), std::string::npos);
  EXPECT_NE(table.find("3.50"), std::string::npos);
  EXPECT_NE(table.find("12.5"), std::string::npos);
}

TEST(ExperimentTest, ClusteredDataInflatesEstimateError) {
  // The A6 ablation as a regression test: block-clustered qualifying
  // tuples inflate the cluster-sample variance, so at the same budget
  // the mean |relative error| grows.
  auto uniform = MakeSelectionWorkload(2000, 7, kPaperTuples,
                                       kPaperTupleBytes, 0.0);
  auto clustered = MakeSelectionWorkload(2000, 7, kPaperTuples,
                                         kPaperTupleBytes, 0.9);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(clustered.ok());
  auto cu = SmallConfig(*uniform, 24.0);
  auto cc = SmallConfig(*clustered, 24.0);
  cu.repetitions = cc.repetitions = 60;
  auto ru = RunExperiment(cu);
  auto rc = RunExperiment(cc);
  ASSERT_TRUE(ru.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_GT(rc->mean_abs_rel_error_pct, ru->mean_abs_rel_error_pct);
}

TEST(ExperimentTest, PrestoredLowSelectivityRaisesRisk) {
  // The A7 ablation as a regression test: a stale, too-low prestored
  // selectivity makes the planner oversize stages and overspend.
  auto w = MakeSelectionWorkload(2000, 8);
  ASSERT_TRUE(w.ok());
  auto runtime_cfg = SmallConfig(*w, 24.0);
  runtime_cfg.repetitions = 60;
  auto stale_cfg = runtime_cfg;
  stale_cfg.options.selectivity.freeze_initial = true;
  stale_cfg.options.selectivity.initial_select = 0.02;
  auto runtime_row = RunExperiment(runtime_cfg);
  auto stale_row = RunExperiment(stale_cfg);
  ASSERT_TRUE(runtime_row.ok());
  ASSERT_TRUE(stale_row.ok());
  EXPECT_GT(stale_row->risk_pct, runtime_row->risk_pct + 10.0);
}

}  // namespace
}  // namespace tcq
