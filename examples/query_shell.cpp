// An ERAM-style shell: type relational-algebra queries (the prototype's
// query language) and get time-constrained COUNT estimates. Preloaded
// relations: r1, r2 (the paper's 10,000-tuple geometry, 5,000 common
// tuples). Commands:
//
//   \quota <seconds>     set the time quota        (default 5.0)
//   \dbeta <value>       set the risk margin d_β   (default 24)
//   \exact               also compute the exact answer for comparison
//   \explain <query>     EXPLAIN: print the planned stages without running
//   \save <dir>          persist the catalog (one .tcq file per relation)
//   \load <dir>          replace the catalog from .tcq files
//   \help                this text
//   \quit                exit
//   <query>              e.g.  SELECT[key < 2000](r1)
//                              JOIN[key = key](r1, r2)
//                              r1 UNION r2
//
// When stdin is not a terminal the shell runs a scripted demo.
//
//   ./build/examples/query_shell

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "api/tcq.h"
#include "exec/exact.h"
#include "ra/parser.h"
#include "storage/page_codec.h"
#include "workload/generators.h"

namespace {

using namespace tcq;

void RunQuery(const std::string& text, Session* session, double quota_s,
              double d_beta, bool with_exact, uint64_t* seed) {
  auto r = session->Query(text)
               .WithQuota(quota_s)
               .WithRiskMargin(d_beta)
               .WithSeed((*seed)++)
               .Run();
  if (!r.ok()) {
    std::printf("  error: %s\n", r.status().ToString().c_str());
    return;
  }
  // std::min is a display clamp only: r->utilization carries the true
  // ratio and exceeds 1 after a soft-deadline overrun.
  std::printf(
      "  estimate %.1f   95%% CI [%.1f, %.1f]   %d stages, %lld blocks, "
      "%.2f s of %.2f s (%.0f%% used)%s\n",
      r->estimate, r->ci.lo, r->ci.hi, r->stages_counted,
      static_cast<long long>(r->blocks_sampled), r->elapsed_seconds,
      quota_s, 100.0 * std::min(1.0, r->utilization),
      r->overspent ? " (last stage aborted)" : "");
  if (with_exact) {
    auto expr = ParseQuery(text);
    if (!expr.ok()) return;
    auto exact = ExactCount(*expr, session->catalog());
    if (exact.ok()) {
      std::printf("  exact    %lld\n", static_cast<long long>(*exact));
    }
  }
}

void ExplainQuery(const std::string& text, Session* session, double quota_s,
                  double d_beta) {
  auto plan = session->Query(text)
                  .WithQuota(quota_s)
                  .WithRiskMargin(d_beta)
                  .Explain();
  if (!plan.ok()) {
    std::printf("  error: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("%s", plan->ToString().c_str());
}

}  // namespace

int main() {
  auto workload = MakeIntersectionWorkload(5000, /*seed=*/12);
  if (!workload.ok()) return 1;
  Session session(std::move(workload->catalog));

  double quota_s = 5.0;
  double d_beta = 24.0;
  bool with_exact = false;
  uint64_t seed = 1;

  const bool interactive = isatty(fileno(stdin)) != 0;
  std::printf(
      "tcq shell — relations: r1, r2 (10,000 tuples each, 5,000 common). "
      "\\help for help.\n");

  std::istringstream demo(
      "SELECT[key < 2000](r1)\n"
      "\\explain r1 INTERSECT r2\n"
      "\\exact\n"
      "JOIN[key = key](r1, r2)\n"
      "r1 INTERSECT r2\n"
      "\\quota 20\n"
      "r1 UNION r2\n"
      "PROJECT[key](SELECT[key < 100](r1))\n"
      "\\quit\n");
  std::istream& in = interactive ? std::cin : demo;

  std::string line;
  while (true) {
    std::printf("tcq> ");
    std::fflush(stdout);
    if (!std::getline(in, line)) break;
    if (!interactive) std::printf("%s\n", line.c_str());
    // Trim.
    size_t a = line.find_first_not_of(" \t");
    if (a == std::string::npos) continue;
    size_t b = line.find_last_not_of(" \t");
    line = line.substr(a, b - a + 1);
    if (line.empty()) continue;

    if (line[0] == '\\') {
      std::istringstream cmd(line.substr(1));
      std::string name;
      cmd >> name;
      if (name == "quit" || name == "q") break;
      if (name == "quota") {
        cmd >> quota_s;
        std::printf("  quota = %.2f s\n", quota_s);
      } else if (name == "dbeta") {
        cmd >> d_beta;
        std::printf("  d_beta = %.0f\n", d_beta);
      } else if (name == "explain") {
        std::string rest;
        std::getline(cmd, rest);
        size_t q = rest.find_first_not_of(" \t");
        if (q == std::string::npos) {
          std::printf("  usage: \\explain <query>\n");
        } else {
          ExplainQuery(rest.substr(q), &session, quota_s, d_beta);
        }
      } else if (name == "exact") {
        with_exact = !with_exact;
        std::printf("  exact comparison %s\n", with_exact ? "on" : "off");
      } else if (name == "save") {
        std::string dir;
        cmd >> dir;
        Status s = SaveCatalog(session.catalog(), dir);
        std::printf("  %s\n", s.ok() ? ("saved to " + dir).c_str()
                                      : s.ToString().c_str());
      } else if (name == "load") {
        std::string dir;
        cmd >> dir;
        auto loaded = LoadCatalog(dir);
        if (loaded.ok()) {
          session.ResetCatalog(std::move(*loaded));
          std::printf("  loaded %zu relations\n",
                      session.catalog().Names().size());
        } else {
          std::printf("  %s\n", loaded.status().ToString().c_str());
        }
      } else if (name == "help") {
        std::printf(
            "  \\quota <s>, \\dbeta <v>, \\exact, \\explain <query>, "
            "\\save <dir>, "
            "\\load <dir>, \\quit; otherwise type "
            "an RA query\n  (SELECT[pred](e), PROJECT[cols](e), "
            "JOIN[a=b](e,e), UNION/INTERSECT/MINUS)\n");
      } else {
        std::printf("  unknown command \\%s\n", name.c_str());
      }
      continue;
    }
    RunQuery(line, &session, quota_s, d_beta, with_exact, &seed);
  }
  std::printf("\n");
  return 0;
}
