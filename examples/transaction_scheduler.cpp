// Multi-user real-time database scenario: the paper's second motivation
// ([AbGM 88]) — "by precisely fixing the execution times of database
// queries in a transaction, accurate estimates for transaction execution
// times become possible", minimizing missed transaction deadlines.
//
// A toy earliest-deadline-first scheduler admits transactions of 1–3
// aggregate queries each. Two policies are compared over the same
// workload of 40 transactions:
//   exact  — every query is evaluated exactly (unpredictable durations);
//   quota  — every query gets a fixed time quota, so a transaction's
//            duration is (almost) its declared budget and admission
//            control is trustworthy.
//
//   ./build/examples/transaction_scheduler

#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/tcq.h"
#include "exec/exact.h"
#include "workload/generators.h"

namespace {

using namespace tcq;

struct Transaction {
  int id;
  std::vector<ExprPtr> queries;
  double deadline_s;  // relative to its start
};

/// Simulated duration of an exact evaluation: a full evaluation of every
/// operand relation plus output handling, priced with the same cost model
/// the engine uses (scan every block; sort and merge for binary ops).
double ExactDuration(const ExprPtr& query, const Catalog& catalog) {
  CostModel m = CostModel::Sun360();
  std::vector<std::string> scans;
  CollectScans(query, &scans);
  double seconds = 0.0;
  for (const std::string& name : scans) {
    auto rel = catalog.Find(name);
    double blocks = static_cast<double>((*rel)->NumBlocks());
    double tuples = static_cast<double>((*rel)->NumTuples());
    seconds += blocks * m.block_read_s + tuples * m.predicate_compare_s;
    if (scans.size() > 1) {
      // sort + merge for the binary operator
      seconds += tuples * 14.0 * m.sort_compare_s +
                 tuples * m.merge_compare_s + tuples * m.tuple_move_s;
    }
  }
  return seconds;
}

}  // namespace

int main() {
  auto workload = MakeIntersectionWorkload(5000, /*seed=*/31);
  if (!workload.ok()) return 1;
  Session session(std::move(workload->catalog));
  const Catalog& catalog = session.catalog();

  // Build 40 transactions mixing cheap selections and an intersection.
  Rng rng(2718);
  std::vector<Transaction> transactions;
  for (int i = 0; i < 40; ++i) {
    Transaction t;
    t.id = i;
    int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int q = 0; q < n; ++q) {
      if (rng.UniformDouble() < 0.7) {
        t.queries.push_back(
            Select(Scan("r1"), CmpLiteral("key", CompareOp::kLt,
                                          rng.UniformInt(1000, 9000))));
      } else {
        t.queries.push_back(Intersect(Scan("r1"), Scan("r2")));
      }
    }
    // Deadline: 3 s per query — comfortable for quota'd execution, tight
    // for exact evaluation of the intersection.
    t.deadline_s = 3.0 * static_cast<double>(t.queries.size());
    transactions.push_back(std::move(t));
  }

  const double kQueryQuota = 2.5;
  int missed_exact = 0, missed_quota = 0;
  double sum_err = 0.0;
  int est_count = 0;
  for (const Transaction& t : transactions) {
    // Policy 1: exact evaluation.
    double exact_duration = 0.0;
    for (const ExprPtr& q : t.queries) {
      exact_duration += ExactDuration(q, catalog);
    }
    if (exact_duration > t.deadline_s) ++missed_exact;

    // Policy 2: fixed quotas per query.
    double quota_duration = 0.0;
    for (const ExprPtr& q : t.queries) {
      auto r = session.Query(q)
                   .WithQuota(kQueryQuota)
                   .WithRiskMargin(24.0)
                   .WithSeed(static_cast<uint64_t>(t.id) * 101 + 17)
                   .Run();
      if (!r.ok()) return 1;
      quota_duration += r->elapsed_seconds;
      auto exact = ExactCount(q, catalog);
      if (*exact > 0 && r->stages_counted > 0) {
        sum_err += std::abs(r->estimate - static_cast<double>(*exact)) /
                   static_cast<double>(*exact);
        ++est_count;
      }
    }
    if (quota_duration > t.deadline_s) ++missed_quota;
  }

  std::printf("40 transactions, deadline = 3 s per contained query\n\n");
  std::printf("  policy  missed deadlines\n");
  std::printf("  exact   %d / 40\n", missed_exact);
  std::printf("  quota   %d / 40   (each query capped at %.1f s)\n",
              missed_quota, kQueryQuota);
  std::printf("\nmean |relative error| of the quota'd answers: %.1f%%\n",
              100.0 * sum_err / est_count);
  std::printf(
      "Fixed per-query time quotas make transaction durations "
      "predictable,\nso admission control can promise deadlines — the "
      "paper's [AbMo 88] use case.\n");
  return 0;
}
