// Real-time control scenario: the paper's motivating application is a
// database system for programmable logic controllers [OzHO 88], where a
// control loop must read aggregate state within a fixed cycle budget.
//
// A controller supervises a plant with 10,000 sensor readings on disk.
// Every control cycle it needs "how many sensors currently exceed the
// alarm threshold?" — and it has exactly 500 simulated milliseconds per
// cycle for the query, hard deadline. The example runs 20 cycles against
// shifting thresholds and shows that every cycle gets an answer with a
// bounded, small overshoot (only the aborted stage's work), while an
// exact scan would blow the cycle budget by two orders of magnitude.
//
//   ./build/examples/realtime_plc

#include <cstdio>

#include "api/tcq.h"
#include "exec/exact.h"
#include "workload/generators.h"

int main() {
  using namespace tcq;

  Session session;
  // Sensor readings: key = reading value in [0, 1000).
  auto sensors = MakeUniformRelation("sensors", 10000, 1000, /*seed=*/99);
  if (sensors == nullptr || !session.Register(sensors).ok()) return 1;

  const double kCycleBudgetS = 2.0;
  std::printf(
      "PLC control loop: COUNT(readings > threshold) per cycle, hard "
      "%.0f ms budget\n\n",
      1000.0 * kCycleBudgetS);
  std::printf(
      "  cycle  threshold  estimate   exact  err%%   time(ms)  over(ms)\n");

  int answered = 0;
  double worst_overshoot_ms = 0.0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    int64_t threshold = 400 + 25 * cycle;  // drifting alarm level
    auto query = Select(
        Scan("sensors"), CmpLiteral("key", CompareOp::kGt, threshold));

    auto result = session.Query(query)
                      .WithQuota(kCycleBudgetS)
                      .WithRiskMargin(24.0)
                      .WithDeadline(DeadlineMode::kHard)
                      .WithSeed(1000 + static_cast<uint64_t>(cycle))
                      .Run();
    if (!result.ok()) {
      std::fprintf(stderr, "cycle %d: %s\n", cycle,
                   result.status().ToString().c_str());
      return 1;
    }
    auto exact = ExactCount(query, session.catalog());
    double err = *exact > 0 ? 100.0 * (result->estimate - *exact) / *exact
                            : 0.0;
    double over_ms = 1000.0 * result->overspend_seconds;
    if (over_ms > worst_overshoot_ms) worst_overshoot_ms = over_ms;
    if (result->stages_counted > 0) ++answered;
    std::printf("  %5d  %9lld  %8.0f  %6lld  %+5.1f  %8.1f  %8.1f\n",
                cycle, static_cast<long long>(threshold), result->estimate,
                static_cast<long long>(*exact), err,
                1000.0 * result->elapsed_seconds, over_ms);
  }

  std::printf(
      "\n%d/20 cycles answered inside their budget; worst overshoot "
      "%.1f ms\n",
      answered, worst_overshoot_ms);
  std::printf(
      "(an exact scan of the 2,000-block relation costs ~%.0f ms per "
      "cycle — %0.fx the budget)\n",
      2000 * CostModel::Sun360().block_read_s * 1000.0 / 1.0,
      2000 * CostModel::Sun360().block_read_s / kCycleBudgetS);
  return 0;
}
