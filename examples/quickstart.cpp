// Quickstart: build a relation, ask for COUNT(σ(r1)) under a 5-second
// time quota, and inspect the estimate, its confidence interval, and the
// stage-by-stage reports.
//
//   ./build/examples/quickstart [--trace PATH]
//
// With --trace, the run records a Chrome trace_event JSON to PATH — open
// it in chrome://tracing or https://ui.perfetto.dev to see the per-stage
// plan/draw/evaluate spans on a timeline (README "Tracing a query").

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "api/tcq.h"
#include "exec/exact.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace tcq;

  const char* trace_path = nullptr;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  }

  // 1. A synthetic relation: 10,000 tuples of 200 bytes -> 2,000 disk
  //    blocks of 1 KiB, the paper's experimental geometry. `key` is a
  //    random permutation of 0..9999.
  auto workload = MakeSelectionWorkload(/*output_tuples=*/2000,
                                        /*seed=*/2024);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // 2. The query: COUNT(σ_{key < 2000}(r1)). Any Select / Project / Join /
  //    Intersect / Union / Difference tree works — Union and Difference
  //    are rewritten away by inclusion–exclusion.
  const ExprPtr query = workload->query;
  std::printf("query : COUNT(%s)\n", query->ToString().c_str());

  // 3. A session owns the catalog (and the worker pool, if any); evaluate
  //    the query with a hard 5-second quota via the fluent builder.
  Session session(std::move(workload->catalog));
  QueryBuilder builder = session.Query(query)
                             .WithQuota(5.0)
                             .WithRiskMargin(24.0)  // overspend margin d_β
                             .WithSeed(7);
  if (trace_path != nullptr) {
    TraceOptions trace;
    trace.export_path = trace_path;
    builder.WithTrace(trace);
  }
  auto result = builder.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. The answer, and how it was produced.
  auto exact = ExactCount(query, session.catalog());
  std::printf("estimate: %.1f   (exact: %lld)\n", result->estimate,
              static_cast<long long>(*exact));
  std::printf("95%% CI : [%.1f, %.1f]\n", result->ci.lo, result->ci.hi);
  std::printf("stages  : %d run, %d counted, %lld blocks sampled\n",
              result->stages_run, result->stages_counted,
              static_cast<long long>(result->blocks_sampled));
  // Display clamp only: utilization itself reports the true ratio, which
  // exceeds 1 when a soft deadline let the final stage overrun.
  std::printf("time    : %.2f s elapsed of %.2f s quota (%.0f%% used%s)\n",
              result->elapsed_seconds, 5.0,
              100.0 * std::min(1.0, result->utilization),
              result->overspent ? ", overspent last stage" : "");
  std::printf("\n  stage  fraction  blocks  predicted  actual   estimate\n");
  for (const StageReport& s : result->stages()) {
    std::printf("  %5d  %8.4f  %6lld  %8.2fs  %6.2fs  %9.1f%s\n", s.index,
                s.planned_fraction, static_cast<long long>(s.blocks_drawn),
                s.predicted_seconds, s.actual_seconds, s.estimate_after,
                s.within_quota ? "" : "   <- aborted (hard deadline)");
  }
  if (trace_path != nullptr) {
    std::printf("\ntrace written to %s (open in chrome://tracing)\n",
                trace_path);
  }

  // 5. The same query under the columnar layout: batch predicate masks
  //    and encoded-key merges instead of tuple-at-a-time evaluation.
  //    Faster in wall-clock mode, and bit-identical otherwise — same
  //    estimate, CI and stage schedule at the same seed (DESIGN.md §11).
  auto columnar = session.Query(query)
                      .WithQuota(5.0)
                      .WithRiskMargin(24.0)
                      .WithSeed(7)
                      .WithLayout(Layout::kColumnar)
                      .Run();
  if (!columnar.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 columnar.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncolumnar layout: estimate %.1f, CI [%.1f, %.1f] — %s\n",
              columnar->estimate, columnar->ci.lo, columnar->ci.hi,
              columnar->estimate == result->estimate &&
                      columnar->ci.lo == result->ci.lo &&
                      columnar->ci.hi == result->ci.hi
                  ? "bit-identical to the row run"
                  : "DIVERGED (bug!)");
  return 0;
}
