// Interactive analysis scenario: the paper's "impatient user" setting —
// the same aggregate query answered under increasing time quotas, showing
// the estimate converging and the confidence interval narrowing as the
// system is given more time; then the §3.2 error-constrained mode, where
// the system stops *early* once the requested precision is reached —
// streamed live, stage by stage, through a ProgressObserver.
//
//   ./build/examples/interactive_analyst

#include <algorithm>
#include <cstdio>

#include "api/tcq.h"
#include "exec/exact.h"
#include "obs/report.h"
#include "workload/generators.h"

namespace {

// Streams each stage as the engine finishes it — what an interactive
// front-end would render as a live progress ticker.
class StageTicker : public tcq::ProgressObserver {
 public:
  void OnQueryBegin(double quota_s, int num_terms) override {
    std::printf("  [live] query started: %.0f s quota, %d sampled term%s\n",
                quota_s, num_terms, num_terms == 1 ? "" : "s");
  }
  void OnStage(const tcq::StageReport& report) override {
    std::printf(
        "  [live] stage %d: estimate %8.0f after %5.1f s (%lld blocks)\n",
        report.index, report.estimate_after, report.cumulative_spend_s,
        static_cast<long long>(report.blocks_drawn));
  }
  void OnQueryEnd(double estimate, double /*variance*/,
                  bool overspent) override {
    std::printf("  [live] done: estimate %.0f%s\n", estimate,
                overspent ? " (last stage overspent)" : "");
  }
};

}  // namespace

int main() {
  using namespace tcq;

  // "How many orders joined with their region bucket?": the paper-scale
  // join workload (70,000 result tuples from 10,000 × 10,000).
  auto workload = MakeJoinWorkload(70000, /*seed=*/5);
  if (!workload.ok()) return 1;
  const ExprPtr query = workload->query;

  // Session-wide defaults shared by every query below.
  Session::Options session_options;
  session_options.defaults.strategy.one_at_a_time.d_beta = 24.0;
  session_options.defaults.selectivity.initial_join = 0.1;
  session_options.defaults.seed = 11;
  Session session(std::move(workload->catalog), session_options);

  auto exact = ExactCount(query, session.catalog());
  std::printf("query : COUNT(%s), exact = %lld\n\n",
              query->ToString().c_str(), static_cast<long long>(*exact));

  std::printf("-- progressive refinement under growing quotas --\n");
  std::printf("  quota(s)  estimate     95%% CI                blocks   used\n");
  for (double quota : {1.0, 2.5, 5.0, 10.0, 30.0, 60.0}) {
    auto r = session.Query(query).WithQuota(quota).Run();
    if (!r.ok()) return 1;
    // Clamped for display only; r->utilization itself reports the true
    // (possibly > 1 under a soft deadline) ratio.
    std::printf("  %8.1f  %8.0f  [%8.0f, %8.0f]  %6lld  %4.0f%%\n", quota,
                r->estimate, r->ci.lo, r->ci.hi,
                static_cast<long long>(r->blocks_sampled),
                100.0 * std::min(1.0, r->utilization));
  }

  std::printf(
      "\n-- error-constrained mode: stop when the 95%% CI half-width "
      "drops under 15%% --\n");
  PrecisionStop precision;
  precision.rel_halfwidth = 0.15;
  StageTicker ticker;
  auto r = session.Query(query)
               .WithQuota(600.0)
               .WithPrecision(precision)
               .WithObserver(ticker)
               .Run();
  if (!r.ok()) return 1;
  std::printf(
      "  stopped %s after %.1f s of the 600 s quota: estimate %.0f, "
      "95%% CI [%.0f, %.0f], %lld blocks\n",
      r->stopped_for_precision ? "for precision" : "otherwise",
      r->elapsed_seconds, r->estimate, r->ci.lo, r->ci.hi,
      static_cast<long long>(r->blocks_sampled));
  return 0;
}
