// Warm-start effectiveness gate: a session's second query must reach the
// cold query's confidence-interval half-width with at least 20% fewer
// FRESH block draws, because the pooled prefix replays the first query's
// blocks instead of hitting the (simulated) disk again.
//
//   ./build/bench/warm_start [--seed S]
//
// Prints one JSON object (the ci.sh `warm-bench` stage archives it at
// build/artifacts/warm_start.json); exits 1 when the savings gate fails.

#include <cstdio>
#include <cstdlib>

#include "api/tcq.h"
#include "paper_table_common.h"
#include "workload/generators.h"

namespace tcq::bench {
namespace {

constexpr double kMinFreshSavingsPct = 20.0;

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  auto workload = MakeSelectionWorkload(3000, /*seed=*/args.seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  Session::Options session_options;
  session_options.warm_start = true;
  Session session(std::move(workload->catalog),
                  std::move(session_options));

  // Cold query: pays full price for every draw; its achieved precision
  // becomes the warm query's target. Both runs use the soft deadline:
  // with restored (accurate) cost coefficients the warm planner fills the
  // quota to within the jitter margin, and a hard deadline would turn a
  // small overrun into an aborted stage and a degenerate comparison.
  auto cold = session.Query("SELECT[key < 3000](r1)")
                  .WithSeed(args.seed * 1000 + 1)
                  .WithQuota(3.0)
                  .WithDeadline(DeadlineMode::kSoft)
                  .Run();
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return 1;
  }
  WarmStartStats after_cold = session.CacheStats();
  double cold_halfwidth = (cold->ci.hi - cold->ci.lo) / 2.0;
  int64_t cold_fresh = after_cold.fresh_blocks;
  if (cold_halfwidth <= 0.0 || cold_fresh <= 0) {
    std::fprintf(stderr,
                 "warm_start: degenerate cold run (halfwidth %.3f, "
                 "%lld fresh draws)\n",
                 cold_halfwidth, static_cast<long long>(cold_fresh));
    return 1;
  }

  // Warm query: a different seed, stopping as soon as it matches the cold
  // precision. Replayed draws are not fresh I/O; only the fresh draws it
  // still needs count against the gate.
  PrecisionStop precision;
  precision.abs_halfwidth = cold_halfwidth;
  auto warm = session.Query("SELECT[key < 3000](r1)")
                  .WithSeed(args.seed * 1000 + 2)
                  .WithQuota(3.0)
                  .WithDeadline(DeadlineMode::kSoft)
                  .WithPrecision(precision)
                  .Run();
  if (!warm.ok()) {
    std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
    return 1;
  }
  WarmStartStats after_warm = session.CacheStats();
  double warm_halfwidth = (warm->ci.hi - warm->ci.lo) / 2.0;
  int64_t warm_fresh = after_warm.fresh_blocks - after_cold.fresh_blocks;
  int64_t warm_replayed =
      after_warm.replayed_blocks - after_cold.replayed_blocks;
  double savings_pct =
      100.0 * (1.0 - static_cast<double>(warm_fresh) /
                         static_cast<double>(cold_fresh));
  // A degenerate warm run (no counted stage → estimate 0, half-width 0)
  // must fail the gate, not sneak under the target.
  bool precision_met = warm->stages_counted > 0 && warm_halfwidth > 0.0 &&
                       warm_halfwidth <= cold_halfwidth;
  bool ok = precision_met && savings_pct >= kMinFreshSavingsPct;

  std::printf(
      "{\"bench\": \"warm_start\", \"seed\": %llu, "
      "\"cold\": {\"estimate\": %.1f, \"ci_halfwidth\": %.3f, "
      "\"fresh_blocks\": %lld, \"stages\": %d}, "
      "\"warm\": {\"estimate\": %.1f, \"ci_halfwidth\": %.3f, "
      "\"fresh_blocks\": %lld, \"replayed_blocks\": %lld, \"stages\": %d, "
      "\"stages_counted\": %d, \"overspent\": %s, "
      "\"stopped_for_precision\": %s}, "
      "\"fresh_savings_pct\": %.1f, \"min_savings_pct\": %.1f, "
      "\"ok\": %s}\n",
      static_cast<unsigned long long>(args.seed), cold->estimate,
      cold_halfwidth, static_cast<long long>(cold_fresh), cold->stages_run,
      warm->estimate, warm_halfwidth, static_cast<long long>(warm_fresh),
      static_cast<long long>(warm_replayed), warm->stages_run,
      warm->stages_counted, warm->overspent ? "true" : "false",
      warm->stopped_for_precision ? "true" : "false", savings_pct,
      kMinFreshSavingsPct, ok ? "true" : "false");
  if (!ok) {
    std::fprintf(stderr,
                 "warm_start: warm query reached halfwidth %.3f (target "
                 "%.3f) with %.1f%% fresh-draw savings (gate %.1f%%)\n",
                 warm_halfwidth, cold_halfwidth, savings_pct,
                 kMinFreshSavingsPct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
