// Hybrid selectivity predictor gate (DESIGN.md §12): on a drifting
// repeated workload the tagged n-gram history must beat the exact-
// signature prior cache (the warm-start baseline) — lower predicted-vs-
// actual stage-cost *overrun* error (the underprediction side, the one
// that blows hard deadlines; sel⁺ conservatism deliberately overpredicts)
// and at least 10% fewer wasted draws (blocks burned by stages that
// contribute nothing to the estimate).
//
// The drift: the join data alternates between two regimes (high / low
// key multiplicity → ~9× selectivity swing) while the query text stays
// identical, so the prior cache is exactly one regime stale at every
// epoch. Each epoch opens with a cheap regime-specific marker query;
// the (marker, main) signature 2-gram lets the history table predict
// the main query's new-regime selectivity where the prior cannot. A
// stale-low prior makes the one-at-a-time planner undersize QCOST,
// oversize the stage, and blow the hard deadline — every block of that
// aborted stage is a wasted draw.
//
// Wasted draws are the draw-efficiency currency here rather than fresh
// draws because on a repeated same-session workload the sample pools
// saturate at the quota-bounded depth after the first cycle: from then
// on *every* policy replays, and fresh draws are ~0 for both arms
// (whole-session fresh draws, which do include the learning transient,
// are reported alongside).
//
//   ./build/bench/sel_predictor [--seed S]
//
// Prints one JSON object (the ci.sh `pred-bench` stage archives it at
// build/artifacts/sel_predictor.json); exits 1 when a gate fails.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "api/tcq.h"
#include "paper_table_common.h"
#include "workload/generators.h"

namespace tcq::bench {
namespace {

constexpr double kMinWastedSavingsPct = 10.0;

constexpr int kEpochs = 24;
constexpr int kWarmupEpochs = 4;  // one full A/B cycle + chooser training
constexpr int64_t kTuples = 10000;
constexpr int64_t kRightPerKey = 50;
// Join output tuples per regime: selectivity 4.5e-3 vs 5e-4. At these
// multiplicities the join's output-writing term dominates QCOST, so a
// stale selectivity translates directly into a mis-sized stage.
constexpr int64_t kRegimeOutputs[2] = {450000, 50000};
constexpr double kQuotaS = 2.5;
constexpr double kMarkerQuotaS = 0.3;

struct ArmResult {
  int64_t wasted_blocks = 0;  // measured epochs, main-query runs
  int64_t total_blocks = 0;
  int64_t fresh_draws = 0;  // whole session, incl. the learning transient
  double err_sum = 0.0;     // Σ |predicted − actual| / actual per stage
  double overrun_sum = 0.0;  // Σ max(0, actual − predicted) / actual
  int64_t err_stages = 0;
  int overspent_runs = 0;
  int zero_estimate_runs = 0;  // aborted before any stage counted
  bool failed = false;
};

ArmResult RunArm(bool predictor_on, uint64_t seed) {
  ArmResult out;
  const bool debug = std::getenv("TCQ_PRED_BENCH_DEBUG") != nullptr;
  Session::Options session_options;
  session_options.warm_start = true;

  auto first = MakeJoinWorkload(kRegimeOutputs[0], /*seed=*/seed + 100,
                                kTuples, kPaperTupleBytes, kRightPerKey);
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    out.failed = true;
    return out;
  }
  ExprPtr query = first->query;
  Session session(std::move(first->catalog), std::move(session_options));

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const int regime = epoch % 2;
    if (epoch > 0) {
      // Same tuple count and width in both regimes: the relations keep
      // their block counts, so the session's sample pools stay valid —
      // only the data (and thus the join selectivity) drifts.
      auto drifted = MakeJoinWorkload(kRegimeOutputs[regime],
                                      /*seed=*/seed + 100 + regime, kTuples,
                                      kPaperTupleBytes, kRightPerKey);
      if (!drifted.ok()) {
        std::fprintf(stderr, "%s\n", drifted.status().ToString().c_str());
        out.failed = true;
        return out;
      }
      session.ResetCatalog(std::move(drifted->catalog));
    }

    // Regime marker: textually distinct per regime, so the predictor's
    // signature stream carries which regime the epoch is in.
    auto marker = session
                      .Query(regime == 0 ? "SELECT[key < 1](r1)"
                                         : "SELECT[key < 2](r1)")
                      .WithSeed(seed * 1000 + static_cast<uint64_t>(epoch))
                      .WithQuota(kMarkerQuotaS)
                      .WithDeadline(DeadlineMode::kSoft)
                      .WithSelPredictor(predictor_on)
                      .Run();
    if (!marker.ok()) {
      std::fprintf(stderr, "%s\n", marker.status().ToString().c_str());
      out.failed = true;
      return out;
    }

    // Main query: identical text every epoch, under the hard deadline.
    // One run per epoch, so its stage 0 always plans against a prior
    // recorded in the *other* regime.
    const int64_t fresh_before = session.CacheStats().fresh_blocks;
    auto run = session.Query(query)
                   .WithSeed(seed * 1000 + static_cast<uint64_t>(epoch) + 500)
                   .WithQuota(kQuotaS)
                   .WithDeadline(DeadlineMode::kHard)
                   .WithSelPredictor(predictor_on)
                   .Run();
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      out.failed = true;
      return out;
    }
    out.fresh_draws += session.CacheStats().fresh_blocks - fresh_before;
    if (debug) {
      std::fprintf(stderr,
                   "[%s] epoch %2d regime %d: est %8.0f stages %d/%d "
                   "overspent %d wasted %lld elapsed %.2f\n",
                   predictor_on ? "on " : "off", epoch, regime, run->estimate,
                   run->stages_counted, run->stages_run,
                   run->overspent ? 1 : 0,
                   static_cast<long long>(run->blocks_wasted),
                   run->elapsed_seconds);
      for (const StageReport& r : run->stage_reports) {
        std::fprintf(
            stderr,
            "    stage %d: f %.4f pred %.3f actual %.3f blocks %lld "
            "sel0 %.5f %s\n",
            r.index, r.planned_fraction, r.predicted_seconds,
            r.actual_seconds, static_cast<long long>(r.blocks_drawn),
            r.selectivities.empty() ? -1.0 : r.selectivities[0].selectivity,
            r.selectivities.empty() ? "" : r.selectivities[0].component.c_str());
      }
    }
    if (epoch < kWarmupEpochs) continue;
    out.wasted_blocks += run->blocks_wasted;
    out.total_blocks += run->blocks_sampled + run->blocks_wasted;
    if (run->overspent) ++out.overspent_runs;
    if (run->stages_counted == 0) ++out.zero_estimate_runs;
    for (const StageReport& report : run->stage_reports) {
      if (report.actual_seconds <= 0.0) continue;
      out.err_sum +=
          std::fabs(report.predicted_seconds - report.actual_seconds) /
          report.actual_seconds;
      out.overrun_sum +=
          std::fmax(0.0, report.actual_seconds - report.predicted_seconds) /
          report.actual_seconds;
      ++out.err_stages;
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  ArmResult off = RunArm(/*predictor_on=*/false, args.seed);
  ArmResult on = RunArm(/*predictor_on=*/true, args.seed);
  if (off.failed || on.failed) return 1;
  if (off.wasted_blocks <= 0 || off.err_stages <= 0 || on.err_stages <= 0) {
    std::fprintf(stderr,
                 "sel_predictor: degenerate arms (off wasted %lld)\n",
                 static_cast<long long>(off.wasted_blocks));
    return 1;
  }

  const double err_off = off.err_sum / static_cast<double>(off.err_stages);
  const double err_on = on.err_sum / static_cast<double>(on.err_stages);
  // The gated error is the *overrun* (underprediction) side only: the
  // hard-deadline risk is actual > predicted, and sel⁺ conservatism is
  // supposed to push misses to the safe side. A symmetric metric would
  // penalize the predictor for exactly that designed-in conservatism.
  const double overrun_off =
      off.overrun_sum / static_cast<double>(off.err_stages);
  const double overrun_on = on.overrun_sum / static_cast<double>(on.err_stages);
  const double savings_pct =
      100.0 * (1.0 - static_cast<double>(on.wasted_blocks) /
                         static_cast<double>(off.wasted_blocks));
  const bool ok = savings_pct >= kMinWastedSavingsPct &&
                  overrun_on < overrun_off &&
                  on.zero_estimate_runs <= off.zero_estimate_runs;

  std::printf(
      "{\"bench\": \"sel_predictor\", \"seed\": %llu, "
      "\"epochs\": %d, \"measured_epochs\": %d, "
      "\"prior_cache\": {\"wasted_blocks\": %lld, \"total_blocks\": %lld, "
      "\"fresh_blocks\": %lld, \"stage_cost_err\": %.4f, "
      "\"stage_cost_overrun_err\": %.4f, "
      "\"overspent_runs\": %d, \"zero_estimate_runs\": %d}, "
      "\"predictor\": {\"wasted_blocks\": %lld, \"total_blocks\": %lld, "
      "\"fresh_blocks\": %lld, \"stage_cost_err\": %.4f, "
      "\"stage_cost_overrun_err\": %.4f, "
      "\"overspent_runs\": %d, \"zero_estimate_runs\": %d}, "
      "\"wasted_savings_pct\": %.1f, \"min_savings_pct\": %.1f, "
      "\"ok\": %s}\n",
      static_cast<unsigned long long>(args.seed), kEpochs,
      kEpochs - kWarmupEpochs, static_cast<long long>(off.wasted_blocks),
      static_cast<long long>(off.total_blocks),
      static_cast<long long>(off.fresh_draws), err_off, overrun_off,
      off.overspent_runs, off.zero_estimate_runs,
      static_cast<long long>(on.wasted_blocks),
      static_cast<long long>(on.total_blocks),
      static_cast<long long>(on.fresh_draws), err_on, overrun_on,
      on.overspent_runs, on.zero_estimate_runs, savings_pct,
      kMinWastedSavingsPct, ok ? "true" : "false");
  if (!ok) {
    std::fprintf(stderr,
                 "sel_predictor: wasted-draw savings %.1f%% (gate %.1f%%), "
                 "stage-cost overrun error %.4f vs %.4f, zero-estimate runs "
                 "%d vs %d\n",
                 savings_pct, kMinWastedSavingsPct, overrun_on, overrun_off,
                 on.zero_estimate_runs, off.zero_estimate_runs);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
