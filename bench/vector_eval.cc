// Vectorized-evaluation gate: the columnar kernels must beat the row
// kernels by >= 2x per-block throughput on Select (batch predicate masks
// over contiguous column arrays vs tuple-at-a-time Eval) AND on Intersect
// (encoded-key memcmp merge vs variant-typed tuple comparison), while a
// whole query stays bit-identical across layouts — same estimate,
// variance, CI and stage schedule at threads 4 with warm-start and 5%
// fault injection.
//
//   ./build/bench/vector_eval [--reps R] [--seed S]
//
// Prints one JSON object (the ci.sh `vec-bench` stage archives it at
// build/artifacts/vector_eval.json); exits 1 when a speedup gate or the
// bit-identity check fails.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cache/warm_start.h"
#include "engine/executor.h"
#include "exec/operators.h"
#include "exec/vectorized.h"
#include "paper_table_common.h"
#include "ra/predicate.h"
#include "storage/column_batch.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tcq::bench {
namespace {

constexpr double kMinSpeedup = 2.0;
constexpr int kRunTuples = 4096;  // one "block batch" per repetition

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

Schema BenchSchema() {
  return Schema({{"id", DataType::kInt64, 0},
                 {"key", DataType::kInt64, 0},
                 {"payload", DataType::kString, 16}});
}

std::vector<Tuple> MakeRun(int n, uint64_t seed, int64_t id_domain,
                           int64_t key_domain) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string payload(12, 'a');
    for (char& c : payload) c = static_cast<char>('a' + rng.Uniform(26));
    out.push_back(Tuple{rng.UniformInt(0, id_domain - 1),
                        rng.UniformInt(0, key_domain - 1),
                        std::move(payload)});
  }
  return out;
}

// Times the two sides over `trials` interleaved rounds and keeps each
// side's fastest round. The benches run on shared machines, so a single
// timing is too noisy to gate on, and interleaving keeps a burst of
// neighbor load from landing entirely on one side of the ratio.
template <typename RowFn, typename ColFn>
void BestOfInterleaved(int trials, RowFn&& row_body, ColFn&& col_body,
                       double* row_s, double* col_s) {
  *row_s = 0.0;
  *col_s = 0.0;
  for (int t = 0; t < trials; ++t) {
    auto t0 = std::chrono::steady_clock::now();
    row_body();
    auto t1 = std::chrono::steady_clock::now();
    col_body();
    auto t2 = std::chrono::steady_clock::now();
    double row = Seconds(t0, t1);
    double col = Seconds(t1, t2);
    if (t == 0 || row < *row_s) *row_s = row;
    if (t == 0 || col < *col_s) *col_s = col;
  }
}

// Row vs columnar predicate evaluation over the same tuples; both sides
// count the qualifying rows so neither loop can be optimized away.
bool BenchSelect(const BenchArgs& args, double* row_s, double* col_s) {
  Schema schema = BenchSchema();
  std::vector<Tuple> tuples =
      MakeRun(kRunTuples, args.seed, 1 << 20, 100000);
  ColumnBatch batch;
  batch.Configure(schema);
  for (const Tuple& t : tuples) batch.AppendRow(t);
  auto bound = BoundPredicate::Bind(
      And(CmpLiteral("key", CompareOp::kLt, int64_t{50000}),
          CmpLiteral("id", CompareOp::kGe, int64_t{0})),
      schema);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return false;
  }

  int64_t row_hits = 0, col_hits = 0;
  std::vector<uint8_t> mask;
  BestOfInterleaved(
      5,
      [&] {
        for (int rep = 0; rep < args.repetitions; ++rep) {
          for (const Tuple& t : tuples) row_hits += bound->Eval(t) ? 1 : 0;
        }
      },
      [&] {
        for (int rep = 0; rep < args.repetitions; ++rep) {
          bound->EvalBatch(batch, &mask);
          for (uint8_t m : mask) col_hits += m ? 1 : 0;
        }
      },
      row_s, col_s);
  if (row_hits != col_hits) {
    std::fprintf(stderr, "vector_eval: select hit counts diverge (%lld vs %lld)\n",
                 static_cast<long long>(row_hits),
                 static_cast<long long>(col_hits));
    return false;
  }
  return true;
}

// Row vs columnar sorted-run intersection. Two deliberate shape choices
// keep the gate about merge throughput rather than shared overheads:
//
//  * The runs are CLUSTERED — the leading columns are coarse (64 and 256
//    distinct values), the way sorted runs over clustered relations look
//    (workload clustering > 0). Ties in the leading columns force the
//    row comparator through several variant dispatches (often down to
//    the string column) per step, while the encoded-key compare still
//    resolves in one or two 8-byte chunks.
//  * The encoded keys are built outside the timed region: in the staged
//    evaluator SortRunRangeColumnar leaves the sorted keys behind and
//    every downstream merge reuses them, so the merge never pays for
//    encoding.
bool BenchIntersect(const BenchArgs& args, double* row_s, double* col_s) {
  Schema schema = BenchSchema();
  std::vector<Tuple> left = MakeRun(kRunTuples, args.seed + 10, 16, 64);
  std::vector<Tuple> right =
      MakeRun(kRunTuples / 2, args.seed + 11, 16, 64);
  // A sprinkle of exact duplicates so the merge produces real output;
  // the identical output-tuple copies are paid by both sides, so they
  // are kept small relative to the comparison work being measured.
  right.insert(right.end(), left.begin(), left.begin() + kRunTuples / 64);
  int64_t ignore = 0;
  SortRunRange(&left, {}, &ignore);
  SortRunRange(&right, {}, &ignore);
  const int width = EncodedKeyWidth(schema, {});

  int64_t row_out = 0, col_out = 0;
  std::vector<uint8_t> left_keys, right_keys;
  EncodeKeyColumns(std::span<const Tuple>(left), schema, {}, &left_keys);
  EncodeKeyColumns(std::span<const Tuple>(right), schema, {}, &right_keys);
  BestOfInterleaved(
      5,
      [&] {
        for (int rep = 0; rep < args.repetitions; ++rep) {
          int64_t comparisons = 0;
          row_out += static_cast<int64_t>(
              MergeIntersectRange(left, right, &comparisons).size());
        }
      },
      [&] {
        for (int rep = 0; rep < args.repetitions; ++rep) {
          int64_t comparisons = 0;
          col_out += static_cast<int64_t>(
              MergeIntersectRangeColumnar(left, left_keys.data(), right,
                                          right_keys.data(), width,
                                          &comparisons)
                  .size());
        }
      },
      row_s, col_s);
  if (row_out != col_out) {
    std::fprintf(stderr,
                 "vector_eval: intersect outputs diverge (%lld vs %lld)\n",
                 static_cast<long long>(row_out),
                 static_cast<long long>(col_out));
    return false;
  }
  return true;
}

// A whole query at threads 4 with warm-start and 5% fault injection must
// return the very same bits under either layout.
bool BenchBitIdentity(const BenchArgs& args) {
  auto workload = MakeSelectionWorkload(2000, args.seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return false;
  }
  QueryResult results[2];
  for (int pass = 0; pass < 2; ++pass) {
    ExecutorOptions options;
    options.quota_s = 2.0;
    options.seed = args.seed * 100 + 7;
    options.threads = 4;
    options.layout = pass == 0 ? Layout::kRow : Layout::kColumnar;
    options.faults.enabled = true;
    options.faults.transient_rate = 0.05;
    options.faults.straggler_rate = 0.05;
    WarmStartCache cache;
    options.warm_cache = &cache;
    // Two queries per layout: the second replays the first's pooled
    // blocks, so warm-start replay is covered by the identity check too.
    auto first = RunTimeConstrainedAggregate(
        workload->query, AggregateSpec::Count(), workload->catalog, options);
    auto second = RunTimeConstrainedAggregate(
        workload->query, AggregateSpec::Count(), workload->catalog, options);
    if (!first.ok() || !second.ok()) {
      std::fprintf(stderr, "vector_eval: bit-identity run failed\n");
      return false;
    }
    results[pass] = *second;
  }
  const QueryResult& row = results[0];
  const QueryResult& col = results[1];
  bool same = row.estimate == col.estimate && row.variance == col.variance &&
              row.ci.lo == col.ci.lo && row.ci.hi == col.ci.hi &&
              row.stages_run == col.stages_run &&
              row.blocks_sampled == col.blocks_sampled &&
              row.elapsed_seconds == col.elapsed_seconds;
  if (!same) {
    std::fprintf(stderr,
                 "vector_eval: layouts diverge (row %.6f var %.6f, "
                 "columnar %.6f var %.6f)\n",
                 row.estimate, row.variance, col.estimate, col.variance);
  }
  return same;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  double select_row_s = 0.0, select_col_s = 0.0;
  double intersect_row_s = 0.0, intersect_col_s = 0.0;
  if (!BenchSelect(args, &select_row_s, &select_col_s)) return 1;
  if (!BenchIntersect(args, &intersect_row_s, &intersect_col_s)) return 1;
  bool bit_identical = BenchBitIdentity(args);

  double select_speedup =
      select_col_s > 0.0 ? select_row_s / select_col_s : 0.0;
  double intersect_speedup =
      intersect_col_s > 0.0 ? intersect_row_s / intersect_col_s : 0.0;
  bool ok = bit_identical && select_speedup >= kMinSpeedup &&
            intersect_speedup >= kMinSpeedup;

  std::printf(
      "{\"bench\": \"vector_eval\", \"seed\": %llu, \"reps\": %d, "
      "\"tuples_per_block\": %d, "
      "\"select\": {\"row_s\": %.6f, \"columnar_s\": %.6f}, "
      "\"intersect\": {\"row_s\": %.6f, \"columnar_s\": %.6f}, "
      "\"select_speedup\": %.2f, \"intersect_speedup\": %.2f, "
      "\"min_speedup\": %.1f, \"bit_identical\": %s, \"ok\": %s}\n",
      static_cast<unsigned long long>(args.seed), args.repetitions,
      kRunTuples, select_row_s, select_col_s, intersect_row_s,
      intersect_col_s, select_speedup, intersect_speedup, kMinSpeedup,
      bit_identical ? "true" : "false", ok ? "true" : "false");
  if (!ok) {
    std::fprintf(stderr,
                 "vector_eval: select %.2fx, intersect %.2fx (gate %.1fx), "
                 "bit_identical=%s\n",
                 select_speedup, intersect_speedup, kMinSpeedup,
                 bit_identical ? "true" : "false");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
