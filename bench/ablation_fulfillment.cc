// Ablation A2 (§4): full vs partial fulfillment of the cluster sampling
// plan. Full fulfillment evaluates every cross-stage run pair — more
// point-space coverage per sampled block (better estimates), but each
// stage grows more expensive; partial fulfillment evaluates only
// new×new — cheap stages, less coverage. The paper suggests partial
// fulfillment "may have its place" for using small amounts of leftover
// time (§5.B).

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int RunOne(const char* name, const Workload& workload, double quota_s,
           Fulfillment fulfillment, bool hybrid, int repetitions,
           uint64_t seed) {
  ExperimentConfig config;
  config.query = workload.query;
  config.catalog = &workload.catalog;
  config.quota_s = quota_s;
  config.options.fulfillment = fulfillment;
  config.options.final_partial_stages = hybrid;
  config.options.strategy.one_at_a_time.d_beta = 24.0;
  config.repetitions = repetitions;
  config.base_seed = seed;
  config.exact_count = workload.exact_count;
  auto row = RunExperiment(config);
  if (!row.ok()) {
    std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
    return 1;
  }
  std::printf("  %-8s  %6.2f  %6.1f  %8.3f  %7.1f  %7.1f  %9.1f\n", name,
              row->mean_stages, row->risk_pct, row->mean_ovsp_s,
              row->utilization_pct, row->mean_blocks,
              row->mean_abs_rel_error_pct);
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  for (int64_t output : {1000, 10000}) {
    auto w = MakeIntersectionWorkload(output, 42);
    if (!w.ok()) return 1;
    std::printf(
        "A2 — fulfillment on Intersection (%lld out, 10 s)\n"
        "  plan      stages   risk%%   ovsp(s)  utiliz%%   blocks  "
        "|rel.err|%%\n",
        static_cast<long long>(output));
    if (RunOne("full", *w, 10.0, Fulfillment::kFull, false,
               args.repetitions, args.seed) != 0) {
      return 1;
    }
    if (RunOne("partial", *w, 10.0, Fulfillment::kPartial, false,
               args.repetitions, args.seed) != 0) {
      return 1;
    }
    if (RunOne("hybrid", *w, 10.0, Fulfillment::kFull, true,
               args.repetitions, args.seed) != 0) {
      return 1;
    }
    std::printf("\n");
  }
  // The hybrid shines where full fulfillment prices itself out of the
  // residual time — the paper observed this for the join at d_beta >= 24
  // (§5.C): partial final stages put the leftover seconds to work.
  auto join = MakeJoinWorkload(70000, 43);
  if (!join.ok()) return 1;
  ExperimentConfig config;
  config.query = join->query;
  config.catalog = &join->catalog;
  config.quota_s = 2.5;
  config.options.selectivity.initial_join = 0.1;
  config.options.strategy.one_at_a_time.d_beta = 48.0;
  config.repetitions = args.repetitions;
  config.base_seed = args.seed;
  config.exact_count = join->exact_count;
  std::printf(
      "A2b — hybrid on Join (70,000 out, 2.5 s, d_beta 48)\n"
      "  plan      stages   risk%%   ovsp(s)  utiliz%%   blocks  "
      "|rel.err|%%\n");
  for (int hybrid = 0; hybrid <= 1; ++hybrid) {
    config.options.final_partial_stages = hybrid != 0;
    auto row = RunExperiment(config);
    if (!row.ok()) return 1;
    std::printf("  %-8s  %6.2f  %6.1f  %8.3f  %7.1f  %7.1f  %9.1f\n",
                hybrid != 0 ? "hybrid" : "full", row->mean_stages,
                row->risk_pct, row->mean_ovsp_s, row->utilization_pct,
                row->mean_blocks, row->mean_abs_rel_error_pct);
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
