// Serving-layer load benchmark: an open-loop 4x-overload arrival schedule
// against one tcq::Server, with admission control on and off.
//
// Method: the median wall service time T of the benchmark query is
// calibrated first; then N submissions arrive T/4 apart (4x the service
// rate), each with a serving deadline of a few T. With admission ON the
// controller sheds the excess (shrink / EDF queue / typed rejection), so
// the queries it actually grants still meet their deadlines; with
// admission OFF everything runs at once, latency balloons, and the
// deadline-miss rate of those same "admitted" queries blows through the
// bound. Emits one JSON object with both runs and the gate verdict:
//
//   ./build/bench/serve_load [--n N] [--overload F]
//
// Gate (the "ok" field, enforced by `ci.sh serve-bench`):
//   * admission on:  miss rate of immediately granted queries <= 5%
//   * admission off: the same miss rate violates that bound
//   * both runs:     admitted+shrunk+queued+rejected == submitted

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "api/tcq.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "workload/generators.h"

namespace tcq::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kWorkloadSeed = 7;
constexpr int64_t kOutputTuples = 50000;
constexpr int64_t kTuples = 500000;
/// Simulated seconds per query. Sized so one query costs tens of
/// milliseconds of real CPU (thousands of blocks): long enough that the
/// open-loop overload actually overlaps submissions, short enough that
/// both runs finish in seconds.
constexpr double kQuotaS = 1000.0;
constexpr double kMissBoundPct = 5.0;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

Catalog MakeBenchCatalog() {
  auto workload =
      MakeIntersectionWorkload(kOutputTuples, kWorkloadSeed, kTuples);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(workload->catalog);
}

/// Median wall-clock time of one (simulated-quota) query, unloaded.
double CalibrateServiceTime() {
  Session session(MakeBenchCatalog());
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    const Clock::time_point t0 = Clock::now();
    auto r = session.Query("r1 INTERSECT r2")
                 .WithSeed(11 + static_cast<uint64_t>(rep))
                 .WithQuota(kQuotaS)
                 .Run();
    if (!r.ok()) {
      std::fprintf(stderr, "calibration: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(SecondsBetween(t0, Clock::now()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct LoadResult {
  bool admission = false;
  int submitted = 0;
  int64_t admitted = 0, shrunk = 0, queued = 0, rejected = 0;
  int64_t completed = 0;
  int granted_completed = 0;  // completions with an immediate grant
  int granted_missed = 0;     // ... of those, past their serving deadline
  double elapsed_s = 0.0;
  double qps = 0.0;            // completions per wall second
  double p99_latency_s = 0.0;  // over all completions
  double miss_pct = 0.0;       // granted_missed / granted_completed
  bool counters_sum = false;
};

LoadResult RunLoad(bool admission_on, int n, double overload,
                   double t_svc_s) {
  const double deadline_s = 6.0 * t_svc_s;
  const double gap_s = t_svc_s / overload;

  Server::Options options;
  options.admission.enabled = admission_on;
  options.admission.global_budget_s = 2.0 * kQuotaS;  // two full grants
  options.admission.max_concurrent = 2;
  options.admission.min_shrunk_quota_s = kQuotaS / 4.0;
  options.admission.max_queue_depth = 4;
  Server server(MakeBenchCatalog(), options);

  struct Submission {
    bool completed = false;
    AdmissionReport::Outcome outcome = AdmissionReport::Outcome::kStandalone;
    double latency_s = 0.0;
    bool missed = false;
  };
  std::vector<Submission> submissions(static_cast<size_t>(n));

  ThreadPool submitters(n - 1);  // every in-flight submission gets a thread
  const Clock::time_point start = Clock::now();
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([&, i] {
      const Clock::time_point scheduled =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(gap_s * i));
      std::this_thread::sleep_until(scheduled);
      Session session = server.OpenSession();
      auto r = session.Query("r1 INTERSECT r2")
                   .WithSeed(100 + static_cast<uint64_t>(i))
                   .WithQuota(kQuotaS)
                   .WithServeDeadline(deadline_s)
                   .Run();
      Submission& s = submissions[static_cast<size_t>(i)];
      // Open-loop latency: from the scheduled arrival, so a late submit
      // counts against the server, not for it.
      s.latency_s = SecondsBetween(scheduled, Clock::now());
      if (!r.ok()) return;  // rejected (typed Status) — never executed
      s.completed = true;
      s.outcome = r->admission.outcome;
      s.missed = s.latency_s > deadline_s;
    });
  }
  RunTasks(&submitters, &tasks);
  const double elapsed_s = SecondsBetween(start, Clock::now());

  LoadResult out;
  out.admission = admission_on;
  out.submitted = n;
  out.elapsed_s = elapsed_s;
  const ServerStats stats = server.stats();
  out.admitted = stats.admission.admitted;
  out.shrunk = stats.admission.shrunk;
  out.queued = stats.admission.queued;
  out.rejected = stats.admission.rejected;
  out.completed = stats.completed;
  out.counters_sum =
      out.admitted + out.shrunk + out.queued + out.rejected ==
      stats.admission.submitted &&
      stats.admission.submitted == n;

  std::vector<double> latencies;
  for (const Submission& s : submissions) {
    if (!s.completed) continue;
    latencies.push_back(s.latency_s);
    if (s.outcome == AdmissionReport::Outcome::kAdmitted ||
        s.outcome == AdmissionReport::Outcome::kShrunk) {
      ++out.granted_completed;
      if (s.missed) ++out.granted_missed;
    }
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const size_t p99 =
        std::min(latencies.size() - 1,
                 static_cast<size_t>(0.99 * static_cast<double>(
                                                latencies.size())));
    out.p99_latency_s = latencies[p99];
    out.qps = elapsed_s > 0.0
                  ? static_cast<double>(latencies.size()) / elapsed_s
                  : 0.0;
  }
  out.miss_pct = out.granted_completed > 0
                     ? 100.0 * out.granted_missed / out.granted_completed
                     : 0.0;
  return out;
}

void PrintRunJson(const LoadResult& r, bool last) {
  std::printf(
      "    {\"admission\": %s, \"submitted\": %d, \"admitted\": %lld, "
      "\"shrunk\": %lld, \"queued\": %lld, \"rejected\": %lld, "
      "\"completed\": %lld,\n"
      "     \"granted_completed\": %d, \"granted_missed\": %d, "
      "\"miss_pct\": %.2f, \"p99_latency_s\": %.4f, \"qps\": %.1f, "
      "\"elapsed_s\": %.3f, \"counters_sum\": %s}%s\n",
      r.admission ? "true" : "false", r.submitted,
      static_cast<long long>(r.admitted), static_cast<long long>(r.shrunk),
      static_cast<long long>(r.queued), static_cast<long long>(r.rejected),
      static_cast<long long>(r.completed), r.granted_completed,
      r.granted_missed, r.miss_pct, r.p99_latency_s, r.qps, r.elapsed_s,
      r.counters_sum ? "true" : "false", last ? "" : ",");
}

int Main(int argc, char** argv) {
  int n = 40;
  double overload = 4.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) n = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--overload") == 0) {
      overload = std::atof(argv[i + 1]);
    }
  }
  if (n < 4) n = 4;

  const double t_svc_s = CalibrateServiceTime();
  const LoadResult on = RunLoad(/*admission_on=*/true, n, overload, t_svc_s);
  const LoadResult off =
      RunLoad(/*admission_on=*/false, n, overload, t_svc_s);

  const bool ok_on = on.miss_pct <= kMissBoundPct && on.counters_sum;
  const bool ok_off = off.miss_pct > kMissBoundPct && off.counters_sum;
  const bool ok = ok_on && ok_off;

  std::printf("{\n");
  std::printf(
      "  \"t_svc_s\": %.5f, \"n\": %d, \"overload\": %.1f, "
      "\"deadline_s\": %.5f, \"miss_bound_pct\": %.1f,\n",
      t_svc_s, n, overload, 6.0 * t_svc_s, kMissBoundPct);
  std::printf("  \"runs\": [\n");
  PrintRunJson(on, /*last=*/false);
  PrintRunJson(off, /*last=*/true);
  std::printf("  ],\n");
  std::printf("  \"ok_admission_on\": %s, \"ok_admission_off\": %s, "
              "\"ok\": %s\n",
              ok_on ? "true" : "false", ok_off ? "true" : "false",
              ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
