// Ablation A7 (§3.1): run-time selectivity estimation vs prestored
// selectivities. The paper chooses run-time estimation for its
// flexibility — "it does not need any specific information about a
// query" — noting that prestored statistics are fine for fixed query
// mixes but need maintenance. Rows:
//   run-time        Figure 3.3 revision from samples (the paper's choice)
//   prestored-true  frozen at the true selectivity (a perfect, freshly
//                   maintained statistics store)
//   prestored-high  frozen at 1.0 (maximally stale/conservative)
//   prestored-low   frozen at truth/10 (stale after data drift —
//                   dangerous: the planner oversizes stages)

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int RunOne(const char* name, const Workload& workload,
           const SelectivityOptions& sel, int repetitions, uint64_t seed) {
  ExperimentConfig config;
  config.query = workload.query;
  config.catalog = &workload.catalog;
  config.quota_s = 10.0;
  config.options.selectivity = sel;
  config.options.strategy.one_at_a_time.d_beta = 24.0;
  config.repetitions = repetitions;
  config.base_seed = seed;
  config.exact_count = workload.exact_count;
  auto row = RunExperiment(config);
  if (!row.ok()) {
    std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
    return 1;
  }
  std::printf("  %-15s  %6.2f  %6.1f  %8.3f  %7.1f  %7.1f  %9.1f\n", name,
              row->mean_stages, row->risk_pct, row->mean_ovsp_s,
              row->utilization_pct, row->mean_blocks,
              row->mean_abs_rel_error_pct);
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  auto workload = MakeSelectionWorkload(2000, 42);  // true sel = 0.2
  if (!workload.ok()) return 1;
  std::printf(
      "A7 — run-time vs prestored selectivities, Selection (sel 0.2, "
      "10 s)\n"
      "  selectivities    stages   risk%%   ovsp(s)  utiliz%%   blocks  "
      "|rel.err|%%\n");
  SelectivityOptions runtime_est;  // defaults: revise from samples
  if (RunOne("run-time", *workload, runtime_est, args.repetitions,
             args.seed))
    return 1;
  SelectivityOptions truth;
  truth.freeze_initial = true;
  truth.initial_select = 0.2;
  if (RunOne("prestored-true", *workload, truth, args.repetitions,
             args.seed))
    return 1;
  SelectivityOptions high;
  high.freeze_initial = true;
  high.initial_select = 1.0;
  if (RunOne("prestored-high", *workload, high, args.repetitions,
             args.seed))
    return 1;
  SelectivityOptions low;
  low.freeze_initial = true;
  low.initial_select = 0.02;
  return RunOne("prestored-low", *workload, low, args.repetitions,
                args.seed);
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
