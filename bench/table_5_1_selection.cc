// Reproduces the paper's Figure 5.1: time-control performance for the
// Selection operation. Setup (§5.A): one 10,000-tuple / 2,000-block
// relation; selection formula with one integer comparison; assumed
// maximum selectivity 1 at the first stage; time quota 10 s; every row is
// aggregated over 200 independent runs.

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  PrintPaperReference(
      "Figure 5.1 — Selection, quota 10 s",
      {{0, 1.56, 56, 0.11, 63, 54},
       {12, 1.73, 43, 0.09, 71, 61},
       {24, 2.62, 26, 0.05, 92, 81},
       {48, 3.56, 4, 0.03, 98, 84},
       {72, 4.12, 2, 0.02, 98, 83}});

  // The paper does not state the selection output cardinality; 2,000
  // qualifying tuples (selectivity 0.2) is used here, and the sweep is
  // also run at 20% / 50% to show the shape is insensitive to it.
  auto workload = MakeSelectionWorkload(2000, /*seed=*/42);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  ExecutorOptions options;
  options.selectivity.initial_select = 1.0;  // paper: max selectivity
  int rc = RunSweep("Selection, 2,000 output tuples, quota 10 s",
                    *workload, /*quota_s=*/10.0, options, args.repetitions,
                    args.seed);
  if (rc != 0) return rc;

  auto workload50 = MakeSelectionWorkload(5000, /*seed=*/43);
  if (!workload50.ok()) return 1;
  return RunSweep("Selection, 5,000 output tuples, quota 10 s",
                  *workload50, 10.0, options, args.repetitions, args.seed);
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
