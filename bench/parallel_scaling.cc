// Parallel scaling on the Figure 5.3 join workload: wall-clock runs at
// 1/2/4/8 threads, same quota and seed per width. Reports blocks/second
// (the engine's useful throughput — more blocks sampled in the same quota
// means tighter intervals) and the estimate's relative error. Emits one
// JSON object per width so results can be consumed by scripts:
//
//   ./build/bench/parallel_scaling [--reps N] [--seed S]

#include <cmath>
#include <cstdio>
#include <vector>

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


struct ScalingRow {
  int threads = 0;
  double mean_blocks = 0.0;
  double mean_elapsed_s = 0.0;
  double blocks_per_second = 0.0;
  double mean_rel_error = 0.0;
  double mean_stages = 0.0;
  double speedup_blocks = 0.0;  // vs the 1-thread row
};

struct ScalingArgs {
  BenchArgs base;
  double quota_s = 0.4;
};

ScalingArgs ParseScalingArgs(int argc, char** argv) {
  ScalingArgs args;
  args.base = ParseBenchArgs(argc, argv);
  // Wall-clock runs are real work; default to far fewer repetitions than
  // the simulated paper tables.
  if (args.base.repetitions == 200) args.base.repetitions = 5;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--quota") {
      args.quota_s = std::atof(argv[i + 1]);
    }
  }
  return args;
}

int Main(int argc, char** argv) {
  ScalingArgs scaling = ParseScalingArgs(argc, argv);
  BenchArgs args = scaling.base;

  // The Figure 5.3 geometry (10 right tuples per key, 7·10⁻⁴ join
  // selectivity) scaled 20×, with a quota a fraction of the full
  // evaluation's wall time, so the quota — not the data — limits how many
  // blocks each width can afford.
  auto workload = MakeJoinWorkload(1400000, /*seed=*/777,
                                   /*num_tuples=*/200000);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const double quota_s = scaling.quota_s;
  const double exact = static_cast<double>(workload->exact_count);

  std::vector<ScalingRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    ScalingRow row;
    row.threads = threads;
    for (int rep = 0; rep < args.repetitions; ++rep) {
      ExecutorOptions options;
      // A well-informed selectivity prior (the true join selectivity is
      // 3.5e-5) keeps the predicted stage cost in its f-linear regime, so
      // the planned fraction scales with the modeled speedup S(W) instead
      // of its square root.
      options.selectivity.initial_join = 1e-4;
      options.strategy.one_at_a_time.d_beta = 12.0;
      options.use_wall_clock = true;
      options.physical = CostModel::ModernInMemory();
      // Optimistic prior: assume linear scaling until the per-stage
      // work/span measurements re-fit the efficiency coefficient.
      options.physical.parallel_efficiency = 1.0;
      // Conservative initial coefficients leave every width headroom to
      // finish its first stage inside the quota even when the hardware
      // delivers less parallelism than the prior assumes.
      options.cost.initial_scale = 4.0;
      // One stage per run: the stage plan is made before any timing
      // measurement, so the blocks-sampled counts are a pure function of
      // the configuration (width, η prior, initial coefficients) and
      // reproduce on any machine; blocks/second and the estimate error
      // remain measured wall-clock quantities.
      options.max_stages = 1;
      options.threads = threads;
      options.seed = args.seed + static_cast<uint64_t>(rep);
      auto r = RunTimeConstrainedCount(workload->query, workload->catalog, WithQuota(options, quota_s));
      if (!r.ok()) {
        std::fprintf(stderr, "run failed (threads=%d): %s\n", threads,
                     r.status().ToString().c_str());
        return 1;
      }
      row.mean_blocks += static_cast<double>(r->blocks_sampled);
      row.mean_elapsed_s += r->elapsed_seconds;
      row.mean_stages += r->stages_counted;
      if (exact > 0.0 && r->stages_counted > 0) {
        row.mean_rel_error += std::abs(r->estimate - exact) / exact;
      }
    }
    const double n = static_cast<double>(args.repetitions);
    row.mean_blocks /= n;
    row.mean_elapsed_s /= n;
    row.mean_stages /= n;
    row.mean_rel_error /= n;
    row.blocks_per_second =
        row.mean_elapsed_s > 0.0 ? row.mean_blocks / row.mean_elapsed_s : 0.0;
    row.speedup_blocks =
        rows.empty() ? 1.0 : row.mean_blocks / rows.front().mean_blocks;
    rows.push_back(row);
  }

  std::printf(
      "Parallel scaling — join workload of Figure 5.3, wall clock, quota "
      "%.1f s, %d reps\n\n", quota_s, args.repetitions);
  std::printf(
      "  threads   blocks  blocks/s  speedup  stages  rel.err%%\n");
  for (const ScalingRow& r : rows) {
    std::printf("  %7d  %7.0f  %8.0f  %6.2fx  %6.1f  %8.2f\n", r.threads,
                r.mean_blocks, r.blocks_per_second, r.speedup_blocks,
                r.mean_stages, 100.0 * r.mean_rel_error);
  }

  std::printf("\n[");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    std::printf(
        "%s\n  {\"threads\": %d, \"mean_blocks\": %.1f, "
        "\"blocks_per_second\": %.1f, \"speedup_blocks\": %.3f, "
        "\"mean_elapsed_s\": %.3f, \"mean_stages\": %.2f, "
        "\"mean_rel_error\": %.4f}",
        i == 0 ? "" : ",", r.threads, r.mean_blocks, r.blocks_per_second,
        r.speedup_blocks, r.mean_elapsed_s, r.mean_stages, r.mean_rel_error);
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
