// Ablation A6: block-clustered data vs the SRS variance approximation.
// §3.3 admits that using the simple-random-sampling variance formula for
// the cluster sampling plan "usually gives a smaller value … some
// inaccuracy in the risk control is expected", and §5 credits exactly
// this for the unusually large d_β values. Here the same selection query
// runs over data whose qualifying tuples are increasingly packed into
// contiguous blocks: the realized per-stage selectivity fluctuation grows
// beyond the SRS formula, so a given d_β buys less risk reduction and the
// estimate error at a fixed block budget grows.

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  for (double clustering : {0.0, 0.5, 0.9}) {
    auto workload = MakeSelectionWorkload(2000, /*seed=*/42, kPaperTuples,
                                          kPaperTupleBytes, clustering);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Selection, 2,000 out, 10 s, clustering %.1f",
                  clustering);
    if (RunSweep(title, *workload, 10.0, ExecutorOptions(),
                 args.repetitions, args.seed) != 0) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
