// Ablation A1 (§3.3): compares the three time-control strategies —
// One-at-a-Time-Interval (the paper's choice), Single-Interval, and the
// heuristic — on the selection and intersection workloads. The paper
// argues One-at-a-Time is cheaper to compute than Single-Interval while
// controlling per-operator risk; the heuristic trades simplicity for
// weaker risk control.

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

struct StrategyRow {
  const char* name;
  ExperimentRow row;
};

Result<ExperimentRow> RunOne(const Workload& workload, double quota_s,
                             ExecutorOptions options, int repetitions,
                             uint64_t seed) {
  ExperimentConfig config;
  config.query = workload.query;
  config.catalog = &workload.catalog;
  config.quota_s = quota_s;
  config.options = options;
  config.repetitions = repetitions;
  config.base_seed = seed;
  config.exact_count = workload.exact_count;
  return RunExperiment(config);
}

int RunComparison(const char* title, const Workload& workload,
                  double quota_s, const ExecutorOptions& base,
                  int repetitions, uint64_t seed) {
  std::printf("%s\n", title);
  std::printf(
      "  strategy         stages   risk%%   ovsp(s)  utiliz%%   blocks  "
      "|rel.err|%%\n");
  struct Config {
    const char* name;
    StrategyConfig strategy;
  };
  std::vector<Config> configs;
  {
    Config one{"one-at-a-time", {}};
    one.strategy.kind = StrategyConfig::Kind::kOneAtATime;
    one.strategy.one_at_a_time.d_beta = 24.0;
    configs.push_back(one);
    Config single{"single-interval", {}};
    single.strategy.kind = StrategyConfig::Kind::kSingleInterval;
    single.strategy.single_interval.d_alpha = 1.64;
    configs.push_back(single);
    Config heuristic{"heuristic(0.5)", {}};
    heuristic.strategy.kind = StrategyConfig::Kind::kHeuristic;
    configs.push_back(heuristic);
    // §3.3.1's refinement: scale d_β with the share of quota left, taking
    // more risk as time runs out ("when there is a small amount of time
    // left ... it may be reasonable to take a higher risk").
    Config decay{"one@time-decay", {}};
    decay.strategy.kind = StrategyConfig::Kind::kOneAtATime;
    decay.strategy.one_at_a_time.d_beta = 48.0;
    decay.strategy.one_at_a_time.decay_with_time_left = true;
    configs.push_back(decay);
  }
  for (const Config& c : configs) {
    ExecutorOptions options = base;
    options.strategy = c.strategy;
    auto row = RunOne(workload, quota_s, options, repetitions, seed);
    if (!row.ok()) {
      std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-15s  %6.2f  %6.1f  %8.3f  %7.1f  %7.1f  %9.1f\n",
                c.name, row->mean_stages, row->risk_pct, row->mean_ovsp_s,
                row->utilization_pct, row->mean_blocks,
                row->mean_abs_rel_error_pct);
  }
  std::printf("\n");
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  auto selection = MakeSelectionWorkload(2000, 42);
  if (!selection.ok()) return 1;
  ExecutorOptions base;
  if (RunComparison("A1a — strategies on Selection (2,000 out, 10 s)",
                    *selection, 10.0, base, args.repetitions,
                    args.seed) != 0) {
    return 1;
  }
  auto intersection = MakeIntersectionWorkload(5000, 43);
  if (!intersection.ok()) return 1;
  return RunComparison(
      "A1b — strategies on Intersection (5,000 out, 10 s)", *intersection,
      10.0, base, args.repetitions, args.seed);
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
