// Reproduces the paper's Figure 5.2: time-control performance for the
// Intersection operation. Setup (§5.B): two 10,000-tuple / 2,000-block
// relations with 1,000 / 5,000 / 10,000 common tuples; first-stage
// selectivity 1/max(|r1|,|r2|); time quota 10 s; 200 runs per row. The
// paper observed that at large d_β the time left could not fund another
// full-fulfillment stage (runs end early), and that beyond d_β = 48 the
// sampled-block count *decreases* as overhead and the growing cost of
// full fulfillment offset the utilization gain.

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  // OCR of the original tables is partially garbled; the 10,000-output
  // sub-table is the most legible (see EXPERIMENTS.md).
  PrintPaperReference("Figure 5.2 — Intersection, quota 10 s, "
                      "10,000 output tuples",
                      {{0, 1.56, 44, 0.18, 41.8, 0},
                       {12, 1.74, 26, 0.17, 47.9, 0},
                       {24, 1.85, 15, 0.12, 51.2, 0},
                       {48, 1.97, 3, 0.11, 54.1, 0},
                       {72, 2.00, 0, 0.00, 51.9, 0}});

  ExecutorOptions options;  // intersect default sel = 1/max(|r1|,|r2|)
  for (int64_t output : {1000, 5000, 10000}) {
    auto workload =
        MakeIntersectionWorkload(output, /*seed=*/4242 + output);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Intersection, %lld output tuples, quota 10 s",
                  static_cast<long long>(output));
    int rc = RunSweep(title, *workload, /*quota_s=*/10.0, options,
                      args.repetitions, args.seed);
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
