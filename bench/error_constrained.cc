// A9 — error-constrained evaluation (§3.2's companion problem): how much
// time / how many blocks a given precision target costs, per workload.
// The dual view of the paper's tables: instead of "how good within T",
// "how long for quality ε".

#include <cmath>

#include "engine/error_constrained.h"
#include "paper_table_common.h"
#include "util/stats.h"

namespace tcq::bench {
namespace {

int SweepTargets(const char* title, const Workload& workload,
                 int repetitions, uint64_t seed) {
  std::printf("%s\n", title);
  std::printf(
      "  target.rel%%   met%%   stages   blocks   sim.time(s)  "
      "|rel.err|%%\n");
  for (double target : {0.30, 0.15, 0.10, 0.05}) {
    RunningStat stages, blocks, time_s, err;
    int met = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      ErrorConstrainedOptions options;
      options.rel_halfwidth = target;
      options.seed = seed + static_cast<uint64_t>(rep) * 31;
      auto r = RunErrorConstrainedCount(workload.query, workload.catalog,
                                        options);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      if (r->met_target) ++met;
      stages.Add(r->stages);
      blocks.Add(static_cast<double>(r->blocks_sampled));
      time_s.Add(r->elapsed_seconds);
      if (workload.exact_count > 0) {
        err.Add(std::abs(r->estimate -
                         static_cast<double>(workload.exact_count)) /
                static_cast<double>(workload.exact_count));
      }
    }
    std::printf("  %10.0f  %5.0f  %7.2f  %7.0f  %12.1f  %10.1f\n",
                100.0 * target,
                100.0 * met / repetitions, stages.mean(), blocks.mean(),
                time_s.mean(), 100.0 * err.mean());
  }
  std::printf("\n");
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  auto selection = MakeSelectionWorkload(2000, 42);
  if (!selection.ok()) return 1;
  if (SweepTargets("A9a — Selection (exact 2,000)", *selection,
                   args.repetitions, args.seed) != 0) {
    return 1;
  }
  auto join = MakeJoinWorkload(70000, 43);
  if (!join.ok()) return 1;
  return SweepTargets("A9b — Join (exact 70,000)", *join, args.repetitions,
                      args.seed);
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
