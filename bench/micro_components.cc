// A5 — google-benchmark micro-benchmarks of the library's components:
// block sampling, operator evaluation on samples, estimator updates, the
// sample-size bisection, and a whole time-constrained query. These
// measure *real* wall time of the implementation (not simulated time).

#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "exec/exact.h"
#include "exec/staged.h"
#include "ra/inclusion_exclusion.h"
#include "timectrl/sample_size.h"
#include "timectrl/selectivity.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tcq {
namespace {

// Quota is unified into ExecutorOptions::quota_s (the pre-unification
// overloads are gone); set it via this copy-and-set helper.
ExecutorOptions WithQuota(ExecutorOptions options, double quota_s) {
  options.quota_s = quota_s;
  return options;
}


const Workload& SelectionWorkload() {
  static const Workload& w = *new Workload(
      std::move(*MakeSelectionWorkload(2000, 42)));
  return w;
}

const Workload& IntersectionWorkload() {
  static const Workload& w = *new Workload(
      std::move(*MakeIntersectionWorkload(5000, 43)));
  return w;
}

void BM_SampleWithoutReplacement(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.SampleWithoutReplacement(2000, n));
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(16)->Arg(128)->Arg(1024);

void BM_SelectStage(benchmark::State& state) {
  const Workload& w = SelectionWorkload();
  auto rel = w.catalog.Find("r1");
  const auto blocks_per_stage = static_cast<int64_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    auto ev = StagedTermEvaluator::Create(w.query, w.catalog,
                                          Fulfillment::kFull, nullptr,
                                          CostModel::Deterministic());
    auto idx = rng.SampleWithoutReplacement(
        2000, static_cast<uint32_t>(blocks_per_stage));
    std::vector<const Block*> blocks;
    for (uint32_t i : idx) blocks.push_back((*rel)->ViewBlock(i).raw());
    benchmark::DoNotOptimize((*ev)->ExecuteStage({{"r1", blocks}}));
  }
  state.SetItemsProcessed(state.iterations() * blocks_per_stage * 5);
}
BENCHMARK(BM_SelectStage)->Arg(32)->Arg(128)->Arg(512);

void BM_IntersectStage(benchmark::State& state) {
  const Workload& w = IntersectionWorkload();
  auto r1 = w.catalog.Find("r1");
  auto r2 = w.catalog.Find("r2");
  const auto blocks_per_stage = static_cast<int64_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    auto ev = StagedTermEvaluator::Create(w.query, w.catalog,
                                          Fulfillment::kFull, nullptr,
                                          CostModel::Deterministic());
    std::map<std::string, std::vector<const Block*>> blocks;
    for (const auto& rel : {*r1, *r2}) {
      auto idx = rng.SampleWithoutReplacement(
          2000, static_cast<uint32_t>(blocks_per_stage));
      std::vector<const Block*> chosen;
      for (uint32_t i : idx) chosen.push_back(rel->ViewBlock(i).raw());
      blocks[rel->name()] = std::move(chosen);
    }
    benchmark::DoNotOptimize((*ev)->ExecuteStage(blocks));
  }
}
BENCHMARK(BM_IntersectStage)->Arg(32)->Arg(128);

void BM_ExpandCountThreeWayUnion(benchmark::State& state) {
  auto e = Union(Union(Scan("r1"), Scan("r2")), Scan("r3"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpandCount(e));
  }
}
BENCHMARK(BM_ExpandCountThreeWayUnion);

void BM_SampleSizeBisection(benchmark::State& state) {
  auto qcost = [](double f) -> Result<double> {
    return 0.1 + 120.0 * f * f + 30.0 * f;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleSizeDetermine(qcost, 5.0, 0.01, 1.0, 0.0005));
  }
}
BENCHMARK(BM_SampleSizeBisection);

void BM_ExactCountSelection(benchmark::State& state) {
  const Workload& w = SelectionWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactCount(w.query, w.catalog));
  }
}
BENCHMARK(BM_ExactCountSelection);

void BM_TimeConstrainedQuery(benchmark::State& state) {
  const Workload& w = SelectionWorkload();
  ExecutorOptions options;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    benchmark::DoNotOptimize(
        RunTimeConstrainedCount(w.query, w.catalog, WithQuota(options, 10.0)));
  }
}
BENCHMARK(BM_TimeConstrainedQuery);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
