// Fault-tolerance benchmark: the 4x-overload serving harness of
// bench/serve_load with deterministic fault injection armed on every
// query — 5% transient read faults plus 1% permanently lost blocks.
//
// Method: the median wall service time T of the benchmark query is
// calibrated with faults armed; then N submissions arrive T/4 apart,
// each with a serving deadline of a few T, admission control on and the
// per-relation circuit breaker enabled at its default threshold (10%,
// comfortably above the injected ~6% fault rate, so a healthy storm-free
// breaker must stay quiet). Emits one JSON object with the run and the
// gate verdict:
//
//   ./build/bench/fault_tolerance [--n N] [--overload F]
//
// Gate (the "ok" field, enforced by `ci.sh fault-bench`):
//   * miss rate of granted queries <= 5% despite retry/backoff overhead
//   * >= 80% of completed estimates cover the exact count with their
//     (fault-widened) confidence interval
//   * faults were actually exercised (transient faults and retries > 0)
//   * the breaker shed nothing (no false trips below its threshold)
//   * admitted+shrunk+queued+rejected == submitted

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "api/tcq.h"
#include "exec/exact.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "workload/generators.h"

namespace tcq::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kWorkloadSeed = 7;
constexpr int64_t kOutputTuples = 50000;
constexpr int64_t kTuples = 500000;
/// Simulated seconds per query (see bench/serve_load.cc for the sizing).
constexpr double kQuotaS = 1000.0;
constexpr double kMissBoundPct = 5.0;
constexpr double kCoverageBoundPct = 80.0;
constexpr double kTransientRate = 0.05;
constexpr double kPermanentRate = 0.01;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

Workload MakeBenchWorkload() {
  auto workload =
      MakeIntersectionWorkload(kOutputTuples, kWorkloadSeed, kTuples);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(workload);
}

FaultOptions BenchFaults(uint64_t fault_seed) {
  FaultOptions f;
  f.enabled = true;
  f.transient_rate = kTransientRate;
  f.permanent_rate = kPermanentRate;
  f.straggler_rate = 0.01;
  f.fault_seed = fault_seed;
  return f;
}

/// Median wall-clock time of one faults-armed query, unloaded.
double CalibrateServiceTime() {
  Session session(MakeBenchWorkload().catalog);
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    const Clock::time_point t0 = Clock::now();
    auto r = session.Query("r1 INTERSECT r2")
                 .WithSeed(11 + static_cast<uint64_t>(rep))
                 .WithQuota(kQuotaS)
                 .WithFaults(BenchFaults(11 + static_cast<uint64_t>(rep)))
                 .Run();
    if (!r.ok()) {
      std::fprintf(stderr, "calibration: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(SecondsBetween(t0, Clock::now()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct FaultLoadResult {
  int submitted = 0;
  int64_t admitted = 0, shrunk = 0, queued = 0, rejected = 0;
  int64_t completed = 0;
  int granted_completed = 0;
  int granted_missed = 0;
  double miss_pct = 0.0;
  double elapsed_s = 0.0;
  // Fault tallies over every completed run.
  int64_t transient_faults = 0;
  int64_t retries = 0;
  int64_t blocks_lost = 0;
  int64_t stragglers = 0;
  int degraded = 0;
  double max_widening = 1.0;
  // Estimate quality against the exact count.
  int ci_covered = 0;
  double coverage_pct = 0.0;
  double mean_rel_err_pct = 0.0;
  // Breaker + accounting health.
  int64_t breaker_trips = 0, breaker_sheds = 0;
  bool counters_sum = false;
};

FaultLoadResult RunLoad(int n, double overload, double t_svc_s,
                        const Workload& workload, int64_t exact) {
  const double deadline_s = 6.0 * t_svc_s;
  const double gap_s = t_svc_s / overload;

  Server::Options options;
  options.admission.global_budget_s = 2.0 * kQuotaS;
  options.admission.max_concurrent = 2;
  options.admission.min_shrunk_quota_s = kQuotaS / 4.0;
  options.admission.max_queue_depth = 4;
  options.admission.breaker.enabled = true;  // defaults: 10% threshold
  Server server(workload.catalog, options);

  struct Submission {
    bool completed = false;
    AdmissionReport::Outcome outcome = AdmissionReport::Outcome::kStandalone;
    bool missed = false;
    bool degraded = false;
    bool covered = false;
    double rel_err = 0.0;
    double widening = 1.0;
    int64_t transient_faults = 0, retries = 0, blocks_lost = 0,
            stragglers = 0;
  };
  std::vector<Submission> submissions(static_cast<size_t>(n));

  ThreadPool submitters(n - 1);
  const Clock::time_point start = Clock::now();
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([&, i] {
      const Clock::time_point scheduled =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(gap_s * i));
      std::this_thread::sleep_until(scheduled);
      Session session = server.OpenSession();
      auto r = session.Query("r1 INTERSECT r2")
                   .WithSeed(100 + static_cast<uint64_t>(i))
                   .WithQuota(kQuotaS)
                   .WithServeDeadline(deadline_s)
                   .WithFaults(BenchFaults(100 + static_cast<uint64_t>(i)))
                   .Run();
      Submission& s = submissions[static_cast<size_t>(i)];
      const double latency_s = SecondsBetween(scheduled, Clock::now());
      if (!r.ok()) return;  // rejected or shed — never executed
      s.completed = true;
      s.outcome = r->admission.outcome;
      s.missed = latency_s > deadline_s;
      s.degraded = r->degraded;
      s.widening = r->faults.variance_widening;
      s.transient_faults = r->faults.transient_faults;
      s.retries = r->faults.retries;
      s.blocks_lost = r->faults.blocks_lost;
      s.stragglers = r->faults.stragglers;
      const double exact_d = static_cast<double>(exact);
      s.covered = r->ci.lo <= exact_d && exact_d <= r->ci.hi;
      s.rel_err = exact_d != 0.0
                      ? std::abs(r->estimate - exact_d) / exact_d
                      : std::abs(r->estimate);
    });
  }
  RunTasks(&submitters, &tasks);
  const double elapsed_s = SecondsBetween(start, Clock::now());

  FaultLoadResult out;
  out.submitted = n;
  out.elapsed_s = elapsed_s;
  const ServerStats stats = server.stats();
  out.admitted = stats.admission.admitted;
  out.shrunk = stats.admission.shrunk;
  out.queued = stats.admission.queued;
  out.rejected = stats.admission.rejected;
  out.completed = stats.completed;
  out.breaker_trips = stats.breaker.trips;
  out.breaker_sheds = stats.breaker.sheds;
  out.counters_sum =
      out.admitted + out.shrunk + out.queued + out.rejected ==
          stats.admission.submitted &&
      stats.admission.submitted == n;

  double rel_err_sum = 0.0;
  for (const Submission& s : submissions) {
    if (!s.completed) continue;
    out.transient_faults += s.transient_faults;
    out.retries += s.retries;
    out.blocks_lost += s.blocks_lost;
    out.stragglers += s.stragglers;
    out.degraded += s.degraded ? 1 : 0;
    out.max_widening = std::max(out.max_widening, s.widening);
    out.ci_covered += s.covered ? 1 : 0;
    rel_err_sum += s.rel_err;
    if (s.outcome == AdmissionReport::Outcome::kAdmitted ||
        s.outcome == AdmissionReport::Outcome::kShrunk) {
      ++out.granted_completed;
      if (s.missed) ++out.granted_missed;
    }
  }
  const auto completions = static_cast<double>(out.completed);
  out.miss_pct = out.granted_completed > 0
                     ? 100.0 * out.granted_missed / out.granted_completed
                     : 0.0;
  out.coverage_pct =
      completions > 0.0 ? 100.0 * out.ci_covered / completions : 0.0;
  out.mean_rel_err_pct =
      completions > 0.0 ? 100.0 * rel_err_sum / completions : 0.0;
  return out;
}

int Main(int argc, char** argv) {
  int n = 40;
  double overload = 4.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) n = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--overload") == 0) {
      overload = std::atof(argv[i + 1]);
    }
  }
  if (n < 4) n = 4;

  const Workload workload = MakeBenchWorkload();
  auto exact = ExactCount(workload.query, workload.catalog);
  if (!exact.ok()) {
    std::fprintf(stderr, "exact: %s\n", exact.status().ToString().c_str());
    return 1;
  }

  const double t_svc_s = CalibrateServiceTime();
  const FaultLoadResult r = RunLoad(n, overload, t_svc_s, workload, *exact);

  const bool ok_miss = r.miss_pct <= kMissBoundPct && r.counters_sum;
  const bool ok_ci = r.coverage_pct >= kCoverageBoundPct;
  const bool ok_faults = r.transient_faults > 0 && r.retries > 0;
  const bool ok_breaker = r.breaker_sheds == 0;
  const bool ok = ok_miss && ok_ci && ok_faults && ok_breaker;

  std::printf("{\n");
  std::printf(
      "  \"t_svc_s\": %.5f, \"n\": %d, \"overload\": %.1f, "
      "\"deadline_s\": %.5f, \"exact\": %lld,\n",
      t_svc_s, n, overload, 6.0 * t_svc_s, static_cast<long long>(*exact));
  std::printf(
      "  \"transient_rate\": %.3f, \"permanent_rate\": %.3f, "
      "\"miss_bound_pct\": %.1f, \"coverage_bound_pct\": %.1f,\n",
      kTransientRate, kPermanentRate, kMissBoundPct, kCoverageBoundPct);
  std::printf(
      "  \"submitted\": %d, \"admitted\": %lld, \"shrunk\": %lld, "
      "\"queued\": %lld, \"rejected\": %lld, \"completed\": %lld,\n",
      r.submitted, static_cast<long long>(r.admitted),
      static_cast<long long>(r.shrunk), static_cast<long long>(r.queued),
      static_cast<long long>(r.rejected),
      static_cast<long long>(r.completed));
  std::printf(
      "  \"granted_completed\": %d, \"granted_missed\": %d, "
      "\"miss_pct\": %.2f, \"elapsed_s\": %.3f,\n",
      r.granted_completed, r.granted_missed, r.miss_pct, r.elapsed_s);
  std::printf(
      "  \"transient_faults\": %lld, \"retries\": %lld, "
      "\"blocks_lost\": %lld, \"stragglers\": %lld, \"degraded\": %d, "
      "\"max_widening\": %.4f,\n",
      static_cast<long long>(r.transient_faults),
      static_cast<long long>(r.retries),
      static_cast<long long>(r.blocks_lost),
      static_cast<long long>(r.stragglers), r.degraded, r.max_widening);
  std::printf(
      "  \"ci_covered\": %d, \"coverage_pct\": %.1f, "
      "\"mean_rel_err_pct\": %.2f,\n",
      r.ci_covered, r.coverage_pct, r.mean_rel_err_pct);
  std::printf(
      "  \"breaker_trips\": %lld, \"breaker_sheds\": %lld, "
      "\"counters_sum\": %s,\n",
      static_cast<long long>(r.breaker_trips),
      static_cast<long long>(r.breaker_sheds),
      r.counters_sum ? "true" : "false");
  std::printf(
      "  \"ok_miss\": %s, \"ok_ci\": %s, \"ok_faults\": %s, "
      "\"ok_breaker\": %s, \"ok\": %s\n",
      ok_miss ? "true" : "false", ok_ci ? "true" : "false",
      ok_faults ? "true" : "false", ok_breaker ? "true" : "false",
      ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
