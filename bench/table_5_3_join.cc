// Reproduces the paper's Figure 5.3: time-control performance for the
// Join operation. Setup (§5.C): two 10,000-tuple relations, one join
// attribute, 70,000 output tuples (true selectivity 7·10⁻⁴), first-stage
// selectivity assumed 0.1 (the paper notes that assuming the maximum 1
// makes the first sample too small to time), time quota 2.5 s; 200 runs
// per row. The paper observed runs terminating early at d_β ≥ 24 because
// the remaining time could not fund another full-fulfillment stage.

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  PrintPaperReference("Figure 5.3 — Join, quota 2.5 s, 70,000 output "
                      "tuples",
                      {{0, 1.59, 41, 0.19, 71, 25.9},
                       {12, 1.94, 5.3, 0.18, 91, 28.4},
                       {24, 2.00, 0, 0.00, 90, 27.5},
                       {48, 2.00, 0, 0.00, 83, 24.1},
                       {72, 2.00, 0, 0.00, 83, 22.1}});

  auto workload = MakeJoinWorkload(70000, /*seed=*/777);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  ExecutorOptions options;
  options.selectivity.initial_join = 0.1;  // paper §5.C
  return RunSweep("Join, 70,000 output tuples, quota 2.5 s", *workload,
                  /*quota_s=*/2.5, options, args.repetitions, args.seed);
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
