#ifndef TCQ_BENCH_PAPER_TABLE_COMMON_H_
#define TCQ_BENCH_PAPER_TABLE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/experiment.h"
#include "workload/generators.h"

namespace tcq::bench {

/// The paper sweeps d_β over these values in every §5 table.
inline const std::vector<double> kPaperDBetas = {0, 12, 24, 48, 72};

/// Reference values transcribed from the paper (OCR of the original is
/// partially garbled; see EXPERIMENTS.md for the uncertainty notes).
struct PaperRow {
  double d_beta;
  double stages;
  double risk_pct;
  double ovsp_s;
  double utilization_pct;
  double blocks;
};

inline void PrintPaperReference(const std::string& title,
                                const std::vector<PaperRow>& rows) {
  std::printf("%s (values from the 1989 paper)\n", title.c_str());
  std::printf(
      "  d_beta  stages   risk%%   ovsp(s)  utiliz%%   blocks\n");
  for (const PaperRow& r : rows) {
    std::printf("  %6.0f  %6.2f  %6.1f  %8.2f  %7.1f  %7.1f\n", r.d_beta,
                r.stages, r.risk_pct, r.ovsp_s, r.utilization_pct, r.blocks);
  }
  std::printf("\n");
}

/// Runs the d_β sweep for one workload and prints our measured table.
inline int RunSweep(const std::string& title, const Workload& workload,
                    double quota_s, ExecutorOptions base_options,
                    int repetitions, uint64_t seed) {
  std::vector<ExperimentRow> rows;
  for (double d_beta : kPaperDBetas) {
    ExperimentConfig config;
    config.query = workload.query;
    config.catalog = &workload.catalog;
    config.quota_s = quota_s;
    config.options = base_options;
    config.options.strategy.one_at_a_time.d_beta = d_beta;
    config.repetitions = repetitions;
    config.base_seed = seed;
    config.exact_count = workload.exact_count;
    auto row = RunExperiment(config);
    if (!row.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*row);
  }
  std::printf("%s\n", FormatExperimentTable(title + " (measured)", rows)
                          .c_str());
  return 0;
}

/// Parses "--reps N" / "--seed S" style overrides for quick runs.
struct BenchArgs {
  int repetitions = 200;
  uint64_t seed = 1;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "--reps") args.repetitions = std::atoi(argv[i + 1]);
    if (flag == "--seed") {
      args.seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    }
  }
  return args;
}

}  // namespace tcq::bench

#endif  // TCQ_BENCH_PAPER_TABLE_COMMON_H_
