// Ablation A4: estimator accuracy vs sample fraction, backing the
// [HoOT 88] estimators this paper builds on (§5 defers their accuracy to
// the companion papers), plus the error-constrained stopping mode of
// §3.2. For each sample fraction, many independent cluster samples are
// drawn and the relative error / CI coverage of the COUNT estimate is
// reported.

#include <cmath>

#include "estimator/count_estimator.h"
#include "exec/staged.h"
#include "paper_table_common.h"
#include "util/stats.h"

namespace tcq::bench {
namespace {

int SweepAccuracy(const char* title, const Workload& workload,
                  int repetitions, uint64_t seed) {
  std::printf("%s\n", title);
  std::printf(
      "  fraction  blocks/rel  mean.est   |rel.err|%%  ci95.cover%%\n");
  std::vector<std::string> scans;
  CollectScans(workload.query, &scans);
  for (double f : {0.005, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    Rng rng(seed);
    RunningStat err;
    int covered = 0;
    RunningStat estimates;
    for (int rep = 0; rep < repetitions; ++rep) {
      auto ev = StagedTermEvaluator::Create(
          workload.query, workload.catalog, Fulfillment::kFull, nullptr,
          CostModel::Deterministic());
      if (!ev.ok()) return 1;
      std::map<std::string, std::vector<const Block*>> blocks;
      for (const std::string& name : scans) {
        auto rel = workload.catalog.Find(name);
        if (!rel.ok()) return 1;
        int64_t total = (*rel)->NumBlocks();
        auto count = static_cast<uint32_t>(
            std::llround(f * static_cast<double>(total)));
        auto idx = rng.SampleWithoutReplacement(
            static_cast<uint32_t>(total), count);
        std::vector<const Block*> chosen;
        for (uint32_t i : idx) chosen.push_back((*rel)->ViewBlock(i).raw());
        blocks[name] = std::move(chosen);
      }
      if (!(*ev)->ExecuteStage(blocks).ok()) return 1;
      CountEstimate e = ClusterCountEstimate(
          (*ev)->total_space_blocks(), (*ev)->cum_space_blocks(),
          (*ev)->cum_hits(), (*ev)->cum_points(), (*ev)->total_points());
      estimates.Add(e.value);
      double exact = static_cast<double>(workload.exact_count);
      if (exact > 0) err.Add(std::abs(e.value - exact) / exact);
      ConfidenceInterval ci = NormalConfidenceInterval(e, 0.95);
      if (exact >= ci.lo && exact <= ci.hi) ++covered;
    }
    std::printf("  %8.3f  %10.0f  %9.1f  %10.1f  %11.1f\n", f,
                f * 2000.0, estimates.mean(), 100.0 * err.mean(),
                100.0 * covered / repetitions);
  }
  std::printf("\n");
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  auto selection = MakeSelectionWorkload(2000, 42);
  if (!selection.ok()) return 1;
  if (SweepAccuracy("A4a — Selection (exact 2,000)", *selection,
                    args.repetitions, args.seed) != 0) {
    return 1;
  }
  auto intersection = MakeIntersectionWorkload(5000, 43);
  if (!intersection.ok()) return 1;
  if (SweepAccuracy("A4b — Intersection (exact 5,000)", *intersection,
                    args.repetitions, args.seed) != 0) {
    return 1;
  }
  auto join = MakeJoinWorkload(70000, 44);
  if (!join.ok()) return 1;
  return SweepAccuracy("A4c — Join (exact 70,000)", *join,
                       args.repetitions, args.seed);
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
