// Disabled-tracing overhead gate: a query run carrying a *disabled*
// Tracer must cost within 2% of a run with no ObsHandle at all. The
// instrumentation contract (DESIGN.md §7) is one branch per site on the
// disabled path — this bench is the enforcement. (Attaching a Metrics
// registry or an enabled tracer is active observability and is allowed
// to cost more; it is not gated here.)
//
//   ./build/bench/trace_overhead [--reps N] [--seed S]
//
// Prints one JSON object; exits 1 when the overhead bound is violated.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <vector>

#include "api/tcq.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paper_table_common.h"

namespace tcq::bench {
namespace {

constexpr double kMaxOverheadPct = 2.0;

// Minimum over many samples: scheduler preemption and frequency scaling
// only ever ADD time, so the minimum is the noise-robust estimate of the
// true cost — the right statistic for a tight (2%) relative bound.
double MinSeconds(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end());
}

struct OverheadResult {
  double plain_s = 0.0;
  double obs_s = 0.0;
  double overhead_pct = 0.0;
  double checksum = 0.0;
};

/// One full interleaved measurement of plain vs disabled-tracer runs.
OverheadResult MeasureOverhead(const Workload& workload,
                               const ExecutorOptions& options,
                               Tracer* disabled_tracer, int reps,
                               int runs_per_sample) {
  OverheadResult out;
  std::vector<double> plain_s;
  std::vector<double> obs_s;
  for (int rep = 0; rep < reps + 1; ++rep) {
    for (int with_obs : {0, 1}) {
      ExecutorOptions run_options = options;
      if (with_obs != 0) {
        run_options.obs.tracer = disabled_tracer;
      }
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < runs_per_sample; ++i) {
        auto r = RunTimeConstrainedCount(workload.query, workload.catalog,
                                         run_options);
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          std::exit(1);
        }
        out.checksum += r->estimate;
      }
      auto t1 = std::chrono::steady_clock::now();
      if (rep == 0) continue;  // warmup pair
      double seconds = std::chrono::duration<double>(t1 - t0).count();
      (with_obs != 0 ? obs_s : plain_s).push_back(seconds);
    }
  }
  out.plain_s = MinSeconds(plain_s);
  out.obs_s = MinSeconds(obs_s);
  out.overhead_pct = out.plain_s > 0.0
                         ? (out.obs_s - out.plain_s) / out.plain_s * 100.0
                         : 0.0;
  return out;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  int reps = args.repetitions == 200 ? 40 : args.repetitions;
  if (reps < 5) reps = 5;
  constexpr int kRunsPerSample = 3;  // amortizes per-run timing jitter
  // The bound gates REPRODUCIBLE regressions: machine jitter on a shared
  // runner can exceed 2% on any single trial even for identical code, so
  // a violation must show up in every one of kMaxAttempts trials to fail.
  constexpr int kMaxAttempts = 3;

  // Large enough that one simulated run takes a few milliseconds of real
  // work — per-sample timing noise then sits near the 2% bound instead of
  // dwarfing it.
  auto workload = MakeIntersectionWorkload(50000, /*seed=*/args.seed,
                                           /*num_tuples=*/100000);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  ExecutorOptions options;
  // 10× the paper geometry needs ~10× the paper quota for a multi-stage
  // run that exercises every instrumentation site.
  options.quota_s = 60.0;
  options.strategy.one_at_a_time.d_beta = 12.0;
  options.seed = args.seed;

  TraceOptions disabled_trace;
  disabled_trace.enabled = false;
  Tracer disabled_tracer(disabled_trace);

  OverheadResult best;
  int attempts = 0;
  for (; attempts < kMaxAttempts; ++attempts) {
    OverheadResult trial = MeasureOverhead(*workload, options,
                                           &disabled_tracer, reps,
                                           kRunsPerSample);
    if (attempts == 0 || trial.overhead_pct < best.overhead_pct) best = trial;
    if (best.overhead_pct < kMaxOverheadPct) {
      ++attempts;
      break;
    }
  }
  bool ok = best.overhead_pct < kMaxOverheadPct;
  std::printf(
      "{\"bench\": \"trace_overhead\", \"reps\": %d, \"attempts\": %d, "
      "\"plain_min_s\": %.6f, \"disabled_trace_min_s\": %.6f, "
      "\"overhead_pct\": %.3f, \"bound_pct\": %.1f, \"ok\": %s, "
      "\"checksum\": %.1f}\n",
      reps, attempts, best.plain_s, best.obs_s, best.overhead_pct,
      kMaxOverheadPct, ok ? "true" : "false", best.checksum);
  if (!ok) {
    std::fprintf(stderr,
                 "trace_overhead: disabled-tracing overhead %.3f%% exceeds "
                 "the %.1f%% bound in every one of %d trials\n",
                 best.overhead_pct, kMaxOverheadPct, attempts);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
