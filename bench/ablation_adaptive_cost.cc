// Ablation A3 (§4): adaptive vs fixed-form time-cost formulas. The paper
// argues a fixed-form formula "is not flexible enough to cope with the
// differences in the characteristics of sample relations", and instead
// re-fits the coefficients at run time. Here the fixed variant keeps the
// (deliberately generic) initial coefficients for the whole query; the
// adaptive variant re-fits after every stage. Rows also include a fixed
// variant whose initial values happen to be badly wrong (scale 4x), where
// adaptation matters most.

#include "paper_table_common.h"

namespace tcq::bench {
namespace {

int RunOne(const char* name, const Workload& workload, double quota_s,
           bool adaptive, double initial_scale, int repetitions,
           uint64_t seed) {
  ExperimentConfig config;
  config.query = workload.query;
  config.catalog = &workload.catalog;
  config.quota_s = quota_s;
  config.options.cost.adaptive = adaptive;
  config.options.cost.initial_scale = initial_scale;
  config.options.strategy.one_at_a_time.d_beta = 24.0;
  config.repetitions = repetitions;
  config.base_seed = seed;
  config.exact_count = workload.exact_count;
  auto row = RunExperiment(config);
  if (!row.ok()) {
    std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
    return 1;
  }
  std::printf("  %-18s  %6.2f  %6.1f  %8.3f  %7.1f  %7.1f  %9.1f\n", name,
              row->mean_stages, row->risk_pct, row->mean_ovsp_s,
              row->utilization_pct, row->mean_blocks,
              row->mean_abs_rel_error_pct);
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  auto w = MakeSelectionWorkload(2000, 42);
  if (!w.ok()) return 1;
  std::printf(
      "A3 — adaptive vs fixed cost formulas, Selection (2,000 out, 10 s)\n"
      "  formulas            stages   risk%%   ovsp(s)  utiliz%%   blocks  "
      "|rel.err|%%\n");
  if (RunOne("adaptive", *w, 10.0, true, 1.5, args.repetitions, args.seed))
    return 1;
  if (RunOne("fixed", *w, 10.0, false, 1.5, args.repetitions, args.seed))
    return 1;
  if (RunOne("fixed-bad(4x)", *w, 10.0, false, 4.0, args.repetitions,
             args.seed))
    return 1;
  if (RunOne("adaptive-bad(4x)", *w, 10.0, true, 4.0, args.repetitions,
             args.seed))
    return 1;
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
