// Ablation A8 (§3.3): the SRS variance approximation vs the exact
// cluster variance estimator. The paper replaces the proper cluster
// variance formula with the SRS-over-points approximation for speed and
// admits it "usually gives a smaller value … some inaccuracy in the risk
// control is expected". Here, one-stage cluster samples of a selection
// query are drawn from increasingly block-clustered data and three
// numbers are compared per setting:
//   empirical  the true variance of the estimate across repetitions,
//   cluster    the mean exact per-block variance estimate (Theorem 6
//              route),
//   srs        the mean SRS approximation (the paper's shortcut).

#include <cmath>

#include "estimator/cluster_variance.h"
#include "paper_table_common.h"
#include "ra/predicate.h"
#include "util/stats.h"

namespace tcq::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const int sample_blocks = 100;
  std::printf(
      "A8 — variance estimators, Selection (2,000 out), one stage of %d "
      "blocks\n",
      sample_blocks);
  std::printf(
      "  clustering   sd.empirical  sd.cluster   sd.srs   design.effect\n");
  for (double clustering : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    auto workload = MakeSelectionWorkload(2000, /*seed=*/42, kPaperTuples,
                                          kPaperTupleBytes, clustering);
    if (!workload.ok()) return 1;
    auto rel = workload->catalog.Find("r1");
    if (!rel.ok()) return 1;
    auto pred =
        BoundPredicate::Bind(workload->query->predicate, (*rel)->schema());
    if (!pred.ok()) return 1;

    Rng rng(args.seed);
    RunningStat estimates, cluster_var, srs_var, deff;
    const int reps = std::max(50, args.repetitions);
    for (int rep = 0; rep < reps; ++rep) {
      auto idx = rng.SampleWithoutReplacement(
          static_cast<uint32_t>((*rel)->NumBlocks()),
          static_cast<uint32_t>(sample_blocks));
      std::vector<int64_t> block_hits;
      int64_t hits = 0, points = 0;
      for (uint32_t i : idx) {
        int64_t y = 0;
        for (const Tuple& t : (*rel)->ViewBlock(i).rows()) {
          if (pred->Eval(t)) ++y;
        }
        block_hits.push_back(y);
        hits += y;
        points += static_cast<int64_t>((*rel)->ViewBlock(i).rows().size());
      }
      double b_total = static_cast<double>((*rel)->NumBlocks());
      double estimate = b_total * static_cast<double>(hits) /
                        static_cast<double>(sample_blocks);
      estimates.Add(estimate);
      cluster_var.Add(ClusterVarianceEstimate(b_total, block_hits));
      srs_var.Add(SrsApproxVarianceEstimate(
          static_cast<double>((*rel)->NumTuples()),
          static_cast<double>(points), hits));
      deff.Add(DesignEffect(b_total,
                            static_cast<double>((*rel)->NumTuples()),
                            static_cast<double>(points), block_hits));
    }
    std::printf("  %10.2f   %12.1f  %10.1f  %7.1f   %13.2f\n", clustering,
                estimates.stddev(), std::sqrt(cluster_var.mean()),
                std::sqrt(srs_var.mean()), deff.mean());
  }
  std::printf(
      "\n(the SRS column barely moves with clustering while the true "
      "spread grows:\n the paper's shortcut underestimates exactly when "
      "data is block-correlated)\n");
  return 0;
}

}  // namespace
}  // namespace tcq::bench

int main(int argc, char** argv) { return tcq::bench::Main(argc, argv); }
