#ifndef TCQ_UTIL_THREAD_ANNOTATIONS_H_
#define TCQ_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety capability annotations (Abseil-style spellings,
/// TCQ_-prefixed). Under clang with -Wthread-safety these turn the lock
/// discipline of every mutex-bearing class into a compile-time check:
/// which fields a mutex guards (TCQ_GUARDED_BY), which methods must be
/// called with it held (TCQ_REQUIRES) or not held (TCQ_EXCLUDES), and
/// which functions acquire/release it (TCQ_ACQUIRE/TCQ_RELEASE). Under
/// any other compiler every macro expands to nothing, so the annotations
/// are free documentation — and the tcq_lint rule
/// `unannotated-guarded-field` keeps coverage honest where the compiler
/// cannot (GCC has no -Wthread-safety).
///
/// ci.sh's `thread-safety` stage builds the tree with clang++ and
/// -Werror=thread-safety (SKIP-gated when clang is absent), so a guarded
/// field touched without its mutex is a build break, not a TSan roll of
/// the interleaving dice.
///
/// Use through the wrapper types in util/mutex.h (tcq::Mutex,
/// tcq::SharedMutex, tcq::MutexLock, ...): raw std::mutex is invisible to
/// the analysis because its lock()/unlock() carry no annotations.

#if defined(__clang__)
#define TCQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TCQ_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex") the analysis can track.
#define TCQ_CAPABILITY(x) TCQ_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (tcq::MutexLock and friends).
#define TCQ_SCOPED_CAPABILITY TCQ_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: reads and writes require holding the named mutex.
#define TCQ_GUARDED_BY(x) TCQ_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field annotation: the *pointee* is guarded by the named mutex
/// (the pointer itself may be read freely).
#define TCQ_PT_GUARDED_BY(x) TCQ_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function must be called with the capability held (exclusively /
/// shared). The convention in this codebase: private helpers named
/// *Locked() carry TCQ_REQUIRES on their declaration.
#define TCQ_REQUIRES(...) \
  TCQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define TCQ_REQUIRES_SHARED(...) \
  TCQ_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability (exclusively or
/// shared). On a member of a capability type the argument list is empty:
/// the capability is *this.
#define TCQ_ACQUIRE(...) \
  TCQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define TCQ_ACQUIRE_SHARED(...) \
  TCQ_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define TCQ_RELEASE(...) \
  TCQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TCQ_RELEASE_SHARED(...) \
  TCQ_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire the capability and returns `ret` on
/// success (e.g. TCQ_TRY_ACQUIRE(true)).
#define TCQ_TRY_ACQUIRE(...) \
  TCQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held (it acquires
/// it internally). Public methods of the annotated classes carry this so
/// re-entrant self-deadlocks are compile errors under clang.
#define TCQ_EXCLUDES(...) TCQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define TCQ_RETURN_CAPABILITY(x) TCQ_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Justify in a
/// comment at every use.
#define TCQ_NO_THREAD_SAFETY_ANALYSIS \
  TCQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TCQ_UTIL_THREAD_ANNOTATIONS_H_
