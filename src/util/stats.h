#ifndef TCQ_UTIL_STATS_H_
#define TCQ_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace tcq {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (divides by n-1); 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Standard normal quantile function (inverse CDF), Acklam's rational
/// approximation (|error| < 1.2e-9). Requires 0 < p < 1.
double NormalQuantile(double p);

/// Variance of the sample proportion under simple random sampling *without*
/// replacement: `S(1-S)(N-m) / (m(N-1))` for true proportion `S`, population
/// size `N` and sample size `m` (paper §3.3, from [Coch 77]).
///
/// Returns 0 when m == 0, N <= 1, or m >= N (the sample is the population).
double SrsProportionVariance(double proportion, double population,
                             double sample);

/// Upper confidence bound for a proportion after observing *zero* hits in
/// `m` independent draws: the largest `s` with `(1-s)^m >= beta`, i.e.
/// `1 - beta^(1/m)`. This is the closed combinatorial zero-selectivity fix
/// of paper §3.4 (see DESIGN.md substitutions). Requires m >= 1 and
/// 0 < beta < 1.
double ZeroHitUpperBound(int64_t m, double beta);

/// Sample covariance of two equal-length series (divides by n-1); 0 when
/// fewer than two observations.
double SampleCovariance(const std::vector<double>& xs,
                        const std::vector<double>& ys);

}  // namespace tcq

#endif  // TCQ_UTIL_STATS_H_
