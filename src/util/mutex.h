#ifndef TCQ_UTIL_MUTEX_H_
#define TCQ_UTIL_MUTEX_H_

/// Annotated mutex wrappers (util/thread_annotations.h): thin shims over
/// std::mutex / std::shared_mutex whose Lock/Unlock members carry Clang
/// thread-safety attributes, so `-Wthread-safety` can track what they
/// guard. Zero overhead — everything is an inline forward to the
/// standard primitive.
///
///   class Registry {
///     mutable tcq::Mutex mu_;
///     std::map<K, V> entries_ TCQ_GUARDED_BY(mu_);
///   };
///   tcq::MutexLock lock(mu_);           // scoped acquire/release
///
/// CondVar replaces std::condition_variable so waits keep the capability
/// visible to the analysis: Wait(mu) is annotated TCQ_REQUIRES(mu) and
/// internally re-wraps the Mutex's std::mutex with std::adopt_lock.
/// There is no predicate-lambda overload on purpose — a lambda body
/// cannot carry TCQ_REQUIRES, so waits are written as explicit
/// `while (!pred) cv.Wait(mu);` loops the analysis can see into.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace tcq {

/// Exclusive mutex; wraps std::mutex.
class TCQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TCQ_ACQUIRE() { mu_.lock(); }
  void Unlock() TCQ_RELEASE() { mu_.unlock(); }
  bool TryLock() TCQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // re-wraps mu_ with std::adopt_lock during waits
  std::mutex mu_;
};

/// Reader/writer mutex; wraps std::shared_mutex.
class TCQ_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TCQ_ACQUIRE() { mu_.lock(); }
  void Unlock() TCQ_RELEASE() { mu_.unlock(); }
  void ReaderLock() TCQ_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() TCQ_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard analogue the
/// analysis understands).
class TCQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TCQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TCQ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class TCQ_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TCQ_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() TCQ_RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class TCQ_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TCQ_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() TCQ_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over tcq::Mutex. Waits atomically release and
/// reacquire the mutex exactly like std::condition_variable — the adopt/
/// release dance below hands the already-held lock to a std::unique_lock
/// for the duration of the wait without an extra lock/unlock pair.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) TCQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      TCQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tcq

#endif  // TCQ_UTIL_MUTEX_H_
