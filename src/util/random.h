#ifndef TCQ_UTIL_RANDOM_H_
#define TCQ_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace tcq {

/// Derives a well-mixed 64-bit seed for an independent substream from a
/// base seed, a textual tag (e.g. a relation name), and an index (e.g. a
/// stage number). The derivation is pure — it does not consume state from
/// any generator — so substreams can be (re)created in any order, on any
/// thread, and always yield the same stream. This is what makes the
/// engine's parallel block sampling reproducible: the sample a relation
/// draws at stage i depends only on (seed, relation, i), never on which
/// worker drew it or what other relations did.
uint64_t SubstreamSeed(uint64_t seed, std::string_view tag, uint64_t index);

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state.
///
/// All randomness in the library flows through explicitly passed `Rng`
/// instances; there is no global generator, so every experiment is exactly
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire's method) to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Normal(0,1) variate (Box-Muller, one value per call).
  double Gaussian();

  /// Draws `k` distinct values from {0, 1, ..., n-1} without replacement
  /// (partial Fisher-Yates). Requires k <= n. Order of the result is random.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Randomly permutes `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// experiment repetition its own stream.
  Rng Fork();

  /// Generator over the substream identified by (seed, tag, index); see
  /// SubstreamSeed.
  static Rng Substream(uint64_t seed, std::string_view tag, uint64_t index) {
    return Rng(SubstreamSeed(seed, tag, index));
  }

 private:
  uint64_t state_[4];
};

}  // namespace tcq

#endif  // TCQ_UTIL_RANDOM_H_
