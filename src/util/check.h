#ifndef TCQ_UTIL_CHECK_H_
#define TCQ_UTIL_CHECK_H_

/// Debug-contract macros for the estimator/parallel invariants.
///
/// The engine's statistical guarantees rest on runtime conditions that the
/// type system cannot express: sample fractions lie in (0, 1], variance
/// estimates are non-negative, parallel reductions consume their slots in
/// fixed index order, the cost ledger never charges negative work. These
/// macros make those contracts executable, so the sanitizer matrix
/// (ci.sh: TSan/ASan/UBSan) runs the whole test suite *with the contracts
/// armed* — a race or UB that perturbs an estimate trips an invariant even
/// when it doesn't crash.
///
/// Three levels:
///   TCQ_CHECK(cond, msg)            always on, all build types. For cheap
///                                   conditions guarding memory safety.
///   TCQ_DCHECK(cond, msg)           armed when TCQ_DCHECK_ENABLED (Debug
///                                   builds, and every TCQ_SANITIZE build
///                                   via -DTCQ_ENABLE_DCHECKS). Compiled to
///                                   a no-op that still typechecks `cond`
///                                   otherwise.
///   TCQ_CHECK_INVARIANT(cond, msg)  same arming as TCQ_DCHECK, but tagged
///                                   INVARIANT in the failure report; use
///                                   for the paper-level contracts listed
///                                   in DESIGN.md ("Invariants & static
///                                   analysis").
///
/// Failure aborts the process after printing "kind file:line: condition —
/// message" to stderr (library code must not touch stdout; see
/// tools/tcq_lint.py rule stdout-in-lib). Messages should say which
/// guarantee died, not restate the condition.

#if !defined(TCQ_DCHECK_ENABLED)
#if defined(TCQ_ENABLE_DCHECKS) || !defined(NDEBUG)
#define TCQ_DCHECK_ENABLED 1
#else
#define TCQ_DCHECK_ENABLED 0
#endif
#endif

namespace tcq::internal {

/// Prints the failure report to stderr and aborts. Out of line so the
/// macro expansion stays one branch + one call.
[[noreturn]] void CheckFailed(const char* kind, const char* file, int line,
                              const char* condition, const char* message);

}  // namespace tcq::internal

#define TCQ_CHECK_IMPL_(kind, cond, msg)                                \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tcq::internal::CheckFailed(kind, __FILE__, __LINE__, #cond,     \
                                   msg);                                \
    }                                                                   \
  } while (false)

/// Typechecks `cond` without evaluating it (unevaluated operand), so a
/// disarmed contract cannot hide a compile error or change behavior.
#define TCQ_CHECK_NOOP_(cond)                    \
  do {                                           \
    (void)sizeof(static_cast<bool>(cond) ? 1 : 0); \
  } while (false)

#define TCQ_CHECK(cond, msg) TCQ_CHECK_IMPL_("CHECK", cond, msg)

#if TCQ_DCHECK_ENABLED
#define TCQ_DCHECK(cond, msg) TCQ_CHECK_IMPL_("DCHECK", cond, msg)
#define TCQ_CHECK_INVARIANT(cond, msg) TCQ_CHECK_IMPL_("INVARIANT", cond, msg)
#else
#define TCQ_DCHECK(cond, msg) TCQ_CHECK_NOOP_(cond)
#define TCQ_CHECK_INVARIANT(cond, msg) TCQ_CHECK_NOOP_(cond)
#endif

#endif  // TCQ_UTIL_CHECK_H_
