#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace tcq::internal {

void CheckFailed(const char* kind, const char* file, int line,
                 const char* condition, const char* message) {
  // stderr, not stdout: bench harnesses parse stdout as JSON, and the
  // stdout-in-lib lint rule applies to this file too.
  std::fprintf(stderr, "%s failed at %s:%d: %s — %s\n", kind, file, line,
               condition, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace tcq::internal
