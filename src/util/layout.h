#ifndef TCQ_UTIL_LAYOUT_H_
#define TCQ_UTIL_LAYOUT_H_

#include <string_view>

namespace tcq {

/// Physical evaluation layout of sampled blocks. The layout changes only
/// how the inner loops touch bytes — row-at-a-time tuple walks versus
/// columnar batches with selection bitmaps — never which blocks are drawn
/// or what is charged to the cost ledger, so estimates are bit-identical
/// across layouts (DESIGN.md §11).
///
/// Header-only and dependency-free on purpose: obs/report.h (kept free of
/// engine/ra dependencies) names the layout in per-stage reports.
enum class Layout {
  /// Tuple-at-a-time evaluation over decoded row tuples (historical path).
  kRow,
  /// Batch evaluation over per-column contiguous arrays: selection
  /// bitmaps + gathers for Select, order-preserving encoded-key memcmp
  /// kernels for the sort/merge of Join/Intersect.
  kColumnar,
};

inline std::string_view LayoutName(Layout layout) {
  return layout == Layout::kColumnar ? "columnar" : "row";
}

}  // namespace tcq

#endif  // TCQ_UTIL_LAYOUT_H_
