#ifndef TCQ_UTIL_RESULT_H_
#define TCQ_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace tcq {

/// A value of type `T` or a non-OK `Status`, in the style of
/// `arrow::Result` / `absl::StatusOr`.
///
/// Use `TCQ_ASSIGN_OR_RETURN(lhs, expr)` to unwrap inside functions that
/// themselves return Status/Result.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, to allow `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, to allow
  /// `return Status::...;`). Passing an OK status is a programming error.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    TCQ_DCHECK(!std::get<Status>(rep_).ok(),
               "Result built from an OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the status: OK when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Accessors; must only be called when `ok()`.
  const T& value() const& {
    TCQ_DCHECK(ok(), "value() on an error Result");
    return std::get<T>(rep_);
  }
  T& value() & {
    TCQ_DCHECK(ok(), "value() on an error Result");
    return std::get<T>(rep_);
  }
  T&& value() && {
    TCQ_DCHECK(ok(), "value() on an error Result");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace tcq

#define TCQ_CONCAT_IMPL_(x, y) x##y
#define TCQ_CONCAT_(x, y) TCQ_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the unwrapped value to `lhs` (which may include a declaration).
#define TCQ_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  TCQ_ASSIGN_OR_RETURN_IMPL_(TCQ_CONCAT_(_tcq_result_, __LINE__), lhs, rexpr)

#define TCQ_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // TCQ_UTIL_RESULT_H_
