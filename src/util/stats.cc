#include "util/stats.h"

#include <cmath>

#include "util/check.h"

namespace tcq {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  // Welford's M2 is a sum of squares; a negative value means the
  // accumulator state was corrupted (e.g. by a data race).
  TCQ_CHECK_INVARIANT(m2_ >= 0.0,
                      "variance accumulator went negative");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  TCQ_DCHECK(p > 0.0 && p < 1.0, "quantile level outside (0, 1)");
  // Peter Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double SrsProportionVariance(double proportion, double population,
                             double sample) {
  if (sample <= 0.0 || population <= 1.0) return 0.0;
  if (sample >= population) return 0.0;
  double s = proportion;
  if (s < 0.0) s = 0.0;
  if (s > 1.0) s = 1.0;
  return s * (1.0 - s) * (population - sample) /
         (sample * (population - 1.0));
}

double ZeroHitUpperBound(int64_t m, double beta) {
  TCQ_DCHECK(m >= 1, "zero-hit bound needs at least one draw");
  TCQ_DCHECK(beta > 0.0 && beta < 1.0, "beta outside (0, 1)");
  return 1.0 - std::pow(beta, 1.0 / static_cast<double>(m));
}

double SampleCovariance(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  TCQ_CHECK(xs.size() == ys.size(), "covariance series length mismatch");
  size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += (xs[i] - mx) * (ys[i] - my);
  return acc / static_cast<double>(n - 1);
}

}  // namespace tcq
