#include "util/random.h"

#include "util/check.h"

#include <cmath>
#include <numbers>

namespace tcq {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SubstreamSeed(uint64_t seed, std::string_view tag, uint64_t index) {
  // FNV-1a over the tag bytes folds the name into the state; SplitMix64
  // steps interleave the base seed and the index so that nearby
  // (seed, index) pairs land far apart.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : tag) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  uint64_t x = seed;
  uint64_t mixed = SplitMix64(x) ^ h;
  x = mixed + index;
  mixed = SplitMix64(x);
  return mixed;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  TCQ_DCHECK(bound > 0, "Uniform(0) has no valid value");
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TCQ_DCHECK(lo <= hi, "empty UniformInt range");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  uint64_t draw = (span == 0) ? Next() : Uniform(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard against log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  TCQ_CHECK(k <= n, "cannot draw more blocks than the relation has");
  // Partial Fisher-Yates over a dense index array. The relations sampled in
  // this library have at most a few thousand blocks, so O(n) space is fine.
  std::vector<uint32_t> indices(n);
  for (uint32_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t j = i + static_cast<uint32_t>(Uniform(n - i));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace tcq
