#ifndef TCQ_UTIL_STATUS_H_
#define TCQ_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tcq {

/// Error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kDeadlineExceeded,
  kResourceExhausted,
  kDataLoss,
  kUnavailable,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g., "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Operation outcome: an (error code, message) pair, or OK.
///
/// This library does not use C++ exceptions. Every fallible operation
/// returns a `Status` (or a `Result<T>`, see result.h) which the caller must
/// consult. The OK state carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tcq

/// Propagates a non-OK Status to the caller.
#define TCQ_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::tcq::Status _tcq_status = (expr);        \
    if (!_tcq_status.ok()) return _tcq_status; \
  } while (false)

#endif  // TCQ_UTIL_STATUS_H_
