#ifndef TCQ_SERVE_SERVER_H_
#define TCQ_SERVE_SERVER_H_

/// tcq::Server — many logical sessions, one process, shared execution
/// state:
///
///   tcq::Server::Options options;
///   options.pool_workers = 3;                 // one shared ThreadPool
///   options.admission.global_budget_s = 12.0; // shared quota pool
///   tcq::Server server(std::move(catalog), options);
///   tcq::Session a = server.OpenSession();
///   tcq::Session b = server.OpenSession();    // cheap handles; may Run()
///                                             // concurrently
///
/// Every query a server-backed session runs passes through the
/// AdmissionController first: it is admitted at its full quota, admitted
/// at a shrunk quota (re-planned against the reduced budget and
/// fit-probed), queued deadline-first, or rejected with a typed Status —
/// so concurrent queries can never collectively overspend the global
/// budget. Admitted queries execute on the server's fixed-width
/// ThreadPool and (when warm-started) share the server's sharded
/// WarmStartCache.
///
/// Observability: with Options::metrics set, the server publishes
///   counters   serve.submitted, serve.admitted, serve.shrunk,
///              serve.queued, serve.rejected, serve.deadline_missed,
///              serve.completed, serve.breaker_trips, serve.breaker_sheds,
///              serve.breaker_shrinks, serve.breaker_probes,
///              serve.breaker_probe_aborts
///   gauges     serve.queue_depth, serve.outstanding_quota_s,
///              serve.active, serve.breaker_open
///   histograms serve.latency_s (submission → completion),
///              serve.deadline_miss_s (overshoot of missed deadlines)
/// The serve histograms record wall-time and are scheduling-dependent;
/// they are serving-layer telemetry, outside the engine's cross-width
/// bit-identity contract.
///
/// Catalog registration and ClearCache are administrative: do them while
/// no query is running, exactly as on a standalone Session.

#include <cstdint>
#include <memory>

#include "api/tcq.h"
#include "serve/admission.h"

namespace tcq {

/// Point-in-time view of a server (stats()).
struct ServerStats {
  AdmissionController::Stats admission;
  RelationCircuitBreaker::Stats breaker;
  int64_t completed = 0;        // queries that ran to a result
  int64_t deadline_missed = 0;  // completions past their serving deadline
};

class Server {
 public:
  struct Options {
    /// Admission policy of the shared quota pool.
    AdmissionOptions admission;
    /// Worker threads of the shared execution pool, created once at
    /// server construction (fixed width; queries cap their batch
    /// participation instead of resizing it). 0 = no pool: every query
    /// runs serially on its calling thread.
    int pool_workers = 0;
    /// Shard count of the shared warm-start cache.
    int cache_shards = WarmStartCache::kDefaultShards;
    /// Session::Options handed to OpenSession(): per-query defaults,
    /// default execution width, and the warm-start default.
    Session::Options session;
    /// Optional metrics registry for the serve.* instruments (not owned;
    /// must outlive the server).
    Metrics* metrics = nullptr;
  };

  Server();
  explicit Server(Options options);
  explicit Server(Catalog catalog);
  Server(Catalog catalog, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  Server(Server&&) = default;
  Server& operator=(Server&&) = default;

  /// A new logical session over the server's shared state, configured
  /// with Options::session (or an explicit override). Handles are cheap
  /// values; any number may Run() concurrently — admission arbitrates.
  Session OpenSession();
  Session OpenSession(Session::Options session_options);

  /// Shared-state views, equivalent to the same calls on any session of
  /// this server.
  Catalog& catalog();
  const Catalog& catalog() const;
  int pool_workers() const;
  WarmStartStats CacheStats() const;
  void ClearCache();

  ServerStats stats() const;

 private:
  class Impl;
  std::shared_ptr<Impl> impl_;
  Session::Options session_options_;
};

}  // namespace tcq

#endif  // TCQ_SERVE_SERVER_H_
