#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_names.h"
#include "ra/expr.h"
#include "serve/circuit_breaker.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcq {

namespace {

using ServeClock = std::chrono::steady_clock;

double SecondsSince(ServeClock::time_point start) {
  return std::chrono::duration<double>(ServeClock::now() - start).count();
}

/// Scope guard returning half-open probe grants to the breaker when
/// RunQuery exits without reporting a verdict (admission rejection,
/// engine error). Disarmed after the post-run Report calls.
struct ProbeAborter {
  RelationCircuitBreaker* breaker;
  const std::vector<RelationCircuitBreaker::ProbeGrant>* grants;
  ~ProbeAborter() {
    if (breaker != nullptr) breaker->AbortProbes(*grants);
  }
  void Disarm() { breaker = nullptr; }
};

}  // namespace

/// The shared backend behind every session of one server. All state a
/// query touches concurrently is synchronized at its own layer: the
/// ThreadPool accepts concurrent RunAll batches, the WarmStartCache is
/// sharded with per-shard mutexes, and the AdmissionController guards its
/// accounting — so RunQuery itself takes no server-wide lock and admitted
/// queries overlap freely.
class Server::Impl final : public QueryBackend {
 public:
  Impl(Catalog catalog, const Server::Options& options)
      : catalog_(std::move(catalog)),
        pool_(options.pool_workers > 0
                  ? std::make_unique<ThreadPool>(options.pool_workers)
                  : nullptr),
        cache_(options.cache_shards),
        admission_(options.admission, options.metrics),
        breaker_(options.admission.breaker, options.metrics),
        metrics_(options.metrics) {}

  Catalog& catalog() override { return catalog_; }
  const Catalog& catalog() const override { return catalog_; }
  void ResetCatalog(Catalog catalog) override {
    catalog_ = std::move(catalog);
  }

  int pool_workers() const override {
    return pool_ == nullptr ? 0 : pool_->workers();
  }

  WarmStartStats CacheStats() const override { return cache_.Stats(); }
  void ClearCache() override { cache_.Clear(); }

  Result<QueryResult> RunQuery(const ExprPtr& expr,
                               const AggregateSpec& aggregate,
                               ExecutorOptions options,
                               bool warm_start) override {
    const ServeClock::time_point arrival = ServeClock::now();

    // Circuit breaker first: a query scanning a relation in a fault storm
    // is shed (kUnavailable) or shrunk before it can draw from the shared
    // quota pool. The scanned relations are read off the expression
    // itself, so the engine needs no serving-layer hooks.
    std::vector<std::string> scanned;
    CollectScans(expr, &scanned);
    std::sort(scanned.begin(), scanned.end());
    scanned.erase(std::unique(scanned.begin(), scanned.end()),
                  scanned.end());
    double breaker_scale = 1.0;
    std::vector<RelationCircuitBreaker::ProbeGrant> probe_grants;
    TCQ_RETURN_NOT_OK(breaker_.Check(scanned, &breaker_scale, &probe_grants));
    if (breaker_scale < 1.0) options.quota_s *= breaker_scale;

    // If this query was granted a half-open probe, every early return
    // between here and the post-run Report must hand the probe back —
    // otherwise the relation would stay shed until the reclaim backstop
    // fires. The guard is disarmed once the reports have been delivered.
    ProbeAborter probe_guard{&breaker_, &probe_grants};

    const double deadline_s =
        options.serve_deadline_s > 0.0 ? options.serve_deadline_s
                                       : options.quota_s;

    // A shrunk grant only stands if Sample-Size-Determine, re-run against
    // the reduced quota, still plans at least one stage; the probe is the
    // side-effect-free EXPLAIN path over this query's own options.
    AdmissionController::FitProbe fit_probe =
        [this, &expr, &aggregate, &options](double quota_s) -> Status {
      ExecutorOptions probe = options;
      probe.quota_s = quota_s;
      probe.pool = nullptr;
      probe.warm_cache = nullptr;
      probe.obs = ObsHandle{};
      TCQ_ASSIGN_OR_RETURN(
          ExplainResult plan,
          ExplainTimeConstrainedAggregate(expr, aggregate, catalog_, probe));
      if (plan.stages.empty()) {
        return Status::ResourceExhausted(
            "no stage fits the shrunk quota");
      }
      return Status::OK();
    };

    TCQ_ASSIGN_OR_RETURN(QuotaLedger ledger,
                         admission_.Admit(options.quota_s, deadline_s,
                                          fit_probe));

    options.quota_s = ledger.granted_s;
    // Serial queries keep a null pool (exactly the standalone Session
    // contract — attaching it would widen a threads=1 query to the
    // pool's full width); wider queries share the server pool, capped at
    // their own requested width.
    options.pool = options.threads > 1 ? pool_.get() : nullptr;
    options.warm_cache = warm_start ? &cache_ : nullptr;

    Result<QueryResult> result =
        RunTimeConstrainedAggregate(expr, aggregate, catalog_, options);
    admission_.Release(ledger);
    if (!result.ok()) return result;

    // Feed the breaker from the engine's per-relation fault tallies.
    // Every scanned relation is reported — with zero tallies when the
    // run had faults off — so a half-open probe's clean completion
    // recloses the breaker whatever the probe's fault configuration. A
    // report carries this query's probe token for the relation (if any),
    // so only the actual probe's verdict drives the half-open breaker.
    for (const std::string& relation : scanned) {
      int64_t reads = 0;
      int64_t faults = 0;
      for (const RelationFaultCounts& rf : result->faults.per_relation) {
        if (rf.relation == relation) {
          reads = rf.read_attempts;
          faults = rf.transient_faults + rf.blocks_lost;
          break;
        }
      }
      uint64_t probe_token = 0;
      for (const RelationCircuitBreaker::ProbeGrant& grant : probe_grants) {
        if (grant.relation == relation) {
          probe_token = grant.token;
          break;
        }
      }
      breaker_.Report(relation, reads, faults, probe_token);
    }
    probe_guard.Disarm();

    AdmissionReport& report = result->admission;
    report.outcome = ledger.outcome;
    report.requested_quota_s = ledger.requested_s;
    report.granted_quota_s = ledger.granted_s;
    report.queue_wait_s = ledger.queue_wait_s;
    report.deadline_s = ledger.deadline_s;
    report.serve_latency_s = SecondsSince(arrival);
    report.deadline_missed = report.serve_latency_s > report.deadline_s;

    {
      MutexLock lock(stats_mu_);
      ++completed_;
      if (report.deadline_missed) ++deadline_missed_;
    }
    if (metrics_ != nullptr) {
      metrics_->counter(metric_names::kServeCompleted)->Increment();
      metrics_->histogram(metric_names::kServeLatencyS)
          ->Record(report.serve_latency_s);
      if (report.deadline_missed) {
        metrics_->counter(metric_names::kServeDeadlineMissed)->Increment();
        metrics_->histogram(metric_names::kServeDeadlineMissS)
            ->Record(report.serve_latency_s - report.deadline_s);
      }
    }
    return result;
  }

  ServerStats stats() const TCQ_EXCLUDES(stats_mu_) {
    ServerStats s;
    s.admission = admission_.stats();
    s.breaker = breaker_.stats();
    MutexLock lock(stats_mu_);
    s.completed = completed_;
    s.deadline_missed = deadline_missed_;
    return s;
  }

 private:
  Catalog catalog_;
  const std::unique_ptr<ThreadPool> pool_;  // fixed width for the lifetime
  WarmStartCache cache_;
  AdmissionController admission_;
  RelationCircuitBreaker breaker_;
  Metrics* const metrics_;  // may be null
  /// Completion tallies are the only Impl state RunQuery writes directly
  /// (everything else synchronizes at its own layer, per the class
  /// comment); a dedicated mutex keeps them off the admission hot path.
  mutable Mutex stats_mu_;
  int64_t completed_ TCQ_GUARDED_BY(stats_mu_) = 0;
  int64_t deadline_missed_ TCQ_GUARDED_BY(stats_mu_) = 0;
};

Server::Server() : Server(Catalog{}, Options{}) {}

Server::Server(Options options) : Server(Catalog{}, std::move(options)) {}

Server::Server(Catalog catalog) : Server(std::move(catalog), Options{}) {}

Server::Server(Catalog catalog, Options options)
    : impl_(std::make_shared<Impl>(std::move(catalog), options)) {
  session_options_ = std::move(options.session);
}

Server::~Server() = default;

Session Server::OpenSession() { return OpenSession(session_options_); }

Session Server::OpenSession(Session::Options session_options) {
  return Session(impl_, std::move(session_options));
}

Catalog& Server::catalog() { return impl_->catalog(); }
const Catalog& Server::catalog() const {
  return static_cast<const Impl&>(*impl_).catalog();
}
int Server::pool_workers() const { return impl_->pool_workers(); }
WarmStartStats Server::CacheStats() const { return impl_->CacheStats(); }
void Server::ClearCache() { impl_->ClearCache(); }
ServerStats Server::stats() const { return impl_->stats(); }

}  // namespace tcq
