#include "serve/admission.h"

#include <algorithm>
#include <utility>

#include "obs/metric_names.h"

namespace tcq {

namespace {

/// Longest time a waiter sleeps on the serving clock in one stretch.
/// Bounds the absolute-deadline arithmetic away from time_point overflow
/// for arbitrarily large caller deadlines; the wait loop re-checks.
constexpr double kMaxWaitSliceS = 1.0e6;

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Status AdmissionOptions::Validate() const {
  if (global_budget_s <= 0.0) {
    return Status::InvalidArgument("admission global_budget_s must be > 0");
  }
  if (min_shrunk_quota_s <= 0.0) {
    return Status::InvalidArgument("admission min_shrunk_quota_s must be > 0");
  }
  if (min_shrunk_quota_s > global_budget_s) {
    return Status::InvalidArgument(
        "admission min_shrunk_quota_s exceeds the global budget");
  }
  if (max_concurrent < 1) {
    return Status::InvalidArgument("admission max_concurrent must be >= 1");
  }
  if (max_queue_depth < 0) {
    return Status::InvalidArgument("admission max_queue_depth must be >= 0");
  }
  return breaker.Validate();
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         Metrics* metrics)
    : options_(std::move(options)), metrics_(metrics) {}

double AdmissionController::ImmediateGrantLocked(double requested_s) const {
  if (active_ >= options_.max_concurrent) return 0.0;
  const double remaining = options_.global_budget_s - outstanding_s_;
  if (remaining >= requested_s) return requested_s;
  if (options_.allow_shrink && remaining >= options_.min_shrunk_quota_s) {
    return remaining;
  }
  return 0.0;
}

void AdmissionController::ReserveLocked(double granted_s) {
  outstanding_s_ += granted_s;
  ++active_;
}

void AdmissionController::UnreserveLocked(double granted_s) {
  outstanding_s_ -= granted_s;
  --active_;
  PumpLocked();
}

void AdmissionController::PumpLocked() {
  bool granted_any = false;
  while (!queue_.empty()) {
    Waiter* head = queue_.begin()->second;
    const double grant = ImmediateGrantLocked(head->requested_s);
    // Strict head-of-line: when the earliest deadline cannot be served,
    // nobody behind it is — EDF order is never inverted by a smaller
    // request slipping through.
    if (grant <= 0.0) break;
    head->granted = true;
    head->granted_s = grant;
    ReserveLocked(grant);
    queue_.erase(queue_.begin());
    granted_any = true;
  }
  if (granted_any) cv_.NotifyAll();
}

void AdmissionController::CountOutcomeLocked(
    AdmissionReport::Outcome outcome) {
  const char* name = nullptr;
  switch (outcome) {
    case AdmissionReport::Outcome::kAdmitted:
      ++admitted_;
      name = metric_names::kServeAdmitted;
      break;
    case AdmissionReport::Outcome::kShrunk:
      ++shrunk_;
      name = metric_names::kServeShrunk;
      break;
    case AdmissionReport::Outcome::kQueued:
      ++queued_;
      name = metric_names::kServeQueued;
      break;
    case AdmissionReport::Outcome::kStandalone:
      return;  // never produced by the controller
  }
  if (metrics_ != nullptr) metrics_->counter(name)->Increment();
}

void AdmissionController::CountRejectedLocked() {
  ++rejected_;
  if (metrics_ != nullptr) {
    metrics_->counter(metric_names::kServeRejected)->Increment();
  }
}

void AdmissionController::UpdateGaugesLocked() {
  if (metrics_ == nullptr) return;
  metrics_->gauge(metric_names::kServeQueueDepth)
      ->Set(static_cast<double>(queue_.size()));
  metrics_->gauge(metric_names::kServeOutstandingQuotaS)->Set(outstanding_s_);
  metrics_->gauge(metric_names::kServeActive)
      ->Set(static_cast<double>(active_));
}

Status AdmissionController::ProbeReservedGrant(const FitProbe& fit_probe,
                                               double granted_s) {
  const Status probed = fit_probe ? fit_probe(granted_s) : Status::OK();
  if (probed.ok()) return probed;
  MutexLock lk(mu_);
  UnreserveLocked(granted_s);
  CountRejectedLocked();
  UpdateGaugesLocked();
  return Status::ResourceExhausted(
      "shrunk quota rejected by the fit probe: " + probed.message());
}

Result<QuotaLedger> AdmissionController::Admit(double requested_quota_s,
                                               double deadline_s,
                                               const FitProbe& fit_probe) {
  if (requested_quota_s <= 0.0) {
    return Status::InvalidArgument("requested quota must be > 0");
  }
  const double effective_deadline_s =
      deadline_s > 0.0 ? deadline_s : requested_quota_s;

  // The lock is managed explicitly (not RAII) because the shrunk and
  // queued paths release it across the fit probe; clang's thread-safety
  // analysis checks that every return leaves it released.
  mu_.Lock();
  QuotaLedger ledger;
  ledger.id = ++next_id_;
  ledger.requested_s = requested_quota_s;
  ledger.deadline_s = effective_deadline_s;
  ++submitted_;
  if (metrics_ != nullptr) {
    metrics_->counter(metric_names::kServeSubmitted)->Increment();
  }

  if (!options_.enabled) {
    // Accounting-only mode: every request is granted in full, but active
    // grants and outstanding quota are still tracked, so the gauges show
    // exactly how far the uncontrolled workload overcommits the budget.
    ledger.outcome = AdmissionReport::Outcome::kAdmitted;
    ledger.granted_s = requested_quota_s;
    ReserveLocked(requested_quota_s);
    CountOutcomeLocked(ledger.outcome);
    UpdateGaugesLocked();
    mu_.Unlock();
    return ledger;
  }

  if (queue_.empty()) {
    const double grant = ImmediateGrantLocked(requested_quota_s);
    if (grant >= requested_quota_s) {
      ledger.outcome = AdmissionReport::Outcome::kAdmitted;
      ledger.granted_s = grant;
      ReserveLocked(grant);
      CountOutcomeLocked(ledger.outcome);
      UpdateGaugesLocked();
      mu_.Unlock();
      return ledger;
    }
    if (grant > 0.0) {
      // Shrunk grant: reserve optimistically, then validate outside the
      // lock that Sample-Size-Determine still plans at least one stage
      // at the reduced quota. A failing probe rejects and returns the
      // reservation.
      ledger.outcome = AdmissionReport::Outcome::kShrunk;
      ledger.granted_s = grant;
      ReserveLocked(grant);
      UpdateGaugesLocked();
      mu_.Unlock();
      TCQ_RETURN_NOT_OK(ProbeReservedGrant(fit_probe, grant));
      mu_.Lock();
      CountOutcomeLocked(ledger.outcome);
      mu_.Unlock();
      return ledger;
    }
  }

  if (!options_.allow_queue ||
      static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
    CountRejectedLocked();
    UpdateGaugesLocked();
    mu_.Unlock();
    return Status::ResourceExhausted(
        options_.allow_queue
            ? "admission queue is full"
            : "no budget for the requested quota and queuing is disabled");
  }

  // Queue, earliest deadline first (submission order breaks ties).
  Waiter waiter;
  waiter.requested_s = requested_quota_s;
  const ServeClock::time_point enqueued = ServeClock::now();
  const ServeClock::time_point absolute_deadline =
      enqueued + std::chrono::duration_cast<ServeClock::duration>(
                     std::chrono::duration<double>(
                         std::min(effective_deadline_s, kMaxWaitSliceS)));
  const QueueKey key{absolute_deadline, ledger.id};
  queue_.emplace(key, &waiter);
  UpdateGaugesLocked();
  // The new waiter may itself be the earliest deadline and grantable
  // (e.g. budget free but an unservable head was blocking the old head
  // position); pump decides.
  PumpLocked();

  while (!waiter.granted) {
    if (cv_.WaitUntil(mu_, absolute_deadline) == std::cv_status::timeout &&
        !waiter.granted) {
      queue_.erase(key);
      // Last-chance shrink: budget freed between the final wake-up and
      // the deadline still turns into a (possibly reduced) grant.
      const double last = ImmediateGrantLocked(requested_quota_s);
      if (last > 0.0) {
        waiter.granted = true;
        waiter.granted_s = last;
        ReserveLocked(last);
        break;
      }
      CountRejectedLocked();
      UpdateGaugesLocked();
      mu_.Unlock();
      return Status::DeadlineExceeded(
          "serving deadline expired in the admission queue");
    }
  }

  ledger.outcome = AdmissionReport::Outcome::kQueued;
  ledger.granted_s = waiter.granted_s;
  ledger.queue_wait_s = SecondsBetween(enqueued, ServeClock::now());
  UpdateGaugesLocked();
  if (waiter.granted_s < requested_quota_s) {
    mu_.Unlock();
    TCQ_RETURN_NOT_OK(ProbeReservedGrant(fit_probe, waiter.granted_s));
    mu_.Lock();
  }
  CountOutcomeLocked(ledger.outcome);
  mu_.Unlock();
  return ledger;
}

void AdmissionController::Release(const QuotaLedger& ledger) {
  MutexLock lk(mu_);
  UnreserveLocked(ledger.granted_s);
  UpdateGaugesLocked();
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lk(mu_);
  Stats s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.shrunk = shrunk_;
  s.queued = queued_;
  s.rejected = rejected_;
  s.active = active_;
  s.queue_depth = static_cast<int>(queue_.size());
  s.outstanding_s = outstanding_s_;
  return s;
}

}  // namespace tcq
