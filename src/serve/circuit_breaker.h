#ifndef TCQ_SERVE_CIRCUIT_BREAKER_H_
#define TCQ_SERVE_CIRCUIT_BREAKER_H_

/// Per-relation circuit breaker for a tcq::Server (DESIGN.md §10.5).
///
/// When a relation enters a fault storm — a sustained windowed fault rate
/// above threshold — queries that scan it are shed (typed kUnavailable)
/// or admitted with a shrunk quota, instead of burning the shared budget
/// on retries that will mostly fail. Each relation moves through the
/// classic three states:
///
///   closed    — healthy; queries pass untouched. Post-run fault tallies
///               accumulate in a decayed window.
///   open      — tripped; queries against the relation are shed (or
///               shrunk, per policy) until `cooldown_s` of serving-clock
///               time has passed.
///   half-open — cooldown elapsed; exactly one probe query is let
///               through. A clean probe closes the breaker (window
///               reset); a faulty one re-opens it for another cooldown.
///
/// The probe is tracked by token: Check() hands the granted probe back
/// as a `ProbeGrant`, and only a Report() presenting the matching token
/// can close or re-trip a half-open breaker — a query admitted before
/// the trip that happens to finish during the half-open window merely
/// folds its tallies into the decayed window. A probe whose query never
/// reports (early admission rejection, engine error, hung run) is handed
/// back explicitly via AbortProbes(), and as a backstop Check() reclaims
/// a probe that has been in flight for a full `cooldown_s` without a
/// verdict, so a lost probe can never shed a relation forever.
///
/// Feedback arrives from the engine's per-relation fault tallies
/// (FaultReport::per_relation), so the breaker needs no hooks inside the
/// executor. Decisions are made under one mutex; the serving clock is
/// read only to time cooldowns, mirroring the admission controller's
/// contract that accounting is deterministic and only queue/cooldown
/// timing touches a clock.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Fault-storm policy of a tcq::Server. Off by default: a server without
/// faults armed behaves exactly as before.
struct CircuitBreakerOptions {
  /// Master switch. When false Check() always passes and Report() is a
  /// no-op.
  bool enabled = false;
  /// Windowed fault rate (faults per read attempt) above which a
  /// relation's breaker trips open.
  double fault_rate_threshold = 0.10;
  /// Minimum read attempts in the window before the rate is trusted; a
  /// handful of unlucky reads must not trip the breaker.
  int64_t min_reads = 50;
  /// Serving-clock seconds an open breaker waits before letting a probe
  /// query through (half-open). Also the patience granted to an
  /// in-flight probe: one that reports no verdict for this long is
  /// considered lost and reclaimed by the next Check().
  double cooldown_s = 1.0;
  /// Open-state policy: shed queries with kUnavailable (true) or admit
  /// them with a quota shrunk by `shrink_factor` (false).
  bool shed = true;
  /// Quota multiplier applied when `shed` is false and a scanned
  /// relation's breaker is open. In (0, 1).
  double shrink_factor = 0.5;
  /// Window decay: once the window holds `2 * window_factor * min_reads`
  /// attempts, both attempt and fault counts are halved, so old storms
  /// age out and recovery is observable.
  int64_t window_factor = 4;

  /// Rejects nonsense policies: threshold outside (0, 1], min_reads < 1,
  /// non-finite/negative cooldown, shrink_factor outside (0, 1),
  /// window_factor < 1. Only checked when `enabled`.
  [[nodiscard]] Status Validate() const;
};

/// Tracks per-relation fault health and sheds or shrinks queries that
/// scan a relation whose breaker is open. Thread-safe.
class RelationCircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// One half-open probe granted by Check(). The caller must either
  /// Report() with the token once the query's fault tallies are known,
  /// or AbortProbes() if the query never runs to completion.
  struct ProbeGrant {
    std::string relation;
    uint64_t token = 0;
  };

  /// `metrics` (optional, not owned) receives the serve.breaker_*
  /// counters and gauge listed in server.h.
  explicit RelationCircuitBreaker(CircuitBreakerOptions options,
                                  Metrics* metrics = nullptr);

  RelationCircuitBreaker(const RelationCircuitBreaker&) = delete;
  RelationCircuitBreaker& operator=(const RelationCircuitBreaker&) = delete;

  /// Gatekeeper, called with every relation the query scans *before*
  /// admission. Returns kUnavailable when any scanned relation is open
  /// under the shed policy; otherwise OK, with `*quota_scale` set to the
  /// smallest shrink factor across open relations (1.0 when all are
  /// healthy). In the half-open state exactly one caller passes as the
  /// probe; it receives a `ProbeGrant` in `*probes` and concurrent
  /// callers are treated as still-open. A shed undoes any probes this
  /// same call granted, and a caller passing `probes == nullptr` is
  /// never granted one (it could not report the verdict). Probes granted
  /// `cooldown_s` ago without a verdict are reclaimed here.
  [[nodiscard]] Status Check(const std::vector<std::string>& relations,
                             double* quota_scale,
                             std::vector<ProbeGrant>* probes)
      TCQ_EXCLUDES(mu_);

  /// Post-run feedback: `reads` attempts against `relation`, of which
  /// `faults` failed (transients plus lost blocks). Folds the tallies
  /// into the relation's window and drives the state machine.
  /// `probe_token` is the token of this query's ProbeGrant for the
  /// relation (0 when it holds none); only the report carrying the
  /// half-open breaker's current token closes (clean) or re-opens
  /// (faulty) it — any other report just accumulates.
  void Report(std::string_view relation, int64_t reads, int64_t faults,
              uint64_t probe_token = 0) TCQ_EXCLUDES(mu_);

  /// Hands granted probes back without a verdict — the query was turned
  /// away after Check (admission rejection, engine error), so the
  /// breaker should offer the probe to the next arrival instead of
  /// waiting out the reclaim backstop. Grants whose token is no longer
  /// current are ignored.
  void AbortProbes(const std::vector<ProbeGrant>& probes) TCQ_EXCLUDES(mu_);

  /// Current state of one relation's breaker (kClosed if never seen).
  State state(std::string_view relation) const TCQ_EXCLUDES(mu_);

  struct Stats {
    int64_t trips = 0;         // closed/half-open -> open transitions
    int64_t sheds = 0;         // queries rejected kUnavailable
    int64_t shrinks = 0;       // queries admitted at a reduced quota
    int64_t probes = 0;        // half-open probe queries let through
    int64_t probe_aborts = 0;  // probes handed back or reclaimed unheard
    int open = 0;              // relations currently open or half-open
  };
  Stats stats() const TCQ_EXCLUDES(mu_);

  const CircuitBreakerOptions& options() const { return options_; }

  /// Test-only: replace the serving clock with a virtual one that only
  /// AdvanceClockForTest() moves, so cooldown and probe-expiry paths are
  /// testable without sleeping. Production code never calls these.
  void UseVirtualClockForTest() TCQ_EXCLUDES(mu_);
  void AdvanceClockForTest(double seconds) TCQ_EXCLUDES(mu_);

 private:
  using ServeClock = std::chrono::steady_clock;

  struct RelationHealth {
    State state = State::kClosed;
    double reads = 0.0;   // decayed window of read attempts
    double faults = 0.0;  // decayed window of failed attempts
    /// Trip time while open; probe-grant time while half-open with a
    /// probe in flight (so an abandoned probe expires after another
    /// cooldown_s).
    ServeClock::time_point opened_at{};
    /// Token of the in-flight half-open probe; 0 when none.
    uint64_t probe_token = 0;
  };

  /// Serving-clock `now`, or the virtual test clock. Requires `mu_`
  /// held (the virtual clock is guarded by it).
  ServeClock::time_point NowLocked() const TCQ_REQUIRES(mu_);
  /// Folds one report into the window and applies halving decay.
  /// Requires `mu_` held.
  void AccumulateLocked(RelationHealth* health, int64_t reads,
                        int64_t faults) const TCQ_REQUIRES(mu_);
  /// Hands one granted probe back if its token is still current.
  /// Requires `mu_` held.
  void ReleaseProbeLocked(const ProbeGrant& grant) TCQ_REQUIRES(mu_);
  /// Trips `health` open and counts the transition. Requires `mu_` held.
  void TripLocked(const std::string& relation, RelationHealth* health)
      TCQ_REQUIRES(mu_);
  void UpdateGaugeLocked() TCQ_REQUIRES(mu_);

  const CircuitBreakerOptions options_;
  Metrics* const metrics_;  // may be null

  mutable Mutex mu_;
  std::map<std::string, RelationHealth, std::less<>> relations_
      TCQ_GUARDED_BY(mu_);
  uint64_t last_probe_token_ TCQ_GUARDED_BY(mu_) = 0;
  int open_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t trips_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t sheds_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t shrinks_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t probes_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t probe_aborts_ TCQ_GUARDED_BY(mu_) = 0;
  bool virtual_clock_ TCQ_GUARDED_BY(mu_) = false;
  ServeClock::time_point virtual_now_ TCQ_GUARDED_BY(mu_){};
};

}  // namespace tcq

#endif  // TCQ_SERVE_CIRCUIT_BREAKER_H_
