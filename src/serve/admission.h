#ifndef TCQ_SERVE_ADMISSION_H_
#define TCQ_SERVE_ADMISSION_H_

/// Quota-aware admission control for a tcq::Server: many concurrent
/// queries draw their time quotas from one shared pool so they cannot
/// collectively overspend it.
///
/// Every submission ends in exactly one of four outcomes:
///
///   admitted  — the full requested quota fits the remaining global
///               budget; granted immediately.
///   shrunk    — the full quota does not fit but a reduced one does; the
///               caller-supplied fit probe (a re-run of Sample-Size-
///               Determine at the reduced quota, via EXPLAIN) confirms at
///               least one stage still fits before the grant stands.
///   queued    — no grant is possible right now; the submission waits in
///               a deadline-ordered (earliest-deadline-first) queue until
///               a release frees budget or its serving deadline expires.
///   rejected  — a typed non-OK Status: kResourceExhausted when there is
///               no capacity (queue full, shrink floor unreachable, fit
///               probe failed), kDeadlineExceeded when the serving
///               deadline ran out while queued. Rejected submissions
///               never execute.
///
/// Grants are recorded in a per-query QuotaLedger; Release() returns the
/// grant to the pool and wakes the queue. Decisions depend only on the
/// controller's accounting state — never on a clock or random draw — so
/// sequential use is fully deterministic; the monotonic serving clock is
/// read only to order and expire queued waiters.
///
/// Thread safety: every public method is safe to call concurrently; one
/// internal mutex guards the accounting state and the EDF queue.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "serve/circuit_breaker.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Admission policy of a tcq::Server.
struct AdmissionOptions {
  /// Master switch. When false every submission is granted its full
  /// request immediately — but submissions and outstanding quota are
  /// still counted, so the serve metrics show exactly how far an
  /// uncontrolled workload overcommits the budget.
  bool enabled = true;
  /// The shared time-quota pool, in seconds: the sum of all outstanding
  /// grants never exceeds it (while `enabled`).
  double global_budget_s = 10.0;
  /// Hard cap on queries holding a grant at once.
  int max_concurrent = 8;
  /// Grant a reduced quota when the full request does not fit.
  bool allow_shrink = true;
  /// Smallest quota worth granting: below this floor a shrunk run could
  /// not fit even its first stage, so the submission queues or rejects
  /// instead. Shrunk grants are additionally validated by the fit probe.
  double min_shrunk_quota_s = 0.25;
  /// Queue submissions that cannot be granted immediately.
  bool allow_queue = true;
  /// Reject (kResourceExhausted) once this many submissions are waiting.
  int max_queue_depth = 16;
  /// Per-relation fault-storm policy (see circuit_breaker.h). The server
  /// owns the breaker; the controller never inspects it — it lives here
  /// so one options struct configures the whole admission path.
  CircuitBreakerOptions breaker;

  /// Rejects nonsense policies: non-positive budget or floor, floor above
  /// budget, max_concurrent < 1, max_queue_depth < 0, plus the breaker's
  /// own Validate() when it is enabled.
  [[nodiscard]] Status Validate() const;
};

/// One query's draw from the shared quota pool: the admission outcome and
/// the grant to return on Release(). Plain data, cheap to copy.
struct QuotaLedger {
  uint64_t id = 0;  // submission sequence number (1-based)
  AdmissionReport::Outcome outcome = AdmissionReport::Outcome::kAdmitted;
  double requested_s = 0.0;   // quota asked for
  double granted_s = 0.0;     // quota actually drawn from the pool
  double queue_wait_s = 0.0;  // serving-clock seconds spent queued
  double deadline_s = 0.0;    // serving deadline applied while queued
};

/// Arbitrates per-query time quotas against the shared global budget.
class AdmissionController {
 public:
  /// Validates a tentative (shrunk) quota before the grant stands —
  /// typically ExplainTimeConstrainedAggregate at the reduced quota,
  /// checking that at least one stage is still planned. Called without
  /// the controller lock held; a non-OK return converts the grant into a
  /// rejection. An empty function accepts every quota.
  using FitProbe = std::function<Status(double quota_s)>;

  /// `metrics` (optional, not owned) receives the serve.* counters and
  /// gauges listed in server.h alongside the internal stats.
  explicit AdmissionController(AdmissionOptions options,
                               Metrics* metrics = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Submits a request for `requested_quota_s` seconds of budget.
  /// `deadline_s` bounds the time spent waiting in the queue (<= 0 means
  /// "use the requested quota as the deadline"). Blocks only on the
  /// queued path. The returned ledger must be passed to Release() exactly
  /// once after the query finishes.
  [[nodiscard]] Result<QuotaLedger> Admit(double requested_quota_s,
                                          double deadline_s,
                                          const FitProbe& fit_probe = {})
      TCQ_EXCLUDES(mu_);

  /// Returns a grant to the pool and wakes the EDF queue. Idempotence is
  /// the caller's responsibility: release each ledger exactly once.
  void Release(const QuotaLedger& ledger) TCQ_EXCLUDES(mu_);

  /// Accounting snapshot; counters partition submissions exactly:
  /// admitted + shrunk + queued + rejected == submitted (once no Admit
  /// call is in flight).
  struct Stats {
    int64_t submitted = 0;
    int64_t admitted = 0;
    int64_t shrunk = 0;
    int64_t queued = 0;
    int64_t rejected = 0;
    int active = 0;              // grants currently outstanding
    int queue_depth = 0;         // submissions currently waiting
    double outstanding_s = 0.0;  // sum of outstanding grants
  };
  Stats stats() const TCQ_EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

 private:
  using ServeClock = std::chrono::steady_clock;

  struct Waiter {
    double requested_s = 0.0;
    bool granted = false;
    double granted_s = 0.0;
  };
  /// EDF order: earliest absolute deadline first, submission order as the
  /// tiebreak.
  using QueueKey = std::pair<ServeClock::time_point, uint64_t>;

  /// Grants the queue head(s) while budget and concurrency allow; strict
  /// head-of-line — a later waiter never overtakes an unserved earlier
  /// deadline. Requires `mu_` held; notifies waiters when it grants.
  void PumpLocked() TCQ_REQUIRES(mu_);
  /// Immediate grant for `requested_s` under the current accounting, or
  /// 0.0 when none is possible. Requires `mu_` held.
  double ImmediateGrantLocked(double requested_s) const TCQ_REQUIRES(mu_);
  /// Reserves `granted_s` for one query. Requires `mu_` held.
  void ReserveLocked(double granted_s) TCQ_REQUIRES(mu_);
  /// Returns a reservation and pumps the queue. Requires `mu_` held.
  void UnreserveLocked(double granted_s) TCQ_REQUIRES(mu_);
  /// Runs the fit probe on a reserved grant; on failure the reservation
  /// is returned and the submission counted rejected. Takes `mu_`.
  [[nodiscard]] Status ProbeReservedGrant(const FitProbe& fit_probe,
                                          double granted_s)
      TCQ_EXCLUDES(mu_);
  void CountOutcomeLocked(AdmissionReport::Outcome outcome)
      TCQ_REQUIRES(mu_);
  void CountRejectedLocked() TCQ_REQUIRES(mu_);
  void UpdateGaugesLocked() TCQ_REQUIRES(mu_);

  const AdmissionOptions options_;
  Metrics* const metrics_;  // may be null

  mutable Mutex mu_;
  CondVar cv_;
  std::map<QueueKey, Waiter*> queue_ TCQ_GUARDED_BY(mu_);
  uint64_t next_id_ TCQ_GUARDED_BY(mu_) = 0;
  int active_ TCQ_GUARDED_BY(mu_) = 0;
  double outstanding_s_ TCQ_GUARDED_BY(mu_) = 0.0;
  int64_t submitted_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t admitted_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t shrunk_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t queued_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t rejected_ TCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace tcq

#endif  // TCQ_SERVE_ADMISSION_H_
