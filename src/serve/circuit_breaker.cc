#include "serve/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"

namespace tcq {

Status CircuitBreakerOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (!std::isfinite(fault_rate_threshold) || fault_rate_threshold <= 0.0 ||
      fault_rate_threshold > 1.0) {
    return Status::InvalidArgument(
        "breaker fault_rate_threshold must be in (0, 1]");
  }
  if (min_reads < 1) {
    return Status::InvalidArgument("breaker min_reads must be >= 1");
  }
  if (!std::isfinite(cooldown_s) || cooldown_s < 0.0) {
    return Status::InvalidArgument(
        "breaker cooldown_s must be finite and >= 0");
  }
  if (!shed &&
      (!std::isfinite(shrink_factor) || shrink_factor <= 0.0 ||
       shrink_factor >= 1.0)) {
    return Status::InvalidArgument(
        "breaker shrink_factor must be in (0, 1)");
  }
  if (window_factor < 1) {
    return Status::InvalidArgument("breaker window_factor must be >= 1");
  }
  return Status::OK();
}

RelationCircuitBreaker::RelationCircuitBreaker(CircuitBreakerOptions options,
                                               Metrics* metrics)
    : options_(options), metrics_(metrics) {}

Status RelationCircuitBreaker::Check(
    const std::vector<std::string>& relations, double* quota_scale,
    std::vector<ProbeGrant>* probes) {
  if (quota_scale != nullptr) *quota_scale = 1.0;
  if (probes != nullptr) probes->clear();
  if (!options_.enabled) return Status::OK();

  MutexLock lock(mu_);
  const ServeClock::time_point now = NowLocked();
  double scale = 1.0;
  std::vector<ProbeGrant> granted;
  for (const std::string& relation : relations) {
    auto it = relations_.find(relation);
    if (it == relations_.end()) continue;
    RelationHealth& health = it->second;
    if (health.state == State::kOpen) {
      const double open_for =
          std::chrono::duration<double>(now - health.opened_at).count();
      if (open_for >= options_.cooldown_s) {
        health.state = State::kHalfOpen;
        health.probe_token = 0;
      }
    }
    if (health.state == State::kHalfOpen) {
      // Backstop against a lost probe: one in flight for a full cooldown
      // without a verdict (its query hung, or an early return skipped
      // both Report and AbortProbes) is reclaimed so the relation cannot
      // stay shed forever.
      const double probe_age =
          std::chrono::duration<double>(now - health.opened_at).count();
      if (health.probe_token != 0 && probe_age >= options_.cooldown_s) {
        health.probe_token = 0;
        ++probe_aborts_;
        if (metrics_ != nullptr) {
          metrics_->counter(metric_names::kServeBreakerProbeAborts)
              ->Increment();
        }
      }
      // This query becomes the single probe; concurrent arrivals below
      // see the in-flight token and are handled like an open breaker.
      // A caller with no way to return the grant never receives one.
      if (health.probe_token == 0 && probes != nullptr) {
        health.probe_token = ++last_probe_token_;
        // From here `opened_at` stamps the probe grant, starting the
        // reclaim clock above.
        health.opened_at = now;
        granted.push_back(ProbeGrant{relation, health.probe_token});
        continue;
      }
    }
    if (health.state == State::kOpen || health.state == State::kHalfOpen) {
      if (options_.shed) {
        // The query is turned away, so probes granted for relations
        // earlier in this same call can never report — hand them back.
        for (const ProbeGrant& grant : granted) ReleaseProbeLocked(grant);
        ++sheds_;
        if (metrics_ != nullptr) {
          metrics_->counter(metric_names::kServeBreakerSheds)->Increment();
        }
        return Status::Unavailable("relation '" + relation +
                                   "' is in a fault storm (breaker open)");
      }
      scale = std::min(scale, options_.shrink_factor);
    }
  }
  if (!granted.empty()) {
    probes_ += static_cast<int64_t>(granted.size());
    if (metrics_ != nullptr) {
      auto* counter = metrics_->counter(metric_names::kServeBreakerProbes);
      for (size_t i = 0; i < granted.size(); ++i) counter->Increment();
    }
    *probes = std::move(granted);
  }
  if (scale < 1.0) {
    ++shrinks_;
    if (metrics_ != nullptr) {
      metrics_->counter(metric_names::kServeBreakerShrinks)->Increment();
    }
    if (quota_scale != nullptr) *quota_scale = scale;
  }
  return Status::OK();
}

void RelationCircuitBreaker::Report(std::string_view relation, int64_t reads,
                                    int64_t faults, uint64_t probe_token) {
  if (!options_.enabled) return;

  MutexLock lock(mu_);
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    if (reads <= 0) return;  // nothing to record about an unseen relation
    it = relations_.emplace(std::string(relation), RelationHealth{}).first;
  }
  RelationHealth& health = it->second;
  if (reads > 0) AccumulateLocked(&health, reads, faults);

  switch (health.state) {
    case State::kClosed: {
      const double rate =
          health.reads > 0.0 ? health.faults / health.reads : 0.0;
      if (health.reads >= static_cast<double>(options_.min_reads) &&
          rate > options_.fault_rate_threshold) {
        TripLocked(it->first, &health);
      }
      break;
    }
    case State::kHalfOpen:
      // Only the in-flight probe's own verdict moves a half-open
      // breaker. A report without the current token — a query admitted
      // before the trip, or a probe already reclaimed as lost — has
      // already folded its tallies into the window above.
      if (probe_token == 0 || probe_token != health.probe_token) break;
      health.probe_token = 0;
      // A probe that completed with its own fault rate at or under the
      // threshold — including a faults-off run reporting no reads at
      // all — counts as clean.
      if (static_cast<double>(faults) <=
          static_cast<double>(reads) * options_.fault_rate_threshold) {
        // Clean probe: the storm has passed. Reset the window so the old
        // storm's tallies cannot instantly re-trip the breaker.
        health.state = State::kClosed;
        health.reads = 0.0;
        health.faults = 0.0;
        --open_;
        UpdateGaugeLocked();
      } else {
        TripLocked(it->first, &health);
      }
      break;
    case State::kOpen:
      break;  // feedback from queries admitted before the trip
  }
}

void RelationCircuitBreaker::AbortProbes(
    const std::vector<ProbeGrant>& probes) {
  if (!options_.enabled || probes.empty()) return;
  MutexLock lock(mu_);
  for (const ProbeGrant& grant : probes) ReleaseProbeLocked(grant);
}

RelationCircuitBreaker::State RelationCircuitBreaker::state(
    std::string_view relation) const {
  MutexLock lock(mu_);
  auto it = relations_.find(relation);
  return it == relations_.end() ? State::kClosed : it->second.state;
}

RelationCircuitBreaker::Stats RelationCircuitBreaker::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.trips = trips_;
  s.sheds = sheds_;
  s.shrinks = shrinks_;
  s.probes = probes_;
  s.probe_aborts = probe_aborts_;
  s.open = open_;
  return s;
}

void RelationCircuitBreaker::UseVirtualClockForTest() {
  MutexLock lock(mu_);
  virtual_clock_ = true;
  virtual_now_ = ServeClock::time_point{} + std::chrono::hours(1);
}

void RelationCircuitBreaker::AdvanceClockForTest(double seconds) {
  MutexLock lock(mu_);
  virtual_now_ += std::chrono::duration_cast<ServeClock::duration>(
      std::chrono::duration<double>(seconds));
}

RelationCircuitBreaker::ServeClock::time_point
RelationCircuitBreaker::NowLocked() const {
  return virtual_clock_ ? virtual_now_ : ServeClock::now();
}

void RelationCircuitBreaker::AccumulateLocked(RelationHealth* health,
                                              int64_t reads,
                                              int64_t faults) const {
  health->reads += static_cast<double>(reads);
  health->faults += static_cast<double>(faults);
  const double cap = 2.0 * static_cast<double>(options_.window_factor) *
                     static_cast<double>(options_.min_reads);
  while (health->reads > cap) {
    health->reads *= 0.5;
    health->faults *= 0.5;
  }
}

void RelationCircuitBreaker::ReleaseProbeLocked(const ProbeGrant& grant) {
  auto it = relations_.find(grant.relation);
  if (it == relations_.end()) return;
  RelationHealth& health = it->second;
  if (health.state != State::kHalfOpen || health.probe_token != grant.token) {
    return;  // verdict already delivered, reclaimed, or state moved on
  }
  health.probe_token = 0;
  ++probe_aborts_;
  if (metrics_ != nullptr) {
    metrics_->counter(metric_names::kServeBreakerProbeAborts)->Increment();
  }
}

void RelationCircuitBreaker::TripLocked(const std::string& relation,
                                        RelationHealth* health) {
  if (health->state != State::kOpen && health->state != State::kHalfOpen) {
    ++open_;
  }
  health->state = State::kOpen;
  health->opened_at = NowLocked();
  health->probe_token = 0;
  ++trips_;
  if (metrics_ != nullptr) {
    metrics_->counter(metric_names::kServeBreakerTrips)->Increment();
    (void)relation;
  }
  UpdateGaugeLocked();
}

void RelationCircuitBreaker::UpdateGaugeLocked() {
  if (metrics_ != nullptr) {
    metrics_->gauge(metric_names::kServeBreakerOpen)
        ->Set(static_cast<double>(open_));
  }
}

}  // namespace tcq
