#include "cost/sel_predictor.h"

#include <algorithm>
#include <cmath>

namespace tcq {

namespace {

/// FNV-1a, fixed constants: the hash (and with it every table index and
/// tag) is identical across platforms and runs, which keeps predictor-on
/// runs reproducible at a fixed seed and session history.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvHash(std::string_view text) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed arbitration order: used cold (no trained chooser entry) as the
/// priority list, and as the deterministic tie-break among trained
/// components with equal error EWMAs. `observed > prior` preserves the
/// legacy stage-0 behaviour exactly when the chooser has not learned
/// anything yet; history ranks below prior until it earns its place.
constexpr SelComponent kColdOrder[4] = {
    SelComponent::kObserved, SelComponent::kPrior, SelComponent::kHistory,
    SelComponent::kDefault};

double ClampSel(double sel) { return std::clamp(sel, 0.0, 1.0); }

}  // namespace

Status SelPredictorOptions::Validate() const {
  if (max_ngram < 1 || max_ngram > 8) {
    return Status::InvalidArgument(
        "sel_predictor.max_ngram must lie in [1, 8]; got " +
        std::to_string(max_ngram));
  }
  if (table_size < 16) {
    return Status::InvalidArgument(
        "sel_predictor.table_size must be >= 16; got " +
        std::to_string(table_size));
  }
  if (confidence_max < 1) {
    return Status::InvalidArgument(
        "sel_predictor.confidence_max must be >= 1; got " +
        std::to_string(confidence_max));
  }
  if (!std::isfinite(error_alpha) ||
      !(error_alpha > 0.0 && error_alpha <= 1.0) ||
      !std::isfinite(history_alpha) ||
      !(history_alpha > 0.0 && history_alpha <= 1.0)) {
    return Status::InvalidArgument(
        "sel_predictor EWMA alphas must lie in (0, 1]");
  }
  if (!std::isfinite(blend_margin) || blend_margin < 0.0 ||
      !std::isfinite(accuracy_abs) || accuracy_abs < 0.0 ||
      !std::isfinite(accuracy_rel) || accuracy_rel < 0.0) {
    return Status::InvalidArgument(
        "sel_predictor blend/accuracy knobs must be finite and >= 0");
  }
  if (!std::isfinite(width_scale_min) || !std::isfinite(width_scale_max) ||
      !(width_scale_min > 0.0) || width_scale_min > width_scale_max ||
      width_scale_max > 10.0) {
    return Status::InvalidArgument(
        "sel_predictor width scales must satisfy 0 < min <= max <= 10");
  }
  return Status::OK();
}

std::string_view SelComponentName(SelComponent component) {
  switch (component) {
    case SelComponent::kDefault:
      return "default";
    case SelComponent::kObserved:
      return "observed";
    case SelComponent::kPrior:
      return "prior";
    case SelComponent::kHistory:
      return "history";
  }
  return "default";
}

std::string StructuralSignature(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kScan:
      return "scan(" + expr.relation + ")";
    case ExprKind::kSelect:
      return "select(" + StructuralSignature(*expr.left) + ")";
    case ExprKind::kProject:
      return "project(" + StructuralSignature(*expr.left) + ")";
    case ExprKind::kJoin:
      return "join(" + StructuralSignature(*expr.left) + "," +
             StructuralSignature(*expr.right) + ")";
    case ExprKind::kIntersect: {
      // Commutative: order the children like CanonicalSignature does, so
      // a ∩ b and b ∩ a share the structural key too.
      std::string l = StructuralSignature(*expr.left);
      std::string r = StructuralSignature(*expr.right);
      if (r < l) std::swap(l, r);
      return "intersect(" + l + "," + r + ")";
    }
    case ExprKind::kUnion: {
      std::string l = StructuralSignature(*expr.left);
      std::string r = StructuralSignature(*expr.right);
      if (r < l) std::swap(l, r);
      return "union(" + l + "," + r + ")";
    }
    case ExprKind::kDifference:
      return "difference(" + StructuralSignature(*expr.left) + "," +
             StructuralSignature(*expr.right) + ")";
  }
  return "unknown";
}

SelPredictor::SelPredictor(const SelPredictorOptions& options)
    : options_(options) {
  tables_.resize(static_cast<size_t>(std::max(1, options_.max_ngram)));
  for (auto& level : tables_) {
    level.resize(static_cast<size_t>(std::max(16, options_.table_size)));
  }
}

void SelPredictor::BeginQuery(const CacheKey& query_signature) {
  MutexLock lock(mu_);
  stream_.push_back(FnvHash(query_signature.text()));
  const size_t keep = static_cast<size_t>(std::max(1, options_.max_ngram));
  if (stream_.size() > keep) {
    stream_.erase(stream_.begin(),
                  stream_.end() - static_cast<ptrdiff_t>(keep));
  }
}

uint64_t SelPredictor::ContextHash(const std::vector<uint64_t>& stream,
                                   int ngram,
                                   const CacheKey& node_key) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(ngram) * 0x9e3779b97f4a7c15ULL);
  for (size_t i = stream.size() - static_cast<size_t>(ngram);
       i < stream.size(); ++i) {
    h = FnvMix(h, stream[i]);
  }
  h = FnvMix(h, FnvHash(node_key.text()));
  return h;
}

std::optional<double> SelPredictor::LookupHistory(
    const std::vector<uint64_t>& stream, const CacheKey& node_key,
    const std::string& structural_key) const {
  // Longest tagged match wins; the untagged structural EWMA is the
  // level-0 base every miss falls back to.
  for (int n = options_.max_ngram; n >= 1; --n) {
    if (stream.size() < static_cast<size_t>(n)) continue;
    const uint64_t ctx = ContextHash(stream, n, node_key);
    const auto& level = tables_[static_cast<size_t>(n - 1)];
    const TaggedEntry& entry = level[ctx % level.size()];
    if (entry.valid && entry.tag == ctx) return entry.value;
  }
  auto it = structural_.find(structural_key);
  if (it != structural_.end()) return it->second;
  return std::nullopt;
}

SelPrediction SelPredictor::Choose(const CacheKey& node_key,
                                   std::optional<double> observed,
                                   std::optional<double> prior,
                                   std::optional<double> history,
                                   double fallback,
                                   Pending* pending) const {
  double value[4] = {fallback, 0.0, 0.0, 0.0};
  bool has[4] = {true, false, false, false};
  if (observed.has_value()) {
    value[static_cast<int>(SelComponent::kObserved)] = *observed;
    has[static_cast<int>(SelComponent::kObserved)] = true;
  }
  if (prior.has_value()) {
    value[static_cast<int>(SelComponent::kPrior)] = *prior;
    has[static_cast<int>(SelComponent::kPrior)] = true;
  }
  if (history.has_value()) {
    value[static_cast<int>(SelComponent::kHistory)] = *history;
    has[static_cast<int>(SelComponent::kHistory)] = true;
  }

  const ChooserEntry* entry = nullptr;
  auto it = chooser_.find(node_key.text());
  if (it != chooser_.end()) entry = &it->second;

  SelPrediction out;
  out.history_hit = history.has_value();

  // Pick the trained component with the smallest error EWMA; cold (no
  // trained component for this node yet) falls back to the fixed
  // priority order, which reproduces the legacy observed > prior >
  // default arbitration.
  SelComponent best = SelComponent::kDefault;
  SelComponent second = SelComponent::kDefault;
  bool have_best = false;
  bool have_second = false;
  if (entry != nullptr) {
    for (SelComponent c : kColdOrder) {
      const int ci = static_cast<int>(c);
      if (!has[ci] || entry->components[ci].seen <= 0) continue;
      if (!have_best ||
          entry->components[ci].err <
              entry->components[static_cast<int>(best)].err) {
        if (have_best) {
          second = best;
          have_second = true;
        }
        best = c;
        have_best = true;
      } else if (!have_second ||
                 entry->components[ci].err <
                     entry->components[static_cast<int>(second)].err) {
        second = c;
        have_second = true;
      }
    }
  }
  if (!have_best) {
    for (SelComponent c : kColdOrder) {
      if (has[static_cast<int>(c)]) {
        best = c;
        break;
      }
    }
    out.component = best;
    out.selectivity = ClampSel(value[static_cast<int>(best)]);
    out.confidence = 0.0;
    out.width_scale = options_.width_scale_max;
  } else {
    const int bi = static_cast<int>(best);
    double chosen = value[bi];
    if (have_second) {
      // Inverse-error blend when the runner-up is close: both
      // components carry signal and a hard switch would thrash.
      const double e1 = std::max(entry->components[bi].err, 1e-4);
      const double e2 = std::max(
          entry->components[static_cast<int>(second)].err, 1e-4);
      if (e2 <= e1 * (1.0 + options_.blend_margin)) {
        const double w1 = 1.0 / e1;
        const double w2 = 1.0 / e2;
        chosen = (value[bi] * w1 +
                  value[static_cast<int>(second)] * w2) /
                 (w1 + w2);
      }
    }
    out.component = best;
    out.selectivity = ClampSel(chosen);
    out.confidence =
        static_cast<double>(entry->components[bi].conf) /
        static_cast<double>(options_.confidence_max);
    out.width_scale =
        options_.width_scale_max +
        (options_.width_scale_min - options_.width_scale_max) *
            out.confidence;
  }

  if (pending != nullptr) {
    for (int c = 0; c < 4; ++c) {
      pending->value[c] = value[c];
      pending->has[c] = has[c];
    }
    pending->chosen = out.selectivity;
  }
  return out;
}

SelPrediction SelPredictor::Predict(const CacheKey& node_key,
                                    const std::string& structural_key,
                                    std::optional<double> observed,
                                    std::optional<double> prior,
                                    double fallback) {
  MutexLock lock(mu_);
  std::optional<double> history =
      LookupHistory(stream_, node_key, structural_key);
  Pending pending;
  SelPrediction out =
      Choose(node_key, observed, prior, history, fallback, &pending);
  pending_[node_key.text()] = pending;
  ++stats_.predictions;
  if (out.history_hit) {
    ++stats_.history_hits;
  } else {
    ++stats_.history_misses;
  }
  return out;
}

SelPrediction SelPredictor::Peek(const CacheKey& query_signature,
                                 const CacheKey& node_key,
                                 const std::string& structural_key,
                                 std::optional<double> observed,
                                 std::optional<double> prior,
                                 double fallback) const {
  MutexLock lock(mu_);
  // The stream a run of this query would hash over, without mutating the
  // predictor (EXPLAIN stays side-effect free).
  std::vector<uint64_t> stream = stream_;
  stream.push_back(FnvHash(query_signature.text()));
  const size_t keep = static_cast<size_t>(std::max(1, options_.max_ngram));
  if (stream.size() > keep) {
    stream.erase(stream.begin(),
                 stream.end() - static_cast<ptrdiff_t>(keep));
  }
  std::optional<double> history =
      LookupHistory(stream, node_key, structural_key);
  return Choose(node_key, observed, prior, history, fallback, nullptr);
}

void SelPredictor::Update(const CacheKey& node_key,
                          const std::string& structural_key,
                          double realized) {
  realized = ClampSel(realized);
  MutexLock lock(mu_);
  const double tol =
      std::max(options_.accuracy_abs, options_.accuracy_rel * realized);

  auto pit = pending_.find(node_key.text());
  if (pit != pending_.end()) {
    ChooserEntry& entry = chooser_[node_key.text()];
    for (int c = 0; c < 4; ++c) {
      if (!pit->second.has[c]) continue;
      const double err = std::abs(pit->second.value[c] - realized);
      ComponentState& cs = entry.components[c];
      cs.err = cs.seen == 0
                   ? err
                   : (1.0 - options_.error_alpha) * cs.err +
                         options_.error_alpha * err;
      ++cs.seen;
      if (err <= tol) {
        cs.conf = std::min(options_.confidence_max, cs.conf + 1);
      } else {
        cs.conf = std::max(0, cs.conf - 1);
      }
    }
    const double chosen_err = std::abs(pit->second.chosen - realized);
    stats_.abs_error_ewma =
        stats_.updates == 0
            ? chosen_err
            : (1.0 - options_.error_alpha) * stats_.abs_error_ewma +
                  options_.error_alpha * chosen_err;
    pending_.erase(pit);
  }

  // Tagged levels: matching entries fold the realized value in and earn
  // or lose usefulness; mismatches steal the slot only once the
  // incumbent's usefulness counter has drained (TAGE replacement).
  for (int n = 1; n <= options_.max_ngram; ++n) {
    if (stream_.size() < static_cast<size_t>(n)) continue;
    const uint64_t ctx = ContextHash(stream_, n, node_key);
    auto& level = tables_[static_cast<size_t>(n - 1)];
    TaggedEntry& entry = level[ctx % level.size()];
    if (entry.valid && entry.tag == ctx) {
      const bool accurate = std::abs(entry.value - realized) <= tol;
      entry.value = (1.0 - options_.history_alpha) * entry.value +
                    options_.history_alpha * realized;
      if (accurate) {
        entry.useful = std::min(options_.confidence_max, entry.useful + 1);
      } else {
        entry.useful = std::max(0, entry.useful - 1);
      }
    } else if (!entry.valid || entry.useful <= 0) {
      entry.valid = true;
      entry.tag = ctx;
      entry.value = realized;
      entry.useful = 1;
    } else {
      --entry.useful;
    }
  }

  auto sit = structural_.find(structural_key);
  if (sit == structural_.end()) {
    structural_[structural_key] = realized;
  } else {
    sit->second = (1.0 - options_.history_alpha) * sit->second +
                  options_.history_alpha * realized;
  }
  ++stats_.updates;
}

SelPredictorStats SelPredictor::stats() const {
  MutexLock lock(mu_);
  SelPredictorStats out = stats_;
  out.chooser_entries = static_cast<int64_t>(chooser_.size());
  return out;
}

void SelPredictor::Clear() {
  MutexLock lock(mu_);
  stream_.clear();
  for (auto& level : tables_) {
    std::fill(level.begin(), level.end(), TaggedEntry{});
  }
  structural_.clear();
  chooser_.clear();
  pending_.clear();
  stats_ = SelPredictorStats{};
}

}  // namespace tcq
