#ifndef TCQ_COST_PREDICTOR_H_
#define TCQ_COST_PREDICTOR_H_

#include <map>

#include "cost/adaptive_model.h"
#include "exec/staged.h"
#include "util/result.h"

namespace tcq {

/// Predicted resource usage of one term for the *next* stage at sample
/// fraction `f`.
struct TermStagePrediction {
  /// Predicted operator-evaluation seconds (excludes block fetches and the
  /// per-stage overhead, which the engine prices once per stage across all
  /// terms sharing the samples).
  double seconds = 0.0;
  /// Predicted newly covered points at the term's root.
  double new_points = 0.0;
  /// Predicted new output tuples at the term's root.
  double new_tuples = 0.0;
};

/// Evaluates the term's time-cost formula QCOST(f, SEL⁺) (paper §4) against
/// the current stage history in `term`. `sel_plus` maps operator node ids
/// (pre-order, as assigned by StagedTermEvaluator) to the inflated
/// selectivities sel⁺ chosen by the time-control strategy; every non-scan
/// node id must be present.
///
/// The per-operator formulas mirror the execution engine exactly:
///  - Select (eq 4.1):  filter·n  +  output·(sel⁺·n)  +  setup
///  - Join/Intersect (eqs 4.2–4.5): temp-write of the new runs, sort
///    (n·log2 n basis), merges of every run pair whose newest run is this
///    stage (full fulfillment) or new×new (partial), output writing of
///    sel⁺ × (new points), plus setup;
///  - Project: temp-write + sort of the new run, merge with the cumulative
///    sorted sample, dedup scan, output of the distinct groups.
[[nodiscard]] Result<TermStagePrediction> PredictTermStageCost(
    const StagedTermEvaluator& term, double f,
    const std::map<int, double>& sel_plus, const AdaptiveCostModel& coefs);

/// Same, with an explicit fulfillment mode for the candidate stage
/// (hybrid planning: price a final partial stage while the evaluator's
/// default is full fulfillment).
[[nodiscard]] Result<TermStagePrediction> PredictTermStageCost(
    const StagedTermEvaluator& term, double f,
    const std::map<int, double>& sel_plus, const AdaptiveCostModel& coefs,
    Fulfillment mode);

/// Feeds the realized step times of the term's most recent stage back into
/// the adaptive model (paper §4's run-time coefficient adjustment). Block
/// fetches are observed by the engine under `kGlobalCostNode`.
void ObserveTermStage(const StagedTermEvaluator& term,
                      AdaptiveCostModel* coefs);

}  // namespace tcq

#endif  // TCQ_COST_PREDICTOR_H_
