#include "cost/adaptive_model.h"

#include <cmath>

namespace tcq {

std::string_view CostStepName(CostStep step) {
  switch (step) {
    case CostStep::kFetch:
      return "fetch";
    case CostStep::kFilter:
      return "filter";
    case CostStep::kTempWrite:
      return "temp_write";
    case CostStep::kSort:
      return "sort";
    case CostStep::kMerge:
      return "merge";
    case CostStep::kOutput:
      return "output";
    case CostStep::kSetup:
      return "setup";
    case CostStep::kNumSteps:
      break;
  }
  return "unknown";
}

bool StepParallelizable(CostStep step) {
  switch (step) {
    case CostStep::kFetch:
    case CostStep::kFilter:
    case CostStep::kTempWrite:
    case CostStep::kSort:
    case CostStep::kMerge:
    case CostStep::kOutput:
      return true;
    case CostStep::kSetup:
    case CostStep::kNumSteps:
      break;
  }
  return false;
}

AdaptiveCostModel::AdaptiveCostModel(const CostModel& physical,
                                     Options options)
    : options_(options),
      physical_(physical),
      efficiency_(physical.parallel_efficiency) {}

double AdaptiveCostModel::ParallelSpeedup(CostStep step) const {
  if (physical_.workers <= 1 || !StepParallelizable(step)) return 1.0;
  double s = 1.0 + efficiency_ * static_cast<double>(physical_.workers - 1);
  return s >= 1.0 ? s : 1.0;
}

void AdaptiveCostModel::ObserveParallelism(double work_seconds,
                                           double span_seconds) {
  if (!options_.adaptive) return;
  if (physical_.workers <= 1) return;
  if (work_seconds <= 0.0 || span_seconds <= 0.0) return;
  double speedup = work_seconds / span_seconds;
  double observed =
      (speedup - 1.0) / static_cast<double>(physical_.workers - 1);
  if (observed < 0.0) observed = 0.0;
  if (observed > 1.0) observed = 1.0;
  efficiency_ =
      (1.0 - options_.ewma) * efficiency_ + options_.ewma * observed;
}

AdaptiveCostModel::Snapshot AdaptiveCostModel::ExportSnapshot() const {
  Snapshot s;
  s.coefs = coefs_;
  s.efficiency = efficiency_;
  return s;
}

void AdaptiveCostModel::RestoreSnapshot(const Snapshot& snapshot) {
  if (!options_.adaptive) return;
  coefs_ = snapshot.coefs;
  efficiency_ = snapshot.efficiency;
}

double AdaptiveCostModel::Initial(CostStep step) const {
  const double scale = options_.initial_scale;
  const double bf = options_.assumed_blocking_factor;
  // The evaluation steps a vectorized layout accelerates: their initial
  // coefficients shrink by the configured speedup so stage planning
  // reflects the cheaper path before any observation has been made.
  const double eval = options_.eval_speedup > 1.0 ? options_.eval_speedup
                                                  : 1.0;
  switch (step) {
    case CostStep::kFetch:
      return scale * physical_.block_read_s;
    case CostStep::kFilter:
      return scale * options_.assumed_comparisons *
             physical_.predicate_compare_s / eval;
    case CostStep::kTempWrite:
    case CostStep::kOutput:
      return scale *
             (physical_.tuple_move_s + physical_.block_write_s / bf);
    case CostStep::kSort:
      return scale * physical_.sort_compare_s / eval;
    case CostStep::kMerge:
      return scale * physical_.merge_compare_s / eval;
    case CostStep::kSetup:
      return scale * physical_.op_setup_s;
    case CostStep::kNumSteps:
      break;
  }
  return 0.0;
}

double AdaptiveCostModel::Coef(int node_id, CostStep step) const {
  auto it = coefs_.find({node_id, static_cast<int>(step)});
  if (it != coefs_.end()) return it->second;
  return Initial(step) / ParallelSpeedup(step);
}

void AdaptiveCostModel::Observe(int node_id, CostStep step, double units,
                                double seconds) {
  if (!options_.adaptive) return;
  if (units <= 0.0 || seconds < 0.0) return;
  double observed = seconds / units;
  auto key = std::make_pair(node_id, static_cast<int>(step));
  auto it = coefs_.find(key);
  if (it == coefs_.end()) {
    // First observation replaces the generic initial value outright.
    coefs_[key] = observed;
    return;
  }
  it->second = (1.0 - options_.ewma) * it->second + options_.ewma * observed;
}

double SortCostUnits(double n) {
  if (n <= 0.0) return 0.0;
  return n * std::log2(n + 2.0);
}

int64_t BlocksForFraction(double fraction, int64_t total_blocks) {
  if (fraction <= 0.0) return 0;
  double d = std::llround(fraction * static_cast<double>(total_blocks));
  if (d < 0.0) d = 0.0;
  if (d > static_cast<double>(total_blocks)) {
    d = static_cast<double>(total_blocks);
  }
  return static_cast<int64_t>(d);
}

}  // namespace tcq
