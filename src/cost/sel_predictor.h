#ifndef TCQ_COST_SEL_PREDICTOR_H_
#define TCQ_COST_SEL_PREDICTOR_H_

/// Hybrid stage-0 selectivity prediction (DESIGN.md §12).
///
/// The engine's planner has three independent sources for an operator's
/// selectivity at the start of a stage:
///   - observed: the running within-query revision of Figure 3.3
///     (cum_tuples / cum_points), only available once the node sampled;
///   - prior: the warm-start cache's last-value prior for a canonically
///     equal operator (PR 5), stale whenever the data drifted since;
///   - history: a tagged table keyed by n-grams of the session's query-
///     signature stream plus the node signature, falling back to an
///     untagged EWMA keyed by the node's *structural* signature
///     (operator tree + relations, predicates stripped).
/// A tournament-style chooser tracks each component's absolute
/// misprediction per node with an error EWMA and a saturating confidence
/// counter, picks (or blends) the currently best component, and exposes
/// the winner's confidence as a per-node *inflation width* for
/// ComputeSelPlus: high-confidence predictions inflate less than the
/// paper's flat d_beta, low-confidence ones more. Everything here is
/// default-off; with `enabled == false` no engine code path ever touches
/// a predictor and runs are bit-identical to the historical behaviour.
///
/// Thread safety: a SelPredictor may live in a WarmStartCache shared by
/// a server's concurrent sessions, so every method synchronizes on an
/// internal mutex. The engine only calls it from its serial sections, so
/// single-owner runs stay deterministic at a fixed seed.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/signature.h"
#include "ra/expr.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Knobs of the hybrid selectivity predictor. Defaults are sized for
/// session-lifetime workloads of tens to thousands of queries; the
/// predictor is cheap (a few map lookups per operator per stage).
struct SelPredictorOptions {
  /// Master switch; false leaves every engine path bit-identical to a
  /// build without the predictor.
  bool enabled = false;
  /// Deepest tagged history level: level n keys entries by the hash of
  /// the last n query signatures (current included) + the node
  /// signature. Longest matching level wins (TAGE-style).
  int max_ngram = 2;
  /// Entries per tagged level (hashed, tag-checked; colliding entries
  /// steal slots only once the incumbent's usefulness counter drains).
  int table_size = 512;
  /// Ceiling of the saturating per-component confidence counters; the
  /// reported confidence is counter / confidence_max in [0, 1].
  int confidence_max = 8;
  /// EWMA weight of a new |prediction − realized| sample in the
  /// chooser's per-component error estimate.
  double error_alpha = 0.3;
  /// EWMA weight of a realized selectivity folded into a history entry.
  double history_alpha = 0.5;
  /// Relative error-EWMA gap under which the two best components are
  /// inverse-error blended instead of winner-take-all.
  double blend_margin = 0.25;
  /// A prediction counts as accurate (confidence counter up, else down)
  /// when |prediction − realized| <= max(accuracy_abs,
  /// accuracy_rel · realized).
  double accuracy_abs = 0.02;
  double accuracy_rel = 0.25;
  /// Confidence → inflation-width mapping: width_scale_max at confidence
  /// 0 linearly down to width_scale_min at confidence 1. The width
  /// multiplies d_beta in ComputeSelPlus, so 1.0 reproduces the paper's
  /// flat margin.
  double width_scale_min = 0.25;
  double width_scale_max = 1.25;

  [[nodiscard]] Status Validate() const;
};

/// Which component the chooser picked for one prediction.
enum class SelComponent {
  kDefault = 0,   // the stage-1 default of SelectivityOptions
  kObserved = 1,  // the within-query running revision
  kPrior = 2,     // the warm-start cached prior
  kHistory = 3,   // the tagged n-gram / structural history table
};
std::string_view SelComponentName(SelComponent component);

/// One prediction: the selectivity to plan with, the inflation-width
/// multiplier for ComputeSelPlus, and the chooser's view of itself.
struct SelPrediction {
  double selectivity = 0.0;
  double width_scale = 1.0;
  double confidence = 0.0;  // winner's counter / confidence_max, in [0, 1]
  SelComponent component = SelComponent::kDefault;
  bool history_hit = false;  // any history level (tagged or structural) hit
};

/// Aggregate predictor telemetry (WarmStartCache::Stats export).
struct SelPredictorStats {
  int64_t predictions = 0;
  int64_t updates = 0;
  int64_t history_hits = 0;
  int64_t history_misses = 0;
  int64_t chooser_entries = 0;
  /// EWMA of the chosen component's absolute misprediction.
  double abs_error_ewma = 0.0;
};

/// The node's structural signature: operator kinds and scanned relations
/// only, predicates/columns/join keys stripped. Structurally similar
/// queries (same shape over the same relations, different constants)
/// share this key, so its EWMA tracks data drift that exact-signature
/// priors cannot see until the identical query repeats.
std::string StructuralSignature(const Expr& expr);

/// The hybrid predictor. One instance per session (inside the
/// WarmStartCache) or per query (engine-local when no cache is
/// attached). See the file comment for the component/chooser model.
class SelPredictor {
 public:
  explicit SelPredictor(const SelPredictorOptions& options);

  /// Starts a query: appends its canonical signature to the history
  /// stream the tagged levels hash over. Call once per run, before the
  /// first Predict of that run.
  void BeginQuery(const CacheKey& query_signature);

  /// Predicts one node's stage selectivity from the available
  /// components. `observed`/`prior` are nullopt when that component has
  /// no value for this node; `fallback` is the stage-1 default and is
  /// always available. Records a pending prediction so the next Update
  /// for the same node can score every component.
  SelPrediction Predict(const CacheKey& node_key,
                        const std::string& structural_key,
                        std::optional<double> observed,
                        std::optional<double> prior, double fallback);

  /// Read-only variant for EXPLAIN: predicts as if `query_signature` had
  /// just been Begun, without mutating the stream, the tables, the
  /// chooser, or the stats.
  SelPrediction Peek(const CacheKey& query_signature,
                     const CacheKey& node_key,
                     const std::string& structural_key,
                     std::optional<double> observed,
                     std::optional<double> prior, double fallback) const;

  /// Scores the pending prediction of `node_key` against the realized
  /// stage selectivity, updates the chooser's error EWMAs and confidence
  /// counters, and folds `realized` into the tagged and structural
  /// history tables.
  void Update(const CacheKey& node_key, const std::string& structural_key,
              double realized);

  SelPredictorStats stats() const;

  /// Drops all learned state (stream, tables, chooser, stats).
  void Clear();

  const SelPredictorOptions& options() const { return options_; }

 private:
  struct ComponentState {
    double err = 0.0;  // EWMA of |prediction − realized|
    int64_t seen = 0;  // updates scored (0 = untrained)
    int conf = 0;      // saturating counter in [0, confidence_max]
  };
  struct ChooserEntry {
    ComponentState components[4];  // indexed by SelComponent
  };
  struct TaggedEntry {
    uint64_t tag = 0;
    double value = 0.0;
    int useful = 0;  // replacement counter, saturating
    bool valid = false;
  };
  struct Pending {
    double value[4] = {0.0, 0.0, 0.0, 0.0};
    bool has[4] = {false, false, false, false};
    double chosen = 0.0;
  };

  /// Longest-match history lookup over the tagged levels, then the
  /// structural base table. Context hashes use `stream` (most recent
  /// query last, current query included).
  std::optional<double> LookupHistory(const std::vector<uint64_t>& stream,
                                      const CacheKey& node_key,
                                      const std::string& structural_key)
      const TCQ_REQUIRES(mu_);

  /// The pick/blend decision shared by Predict and Peek.
  SelPrediction Choose(const CacheKey& node_key,
                       std::optional<double> observed,
                       std::optional<double> prior,
                       std::optional<double> history, double fallback,
                       Pending* pending) const TCQ_REQUIRES(mu_);

  uint64_t ContextHash(const std::vector<uint64_t>& stream, int ngram,
                       const CacheKey& node_key) const;

  const SelPredictorOptions options_;

  mutable Mutex mu_;
  /// Hashes of the session's query signatures, oldest first, current
  /// query last; trimmed to max_ngram entries.
  std::vector<uint64_t> stream_ TCQ_GUARDED_BY(mu_);
  /// Tagged levels, [n-1] keyed by n-gram context hashes.
  std::vector<std::vector<TaggedEntry>> tables_ TCQ_GUARDED_BY(mu_);
  /// Untagged base level: structural-signature → selectivity EWMA.
  std::map<std::string, double> structural_ TCQ_GUARDED_BY(mu_);
  /// Per-node tournament chooser, keyed by node signature text.
  std::map<std::string, ChooserEntry> chooser_ TCQ_GUARDED_BY(mu_);
  /// Predictions awaiting their realized value, keyed by node text.
  std::map<std::string, Pending> pending_ TCQ_GUARDED_BY(mu_);
  SelPredictorStats stats_ TCQ_GUARDED_BY(mu_);
};

}  // namespace tcq

#endif  // TCQ_COST_SEL_PREDICTOR_H_
