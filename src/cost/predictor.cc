#include "cost/predictor.h"

#include <algorithm>

namespace tcq {

namespace {

/// Predicted sizes flowing out of a node for the candidate stage.
struct NodePrediction {
  double new_out = 0.0;            // new output tuples this stage
  double cum_out_before = 0.0;     // output tuples from previous stages
  double new_points = 0.0;         // newly covered points
  double cum_points_before = 0.0;  // previously covered points
};

Result<double> SelPlusFor(const std::map<int, double>& sel_plus, int id) {
  auto it = sel_plus.find(id);
  if (it == sel_plus.end()) {
    return Status::InvalidArgument("missing sel+ for operator node " +
                                   std::to_string(id));
  }
  return it->second;
}

Result<NodePrediction> Predict(const StagedNode& node, double f, int stage,
                               Fulfillment fulfillment,
                               const std::map<int, double>& sel_plus,
                               const AdaptiveCostModel& coefs,
                               double* seconds) {
  NodePrediction p;
  switch (node.kind) {
    case ExprKind::kScan: {
      int64_t total = node.rel->NumBlocks();
      int64_t want = BlocksForFraction(f, total);
      int64_t remaining = total - node.cum_blocks;
      int64_t d_new = std::min<int64_t>(want, remaining);
      p.new_out = static_cast<double>(d_new * node.rel->blocking_factor());
      p.cum_out_before = static_cast<double>(node.cum_tuples);
      p.new_points = p.new_out;
      p.cum_points_before = node.cum_points;
      // Fetch cost is priced once per relation by the engine, not per term.
      return p;
    }
    case ExprKind::kSelect: {
      TCQ_ASSIGN_OR_RETURN(
          NodePrediction c,
          Predict(*node.left, f, stage, fulfillment, sel_plus, coefs,
                  seconds));
      TCQ_ASSIGN_OR_RETURN(double sel, SelPlusFor(sel_plus, node.id));
      p.new_points = c.new_points;
      p.cum_points_before = c.cum_points_before;
      p.new_out = sel * c.new_out;
      p.cum_out_before = static_cast<double>(node.cum_tuples);
      *seconds += c.new_out * coefs.Coef(node.id, CostStep::kFilter) +
                  p.new_out * coefs.Coef(node.id, CostStep::kOutput) +
                  coefs.Coef(node.id, CostStep::kSetup);
      return p;
    }
    case ExprKind::kProject: {
      TCQ_ASSIGN_OR_RETURN(
          NodePrediction c,
          Predict(*node.left, f, stage, fulfillment, sel_plus, coefs,
                  seconds));
      TCQ_ASSIGN_OR_RETURN(double sel, SelPlusFor(sel_plus, node.id));
      p.new_points = c.new_points;
      p.cum_points_before = c.cum_points_before;
      double groups_after =
          sel * (c.cum_points_before + c.new_points);
      double groups_before = static_cast<double>(node.cum_tuples);
      p.new_out = std::max(0.0, groups_after - groups_before);
      p.cum_out_before = groups_before;
      double cum_projected = c.cum_out_before;  // previously merged tuples
      *seconds +=
          c.new_out * coefs.Coef(node.id, CostStep::kTempWrite) +
          SortCostUnits(c.new_out) * coefs.Coef(node.id, CostStep::kSort) +
          (cum_projected + c.new_out) *
              coefs.Coef(node.id, CostStep::kMerge) +
          groups_after * coefs.Coef(node.id, CostStep::kOutput) +
          coefs.Coef(node.id, CostStep::kSetup);
      return p;
    }
    case ExprKind::kJoin:
    case ExprKind::kIntersect: {
      TCQ_ASSIGN_OR_RETURN(
          NodePrediction l,
          Predict(*node.left, f, stage, fulfillment, sel_plus, coefs,
                  seconds));
      TCQ_ASSIGN_OR_RETURN(
          NodePrediction r,
          Predict(*node.right, f, stage, fulfillment, sel_plus, coefs,
                  seconds));
      TCQ_ASSIGN_OR_RETURN(double sel, SelPlusFor(sel_plus, node.id));
      const double s = static_cast<double>(stage);
      if (fulfillment == Fulfillment::kFull) {
        p.new_points =
            (l.cum_points_before + l.new_points) *
                (r.cum_points_before + r.new_points) -
            l.cum_points_before * r.cum_points_before;
      } else {
        p.new_points = l.new_points * r.new_points;
      }
      p.cum_points_before = node.cum_points;
      p.new_out = sel * p.new_points;
      p.cum_out_before = static_cast<double>(node.cum_tuples);

      double write_units = l.new_out + r.new_out;
      double sort_units = SortCostUnits(l.new_out) + SortCostUnits(r.new_out);
      double merge_units;
      if (fulfillment == Fulfillment::kFull) {
        // Pairs (s, j<=s) and (i<s, s): inputs read by the merges
        // (eq 4.4's N_{1,s-1} + N_{2,s-1} + s(n_{1s}+n_{2s}) shape).
        merge_units = (s + 1.0) * l.new_out +
                      (r.cum_out_before + r.new_out) + l.cum_out_before +
                      s * r.new_out;
      } else {
        merge_units = l.new_out + r.new_out;
      }
      *seconds += write_units * coefs.Coef(node.id, CostStep::kTempWrite) +
                  sort_units * coefs.Coef(node.id, CostStep::kSort) +
                  merge_units * coefs.Coef(node.id, CostStep::kMerge) +
                  p.new_out * coefs.Coef(node.id, CostStep::kOutput) +
                  coefs.Coef(node.id, CostStep::kSetup);
      return p;
    }
    case ExprKind::kUnion:
    case ExprKind::kDifference:
      return Status::Internal("set op in staged term prediction");
  }
  return Status::Internal("unknown node kind");
}

}  // namespace

Result<TermStagePrediction> PredictTermStageCost(
    const StagedTermEvaluator& term, double f,
    const std::map<int, double>& sel_plus, const AdaptiveCostModel& coefs) {
  return PredictTermStageCost(term, f, sel_plus, coefs, term.fulfillment());
}

Result<TermStagePrediction> PredictTermStageCost(
    const StagedTermEvaluator& term, double f,
    const std::map<int, double>& sel_plus, const AdaptiveCostModel& coefs,
    Fulfillment mode) {
  TermStagePrediction out;
  TCQ_ASSIGN_OR_RETURN(
      NodePrediction root,
      Predict(term.root(), f, term.num_stages(), mode, sel_plus, coefs,
              &out.seconds));
  out.new_points = root.new_points;
  out.new_tuples = root.new_out;
  return out;
}

void ObserveTermStage(const StagedTermEvaluator& term,
                      AdaptiveCostModel* coefs) {
  for (const StagedNode* node : term.NodesPreOrder()) {
    if (node->stages.empty()) continue;
    const NodeStageRecord& rec = node->stages.back();
    switch (node->kind) {
      case ExprKind::kScan:
        break;  // fetches observed by the engine under kGlobalCostNode
      case ExprKind::kSelect:
        coefs->Observe(node->id, CostStep::kFilter,
                       static_cast<double>(rec.process.in_tuples),
                       rec.process.seconds);
        coefs->Observe(node->id, CostStep::kOutput,
                       static_cast<double>(rec.output.out_tuples),
                       rec.output.seconds);
        break;
      case ExprKind::kProject:
      case ExprKind::kJoin:
      case ExprKind::kIntersect:
        coefs->Observe(node->id, CostStep::kTempWrite,
                       static_cast<double>(rec.write.out_tuples),
                       rec.write.seconds);
        coefs->Observe(node->id, CostStep::kSort, rec.sort_units,
                       rec.sort.seconds);
        coefs->Observe(node->id, CostStep::kMerge,
                       static_cast<double>(rec.process.in_tuples),
                       rec.process.seconds);
        coefs->Observe(node->id, CostStep::kOutput,
                       static_cast<double>(rec.output.out_tuples),
                       rec.output.seconds);
        break;
      case ExprKind::kUnion:
      case ExprKind::kDifference:
        break;
    }
  }
}

}  // namespace tcq
