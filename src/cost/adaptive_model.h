#ifndef TCQ_COST_ADAPTIVE_MODEL_H_
#define TCQ_COST_ADAPTIVE_MODEL_H_

#include <map>
#include <string>
#include <utility>

#include "sim/cost_model.h"

namespace tcq {

/// The time-consuming steps of the operator-evaluation algorithms (paper
/// §4: "we identify the time-consuming steps of an RA operation and derive
/// a cost formula for each such step"). Each (operator, step) pair carries
/// its own fitted coefficient: seconds per basis unit.
enum class CostStep {
  kFetch = 0,   // random block reads; basis = blocks
  kFilter,      // selection-formula evaluation; basis = input tuples
  kTempWrite,   // writing runs to temp files; basis = tuples written
  kSort,        // sorting runs; basis = n·log2(n+2)
  kMerge,       // merge/dedup scans; basis = tuples read by the merges
  kOutput,      // result writing; basis = output tuples
  kSetup,       // per-operator constant; basis = 1 per stage
  kNumSteps,    // sentinel
};

std::string_view CostStepName(CostStep step);

/// True for steps whose work the engine fans out across pool workers
/// (block fetches per relation; filter/write/sort/merge/output per term,
/// merge pair, or partition). Per-stage setup work stays serial.
bool StepParallelizable(CostStep step);

/// Node id used for coefficients not tied to one operator (block fetches,
/// per-stage overhead), maintained by the engine.
inline constexpr int kGlobalCostNode = -1;

/// Per-(operator, step) cost coefficients with run-time re-fitting.
///
/// The paper's *adaptive time-cost formulas*: coefficients start from
/// deliberately generic values (the authors initialized from experiments
/// with the largest tuple size and two-comparison formulas) and are
/// adjusted after every stage from the realized (units, seconds) of each
/// step, so the formulas converge to the specific query's behaviour. With
/// `adaptive = false` the initial values are used throughout (the
/// fixed-form alternative the paper argues against; kept for ablation).
class AdaptiveCostModel {
 public:
  struct Options {
    bool adaptive = true;
    /// EWMA weight of the newest observation when re-fitting.
    double ewma = 0.5;
    /// Multiplier applied to the physically derived initial values,
    /// modelling the paper's deliberately pessimistic initialization.
    double initial_scale = 1.5;
    /// Assumed tuples-per-page for the initial write coefficients (the
    /// paper initialized for its largest tuples; 2/page keeps the
    /// pessimism while still letting a 2.5 s quota fund a first stage).
    double assumed_blocking_factor = 2.0;
    /// Assumed comparisons per tuple in selection formulas.
    double assumed_comparisons = 2.0;
    /// Divisor applied to the initial filter/sort/merge coefficients for
    /// a faster evaluation path (the engine sets it to the physical
    /// model's `columnar_eval_speedup` when planning a wall-clock
    /// columnar run; 1 = the classic row path). Only the *initial*
    /// values are scaled — fitted observations already measure the real
    /// path.
    double eval_speedup = 1.0;
  };

  /// Portable image of the fitted state: the per-(node, step) coefficient
  /// map and the parallel-efficiency coefficient η. Used by the warm-start
  /// cache to carry a converged model across queries of one session — the
  /// node ids only stay meaningful for a structurally identical query, so
  /// snapshots are keyed by the whole-query canonical signature.
  struct Snapshot {
    std::map<std::pair<int, int>, double> coefs;
    double efficiency = 0.0;

    bool empty() const { return coefs.empty(); }
  };

  explicit AdaptiveCostModel(const CostModel& physical, Options options);
  explicit AdaptiveCostModel(const CostModel& physical)
      : AdaptiveCostModel(physical, Options()) {}

  /// The current fitted state (initial values are not materialized: a
  /// fresh model exports an empty snapshot).
  Snapshot ExportSnapshot() const;

  /// Replaces the fitted state with `snapshot`, as if this model had made
  /// the donor's observations itself. No-op for a non-adaptive model (the
  /// fixed-form ablation must keep its initial coefficients).
  void RestoreSnapshot(const Snapshot& snapshot);

  /// Current coefficient (seconds per basis unit) for a node's step.
  ///
  /// Parallelism-aware: while a (node, step) pair is still unobserved, the
  /// physically derived initial value — which describes *serial* work — is
  /// divided by the current parallel speedup for parallelizable steps, so
  /// that Sample-Size-Determine plans stage fractions sized for what W
  /// workers can actually evaluate instead of under-filling the quota.
  /// Once observations arrive they are used as-is: in wall-clock mode the
  /// measured step times are spans of the parallel execution, so fitted
  /// coefficients absorb the realized parallelism automatically.
  double Coef(int node_id, CostStep step) const;

  /// Feeds one realized (units, seconds) observation; no-op when units are
  /// non-positive or the model is not adaptive.
  void Observe(int node_id, CostStep step, double units, double seconds);

  /// Feeds one stage's realized parallel work (Σ task seconds) and span
  /// (elapsed seconds of the parallel section): re-fits the efficiency
  /// coefficient η of the speedup model S(W) = 1 + η·(W−1) by EWMA from
  /// the observed speedup work/span. No-op with W ≤ 1 or degenerate
  /// inputs.
  void ObserveParallelism(double work_seconds, double span_seconds);

  /// Predicted speedup of `step` under the current (W, η); 1 for serial
  /// steps and for W = 1.
  double ParallelSpeedup(CostStep step) const;

  bool adaptive() const { return options_.adaptive; }
  int workers() const { return physical_.workers; }
  double efficiency() const { return efficiency_; }

 private:
  double Initial(CostStep step) const;

  Options options_;
  CostModel physical_;
  double efficiency_;
  std::map<std::pair<int, int>, double> coefs_;
};

/// The shared sort-cost basis n·log2(n+2).
double SortCostUnits(double n);

/// Number of blocks a sample fraction maps to: round(f·D), clamped to
/// [0, D]. Both the sampler and the predictor use this rounding so
/// predictions match draws exactly.
int64_t BlocksForFraction(double fraction, int64_t total_blocks);

}  // namespace tcq

#endif  // TCQ_COST_ADAPTIVE_MODEL_H_
