#ifndef TCQ_FAULT_FAULT_H_
#define TCQ_FAULT_FAULT_H_

/// Deterministic fault injection at the storage boundary (DESIGN.md §10).
///
/// The `FaultInjector` decides, for every block-read *attempt* the engine
/// makes, whether that attempt succeeds, fails transiently (retryable),
/// hits a permanently unreadable block (checksum mismatch — the block is
/// lost), or straggles (succeeds with inflated latency). Decisions are a
/// pure function of (fault_seed, relation, block index, attempt number),
/// derived through `SubstreamSeed`, so:
///
///  - the same fault seed reproduces the same fault sequence on any
///    thread count, in any draw order, across runs;
///  - whether a block is *permanently* lost depends only on
///    (fault_seed, relation, block) — every attempt against it fails,
///    which is what a corrupt page on disk looks like;
///  - faults are content-agnostic (decided before any tuple is seen), so
///    dropping lost blocks leaves a uniform without-replacement sample of
///    the surviving frame and the cluster estimator stays unbiased; the
///    engine widens the reported variance by (1 + lost/read) to price the
///    shrunken sample (DESIGN.md §10).
///
/// The injector itself never touches a clock or a ledger: the engine
/// charges retries/backoff/straggler latency to its `CostLedger` so the
/// time-control loop replans around fault overhead like any other cost.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tcq {

/// Fault-injection configuration (ExecutorOptions::faults / WithFaults).
/// Disabled by default; with `enabled == false` the engine's execution
/// path is bit-identical to a build without fault support.
struct FaultOptions {
  /// Master switch. When false every other field is ignored.
  bool enabled = false;

  /// Probability that a single read attempt fails transiently (retryable).
  double transient_rate = 0.0;
  /// Probability that a block is permanently unreadable (sticky per
  /// block: every attempt fails with a checksum mismatch).
  double permanent_rate = 0.0;
  /// Probability that a successful read straggles.
  double straggler_rate = 0.0;
  /// Latency multiplier for a straggling read (>= 1). The extra
  /// (straggler_factor - 1) x block_read_s is charged to the clock.
  double straggler_factor = 8.0;

  /// Retry budget per block: a read is attempted at most 1 + max_retries
  /// times before the block is declared lost.
  int max_retries = 3;
  /// Exponential backoff charged before retry k (0-based):
  /// backoff_base_s * backoff_multiplier^k simulated seconds.
  double backoff_base_s = 0.010;
  double backoff_multiplier = 2.0;

  /// Seed of the fault substream. Independent of the query seed so the
  /// same fault storm can be replayed against different sample draws.
  uint64_t fault_seed = 1;

  [[nodiscard]] Status Validate() const;

  /// Expected simulated seconds of fault overhead per fresh block read
  /// (retry re-reads, backoff, straggler inflation), given the base
  /// per-block read cost. Zero when disabled. The stage planner inflates
  /// its fetch-cost coefficient by this so planned fractions already
  /// price the fault overhead instead of discovering it mid-stage.
  double ExpectedOverheadSeconds(double block_read_s) const;
};

/// Outcome of probing one read attempt.
enum class FaultClass {
  kNone = 0,    // read succeeds at nominal cost
  kTransient,   // attempt fails; retry may succeed
  kPermanent,   // block unreadable forever (checksum mismatch)
  kStraggler,   // read succeeds at straggler_factor x nominal cost
};

std::string_view FaultClassName(FaultClass fault);

/// Per-relation fault tally (drives the serving-layer circuit breaker).
struct RelationFaultCounts {
  std::string relation;
  int64_t read_attempts = 0;   // every attempt, including retries
  int64_t transient_faults = 0;
  int64_t blocks_lost = 0;
  int64_t stragglers = 0;
};

/// Aggregate fault report attached to a degraded QueryResult.
struct FaultReport {
  int64_t transient_faults = 0;  // read attempts that failed transiently
  int64_t retries = 0;           // re-read attempts performed
  int64_t blocks_lost = 0;       // blocks excluded from the sampling frame
  int64_t stragglers = 0;        // reads with inflated latency
  double fault_delay_s = 0.0;    // backoff + straggler + re-read seconds
  double variance_widening = 1.0;  // factor applied to reported variance
  std::vector<RelationFaultCounts> per_relation;

  bool any() const {
    return transient_faults > 0 || blocks_lost > 0 || stragglers > 0;
  }
};

/// Deterministic fault oracle; cheap to copy, safe to share across
/// threads (stateless after construction — `Probe` is const and pure).
class FaultInjector {
 public:
  /// `options` must already be validated.
  explicit FaultInjector(const FaultOptions& options);

  bool enabled() const { return options_.enabled; }
  const FaultOptions& options() const { return options_; }

  /// Fault class of attempt number `attempt` (0-based; 0 is the initial
  /// read, k > 0 the k-th retry) against block `block` of `relation`.
  /// Pure: depends only on (fault_seed, relation, block, attempt).
  FaultClass Probe(std::string_view relation, int64_t block,
                   int attempt) const;

  /// True iff the block is permanently unreadable (sticky across
  /// attempts). `Probe` already folds this in; exposed for tests.
  bool IsPermanentlyLost(std::string_view relation, int64_t block) const;

 private:
  FaultOptions options_;
};

/// Outcome of reading one drawn block through the injector, with every
/// cost the engine must charge. Pure accounting — no clock is touched.
struct BlockReadOutcome {
  bool lost = false;       // excluded from the sampling frame
  FaultClass final_fault = FaultClass::kNone;  // classification of the end
  int read_attempts = 1;   // total attempts (1 = clean first read)
  int transient_faults = 0;
  bool straggler = false;
  /// Simulated seconds beyond the first nominal read: re-reads are
  /// charged separately as block reads; this is backoff + straggler
  /// inflation only, pre-noise (the ledger applies stage noise).
  double backoff_s = 0.0;
  double straggler_extra_s = 0.0;  // (straggler_factor - 1) * block_read_s
};

/// Resolves the full retry loop for one block read: probes attempt 0,
/// retries transient faults up to options().max_retries with exponential
/// backoff, and reports the block lost on a permanent fault or an
/// exhausted retry budget. `block_read_s` prices straggler inflation.
BlockReadOutcome ReadBlockWithFaults(const FaultInjector& injector,
                                     std::string_view relation,
                                     int64_t block, double block_read_s);

}  // namespace tcq

#endif  // TCQ_FAULT_FAULT_H_
