#include "fault/fault.h"

#include <cmath>
#include <string>

#include "util/check.h"
#include "util/random.h"

namespace tcq {
namespace {

/// Tag separating the per-attempt substream from the per-block one.
constexpr std::string_view kAttemptTag = "fault-attempt";

bool RateOk(double rate) {
  return std::isfinite(rate) && rate >= 0.0 && rate <= 1.0;
}

uint64_t BlockSeed(const FaultOptions& options, std::string_view relation,
                   int64_t block) {
  return SubstreamSeed(options.fault_seed, relation,
                       static_cast<uint64_t>(block));
}

}  // namespace

std::string_view FaultClassName(FaultClass fault) {
  switch (fault) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kTransient:
      return "transient";
    case FaultClass::kPermanent:
      return "permanent";
    case FaultClass::kStraggler:
      return "straggler";
  }
  return "unknown";
}

Status FaultOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (!RateOk(transient_rate) || transient_rate >= 1.0) {
    return Status::InvalidArgument(
        "faults.transient_rate must be finite and in [0, 1)");
  }
  if (!RateOk(permanent_rate)) {
    return Status::InvalidArgument(
        "faults.permanent_rate must be finite and in [0, 1]");
  }
  if (!RateOk(straggler_rate)) {
    return Status::InvalidArgument(
        "faults.straggler_rate must be finite and in [0, 1]");
  }
  if (!std::isfinite(straggler_factor) || straggler_factor < 1.0) {
    return Status::InvalidArgument(
        "faults.straggler_factor must be finite and >= 1");
  }
  if (max_retries < 0 || max_retries > 32) {
    return Status::InvalidArgument("faults.max_retries must be in [0, 32]");
  }
  if (!std::isfinite(backoff_base_s) || backoff_base_s < 0.0) {
    return Status::InvalidArgument(
        "faults.backoff_base_s must be finite and >= 0");
  }
  if (!std::isfinite(backoff_multiplier) || backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "faults.backoff_multiplier must be finite and >= 1");
  }
  return Status::OK();
}

double FaultOptions::ExpectedOverheadSeconds(double block_read_s) const {
  if (!enabled) return 0.0;
  // Truncated-geometric retry pricing, matching ReadBlockWithFaults
  // exactly: retry k (1-based, k <= max_retries) happens iff the first k
  // attempts all failed transiently — probability p^k — and costs one
  // re-read plus the backoff charged before it,
  // backoff_base_s * backoff_multiplier^(k-1). The sum truncates where
  // the executor gives up and declares the block lost, and straggler
  // inflation rides on the straggler_rate fraction of reads.
  const double p = transient_rate;
  double overhead = 0.0;
  double p_pow_k = 1.0;
  double backoff = backoff_base_s;
  for (int k = 1; k <= max_retries; ++k) {
    p_pow_k *= p;
    overhead += p_pow_k * (block_read_s + backoff);
    backoff *= backoff_multiplier;
  }
  return overhead +
         straggler_rate * (straggler_factor - 1.0) * block_read_s;
}

FaultInjector::FaultInjector(const FaultOptions& options)
    : options_(options) {
  TCQ_DCHECK(options.Validate().ok(),
             "FaultInjector built from unvalidated options");
}

bool FaultInjector::IsPermanentlyLost(std::string_view relation,
                                      int64_t block) const {
  if (!options_.enabled || options_.permanent_rate <= 0.0) return false;
  Rng rng(BlockSeed(options_, relation, block));
  return rng.UniformDouble() < options_.permanent_rate;
}

FaultClass FaultInjector::Probe(std::string_view relation, int64_t block,
                                int attempt) const {
  if (!options_.enabled) return FaultClass::kNone;
  if (IsPermanentlyLost(relation, block)) return FaultClass::kPermanent;
  Rng rng(SubstreamSeed(BlockSeed(options_, relation, block), kAttemptTag,
                        static_cast<uint64_t>(attempt)));
  if (rng.UniformDouble() < options_.transient_rate) {
    return FaultClass::kTransient;
  }
  if (rng.UniformDouble() < options_.straggler_rate) {
    return FaultClass::kStraggler;
  }
  return FaultClass::kNone;
}

BlockReadOutcome ReadBlockWithFaults(const FaultInjector& injector,
                                     std::string_view relation,
                                     int64_t block, double block_read_s) {
  BlockReadOutcome out;
  if (!injector.enabled()) return out;
  const FaultOptions& options = injector.options();
  double backoff = options.backoff_base_s;
  for (int attempt = 0;; ++attempt) {
    out.read_attempts = attempt + 1;
    const FaultClass fault = injector.Probe(relation, block, attempt);
    out.final_fault = fault;
    if (fault == FaultClass::kPermanent) {
      out.lost = true;
      return out;
    }
    if (fault != FaultClass::kTransient) {
      out.straggler = fault == FaultClass::kStraggler;
      if (out.straggler) {
        out.straggler_extra_s =
            (options.straggler_factor - 1.0) * block_read_s;
      }
      return out;
    }
    ++out.transient_faults;
    if (attempt >= options.max_retries) {
      out.lost = true;
      return out;
    }
    out.backoff_s += backoff;
    backoff *= options.backoff_multiplier;
  }
}

}  // namespace tcq
