#include "sampling/block_sampler.h"

#include <algorithm>

#include "util/check.h"

namespace tcq {

BlockSampler::BlockSampler(RelationPtr rel, RelationSamplePool* pool)
    : rel_(std::move(rel)), pool_(pool) {
  if (pool_ != nullptr) {
    TCQ_CHECK_INVARIANT(pool_->total_blocks() == rel_->NumBlocks(),
                        "sample pool sized for a different relation");
    // One consistent snapshot of the pooled prefix; blocks a concurrent
    // query appends later are neither replayed nor excluded from our
    // fresh-draw universe (TryAppend resolves the overlap).
    replay_order_ = pool_->SnapshotOrder();
  }
  std::vector<char> pooled(static_cast<size_t>(rel_->NumBlocks()), 0);
  for (uint32_t b : replay_order_) pooled[static_cast<size_t>(b)] = 1;
  remaining_.reserve(static_cast<size_t>(rel_->NumBlocks()));
  for (int64_t i = 0; i < rel_->NumBlocks(); ++i) {
    uint32_t b = static_cast<uint32_t>(i);
    if (pooled[static_cast<size_t>(b)] != 0) continue;
    remaining_.push_back(b);
  }
}

std::vector<const Block*> BlockSampler::Draw(int64_t count, Rng* rng) {
  return DrawInternal(count, rng, 0);
}

std::vector<const Block*> BlockSampler::DrawInternal(int64_t count, Rng* rng,
                                                     uint64_t substream) {
  TCQ_DCHECK(rng != nullptr, "Draw needs a generator");
  TCQ_DCHECK(count >= 0, "negative block count requested");
  int64_t k = std::min<int64_t>(count, remaining_blocks());
  std::vector<const Block*> out;
  out.reserve(static_cast<size_t>(k));
  last_draw_indices_.clear();
  last_draw_indices_.reserve(static_cast<size_t>(k));

  // Replay first: the snapshotted pooled prefix in original draw order,
  // consuming no randomness — the fresh-draw RNG stream is untouched by
  // replays.
  int64_t replay_n = std::min<int64_t>(k, pooled_remaining());
  for (int64_t i = 0; i < replay_n; ++i) {
    uint32_t block = replay_order_[static_cast<size_t>(replay_pos_++)];
    last_draw_indices_.push_back(block);
    out.push_back(rel_->ViewBlock(block).raw());
  }
  if (replay_n > 0) pool_->NoteReplayed(replay_n);
  last_draw_replayed_ = replay_n;

  for (int64_t i = replay_n; i < k; ++i) {
    size_t j = remaining_.size() - 1 -
               static_cast<size_t>(rng->Uniform(remaining_.size()));
    std::swap(remaining_[j], remaining_.back());
    uint32_t block = remaining_.back();
    last_draw_indices_.push_back(block);
    out.push_back(rel_->ViewBlock(block).raw());
    remaining_.pop_back();
    if (pool_ != nullptr) {
      // Replays never reach past the snapshot, so our own appends cannot
      // be replayed back to this query; a false return means a
      // concurrent query pooled the block first and we keep the draw.
      (void)pool_->TryAppend(block, substream);
    }
  }
  // Sampling without replacement: the pool only shrinks, and exactly
  // by the number of blocks handed out.
  TCQ_CHECK_INVARIANT(static_cast<int64_t>(out.size()) == k,
                      "drawn block count disagrees with request");
  if (blocks_counter_ != nullptr && k > 0) blocks_counter_->Add(k);
  return out;
}

std::vector<const Block*> BlockSampler::DrawSubstream(int64_t count,
                                                      uint64_t seed,
                                                      uint64_t stage) {
  uint64_t sub = SubstreamSeed(seed, rel_->name(), stage);
  Rng rng(sub);
  return DrawInternal(count, &rng, sub);
}

Result<std::vector<DrawnBlock>> BlockSampler::DrawSubstreamChecked(
    int64_t count, uint64_t seed, uint64_t stage) {
  std::vector<const Block*> drawn = DrawSubstream(count, seed, stage);
  std::vector<DrawnBlock> out;
  out.reserve(drawn.size());
  for (size_t i = 0; i < drawn.size(); ++i) {
    uint32_t index = last_draw_indices_[i];
    TCQ_ASSIGN_OR_RETURN(BlockView view,
                         rel_->ReadBlock(static_cast<int64_t>(index)));
    TCQ_CHECK_INVARIANT(view.raw() == drawn[i],
                        "checked read disagrees with the drawn block");
    out.push_back(DrawnBlock{index, view.raw()});
  }
  return out;
}

}  // namespace tcq
