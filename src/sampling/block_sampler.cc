#include "sampling/block_sampler.h"

#include <algorithm>

#include "util/check.h"

namespace tcq {

BlockSampler::BlockSampler(RelationPtr rel) : rel_(std::move(rel)) {
  remaining_.reserve(static_cast<size_t>(rel_->NumBlocks()));
  for (int64_t i = 0; i < rel_->NumBlocks(); ++i) {
    remaining_.push_back(static_cast<uint32_t>(i));
  }
}

std::vector<const Block*> BlockSampler::Draw(int64_t count, Rng* rng) {
  TCQ_DCHECK(rng != nullptr, "Draw needs a generator");
  TCQ_DCHECK(count >= 0, "negative block count requested");
  int64_t k = std::min<int64_t>(count, remaining_blocks());
  std::vector<const Block*> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    size_t j = remaining_.size() - 1 -
               static_cast<size_t>(rng->Uniform(remaining_.size()));
    std::swap(remaining_[j], remaining_.back());
    out.push_back(&rel_->block(remaining_.back()));
    remaining_.pop_back();
  }
  // Sampling without replacement: the pool only shrinks, and exactly
  // by the number of blocks handed out.
  TCQ_CHECK_INVARIANT(static_cast<int64_t>(out.size()) == k,
                      "drawn block count disagrees with request");
  if (blocks_counter_ != nullptr && k > 0) blocks_counter_->Add(k);
  return out;
}

std::vector<const Block*> BlockSampler::DrawSubstream(int64_t count,
                                                      uint64_t seed,
                                                      uint64_t stage) {
  Rng rng = Rng::Substream(seed, rel_->name(), stage);
  return Draw(count, &rng);
}

}  // namespace tcq
