#ifndef TCQ_SAMPLING_BLOCK_SAMPLER_H_
#define TCQ_SAMPLING_BLOCK_SAMPLER_H_

#include <vector>

#include "obs/metrics.h"
#include "storage/relation.h"
#include "util/random.h"

namespace tcq {

/// Without-replacement stream of disk blocks from one relation — the
/// cluster-sampling primitive of the paper (§2): a disk block is the
/// sample unit, and blocks already drawn in earlier stages are never
/// drawn again. One sampler per relation is shared by all query terms
/// that scan it.
class BlockSampler {
 public:
  explicit BlockSampler(RelationPtr rel);

  const RelationPtr& relation() const { return rel_; }
  int64_t total_blocks() const { return rel_->NumBlocks(); }
  int64_t remaining_blocks() const {
    return static_cast<int64_t>(remaining_.size());
  }
  int64_t drawn_blocks() const {
    return total_blocks() - remaining_blocks();
  }

  /// Publishes draw activity to `metrics` (may be null to detach): every
  /// drawn block increments the `sampling.blocks_drawn` counter. The
  /// counter is atomic and the increments commute, so draws may happen
  /// from parallel tasks without affecting the exported total.
  void SetMetrics(Metrics* metrics) {
    blocks_counter_ =
        metrics != nullptr ? metrics->counter("sampling.blocks_drawn")
                           : nullptr;
  }

  /// Draws up to `count` random blocks without replacement (fewer when
  /// the relation is nearly exhausted). Pointers stay valid for the
  /// relation's lifetime.
  std::vector<const Block*> Draw(int64_t count, Rng* rng);

  /// Draw from the deterministic per-relation substream for stage `stage`
  /// of a run seeded with `seed`: the randomness comes from
  /// Rng::Substream(seed, relation name, stage), so the blocks a stage
  /// draws depend only on (seed, relation, stage, draws so far) — never on
  /// other relations or on which thread performs the draw. This is the
  /// engine's sampling primitive in both the serial and parallel paths.
  std::vector<const Block*> DrawSubstream(int64_t count, uint64_t seed,
                                          uint64_t stage);

 private:
  RelationPtr rel_;
  std::vector<uint32_t> remaining_;
  Counter* blocks_counter_ = nullptr;
};

}  // namespace tcq

#endif  // TCQ_SAMPLING_BLOCK_SAMPLER_H_
