#ifndef TCQ_SAMPLING_BLOCK_SAMPLER_H_
#define TCQ_SAMPLING_BLOCK_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "cache/sample_pool.h"
#include "obs/metrics.h"
#include "storage/relation.h"
#include "util/random.h"
#include "util/result.h"

namespace tcq {

/// One sampled block together with its index in the relation — the
/// identity the fault injector keys on (faults are per physical block,
/// not per draw).
struct DrawnBlock {
  uint32_t index = 0;
  const Block* block = nullptr;
};

/// Without-replacement stream of disk blocks from one relation — the
/// cluster-sampling primitive of the paper (§2): a disk block is the
/// sample unit, and blocks already drawn in earlier stages are never
/// drawn again. One sampler per relation is shared by all query terms
/// that scan it.
///
/// With a `RelationSamplePool` attached the sampler becomes warm-start
/// aware: draws first *replay* the pooled prefix (blocks retained by
/// earlier queries of the session, in their original draw order —
/// consuming no randomness), then fall back to fresh uniform draws over
/// the blocks not yet pooled, which are appended to the pool for the
/// next query. Replay of a uniform without-replacement prefix followed
/// by uniform draws over its complement is distributionally identical to
/// a cold without-replacement sample, so estimators stay unbiased (see
/// cache/sample_pool.h). With no pool — or an empty one — behaviour is
/// bit-identical to the historical sampler: same blocks, same RNG
/// consumption.
///
/// Concurrency: the sampler copies the pooled prefix ONCE, at
/// construction, and replays from that private snapshot — it never holds
/// references into the live pool, whose vectors may grow concurrently
/// when several queries of a tcq::Server share it. Fresh draws are
/// offered to the pool with TryAppend; a block another query appended
/// first simply is not pooled again (this query still samples it). The
/// sampler object itself is per-query state and is not shared across
/// threads other than through the engine's disjoint-slot draw tasks.
class BlockSampler {
 public:
  explicit BlockSampler(RelationPtr rel) : BlockSampler(std::move(rel), nullptr) {}
  BlockSampler(RelationPtr rel, RelationSamplePool* pool);

  const RelationPtr& relation() const { return rel_; }
  int64_t total_blocks() const { return rel_->NumBlocks(); }
  /// Blocks this query has not yet drawn: the unreplayed pooled prefix
  /// plus the blocks no query of the session has touched.
  int64_t remaining_blocks() const {
    return pooled_remaining() + static_cast<int64_t>(remaining_.size());
  }
  int64_t drawn_blocks() const {
    return total_blocks() - remaining_blocks();
  }

  /// Pooled blocks this query has not replayed yet (from the prefix
  /// snapshot taken at construction); the next `pooled_remaining()` drawn
  /// blocks are replays, everything after is a fresh draw. Zero with no
  /// pool attached.
  int64_t pooled_remaining() const {
    return static_cast<int64_t>(replay_order_.size()) - replay_pos_;
  }

  /// How many blocks of the most recent Draw/DrawSubstream call were
  /// served by replaying the pool (the rest were fresh draws).
  int64_t last_draw_replayed() const { return last_draw_replayed_; }

  /// Publishes draw activity to `metrics` (may be null to detach): every
  /// drawn block increments the `sampling.blocks_drawn` counter. The
  /// counter is atomic and the increments commute, so draws may happen
  /// from parallel tasks without affecting the exported total.
  void SetMetrics(Metrics* metrics) {
    blocks_counter_ =
        metrics != nullptr ? metrics->counter("sampling.blocks_drawn")
                           : nullptr;
  }

  /// Draws up to `count` random blocks without replacement (fewer when
  /// the relation is nearly exhausted). Pointers stay valid for the
  /// relation's lifetime.
  std::vector<const Block*> Draw(int64_t count, Rng* rng);

  /// Draw from the deterministic per-relation substream for stage `stage`
  /// of a run seeded with `seed`: the randomness comes from
  /// Rng::Substream(seed, relation name, stage), so the blocks a stage
  /// draws depend only on (seed, relation, stage, draws so far) — never on
  /// other relations or on which thread performs the draw. This is the
  /// engine's sampling primitive in both the serial and parallel paths.
  std::vector<const Block*> DrawSubstream(int64_t count, uint64_t seed,
                                          uint64_t stage);

  /// Fallible variant of DrawSubstream for the fault-tolerant path: the
  /// draw itself is identical (same RNG consumption, same blocks in the
  /// same order), but every drawn block is fetched through the checked
  /// `Relation::ReadBlock` storage API and returned with its block index
  /// so the engine can probe the FaultInjector per physical block. The
  /// Status must be consulted (`status-discarded-in-storage` lint rule).
  [[nodiscard]] Result<std::vector<DrawnBlock>> DrawSubstreamChecked(
      int64_t count, uint64_t seed, uint64_t stage);

  /// Indices (into the relation) of the blocks returned by the most
  /// recent Draw/DrawSubstream call, in draw order.
  const std::vector<uint32_t>& last_draw_indices() const {
    return last_draw_indices_;
  }

 private:
  std::vector<const Block*> DrawInternal(int64_t count, Rng* rng,
                                         uint64_t substream);

  RelationPtr rel_;
  RelationSamplePool* pool_ = nullptr;  // not owned; may be null
  std::vector<uint32_t> replay_order_;  // pooled prefix snapshot to replay
  std::vector<uint32_t> remaining_;     // blocks not pooled at snapshot time
  int64_t replay_pos_ = 0;              // snapshot entries already replayed
  int64_t last_draw_replayed_ = 0;
  std::vector<uint32_t> last_draw_indices_;
  Counter* blocks_counter_ = nullptr;
};

}  // namespace tcq

#endif  // TCQ_SAMPLING_BLOCK_SAMPLER_H_
