#ifndef TCQ_WORKLOAD_GENERATORS_H_
#define TCQ_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "ra/expr.h"
#include "storage/relation.h"
#include "util/result.h"

namespace tcq {

/// The paper's experimental geometry (§5): 10,000 tuples of 200 bytes in
/// 1 KiB blocks — 5 tuples per block, 2,000 blocks per relation.
inline constexpr int64_t kPaperTuples = 10000;
inline constexpr int kPaperTupleBytes = 200;

/// Schema of the synthetic relations: (id int64, key int64, payload
/// char[tuple_bytes-16]). Tuples are duplicate-free (ids are unique).
Schema SyntheticSchema(int tuple_bytes = kPaperTupleBytes);

/// A generated single-relation or two-relation workload: the catalog, the
/// COUNT query, and the exact answer.
struct Workload {
  Catalog catalog;
  ExprPtr query;
  int64_t exact_count = 0;
};

/// §5.A — Selection: one relation of `num_tuples`; the query is
/// COUNT(σ_{key < output_tuples}(r1)) with exactly `output_tuples`
/// qualifying tuples. With `clustering` = 0 the qualifying tuples are
/// randomly scattered over the blocks (keys are a random permutation of
/// 0..num_tuples-1, the paper's setup). With clustering c ∈ (0, 1], a
/// c-fraction of the qualifying tuples is packed into one contiguous run
/// of blocks — block-correlated data under which the realized cluster-
/// sample variance exceeds the SRS approximation of §3.3, the regime the
/// paper credits for its unusually large d_β values.
[[nodiscard]] Result<Workload> MakeSelectionWorkload(int64_t output_tuples, uint64_t seed,
                                       int64_t num_tuples = kPaperTuples,
                                       int tuple_bytes = kPaperTupleBytes,
                                       double clustering = 0.0);

/// §5.B — Intersection: two relations of `num_tuples` sharing exactly
/// `output_tuples` identical tuples (the paper reports 1,000 / 5,000 /
/// 10,000-output variants); the query is COUNT(r1 ∩ r2). Both relations
/// are independently shuffled.
[[nodiscard]] Result<Workload> MakeIntersectionWorkload(int64_t output_tuples,
                                          uint64_t seed,
                                          int64_t num_tuples = kPaperTuples,
                                          int tuple_bytes = kPaperTupleBytes);

/// §5.C — Join: two relations of `num_tuples`; the right relation has
/// `right_per_key` tuples for each of num_tuples/right_per_key key
/// values; output_tuples/right_per_key left tuples carry matching keys,
/// so COUNT(r1 ⋈ r2) = output_tuples exactly (the paper's 70,000-output,
/// 7·10⁻⁴-selectivity setup with one join attribute).
[[nodiscard]] Result<Workload> MakeJoinWorkload(int64_t output_tuples, uint64_t seed,
                                  int64_t num_tuples = kPaperTuples,
                                  int tuple_bytes = kPaperTupleBytes,
                                  int64_t right_per_key = 10);

/// A single uniform relation for free-form tests: keys uniform in
/// [0, key_domain), unique ids.
RelationPtr MakeUniformRelation(const std::string& name, int64_t num_tuples,
                                int64_t key_domain, uint64_t seed,
                                int tuple_bytes = kPaperTupleBytes,
                                int block_bytes = kDefaultBlockBytes);

}  // namespace tcq

#endif  // TCQ_WORKLOAD_GENERATORS_H_
