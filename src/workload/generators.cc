#include "workload/generators.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace tcq {

namespace {

/// Fixed filler so the payload column is identical across relations (tuple
/// equality for intersection is decided by id and key).
std::string Payload() { return "x"; }

Result<RelationPtr> BuildRelation(const std::string& name,
                                  const Schema& schema,
                                  std::vector<Tuple> rows, Rng* rng,
                                  int block_bytes) {
  rng->Shuffle(rows);
  TCQ_ASSIGN_OR_RETURN(Relation rel,
                       Relation::Create(name, schema, block_bytes));
  for (Tuple& row : rows) rel.AppendUnchecked(std::move(row));
  return RelationPtr(std::make_shared<Relation>(std::move(rel)));
}

}  // namespace

Schema SyntheticSchema(int tuple_bytes) {
  int payload_width = tuple_bytes - 16;
  if (payload_width < 1) payload_width = 1;
  return Schema({{"id", DataType::kInt64, 0},
                 {"key", DataType::kInt64, 0},
                 {"payload", DataType::kString, payload_width}});
}

Result<Workload> MakeSelectionWorkload(int64_t output_tuples, uint64_t seed,
                                       int64_t num_tuples, int tuple_bytes,
                                       double clustering) {
  if (output_tuples < 0 || output_tuples > num_tuples) {
    return Status::InvalidArgument("output_tuples out of range");
  }
  if (clustering < 0.0 || clustering > 1.0) {
    return Status::InvalidArgument("clustering must be in [0, 1]");
  }
  Rng rng(seed);
  Schema schema = SyntheticSchema(tuple_bytes);
  // Keys are a permutation of 0..num_tuples-1, so `key < output_tuples`
  // selects exactly output_tuples tuples.
  auto clustered_count =
      static_cast<int64_t>(clustering * static_cast<double>(output_tuples));
  // Scattered part: the non-clustered qualifying tuples mixed uniformly
  // with all non-qualifying tuples.
  std::vector<Tuple> scattered;
  scattered.reserve(static_cast<size_t>(num_tuples - clustered_count));
  for (int64_t i = clustered_count; i < num_tuples; ++i) {
    scattered.push_back(Tuple{i, i, Payload()});
  }
  rng.Shuffle(scattered);
  // Final order: the contiguous qualifying run inserted at a random
  // offset of the scattered sequence.
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(num_tuples));
  size_t insert_at =
      scattered.empty()
          ? 0
          : static_cast<size_t>(rng.Uniform(scattered.size() + 1));
  for (size_t i = 0; i < insert_at; ++i) rows.push_back(scattered[i]);
  for (int64_t i = 0; i < clustered_count; ++i) {
    rows.push_back(Tuple{i, i, Payload()});
  }
  for (size_t i = insert_at; i < scattered.size(); ++i) {
    rows.push_back(scattered[i]);
  }
  TCQ_ASSIGN_OR_RETURN(Relation rel,
                       Relation::Create("r1", schema, kDefaultBlockBytes));
  for (Tuple& row : rows) rel.AppendUnchecked(std::move(row));
  Workload w;
  TCQ_RETURN_NOT_OK(
      w.catalog.Register(std::make_shared<Relation>(std::move(rel))));
  w.query = Select(Scan("r1"),
                   CmpLiteral("key", CompareOp::kLt, output_tuples));
  w.exact_count = output_tuples;
  return w;
}

Result<Workload> MakeIntersectionWorkload(int64_t output_tuples,
                                          uint64_t seed, int64_t num_tuples,
                                          int tuple_bytes) {
  if (output_tuples < 0 || output_tuples > num_tuples) {
    return Status::InvalidArgument("output_tuples out of range");
  }
  Rng rng(seed);
  Schema schema = SyntheticSchema(tuple_bytes);
  // Common tuples have ids 0..output_tuples-1 and identical keys; the
  // remainder of each relation uses disjoint id ranges so no extra tuple
  // coincides.
  std::vector<Tuple> r1_rows, r2_rows;
  for (int64_t i = 0; i < output_tuples; ++i) {
    r1_rows.push_back(Tuple{i, i, Payload()});
    r2_rows.push_back(Tuple{i, i, Payload()});
  }
  for (int64_t i = output_tuples; i < num_tuples; ++i) {
    r1_rows.push_back(Tuple{1000000 + i, i, Payload()});
    r2_rows.push_back(Tuple{2000000 + i, i, Payload()});
  }
  Workload w;
  TCQ_ASSIGN_OR_RETURN(
      RelationPtr r1,
      BuildRelation("r1", schema, std::move(r1_rows), &rng,
                    kDefaultBlockBytes));
  TCQ_ASSIGN_OR_RETURN(
      RelationPtr r2,
      BuildRelation("r2", schema, std::move(r2_rows), &rng,
                    kDefaultBlockBytes));
  TCQ_RETURN_NOT_OK(w.catalog.Register(std::move(r1)));
  TCQ_RETURN_NOT_OK(w.catalog.Register(std::move(r2)));
  w.query = Intersect(Scan("r1"), Scan("r2"));
  w.exact_count = output_tuples;
  return w;
}

Result<Workload> MakeJoinWorkload(int64_t output_tuples, uint64_t seed,
                                  int64_t num_tuples, int tuple_bytes,
                                  int64_t right_per_key) {
  if (right_per_key <= 0 || num_tuples % right_per_key != 0) {
    return Status::InvalidArgument(
        "right_per_key must divide the relation size");
  }
  if (output_tuples % right_per_key != 0) {
    return Status::InvalidArgument(
        "output_tuples must be a multiple of right_per_key");
  }
  int64_t matching_left = output_tuples / right_per_key;
  if (matching_left > num_tuples) {
    return Status::InvalidArgument("too many output tuples requested");
  }
  int64_t num_keys = num_tuples / right_per_key;
  Rng rng(seed);
  Schema schema = SyntheticSchema(tuple_bytes);

  // Right: keys 0..num_keys-1, right_per_key tuples each.
  std::vector<Tuple> r2_rows;
  for (int64_t i = 0; i < num_tuples; ++i) {
    r2_rows.push_back(Tuple{2000000 + i, i % num_keys, Payload()});
  }
  // Left: matching_left tuples with keys uniform over the right's key
  // domain; the rest carry keys outside it.
  std::vector<Tuple> r1_rows;
  for (int64_t i = 0; i < matching_left; ++i) {
    r1_rows.push_back(Tuple{i, rng.UniformInt(0, num_keys - 1), Payload()});
  }
  for (int64_t i = matching_left; i < num_tuples; ++i) {
    r1_rows.push_back(Tuple{i, num_keys + i, Payload()});
  }
  Workload w;
  TCQ_ASSIGN_OR_RETURN(
      RelationPtr r1,
      BuildRelation("r1", schema, std::move(r1_rows), &rng,
                    kDefaultBlockBytes));
  TCQ_ASSIGN_OR_RETURN(
      RelationPtr r2,
      BuildRelation("r2", schema, std::move(r2_rows), &rng,
                    kDefaultBlockBytes));
  TCQ_RETURN_NOT_OK(w.catalog.Register(std::move(r1)));
  TCQ_RETURN_NOT_OK(w.catalog.Register(std::move(r2)));
  w.query = Join(Scan("r1"), Scan("r2"), {{"key", "key"}});
  w.exact_count = output_tuples;
  return w;
}

RelationPtr MakeUniformRelation(const std::string& name, int64_t num_tuples,
                                int64_t key_domain, uint64_t seed,
                                int tuple_bytes, int block_bytes) {
  Rng rng(seed);
  Schema schema = SyntheticSchema(tuple_bytes);
  auto rel = Relation::Create(name, schema, block_bytes);
  if (!rel.ok()) return nullptr;
  for (int64_t i = 0; i < num_tuples; ++i) {
    rel->AppendUnchecked(
        Tuple{i, rng.UniformInt(0, key_domain - 1), Payload()});
  }
  return std::make_shared<Relation>(std::move(*rel));
}

}  // namespace tcq
