#ifndef TCQ_ESTIMATOR_CLUSTER_VARIANCE_H_
#define TCQ_ESTIMATOR_CLUSTER_VARIANCE_H_

#include <cstdint>
#include <vector>

namespace tcq {

/// Unbiased variance estimate of the cluster estimator Ŷb = B·(Σ yi)/b
/// from the per-space-block hit counts of a single-stage sample
/// (the exact alternative the paper's Theorem 6 route provides but its
/// implementation skips as "too expensive", §3.3):
///
///   Var̂(Ŷb) = B² · (1 − b/B) · s_y² / b,
///   s_y² = Σ (yi − ȳ)² / (b − 1).
///
/// Returns 0 when fewer than two blocks were sampled.
double ClusterVarianceEstimate(double total_blocks,
                               const std::vector<int64_t>& block_hits);

/// The SRS-over-points approximation the paper's implementation uses
/// instead (§3.3): treats the m = Σ(block sizes) sampled points as a
/// simple random sample. `hits` = Σ yi. Returns the estimated variance of
/// the *count* estimate (N² × selectivity variance).
double SrsApproxVarianceEstimate(double total_points, double sampled_points,
                                 int64_t hits);

/// Design effect of a one-stage cluster sample: the ratio of the exact
/// cluster variance estimate to the SRS approximation (≈1 for randomly
/// scattered tuples, >1 for block-clustered data). Returns 1 when the
/// SRS term is 0.
double DesignEffect(double total_blocks, double total_points,
                    double sampled_points,
                    const std::vector<int64_t>& block_hits);

}  // namespace tcq

#endif  // TCQ_ESTIMATOR_CLUSTER_VARIANCE_H_
