#ifndef TCQ_ESTIMATOR_SUM_ESTIMATOR_H_
#define TCQ_ESTIMATOR_SUM_ESTIMATOR_H_

#include "estimator/count_estimator.h"

namespace tcq {

/// Cluster-sampling estimator for SUM(E.column) — the natural extension
/// of the paper's COUNT framework to other aggregates (§1 restricts the
/// paper to COUNT; the methodology carries over by replacing the 0/1
/// point value with the output tuple's column value).
///
/// Each point of the point space carries value v = column value when the
/// point produces an output tuple, 0 otherwise. Then
///   SUM-hat = B · (Σ v over covered space blocks) / b,
/// and the variance uses the SRS mean-estimator approximation over points
/// (mirroring the paper's COUNT variance choice):
///   s² = Σv²/m − (Σv/m)²,  Var = N²·(1−m/N)·s²/m.
///
/// `value_sum` / `value_sq_sum` are over the sampled *output tuples*
/// (zero-valued points contribute nothing to either).
CountEstimate ClusterSumEstimate(double total_space_blocks,
                                 double covered_space_blocks,
                                 double value_sum, double value_sq_sum,
                                 double covered_points, double total_points);

}  // namespace tcq

#endif  // TCQ_ESTIMATOR_SUM_ESTIMATOR_H_
