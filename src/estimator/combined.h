#ifndef TCQ_ESTIMATOR_COMBINED_H_
#define TCQ_ESTIMATOR_COMBINED_H_

#include <vector>

#include "estimator/count_estimator.h"
#include "obs/obs.h"

namespace tcq {

/// Combines the per-term estimates of an inclusion–exclusion expansion
/// COUNT(E) = Σ sign_i · COUNT(Ei') into one estimate.
///
/// The terms are evaluated on the *same* samples, so they are correlated;
/// rather than estimating cross-term covariances, the combined variance
/// uses the Cauchy–Schwarz upper bound
///   Var(Σ aᵢXᵢ) ≤ (Σ |aᵢ|·σᵢ)²,
/// which is safe (never understates the interval) and cheap — in the same
/// spirit as the paper's preference for inexpensive variance
/// approximations (§3.3).
CountEstimate CombineSignedEstimates(const std::vector<int>& signs,
                                     const std::vector<CountEstimate>& terms);

/// Same, additionally publishing the combination to `obs`: the
/// `estimator.combines` counter, the `estimator.estimate` /
/// `estimator.variance` gauges (last combined values), and the
/// `estimator.stage_variance` histogram of V̂ per combination. Call from
/// the engine's serial section only (gauge/histogram determinism).
CountEstimate CombineSignedEstimates(const std::vector<int>& signs,
                                     const std::vector<CountEstimate>& terms,
                                     const ObsHandle& obs);

}  // namespace tcq

#endif  // TCQ_ESTIMATOR_COMBINED_H_
