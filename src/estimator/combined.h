#ifndef TCQ_ESTIMATOR_COMBINED_H_
#define TCQ_ESTIMATOR_COMBINED_H_

#include <vector>

#include "estimator/count_estimator.h"
#include "obs/obs.h"

namespace tcq {

/// How CombineSignedEstimates turns per-term variances into a combined
/// variance.
enum class CombineVariance {
  /// Independent-sum formula Var(Σ aᵢXᵢ) = Σ aᵢ²σᵢ² — correct when the
  /// term estimators are uncorrelated, which holds for the engine's
  /// per-term cluster estimates (each term's hits are recounted on the
  /// shared sample, but the dominant sampling variation is the common
  /// block draw, and empirically the independent sum tracks the observed
  /// estimator variance closely; see the Monte-Carlo test). The default.
  kIndependent,
  /// Cauchy–Schwarz upper bound (Σ |aᵢ|·σᵢ)² — never understates the
  /// interval whatever the correlations, at the price of intervals up to
  /// k× too wide for k terms (the historical behaviour: the bound had
  /// been applied unconditionally, inflating every multi-term CI).
  kConservative,
};

/// Combines the per-term estimates of an inclusion–exclusion expansion
/// COUNT(E) = Σ sign_i · COUNT(Ei') into one estimate.
///
/// The combined variance follows `variance_rule`; both rules are cheap,
/// in the same spirit as the paper's preference for inexpensive variance
/// approximations (§3.3). For a single term the two rules coincide.
CountEstimate CombineSignedEstimates(
    const std::vector<int>& signs, const std::vector<CountEstimate>& terms,
    CombineVariance variance_rule = CombineVariance::kIndependent);

/// Same, additionally publishing the combination to `obs`: the
/// `estimator.combines` counter, the `estimator.estimate` /
/// `estimator.variance` gauges (last combined values), and the
/// `estimator.stage_variance` histogram of V̂ per combination. Call from
/// the engine's serial section only (gauge/histogram determinism).
CountEstimate CombineSignedEstimates(
    const std::vector<int>& signs, const std::vector<CountEstimate>& terms,
    const ObsHandle& obs,
    CombineVariance variance_rule = CombineVariance::kIndependent);

}  // namespace tcq

#endif  // TCQ_ESTIMATOR_COMBINED_H_
