#include "estimator/goodman.h"

#include <cmath>
#include <limits>
#include <map>

#include "util/check.h"

namespace tcq {

namespace {

/// log C(n, k) via lgamma; requires 0 <= k <= n.
double LogChoose(double n, double k) {
  if (k < 0.0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

}  // namespace

double Chao1Estimate(double population_size,
                     const std::vector<int64_t>& occupancies) {
  TCQ_DCHECK(population_size >= 0.0, "negative population size");
  double d = static_cast<double>(occupancies.size());
  double f1 = 0.0, f2 = 0.0;
  for (int64_t c : occupancies) {
    if (c == 1) f1 += 1.0;
    if (c == 2) f2 += 1.0;
  }
  double extra =
      f2 > 0.0 ? f1 * f1 / (2.0 * f2) : f1 * (f1 - 1.0) / 2.0;
  double est = d + extra;
  if (est < d) est = d;
  if (est > population_size) est = population_size;
  return est;
}

double GoodmanRawEstimate(double population_size,
                          const std::vector<int64_t>& occupancies) {
  const double n_distinct = static_cast<double>(occupancies.size());
  if (occupancies.empty()) return 0.0;
  int64_t n = 0;
  std::map<int64_t, int64_t> f;  // occupancy -> class count
  for (int64_t c : occupancies) {
    TCQ_DCHECK(c >= 1, "an observed class occurs at least once");
    n += c;
    ++f[c];
  }
  const double N = population_size;
  const double nn = static_cast<double>(n);
  if (nn >= N) return n_distinct;  // full census

  double est = n_distinct;
  for (const auto& [i, fi] : f) {
    double di = static_cast<double>(i);
    // (−1)^{i+1} · C(N−n+i−1, i) / C(n, i) · f_i, in log space.
    double log_term = LogChoose(N - nn + di - 1.0, di) - LogChoose(nn, di) +
                      std::log(static_cast<double>(fi));
    if (log_term > 700.0) {  // exp would overflow
      return std::numeric_limits<double>::infinity();
    }
    double term = std::exp(log_term);
    est += (i % 2 == 1) ? term : -term;
  }
  return est;
}

double GoodmanEstimate(double population_size,
                       const std::vector<int64_t>& occupancies) {
  if (occupancies.empty()) return 0.0;
  const double n_distinct = static_cast<double>(occupancies.size());
  double est = GoodmanRawEstimate(population_size, occupancies);
  if (!std::isfinite(est) || est < n_distinct || est > population_size) {
    est = Chao1Estimate(population_size, occupancies);
  }
  // The guard above (and Chao1's clamp) promise a finite value inside
  // [0, N]; callers scale this by population ratios, so an escape here
  // would silently bias the distinct-count estimate (paper §3.1).
  TCQ_CHECK_INVARIANT(
      std::isfinite(est) && est >= 0.0 &&
          est <= std::max(population_size, n_distinct),
      "guarded Goodman estimate left [0, max(N, d)]");
  return est;
}

}  // namespace tcq
