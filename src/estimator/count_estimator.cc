#include "estimator/count_estimator.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace tcq {

namespace {

double SelectivityVarianceToCountVariance(double selectivity,
                                          double total_points,
                                          double sampled_points) {
  double var_sel =
      SrsProportionVariance(selectivity, total_points, sampled_points);
  return total_points * total_points * var_sel;
}

/// With zero observed hits the plug-in variance degenerates to 0 and the
/// interval collapses to [0, 0], hiding the real uncertainty. Instead,
/// back a variance out of the exact one-sided 95% bound for a zero-count
/// sample (the "rule of three" generalization 1 − 0.05^(1/m)), so the
/// normal interval's upper end lands on that bound.
double ZeroHitVariance(double total_points, double sampled_points) {
  if (sampled_points < 1.0 || total_points <= sampled_points) return 0.0;
  double upper_sel =
      ZeroHitUpperBound(static_cast<int64_t>(sampled_points), 0.05);
  double half_width = total_points * upper_sel;
  double sd = half_width / 1.959963985;
  return sd * sd;
}

}  // namespace

CountEstimate ClusterCountEstimate(double total_space_blocks,
                                   double covered_space_blocks, int64_t hits,
                                   double covered_points,
                                   double total_points) {
  CountEstimate e;
  e.hits = hits;
  e.points = covered_points;
  e.total_points = total_points;
  if (covered_space_blocks <= 0.0) return e;
  e.value = total_space_blocks * static_cast<double>(hits) /
            covered_space_blocks;
  if (covered_points > 0.0) {
    if (hits == 0) {
      e.variance = ZeroHitVariance(total_points, covered_points);
    } else {
      double sel = static_cast<double>(hits) / covered_points;
      e.variance = SelectivityVarianceToCountVariance(sel, total_points,
                                                      covered_points);
    }
  }
  TCQ_CHECK_INVARIANT(e.variance >= 0.0 && e.value >= 0.0,
                      "cluster COUNT estimate or variance went negative");
  return e;
}

CountEstimate SrsCountEstimate(double total_points, double sampled_points,
                               int64_t hits) {
  CountEstimate e;
  e.hits = hits;
  e.points = sampled_points;
  e.total_points = total_points;
  if (sampled_points <= 0.0) return e;
  double sel = static_cast<double>(hits) / sampled_points;
  e.value = total_points * sel;
  if (hits == 0) {
    e.variance = ZeroHitVariance(total_points, sampled_points);
  } else {
    e.variance = SelectivityVarianceToCountVariance(sel, total_points,
                                                    sampled_points);
  }
  TCQ_CHECK_INVARIANT(e.variance >= 0.0 && e.value >= 0.0,
                      "SRS COUNT estimate or variance went negative");
  return e;
}

ConfidenceInterval NormalConfidenceInterval(const CountEstimate& estimate,
                                            double level) {
  ConfidenceInterval ci;
  ci.level = level;
  double z = NormalQuantile(0.5 + level / 2.0);
  double half = z * std::sqrt(estimate.variance);
  ci.lo = estimate.value - half;
  ci.hi = estimate.value + half;
  return ci;
}

}  // namespace tcq
