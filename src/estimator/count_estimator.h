#ifndef TCQ_ESTIMATOR_COUNT_ESTIMATOR_H_
#define TCQ_ESTIMATOR_COUNT_ESTIMATOR_H_

#include <cstdint>

namespace tcq {

/// A point estimate of COUNT(E) with an estimated variance.
struct CountEstimate {
  double value = 0.0;
  double variance = 0.0;

  /// Inputs the estimate was computed from (for traces and tests).
  int64_t hits = 0;       // 1-points (or distinct groups) observed
  double points = 0.0;    // points of the point space covered
  double total_points = 0.0;
};

/// Symmetric confidence interval [lo, hi] at the given level.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.0;

  double HalfWidth() const { return (hi - lo) / 2.0; }
};

/// Cluster-sampling estimator Ŷb(E) = B · (Σ yi) / b (paper §2, [HoOT 88]):
/// `total_space_blocks` B space blocks in the point space, of which
/// `covered_space_blocks` b were evaluated, observing `hits` 1-points.
///
/// The variance is approximated with the simple-random-sampling formula
/// over points (paper §3.3's implementation choice): with sample
/// selectivity s = hits/points,
///   Var(count) = N² · s(1-s)(N-m) / (m(N-1)).
/// The paper notes this usually *underestimates* the cluster variance,
/// trading some risk-control accuracy for computation time.
CountEstimate ClusterCountEstimate(double total_space_blocks,
                                   double covered_space_blocks, int64_t hits,
                                   double covered_points,
                                   double total_points);

/// Simple-random-sampling estimator û(E) = N·(y/m).
CountEstimate SrsCountEstimate(double total_points, double sampled_points,
                               int64_t hits);

/// Normal-approximation confidence interval around an estimate.
/// `level` in (0,1), e.g. 0.95.
ConfidenceInterval NormalConfidenceInterval(const CountEstimate& estimate,
                                            double level);

}  // namespace tcq

#endif  // TCQ_ESTIMATOR_COUNT_ESTIMATOR_H_
