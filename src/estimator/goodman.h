#ifndef TCQ_ESTIMATOR_GOODMAN_H_
#define TCQ_ESTIMATOR_GOODMAN_H_

#include <cstdint>
#include <vector>

namespace tcq {

/// Goodman's (1949) unbiased estimator of the number of distinct classes
/// in a finite population of `population_size` units, from a simple random
/// sample whose distinct classes have the given `occupancies` (one entry
/// per distinct class observed; the sample size is their sum).
///
///   D̂ = d + Σ_{i>=1} (−1)^{i+1} · C(N−n+i−1, i) / C(n, i) · f_i
///
/// where d = number of distinct classes in the sample and f_i = number of
/// classes occurring exactly i times. Unbiased when n exceeds the largest
/// class multiplicity, but notoriously unstable for small sampling
/// fractions (terms alternate in sign and explode). Following the
/// estimator literature, when the raw value leaves [d, N] or is not
/// finite, we fall back to the Chao (1984) lower bound
/// d + f1²/(2·f2) (using f1(f1−1)/2 when f2 = 0), clamped to [d, N].
/// The paper [HoOT 88] uses a "revised" Goodman estimator for projection
/// queries; this guarded version is our equivalent (see DESIGN.md).
double GoodmanEstimate(double population_size,
                       const std::vector<int64_t>& occupancies);

/// Chao's 1984 lower-bound estimator (used as the fallback above).
double Chao1Estimate(double population_size,
                     const std::vector<int64_t>& occupancies);

/// The raw Goodman value, without the [d, N] guard or fallback. Exactly
/// unbiased when the sample size exceeds the largest class multiplicity;
/// may be wildly out of range otherwise. Exposed for tests and analysis.
double GoodmanRawEstimate(double population_size,
                          const std::vector<int64_t>& occupancies);

}  // namespace tcq

#endif  // TCQ_ESTIMATOR_GOODMAN_H_
