#include "estimator/cluster_variance.h"

#include "util/check.h"
#include "util/stats.h"

namespace tcq {

double ClusterVarianceEstimate(double total_blocks,
                               const std::vector<int64_t>& block_hits) {
  const auto b = static_cast<double>(block_hits.size());
  if (b < 2.0 || total_blocks <= 0.0) return 0.0;
  RunningStat stat;
  for (int64_t y : block_hits) stat.Add(static_cast<double>(y));
  double fpc = 1.0 - b / total_blocks;
  if (fpc < 0.0) fpc = 0.0;
  double variance = total_blocks * total_blocks * fpc * stat.variance() / b;
  // b >= 2, fpc >= 0 and Welford variance >= 0, so the cluster
  // variance (paper §3.3) can never be negative; a violation means a
  // corrupted per-block hit count reached the estimator.
  TCQ_CHECK_INVARIANT(variance >= 0.0,
                      "cluster variance estimate went negative");
  return variance;
}

double SrsApproxVarianceEstimate(double total_points, double sampled_points,
                                 int64_t hits) {
  if (sampled_points <= 0.0) return 0.0;
  double sel = static_cast<double>(hits) / sampled_points;
  return total_points * total_points *
         SrsProportionVariance(sel, total_points, sampled_points);
}

double DesignEffect(double total_blocks, double total_points,
                    double sampled_points,
                    const std::vector<int64_t>& block_hits) {
  int64_t hits = 0;
  for (int64_t y : block_hits) hits += y;
  double srs = SrsApproxVarianceEstimate(total_points, sampled_points, hits);
  if (srs <= 0.0) return 1.0;
  double deff = ClusterVarianceEstimate(total_blocks, block_hits) / srs;
  TCQ_CHECK_INVARIANT(deff >= 0.0, "design effect went negative");
  return deff;
}

}  // namespace tcq
