#include "estimator/sum_estimator.h"

#include "util/check.h"

namespace tcq {

CountEstimate ClusterSumEstimate(double total_space_blocks,
                                 double covered_space_blocks,
                                 double value_sum, double value_sq_sum,
                                 double covered_points,
                                 double total_points) {
  CountEstimate e;
  e.points = covered_points;
  e.total_points = total_points;
  if (covered_space_blocks <= 0.0) return e;
  e.value = total_space_blocks * value_sum / covered_space_blocks;
  const double m = covered_points;
  const double n = total_points;
  if (m > 0.0 && n > m) {
    double mean = value_sum / m;
    double s2 = value_sq_sum / m - mean * mean;
    if (s2 < 0.0) s2 = 0.0;
    e.variance = n * n * (1.0 - m / n) * s2 / m;
    TCQ_CHECK_INVARIANT(e.variance >= 0.0,
                        "cluster SUM variance went negative");
  }
  return e;
}

}  // namespace tcq
