#include "estimator/combined.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace tcq {

CountEstimate CombineSignedEstimates(const std::vector<int>& signs,
                                     const std::vector<CountEstimate>& terms,
                                     CombineVariance variance_rule) {
  TCQ_CHECK(signs.size() == terms.size(),
            "every inclusion-exclusion term needs a sign");
  CountEstimate out;
  double var_sum = 0.0;    // Σ aᵢ²σᵢ²
  double sigma_sum = 0.0;  // Σ |aᵢ|σᵢ
  for (size_t i = 0; i < terms.size(); ++i) {
    double a = static_cast<double>(signs[i]);
    out.value += a * terms[i].value;
    var_sum += a * a * terms[i].variance;
    sigma_sum += std::abs(a) * std::sqrt(terms[i].variance);
    out.hits += terms[i].hits;
    out.points += terms[i].points;
    out.total_points += terms[i].total_points;
  }
  out.variance = variance_rule == CombineVariance::kConservative
                     ? sigma_sum * sigma_sum
                     : var_sum;
  TCQ_CHECK_INVARIANT(out.variance >= 0.0,
                      "combined variance estimate went negative");
  return out;
}

CountEstimate CombineSignedEstimates(const std::vector<int>& signs,
                                     const std::vector<CountEstimate>& terms,
                                     const ObsHandle& obs,
                                     CombineVariance variance_rule) {
  CountEstimate out = CombineSignedEstimates(signs, terms, variance_rule);
  if (obs.metering()) {
    obs.metrics->counter("estimator.combines")->Increment();
    obs.metrics->gauge("estimator.estimate")->Set(out.value);
    obs.metrics->gauge("estimator.variance")->Set(out.variance);
    obs.metrics->histogram("estimator.stage_variance")->Record(out.variance);
  }
  if (obs.tracing()) {
    obs.tracer->Instant("combine_estimates", "estimator", "estimate",
                        out.value);
  }
  return out;
}

}  // namespace tcq
