#include "estimator/combined.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace tcq {

CountEstimate CombineSignedEstimates(
    const std::vector<int>& signs,
    const std::vector<CountEstimate>& terms) {
  assert(signs.size() == terms.size());
  CountEstimate out;
  double sigma_sum = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    double a = static_cast<double>(signs[i]);
    out.value += a * terms[i].value;
    sigma_sum += std::abs(a) * std::sqrt(terms[i].variance);
    out.hits += terms[i].hits;
    out.points += terms[i].points;
    out.total_points += terms[i].total_points;
  }
  out.variance = sigma_sum * sigma_sum;
  return out;
}

}  // namespace tcq
