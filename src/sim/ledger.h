#ifndef TCQ_SIM_LEDGER_H_
#define TCQ_SIM_LEDGER_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/clock.h"
#include "util/check.h"
#include "util/random.h"

namespace tcq {

class Metrics;

/// What a unit of simulated work was spent on. Used both for accounting
/// (per-category totals) and, in simulation mode, to advance the
/// `VirtualClock`.
enum class CostCategory {
  kBlockRead = 0,
  kBlockWrite,
  kPredicate,
  kSortCompare,
  kMergeCompare,
  kTupleMove,
  kStageOverhead,
  kOpSetup,
  kFaultDelay,  // retry backoff + straggler inflation (DESIGN.md §10)
  kNumCategories,  // sentinel
};

std::string_view CostCategoryName(CostCategory category);

/// Receives cost charges from the storage/execution layer.
///
/// In simulation mode the ledger is constructed with a `VirtualClock`,
/// which it advances by each charged amount — simulated time *is* the sum
/// of charges. In wall-clock mode pass `nullptr`: real work takes real
/// time, and the ledger only keeps the per-category accounting.
class CostLedger {
 public:
  /// `clock` may be null (wall-clock mode); not owned, must outlive this.
  explicit CostLedger(VirtualClock* clock = nullptr) : clock_(clock) {}

  /// Enables the timing-noise model (see CostModel): every subsequent
  /// charge is scaled by the current stage-speed factor, and block reads
  /// additionally by an independent uniform 1±jitter draw. `rng` is not
  /// owned and must outlive the ledger.
  void AttachNoise(Rng* rng, double stage_speed_cv,
                   double block_read_jitter) {
    noise_rng_ = rng;
    stage_speed_cv_ = stage_speed_cv;
    block_read_jitter_ = block_read_jitter;
    BeginStage();
  }

  /// Draws a fresh machine-speed factor for the next stage.
  void BeginStage() {
    if (noise_rng_ != nullptr && stage_speed_cv_ > 0.0) {
      stage_factor_ = std::exp(stage_speed_cv_ * noise_rng_->Gaussian());
    } else {
      stage_factor_ = 1.0;
    }
  }

  void Charge(CostCategory category, double seconds) {
    TCQ_DCHECK(category < CostCategory::kNumCategories,
               "charge against the category sentinel");
    TCQ_DCHECK(seconds >= 0.0, "negative cost charge");
    double charged = seconds * FactorFor(category);
    totals_[static_cast<size_t>(category)] += charged;
    counts_[static_cast<size_t>(category)] += 1;
    if (clock_ != nullptr) clock_->Advance(charged);
  }

  /// Charges `count` occurrences of a per-unit cost in one call. Block
  /// reads draw per-unit jitter; other categories share the stage factor.
  void ChargeN(CostCategory category, int64_t count, double unit_seconds) {
    TCQ_DCHECK(unit_seconds >= 0.0, "negative unit cost");
    if (count <= 0) return;
    if (category == CostCategory::kBlockRead && noise_rng_ != nullptr &&
        block_read_jitter_ > 0.0) {
      for (int64_t i = 0; i < count; ++i) Charge(category, unit_seconds);
      return;
    }
    double charged =
        unit_seconds * static_cast<double>(count) * stage_factor_;
    totals_[static_cast<size_t>(category)] += charged;
    counts_[static_cast<size_t>(category)] += count;
    if (clock_ != nullptr) clock_->Advance(charged);
  }

  /// The machine-speed factor applied to the current stage's charges
  /// (1.0 when noise is disabled). Exposed so execution layers can report
  /// realized step times consistent with the clock.
  double current_stage_factor() const { return stage_factor_; }

  /// Injects an externally drawn stage factor. Used by the engine's
  /// per-term stage ledgers, which must charge under the same machine
  /// speed as the main ledger but own no noise stream of their own (each
  /// term evaluator charges a private ledger so terms can execute in
  /// parallel; the engine merges totals in term order afterwards).
  void SetStageFactor(double factor) { stage_factor_ = factor; }

  double Total(CostCategory category) const {
    return totals_[static_cast<size_t>(category)];
  }
  int64_t Count(CostCategory category) const {
    return counts_[static_cast<size_t>(category)];
  }
  double GrandTotal() const {
    double acc = 0.0;
    for (double t : totals_) acc += t;
    return acc;
  }

  /// Multi-line per-category report (for logs and examples).
  std::string Report() const;

  /// Publishes the per-category totals/counts and the grand total into
  /// `metrics` as gauges named `<prefix>.<category>_s`, `<prefix>.
  /// <category>_ops` and `<prefix>.total_s`. Gauges (not counters): call
  /// from a serial section — the engine exports after each stage barrier,
  /// folding per-term ledgers in term order.
  void ExportTo(Metrics* metrics, const std::string& prefix) const;

 private:
  static constexpr size_t kN =
      static_cast<size_t>(CostCategory::kNumCategories);

  double FactorFor(CostCategory category) {
    double factor = stage_factor_;
    if (category == CostCategory::kBlockRead && noise_rng_ != nullptr &&
        block_read_jitter_ > 0.0) {
      factor *= 1.0 + block_read_jitter_ *
                          (2.0 * noise_rng_->UniformDouble() - 1.0);
    }
    return factor;
  }

  VirtualClock* clock_;
  Rng* noise_rng_ = nullptr;
  double stage_speed_cv_ = 0.0;
  double block_read_jitter_ = 0.0;
  double stage_factor_ = 1.0;
  std::array<double, kN> totals_{};
  std::array<int64_t, kN> counts_{};
};

}  // namespace tcq

#endif  // TCQ_SIM_LEDGER_H_
