#ifndef TCQ_SIM_CLOCK_H_
#define TCQ_SIM_CLOCK_H_

#include <chrono>

#include "util/check.h"

namespace tcq {

/// Source of the "clock time" the paper's algorithm reads (Figure 3.1
/// START_TIME / CURRENT_TIME). All times are in seconds.
///
/// Two implementations:
///  - `VirtualClock` advances only when simulated work is charged to it
///    (deterministic, used by the experiment harness);
///  - `WallClock` reads the machine's monotonic clock (for running the
///    engine against real elapsed time).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() const = 0;
};

/// Deterministic simulated clock. Starts at 0.
class VirtualClock : public Clock {
 public:
  double Now() const override { return now_; }

  /// Advances simulated time; `seconds` must be >= 0.
  void Advance(double seconds) {
    // Simulated time is the sum of non-negative charges; going
    // backwards would let a stage "refund" quota (paper Figure 3.1).
    TCQ_CHECK_INVARIANT(seconds >= 0.0,
                        "virtual clock asked to move backwards");
    now_ += seconds;
  }

 private:
  double now_ = 0.0;
};

/// Monotonic wall clock; Now() is seconds since construction.
class WallClock : public Clock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  double Now() const override {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A time budget anchored at a start instant (the paper's quota `T`).
class Deadline {
 public:
  Deadline(double start, double quota) : start_(start), quota_(quota) {}

  static Deadline StartingNow(const Clock& clock, double quota) {
    return Deadline(clock.Now(), quota);
  }

  double start() const { return start_; }
  double quota() const { return quota_; }
  double Elapsed(const Clock& clock) const { return clock.Now() - start_; }
  /// Remaining quota; negative once overspent.
  double Remaining(const Clock& clock) const {
    return quota_ - Elapsed(clock);
  }
  bool Expired(const Clock& clock) const { return Remaining(clock) <= 0.0; }

 private:
  double start_;
  double quota_;
};

}  // namespace tcq

#endif  // TCQ_SIM_CLOCK_H_
