#include "sim/ledger.h"

#include <cstdio>

#include "obs/metrics.h"

namespace tcq {

std::string_view CostCategoryName(CostCategory category) {
  switch (category) {
    case CostCategory::kBlockRead:
      return "block_read";
    case CostCategory::kBlockWrite:
      return "block_write";
    case CostCategory::kPredicate:
      return "predicate";
    case CostCategory::kSortCompare:
      return "sort_compare";
    case CostCategory::kMergeCompare:
      return "merge_compare";
    case CostCategory::kTupleMove:
      return "tuple_move";
    case CostCategory::kStageOverhead:
      return "stage_overhead";
    case CostCategory::kOpSetup:
      return "op_setup";
    case CostCategory::kFaultDelay:
      return "fault_delay";
    case CostCategory::kNumCategories:
      break;
  }
  return "unknown";
}

std::string CostLedger::Report() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < kN; ++i) {
    auto cat = static_cast<CostCategory>(i);
    std::snprintf(line, sizeof(line), "%-16s %12.6f s  (%lld ops)\n",
                  std::string(CostCategoryName(cat)).c_str(), totals_[i],
                  static_cast<long long>(counts_[i]));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-16s %12.6f s\n", "total",
                GrandTotal());
  out += line;
  return out;
}

void CostLedger::ExportTo(Metrics* metrics, const std::string& prefix) const {
  if (metrics == nullptr) return;
  for (size_t i = 0; i < kN; ++i) {
    auto cat = static_cast<CostCategory>(i);
    const std::string base = prefix + "." + std::string(CostCategoryName(cat));
    metrics->gauge(base + "_s")->Set(totals_[i]);
    metrics->gauge(base + "_ops")->Set(static_cast<double>(counts_[i]));
  }
  metrics->gauge(prefix + ".total_s")->Set(GrandTotal());
}

}  // namespace tcq
