#ifndef TCQ_SIM_COST_MODEL_H_
#define TCQ_SIM_COST_MODEL_H_

namespace tcq {

/// Primitive-action cost constants (seconds) used by the simulated storage
/// and execution engine. Every block access, tuple comparison, etc. charges
/// its constant to the `CostLedger`, which advances the `VirtualClock`.
///
/// The defaults are calibrated to late-1980s workstation magnitudes (the
/// paper's SUN 3/60) so that the paper's time quotas — 10 s for a
/// 2000-block relation scan workload, 2.5 s for a join — are binding and
/// sample only a small fraction of the relations, as in §5 of the paper.
/// The *shape* of the reproduced tables is insensitive to the exact values;
/// they set the overall scale.
struct CostModel {
  /// Random read of one disk block into memory.
  double block_read_s = 0.060;
  /// Write of one output/temporary page to disk.
  double block_write_s = 0.040;
  /// Evaluating one comparison of a selection formula against a tuple.
  double predicate_compare_s = 0.004;
  /// One comparison during an (external) sort.
  double sort_compare_s = 0.00030;
  /// One tuple comparison during a merge (intersect/join/dedup scan).
  double merge_compare_s = 0.00040;
  /// Copying one tuple (to a temporary file buffer or output page).
  double tuple_move_s = 0.00060;
  /// Fixed per-stage overhead: selectivity revision, sample-size search,
  /// drawing random block numbers, estimator recomputation (Figure 3.1
  /// bookkeeping outside operator evaluation).
  double stage_overhead_s = 0.150;
  /// Fixed per-operator setup cost (the paper's constant `C_*` terms).
  double op_setup_s = 0.010;

  /// Timing-noise parameters. A real machine's stage times fluctuate
  /// around the cost formulas — OS scheduling, disk seek variance — and
  /// that fluctuation is exactly what the paper's risk parameter d_β must
  /// absorb. Modelled as (a) a per-stage machine-speed factor
  /// exp(N(0, cv²)) multiplying every charge of the stage, and (b) an
  /// independent uniform ±jitter on each block read. Zero disables noise
  /// (fully deterministic charging).
  double stage_speed_cv = 0.10;
  double block_read_jitter = 0.5;

  /// Cost of re-reading a block retained in a warm-start sample pool,
  /// as a fraction of a cold random read: pooled blocks live in the
  /// sample cache (BlinkDB's materialized-sample assumption), so a
  /// replayed block charges `cached_read_factor · block_read_s` instead
  /// of a full random read. Only consulted when a WarmStartCache is
  /// attached to the run — without one, no draw is ever a replay and the
  /// charging is bit-identical to a cacheless build.
  double cached_read_factor = 0.25;

  /// Execution parallelism of the machine the cost formulas describe: the
  /// worker count W available to one stage, and the fraction of linear
  /// scaling a parallel step realizes (the efficiency coefficient η of the
  /// speedup model S = 1 + η·(W−1); see DESIGN.md "Threading model").
  /// W = 1 means the classic serial machine — the paper's setting and the
  /// simulator's, whose virtual time always charges serial work. The
  /// engine overrides `workers` with its thread count in wall-clock mode;
  /// η is only the starting point and is re-fitted by AdaptiveCostModel
  /// from measured per-stage work/span times.
  int workers = 1;
  double parallel_efficiency = 0.6;

  /// Measured per-block evaluation speedup of the columnar (vectorized)
  /// path over the row path for the filter/sort/merge steps (the vec-bench
  /// gate enforces ≥ 2×). Wall-clock planning divides the initial
  /// filter/sort/merge coefficients by this when
  /// ExecutorOptions::layout == Layout::kColumnar; simulated charges never
  /// consult it (the two layouts must stay bit-identical in virtual time).
  double columnar_eval_speedup = 2.0;

  /// The calibration described above.
  static CostModel Sun360() { return CostModel{}; }

  /// A noise-free variant (unit tests, ablations).
  static CostModel Deterministic() {
    CostModel m;
    m.stage_speed_cv = 0.0;
    m.block_read_jitter = 0.0;
    return m;
  }

  /// Seed values for wall-clock mode on a modern machine with the
  /// relations in memory: these only initialize the adaptive coefficients
  /// (which are re-fitted from real measurements after the first stage),
  /// so order-of-magnitude accuracy suffices.
  static CostModel ModernInMemory() {
    CostModel m;
    m.block_read_s = 2e-6;
    m.block_write_s = 1e-6;
    m.predicate_compare_s = 5e-8;
    m.sort_compare_s = 5e-8;
    m.merge_compare_s = 5e-8;
    m.tuple_move_s = 5e-8;
    m.stage_overhead_s = 2e-4;
    m.op_setup_s = 1e-5;
    m.stage_speed_cv = 0.0;
    m.block_read_jitter = 0.0;
    return m;
  }
};

}  // namespace tcq

#endif  // TCQ_SIM_COST_MODEL_H_
