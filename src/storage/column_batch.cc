#include "storage/column_batch.h"

namespace tcq {

void ColumnBatch::Configure(const Schema& schema) {
  columns_.clear();
  num_rows_ = 0;
  columns_.reserve(static_cast<size_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    ColumnData data;
    data.type = c.type;
    data.width = c.ByteWidth();
    columns_.push_back(std::move(data));
  }
}

void ColumnBatch::AppendRow(const Tuple& tuple) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnData& col = columns_[c];
    const Value& v = tuple[c];
    switch (col.type) {
      case DataType::kInt64:
        col.i64.push_back(std::get<int64_t>(v));
        break;
      case DataType::kDouble:
        col.f64.push_back(std::get<double>(v));
        break;
      case DataType::kString: {
        const std::string& s = std::get<std::string>(v);
        col.bytes.insert(col.bytes.end(), s.begin(), s.end());
        col.bytes.insert(col.bytes.end(),
                         static_cast<size_t>(col.width) - s.size(), 0);
        break;
      }
    }
  }
  ++num_rows_;
}

void ColumnBatch::AppendBatch(const ColumnBatch& other) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnData& dst = columns_[c];
    const ColumnData& src = other.columns_[c];
    dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
    dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
    dst.bytes.insert(dst.bytes.end(), src.bytes.begin(), src.bytes.end());
  }
  num_rows_ += other.num_rows_;
}

}  // namespace tcq
