#ifndef TCQ_STORAGE_SCHEMA_H_
#define TCQ_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/result.h"
#include "util/status.h"

namespace tcq {

/// One column of a schema. `width` is the on-disk byte width and is only
/// meaningful for kString columns (kInt64/kDouble are 8 bytes).
struct Column {
  std::string name;
  DataType type = DataType::kInt64;
  int width = 0;

  /// On-disk byte width of this column.
  int ByteWidth() const { return type == DataType::kString ? width : 8; }
};

/// Ordered list of columns describing the tuples of a relation or of an
/// operator's output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }

  /// On-disk bytes per tuple (sum of column widths).
  int TupleBytes() const;

  /// Index of the named column, or NotFound.
  [[nodiscard]] Result<int> IndexOf(const std::string& name) const;

  /// True when the two schemas are union/intersect-compatible: same column
  /// count, types, and widths (names may differ).
  bool CompatibleWith(const Schema& other) const;

  /// Schema of a projection onto the given column positions.
  Schema SelectColumns(const std::vector<int>& indices) const;

  /// Schema of a join output: all of `this`'s columns followed by all of
  /// `right`'s. Right-side names that collide get a "r_" prefix.
  Schema ConcatForJoin(const Schema& right) const;

  /// Validates that `tuple` matches this schema (arity, value types, string
  /// widths).
  [[nodiscard]] Status ValidateTuple(const Tuple& tuple) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace tcq

#endif  // TCQ_STORAGE_SCHEMA_H_
