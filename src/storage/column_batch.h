#ifndef TCQ_STORAGE_COLUMN_BATCH_H_
#define TCQ_STORAGE_COLUMN_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace tcq {

/// Per-column contiguous storage of one batch of tuples — the in-memory
/// mirror of a TCQF v3 columnar page. Numeric columns are typed arrays;
/// string columns are fixed-width zero-padded byte runs (the on-disk
/// encoding, so lexicographic memcmp over one value equals CompareValues
/// on the decoded strings). The batch is maintained alongside the row
/// tuples of every Block, giving the vectorized evaluation path (Select
/// bitmaps, encoded-key merges) contiguous inputs without re-decoding.
class ColumnBatch {
 public:
  /// One column's contiguous values. Exactly one of the three arrays is
  /// populated, matching `type`.
  struct ColumnData {
    DataType type = DataType::kInt64;
    int width = 0;  // byte width of one value (8, or the string width)
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint8_t> bytes;  // kString: num_rows × width, zero-padded
  };

  ColumnBatch() = default;

  /// Declares the column types. Must be called before the first append;
  /// resets any previous contents.
  void Configure(const Schema& schema);

  bool configured() const { return !columns_.empty(); }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// Appends one row. The tuple must match the configured schema.
  void AppendRow(const Tuple& tuple);

  /// Bulk-appends another batch with the same configuration (column-wise
  /// contiguous copies — the columnar scan's concatenation step).
  void AppendBatch(const ColumnBatch& other);

  const ColumnData& column(int c) const {
    return columns_[static_cast<size_t>(c)];
  }

  /// Typed spans for the tight loops.
  std::span<const int64_t> I64(int c) const {
    return columns_[static_cast<size_t>(c)].i64;
  }
  std::span<const double> F64(int c) const {
    return columns_[static_cast<size_t>(c)].f64;
  }
  /// Raw fixed-width bytes of a string column (row r starts at r·width).
  std::span<const uint8_t> StringBytes(int c) const {
    return columns_[static_cast<size_t>(c)].bytes;
  }

 private:
  std::vector<ColumnData> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace tcq

#endif  // TCQ_STORAGE_COLUMN_BATCH_H_
