#ifndef TCQ_STORAGE_PAGE_CODEC_H_
#define TCQ_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "storage/schema.h"
#include "util/result.h"

namespace tcq {

/// Fixed-width byte encoding of tuples and disk pages — the on-disk
/// representation behind the simulator's block geometry. Every column
/// occupies exactly its schema byte width: int64 and double are 8 bytes
/// little-endian; strings are zero-padded to their declared width
/// (embedded or trailing NULs are therefore not representable).
///
/// File format (TCQF): magic "TCQF", version, name, schema, geometry,
/// per-page tuple counts, then the raw pages. Version 2 follows every
/// page with its 64-bit FNV-1a checksum; `LoadRelation` verifies each
/// page and reports a corrupt one as `StatusCode::kDataLoss` — the
/// permanently-unreadable-block signal the fault-tolerant execution path
/// (DESIGN.md §10) maps to a lost block. Version 1 files (no checksums)
/// still load, skipping verification.

/// 64-bit FNV-1a checksum of a page buffer (the TCQF v2 per-page sum).
[[nodiscard]] uint64_t PageChecksum(const std::vector<uint8_t>& page);

/// Appends the encoded tuple (schema.TupleBytes() bytes) to `out`.
/// The tuple must validate against the schema.
[[nodiscard]] Status EncodeTuple(const Tuple& tuple, const Schema& schema,
                   std::vector<uint8_t>* out);

/// Decodes one tuple from `bytes` (which must hold at least
/// schema.TupleBytes() bytes at `offset`).
[[nodiscard]] Result<Tuple> DecodeTuple(const std::vector<uint8_t>& bytes, size_t offset,
                          const Schema& schema);

/// Encodes a block's tuples into exactly `block_bytes` bytes (unused tail
/// zero-padded). Fails if the tuples exceed the block capacity.
[[nodiscard]] Result<std::vector<uint8_t>> EncodePage(const Block& block,
                                        const Schema& schema,
                                        int block_bytes);

/// Decodes `count` tuples from a page buffer.
[[nodiscard]] Result<Block> DecodePage(const std::vector<uint8_t>& page, int count,
                         const Schema& schema);

/// Serializes a whole relation to a single file (magic "TCQF", version,
/// name, schema, geometry, per-page tuple counts, then the raw pages).
[[nodiscard]] Status SaveRelation(const Relation& relation, const std::string& path);

/// Loads a relation previously written by SaveRelation.
[[nodiscard]] Result<Relation> LoadRelation(const std::string& path);

/// Saves every relation of the catalog into `directory` (one
/// "<name>.tcq" file each; the directory must exist).
[[nodiscard]] Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// Loads every "*.tcq" file in `directory` into a fresh catalog.
[[nodiscard]] Result<Catalog> LoadCatalog(const std::string& directory);

}  // namespace tcq

#endif  // TCQ_STORAGE_PAGE_CODEC_H_
