#ifndef TCQ_STORAGE_PAGE_CODEC_H_
#define TCQ_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "storage/schema.h"
#include "util/result.h"

namespace tcq {

/// Fixed-width byte encoding of tuples and disk pages — the on-disk
/// representation behind the simulator's block geometry. Every column
/// occupies exactly its schema byte width: int64 and double are 8 bytes
/// little-endian; strings are zero-padded to their declared width
/// (embedded or trailing NULs are therefore not representable).
///
/// File format (TCQF): magic "TCQF", version, name, schema, geometry,
/// per-page tuple counts, then the raw pages. Version 2 follows every
/// page with its 64-bit FNV-1a checksum; `LoadRelation` verifies each
/// page and reports a corrupt one as `StatusCode::kDataLoss` — the
/// permanently-unreadable-block signal the fault-tolerant execution path
/// (DESIGN.md §10) maps to a lost block. Version 1 files (no checksums)
/// still load, skipping verification. Version 3 keeps v2's framing and
/// per-page checksums but lays each page out column-major: column 0's n
/// values contiguous, then column 1's, …, zero-padded to the block size —
/// the layout the vectorized batch evaluation path (DESIGN.md §11) reads
/// without per-tuple decoding. Writers default to v3;
/// `SaveRelationAtVersion` emits any supported version and
/// `ConvertRelationFile` rewrites files between versions (tools/
/// tcqf_convert is the CLI).

/// 64-bit FNV-1a checksum of a page buffer (the TCQF v2 per-page sum).
[[nodiscard]] uint64_t PageChecksum(const std::vector<uint8_t>& page);

/// Appends the encoded tuple (schema.TupleBytes() bytes) to `out`.
/// The tuple must validate against the schema.
[[nodiscard]] Status EncodeTuple(const Tuple& tuple, const Schema& schema,
                   std::vector<uint8_t>* out);

/// Decodes one tuple from `bytes` (which must hold at least
/// schema.TupleBytes() bytes at `offset`).
[[nodiscard]] Result<Tuple> DecodeTuple(const std::vector<uint8_t>& bytes, size_t offset,
                          const Schema& schema);

/// Encodes a block's tuples into exactly `block_bytes` bytes (unused tail
/// zero-padded). Fails if the tuples exceed the block capacity.
[[nodiscard]] Result<std::vector<uint8_t>> EncodePage(const Block& block,
                                        const Schema& schema,
                                        int block_bytes);

/// Decodes `count` tuples from a page buffer.
[[nodiscard]] Result<Block> DecodePage(const std::vector<uint8_t>& page, int count,
                         const Schema& schema);

/// Encodes a block column-major (TCQF v3 page body): column 0's values
/// contiguous, then column 1's, …, zero-padded to `block_bytes`.
[[nodiscard]] Result<std::vector<uint8_t>> EncodePageColumnar(
    const Block& block, const Schema& schema, int block_bytes);

/// Decodes `count` tuples from a column-major (v3) page buffer.
[[nodiscard]] Result<Block> DecodePageColumnar(const std::vector<uint8_t>& page,
                                               int count, const Schema& schema);

/// Serializes a whole relation to a single file (magic "TCQF", version,
/// name, schema, geometry, per-page tuple counts, then the raw pages) at
/// the current default format version (v3, columnar pages).
[[nodiscard]] Status SaveRelation(const Relation& relation, const std::string& path);

/// Serializes at an explicit format version (1: row pages, no checksums;
/// 2: row pages + per-page checksums; 3: columnar pages + checksums).
/// InvalidArgument for unsupported versions.
[[nodiscard]] Status SaveRelationAtVersion(const Relation& relation,
                                           const std::string& path,
                                           uint32_t version);

/// Loads a relation previously written by SaveRelation (any supported
/// version; page bodies are decoded per the file's version).
[[nodiscard]] Result<Relation> LoadRelation(const std::string& path);

/// Rewrites a TCQF file at `target_version` (the v2→v3 migration tool's
/// core). Loading verifies checksums first, so a corrupt input still
/// surfaces as kDataLoss rather than being silently re-encoded.
[[nodiscard]] Status ConvertRelationFile(const std::string& in_path,
                                         const std::string& out_path,
                                         uint32_t target_version);

/// Saves every relation of the catalog into `directory` (one
/// "<name>.tcq" file each; the directory must exist).
[[nodiscard]] Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// Loads every "*.tcq" file in `directory` into a fresh catalog.
[[nodiscard]] Result<Catalog> LoadCatalog(const std::string& directory);

}  // namespace tcq

#endif  // TCQ_STORAGE_PAGE_CODEC_H_
