#include "storage/value.h"

#include <cassert>

namespace tcq {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

namespace {
template <typename T>
int Compare3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}
}  // namespace

int CompareValues(const Value& a, const Value& b) {
  assert(a.index() == b.index());
  switch (a.index()) {
    case 0:
      return Compare3(std::get<int64_t>(a), std::get<int64_t>(b));
    case 1:
      return Compare3(std::get<double>(a), std::get<double>(b));
    default:
      return Compare3(std::get<std::string>(a), std::get<std::string>(b));
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return std::to_string(std::get<double>(v));
    default:
      return std::get<std::string>(v);
  }
}

int CompareTuplesOnKey(const Tuple& a, const Tuple& b,
                       const std::vector<int>& key) {
  for (int idx : key) {
    assert(idx >= 0 && static_cast<size_t>(idx) < a.size() &&
           static_cast<size_t>(idx) < b.size());
    int c = CompareValues(a[static_cast<size_t>(idx)],
                          b[static_cast<size_t>(idx)]);
    if (c != 0) return c;
  }
  return 0;
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace tcq
