#include "storage/schema.h"

#include <unordered_set>

namespace tcq {

int Schema::TupleBytes() const {
  int total = 0;
  for (const Column& c : columns_) total += c.ByteWidth();
  return total;
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::CompatibleWith(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type != other.columns_[i].type) return false;
    if (columns_[i].type == DataType::kString &&
        columns_[i].width != other.columns_[i].width) {
      return false;
    }
  }
  return true;
}

Schema Schema::SelectColumns(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (int i : indices) cols.push_back(columns_[static_cast<size_t>(i)]);
  return Schema(std::move(cols));
}

Schema Schema::ConcatForJoin(const Schema& right) const {
  std::unordered_set<std::string> left_names;
  for (const Column& c : columns_) left_names.insert(c.name);
  std::vector<Column> cols = columns_;
  for (const Column& c : right.columns_) {
    Column out = c;
    if (left_names.count(out.name) > 0) out.name = "r_" + out.name;
    cols.push_back(std::move(out));
  }
  return Schema(std::move(cols));
}

Status Schema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (ValueType(tuple[i]) != columns_[i].type) {
      return Status::InvalidArgument("value type mismatch in column '" +
                                     columns_[i].name + "'");
    }
    if (columns_[i].type == DataType::kString &&
        static_cast<int>(std::get<std::string>(tuple[i]).size()) >
            columns_[i].width) {
      return Status::InvalidArgument("string too wide for column '" +
                                     columns_[i].name + "'");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
    if (columns_[i].type == DataType::kString) {
      // Appended piecewise: the operator+ chain form trips GCC 12's
      // -Wrestrict false positive (PR 105329) at -O2.
      out += "[";
      out += std::to_string(columns_[i].width);
      out += "]";
    }
  }
  out += ")";
  return out;
}

}  // namespace tcq
