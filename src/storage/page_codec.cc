#include "storage/page_codec.h"

#include <algorithm>
#include <cstring>
#include <variant>
#include <filesystem>
#include <fstream>

namespace tcq {

namespace {

constexpr char kMagic[4] = {'T', 'C', 'Q', 'F'};
/// v1: row pages, no checksums; v2 appends a 64-bit FNV-1a sum after each
/// page; v3 keeps the checksums but stores each page column-major.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  Result<uint32_t> U32() {
    TCQ_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    TCQ_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> String() {
    TCQ_ASSIGN_OR_RETURN(uint32_t len, U32());
    TCQ_RETURN_NOT_OK(Need(len));
    std::string s(reinterpret_cast<const char*>(&bytes_[pos_]), len);
    pos_ += len;
    return s;
  }

  Result<std::vector<uint8_t>> Raw(size_t n) {
    TCQ_RETURN_NOT_OK(Need(n));
    std::vector<uint8_t> out(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                             bytes_.begin() +
                                 static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

 private:
  Status Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      return Status::OutOfRange("truncated relation file");
    }
    return Status::OK();
  }

  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t PageChecksum(const std::vector<uint8_t>& page) {
  // FNV-1a, 64-bit.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t byte : page) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return h;
}

Status EncodeTuple(const Tuple& tuple, const Schema& schema,
                   std::vector<uint8_t>* out) {
  TCQ_RETURN_NOT_OK(schema.ValidateTuple(tuple));
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Column& column = schema.column(c);
    const Value& v = tuple[static_cast<size_t>(c)];
    switch (column.type) {
      case DataType::kInt64: {
        auto raw = static_cast<uint64_t>(std::get<int64_t>(v));
        PutU64(raw, out);
        break;
      }
      case DataType::kDouble: {
        uint64_t raw = 0;
        double d = std::get<double>(v);
        std::memcpy(&raw, &d, sizeof(raw));
        PutU64(raw, out);
        break;
      }
      case DataType::kString: {
        const std::string& s = std::get<std::string>(v);
        out->insert(out->end(), s.begin(), s.end());
        out->insert(out->end(),
                    static_cast<size_t>(column.width) - s.size(), 0);
        break;
      }
    }
  }
  return Status::OK();
}

Result<Tuple> DecodeTuple(const std::vector<uint8_t>& bytes, size_t offset,
                          const Schema& schema) {
  if (offset + static_cast<size_t>(schema.TupleBytes()) > bytes.size()) {
    return Status::OutOfRange("tuple extends past the buffer");
  }
  Tuple tuple;
  tuple.reserve(static_cast<size_t>(schema.num_columns()));
  size_t pos = offset;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Column& column = schema.column(c);
    switch (column.type) {
      case DataType::kInt64: {
        uint64_t raw = 0;
        for (int i = 0; i < 8; ++i) {
          raw |= static_cast<uint64_t>(bytes[pos + static_cast<size_t>(i)])
                 << (8 * i);
        }
        // In-place construction: push_back(Value{...}) move-constructs a
        // temporary variant, which GCC 12 under -fsanitize flags as
        // maybe-uninitialized through the string alternative (PR 105562).
        tuple.emplace_back(std::in_place_type<int64_t>,
                           static_cast<int64_t>(raw));
        pos += 8;
        break;
      }
      case DataType::kDouble: {
        uint64_t raw = 0;
        for (int i = 0; i < 8; ++i) {
          raw |= static_cast<uint64_t>(bytes[pos + static_cast<size_t>(i)])
                 << (8 * i);
        }
        double d = 0.0;
        std::memcpy(&d, &raw, sizeof(d));
        tuple.emplace_back(std::in_place_type<double>, d);  // see kInt64
        pos += 8;
        break;
      }
      case DataType::kString: {
        size_t len = static_cast<size_t>(column.width);
        while (len > 0 && bytes[pos + len - 1] == 0) --len;
        tuple.push_back(std::string(
            reinterpret_cast<const char*>(&bytes[pos]), len));
        pos += static_cast<size_t>(column.width);
        break;
      }
    }
  }
  return tuple;
}

Result<std::vector<uint8_t>> EncodePage(const Block& block,
                                        const Schema& schema,
                                        int block_bytes) {
  int tuple_bytes = schema.TupleBytes();
  if (static_cast<int>(block.tuples.size()) * tuple_bytes > block_bytes) {
    return Status::InvalidArgument("block holds more bytes than the page");
  }
  std::vector<uint8_t> page;
  page.reserve(static_cast<size_t>(block_bytes));
  for (const Tuple& t : block.tuples) {
    TCQ_RETURN_NOT_OK(EncodeTuple(t, schema, &page));
  }
  page.resize(static_cast<size_t>(block_bytes), 0);
  return page;
}

Result<Block> DecodePage(const std::vector<uint8_t>& page, int count,
                         const Schema& schema) {
  Block block;
  size_t tuple_bytes = static_cast<size_t>(schema.TupleBytes());
  for (int i = 0; i < count; ++i) {
    TCQ_ASSIGN_OR_RETURN(
        Tuple t,
        DecodeTuple(page, static_cast<size_t>(i) * tuple_bytes, schema));
    block.tuples.push_back(std::move(t));
  }
  return block;
}

Result<std::vector<uint8_t>> EncodePageColumnar(const Block& block,
                                                const Schema& schema,
                                                int block_bytes) {
  int tuple_bytes = schema.TupleBytes();
  if (static_cast<int>(block.tuples.size()) * tuple_bytes > block_bytes) {
    return Status::InvalidArgument("block holds more bytes than the page");
  }
  for (const Tuple& t : block.tuples) {
    TCQ_RETURN_NOT_OK(schema.ValidateTuple(t));
  }
  std::vector<uint8_t> page;
  page.reserve(static_cast<size_t>(block_bytes));
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Column& column = schema.column(c);
    for (const Tuple& t : block.tuples) {
      const Value& v = t[static_cast<size_t>(c)];
      switch (column.type) {
        case DataType::kInt64:
          PutU64(static_cast<uint64_t>(std::get<int64_t>(v)), &page);
          break;
        case DataType::kDouble: {
          uint64_t raw = 0;
          double d = std::get<double>(v);
          std::memcpy(&raw, &d, sizeof(raw));
          PutU64(raw, &page);
          break;
        }
        case DataType::kString: {
          const std::string& s = std::get<std::string>(v);
          page.insert(page.end(), s.begin(), s.end());
          page.insert(page.end(),
                      static_cast<size_t>(column.width) - s.size(), 0);
          break;
        }
      }
    }
  }
  page.resize(static_cast<size_t>(block_bytes), 0);
  return page;
}

Result<Block> DecodePageColumnar(const std::vector<uint8_t>& page, int count,
                                 const Schema& schema) {
  size_t need = static_cast<size_t>(count) *
                static_cast<size_t>(schema.TupleBytes());
  if (need > page.size()) {
    return Status::OutOfRange("columnar page smaller than its tuples");
  }
  Block block;
  block.tuples.resize(static_cast<size_t>(count));
  for (Tuple& t : block.tuples) {
    t.reserve(static_cast<size_t>(schema.num_columns()));
  }
  size_t pos = 0;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Column& column = schema.column(c);
    switch (column.type) {
      case DataType::kInt64:
        for (int r = 0; r < count; ++r) {
          uint64_t raw = 0;
          for (int i = 0; i < 8; ++i) {
            raw |= static_cast<uint64_t>(page[pos + static_cast<size_t>(i)])
                   << (8 * i);
          }
          // In-place construction, as in DecodeTuple (GCC 12 PR 105562).
          block.tuples[static_cast<size_t>(r)].emplace_back(
              std::in_place_type<int64_t>, static_cast<int64_t>(raw));
          pos += 8;
        }
        break;
      case DataType::kDouble:
        for (int r = 0; r < count; ++r) {
          uint64_t raw = 0;
          for (int i = 0; i < 8; ++i) {
            raw |= static_cast<uint64_t>(page[pos + static_cast<size_t>(i)])
                   << (8 * i);
          }
          double d = 0.0;
          std::memcpy(&d, &raw, sizeof(d));
          block.tuples[static_cast<size_t>(r)].emplace_back(
              std::in_place_type<double>, d);
          pos += 8;
        }
        break;
      case DataType::kString:
        for (int r = 0; r < count; ++r) {
          size_t len = static_cast<size_t>(column.width);
          while (len > 0 && page[pos + len - 1] == 0) --len;
          block.tuples[static_cast<size_t>(r)].push_back(std::string(
              reinterpret_cast<const char*>(&page[pos]), len));
          pos += static_cast<size_t>(column.width);
        }
        break;
    }
  }
  return block;
}

Status SaveRelation(const Relation& relation, const std::string& path) {
  return SaveRelationAtVersion(relation, path, kVersion);
}

Status SaveRelationAtVersion(const Relation& relation, const std::string& path,
                             uint32_t version) {
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported TCQF version " +
                                   std::to_string(version));
  }
  std::vector<uint8_t> out;
  // Byte-wise append: vector::insert over the char[4] range makes GCC 12
  // under -fsanitize report a bogus -Wstringop-overflow (memmove into a
  // "size 0" region); the loop compiles to the same stores warning-free.
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  PutU32(version, &out);
  PutString(relation.name(), &out);
  PutU32(static_cast<uint32_t>(relation.schema().num_columns()), &out);
  for (const Column& c : relation.schema().columns()) {
    PutString(c.name, &out);
    PutU32(static_cast<uint32_t>(c.type), &out);
    PutU32(static_cast<uint32_t>(c.width), &out);
  }
  PutU32(static_cast<uint32_t>(relation.block_bytes()), &out);
  PutU64(static_cast<uint64_t>(relation.NumBlocks()), &out);
  PutU64(static_cast<uint64_t>(relation.NumTuples()), &out);
  for (const Block& b : relation.blocks()) {
    PutU32(static_cast<uint32_t>(b.tuples.size()), &out);
  }
  for (const Block& b : relation.blocks()) {
    TCQ_ASSIGN_OR_RETURN(
        std::vector<uint8_t> page,
        version >= 3
            ? EncodePageColumnar(b, relation.schema(), relation.block_bytes())
            : EncodePage(b, relation.schema(), relation.block_bytes()));
    out.insert(out.end(), page.begin(), page.end());
    if (version >= 2) PutU64(PageChecksum(page), &out);
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

Result<Relation> LoadRelation(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  Reader reader(std::move(bytes));
  TCQ_ASSIGN_OR_RETURN(std::vector<uint8_t> magic, reader.Raw(4));
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a TCQF file");
  }
  TCQ_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported TCQF version " +
                                   std::to_string(version));
  }
  TCQ_ASSIGN_OR_RETURN(std::string name, reader.String());
  TCQ_ASSIGN_OR_RETURN(uint32_t ncols, reader.U32());
  std::vector<Column> columns;
  for (uint32_t c = 0; c < ncols; ++c) {
    Column column;
    TCQ_ASSIGN_OR_RETURN(column.name, reader.String());
    TCQ_ASSIGN_OR_RETURN(uint32_t type, reader.U32());
    if (type > static_cast<uint32_t>(DataType::kString)) {
      return Status::InvalidArgument("bad column type in '" + path + "'");
    }
    column.type = static_cast<DataType>(type);
    TCQ_ASSIGN_OR_RETURN(uint32_t width, reader.U32());
    column.width = static_cast<int>(width);
    columns.push_back(std::move(column));
  }
  Schema schema(std::move(columns));
  TCQ_ASSIGN_OR_RETURN(uint32_t block_bytes, reader.U32());
  TCQ_ASSIGN_OR_RETURN(uint64_t num_blocks, reader.U64());
  TCQ_ASSIGN_OR_RETURN(uint64_t num_tuples, reader.U64());
  std::vector<uint32_t> counts;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    TCQ_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
    counts.push_back(count);
  }
  TCQ_ASSIGN_OR_RETURN(
      Relation relation,
      Relation::Create(name, schema, static_cast<int>(block_bytes)));
  uint64_t loaded = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    TCQ_ASSIGN_OR_RETURN(std::vector<uint8_t> page,
                         reader.Raw(block_bytes));
    if (version >= 2) {
      TCQ_ASSIGN_OR_RETURN(uint64_t stored_sum, reader.U64());
      if (stored_sum != PageChecksum(page)) {
        return Status::DataLoss("page " + std::to_string(b) + " of '" +
                                path + "' failed checksum verification");
      }
    }
    int count = static_cast<int>(counts[static_cast<size_t>(b)]);
    TCQ_ASSIGN_OR_RETURN(Block block,
                         version >= 3 ? DecodePageColumnar(page, count, schema)
                                      : DecodePage(page, count, schema));
    for (Tuple& t : block.tuples) {
      relation.AppendUnchecked(std::move(t));
      ++loaded;
    }
  }
  if (loaded != num_tuples) {
    return Status::Internal("tuple count mismatch in '" + path + "'");
  }
  return relation;
}

Status ConvertRelationFile(const std::string& in_path,
                           const std::string& out_path,
                           uint32_t target_version) {
  TCQ_ASSIGN_OR_RETURN(Relation relation, LoadRelation(in_path));
  return SaveRelationAtVersion(relation, out_path, target_version);
}

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  for (const std::string& name : catalog.Names()) {
    TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(name));
    TCQ_RETURN_NOT_OK(
        SaveRelation(*rel, directory + "/" + name + ".tcq"));
  }
  return Status::OK();
}

Result<Catalog> LoadCatalog(const std::string& directory) {
  Catalog catalog;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return Status::NotFound("cannot list directory '" + directory + "'");
  }
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".tcq") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    TCQ_ASSIGN_OR_RETURN(Relation rel, LoadRelation(path));
    TCQ_RETURN_NOT_OK(
        catalog.Register(std::make_shared<Relation>(std::move(rel))));
  }
  return catalog;
}

}  // namespace tcq
