#include "storage/relation.h"

namespace tcq {

Result<Relation> Relation::Create(std::string name, Schema schema,
                                  int block_bytes) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("relation schema must not be empty");
  }
  int tuple_bytes = schema.TupleBytes();
  if (tuple_bytes <= 0) {
    return Status::InvalidArgument("schema has non-positive tuple size");
  }
  if (block_bytes < tuple_bytes) {
    return Status::InvalidArgument(
        "block size " + std::to_string(block_bytes) +
        " smaller than tuple size " + std::to_string(tuple_bytes));
  }
  int bf = block_bytes / tuple_bytes;
  return Relation(std::move(name), std::move(schema), block_bytes, bf);
}

Status Relation::Append(Tuple tuple) {
  TCQ_RETURN_NOT_OK(schema_.ValidateTuple(tuple));
  AppendUnchecked(std::move(tuple));
  return Status::OK();
}

void Relation::AppendUnchecked(Tuple tuple) {
  if (blocks_.empty() ||
      static_cast<int>(blocks_.back().tuples.size()) >= blocking_factor_) {
    blocks_.emplace_back();
    blocks_.back().tuples.reserve(static_cast<size_t>(blocking_factor_));
    blocks_.back().columns.Configure(schema_);
  }
  blocks_.back().columns.AppendRow(tuple);
  blocks_.back().tuples.push_back(std::move(tuple));
  ++num_tuples_;
}

Status Catalog::Register(RelationPtr relation) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  for (const RelationPtr& r : relations_) {
    if (r->name() == relation->name()) {
      return Status::AlreadyExists("relation '" + relation->name() +
                                   "' already registered");
    }
  }
  relations_.push_back(std::move(relation));
  return Status::OK();
}

Result<RelationPtr> Catalog::Find(const std::string& name) const {
  for (const RelationPtr& r : relations_) {
    if (r->name() == name) return r;
  }
  return Status::NotFound("relation '" + name + "' not in catalog");
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const RelationPtr& r : relations_) names.push_back(r->name());
  return names;
}

}  // namespace tcq
