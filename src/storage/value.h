#ifndef TCQ_STORAGE_VALUE_H_
#define TCQ_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace tcq {

/// Column data types supported by the storage layer.
enum class DataType {
  kInt64,
  kDouble,
  kString,  // fixed maximum width, declared in the schema
};

std::string_view DataTypeName(DataType type);

/// A single typed cell value.
///
/// Values are passive data; ordering and equality follow the underlying
/// type. Comparing values of different alternatives is a programming error
/// guarded by assertions in the comparison helpers below.
using Value = std::variant<int64_t, double, std::string>;

/// Returns the DataType of the alternative held by `v`.
DataType ValueType(const Value& v);

/// Three-way comparison; requires both values to hold the same alternative.
int CompareValues(const Value& a, const Value& b);

/// Renders a value for debugging/output ("42", "3.5", "abc").
std::string ValueToString(const Value& v);

/// A tuple is a row of values, positionally matching a Schema.
using Tuple = std::vector<Value>;

/// Lexicographic three-way comparison of two tuples restricted to the given
/// column positions (`key` indexes into both tuples).
int CompareTuplesOnKey(const Tuple& a, const Tuple& b,
                       const std::vector<int>& key);

/// Lexicographic three-way comparison over all positions; the tuples must
/// have equal arity.
int CompareTuples(const Tuple& a, const Tuple& b);

}  // namespace tcq

#endif  // TCQ_STORAGE_VALUE_H_
