#ifndef TCQ_STORAGE_RELATION_H_
#define TCQ_STORAGE_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/column_batch.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/result.h"
#include "util/status.h"

namespace tcq {

/// Default disk block (page) size — the paper uses 1 KiB blocks.
inline constexpr int kDefaultBlockBytes = 1024;

/// A disk block: up to `blocking factor` tuples stored together. The block
/// is the cluster-sampling unit (paper §2): drawing a block retrieves all
/// of its tuples at the cost of one random read. Both physical layouts of
/// the same block are kept: decoded row tuples for the tuple-at-a-time
/// path and per-column contiguous arrays for the vectorized batch path
/// (Layout::kColumnar). They always describe the same tuples in the same
/// order.
struct Block {
  std::vector<Tuple> tuples;
  ColumnBatch columns;
};

/// Read-only view of one block exposing both access styles: `rows()` for
/// tuple iteration and `columns()` for the columnar batch. This is the
/// block-access surface — operators and samplers consume BlockViews, never
/// raw Block internals (the `raw-tuple-scan` lint rule enforces it in
/// src/exec/). The view borrows the block; the owning Relation must
/// outlive it.
class BlockView {
 public:
  explicit BlockView(const Block* block) : block_(block) {}

  /// Decoded row tuples, in block order.
  const std::vector<Tuple>& rows() const { return block_->tuples; }
  /// Per-column contiguous arrays of the same tuples.
  const ColumnBatch& columns() const { return block_->columns; }
  int64_t num_rows() const {
    return static_cast<int64_t>(block_->tuples.size());
  }
  /// Underlying block pointer, for identity checks and the engine's
  /// per-stage block lists. Stable for the Relation's lifetime.
  const Block* raw() const { return block_; }

 private:
  const Block* block_;
};

/// A stored relation: a schema plus a sequence of disk blocks.
///
/// The in-memory representation holds decoded tuples, but block geometry
/// (block size, blocking factor, block count) matches the declared byte
/// widths exactly, because the sampling plan, the estimators (space blocks)
/// and the cost formulas are all expressed in blocks.
class Relation {
 public:
  /// Creates an empty relation. `block_bytes` must be at least one tuple.
  [[nodiscard]] static Result<Relation> Create(std::string name, Schema schema,
                                 int block_bytes = kDefaultBlockBytes);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int block_bytes() const { return block_bytes_; }
  /// Tuples per block.
  int blocking_factor() const { return blocking_factor_; }

  int64_t NumTuples() const { return num_tuples_; }
  int64_t NumBlocks() const { return static_cast<int64_t>(blocks_.size()); }

  /// Appends a tuple (validated against the schema), packing blocks to the
  /// blocking factor.
  [[nodiscard]] Status Append(Tuple tuple);

  /// Unchecked append for bulk loading by trusted generators.
  void AppendUnchecked(Tuple tuple);

  [[deprecated(
      "per-tuple block access is the legacy row-at-a-time surface; use "
      "ViewBlock()/ReadBlock(), whose BlockView exposes rows() and "
      "columns()")]]
  const Block& block(int64_t i) const {
    return blocks_[static_cast<size_t>(i)];
  }
  /// Bulk accessor for the page codec (serialization walks every block).
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Unchecked view of one block — the index must be in range.
  BlockView ViewBlock(int64_t i) const {
    return BlockView(&blocks_[static_cast<size_t>(i)]);
  }

  /// Fallible read path to one block: `OutOfRange` on a bad index. The
  /// fault-tolerant executor fetches drawn blocks through this (not the
  /// unchecked `ViewBlock()` accessor) so the returned Status is a real
  /// failure channel — the `status-discarded-in-storage` lint rule
  /// forbids ignoring it.
  [[nodiscard]] Result<BlockView> ReadBlock(int64_t i) const {
    if (i < 0 || i >= NumBlocks()) {
      return Status::OutOfRange("block " + std::to_string(i) +
                                " out of range for relation '" + name_ +
                                "'");
    }
    return BlockView(&blocks_[static_cast<size_t>(i)]);
  }

 private:
  Relation(std::string name, Schema schema, int block_bytes,
           int blocking_factor)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        block_bytes_(block_bytes),
        blocking_factor_(blocking_factor) {}

  std::string name_;
  Schema schema_;
  int block_bytes_;
  int blocking_factor_;
  int64_t num_tuples_ = 0;
  std::vector<Block> blocks_;
};

using RelationPtr = std::shared_ptr<const Relation>;

/// Named registry of base relations available to queries.
class Catalog {
 public:
  /// Registers a relation under its own name; AlreadyExists on duplicates.
  [[nodiscard]] Status Register(RelationPtr relation);

  /// Looks a relation up by name.
  [[nodiscard]] Result<RelationPtr> Find(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  std::vector<RelationPtr> relations_;
};

}  // namespace tcq

#endif  // TCQ_STORAGE_RELATION_H_
