#ifndef TCQ_EXEC_EXACT_H_
#define TCQ_EXEC_EXACT_H_

#include <cstdint>

#include "exec/tuple_set.h"
#include "ra/expr.h"
#include "storage/relation.h"
#include "util/result.h"

namespace tcq {

/// Fully evaluates `expr` against `catalog` with classical set-semantics
/// relational algebra (Union/Intersect/Difference/Project outputs are
/// duplicate-free; Select and Join preserve input multiplicity).
///
/// This is the ground-truth evaluator: tests and benches compare the
/// sampling estimator against `ExactCount`. It deliberately performs no
/// cost accounting.
[[nodiscard]] Result<TupleSet> EvaluateExact(const ExprPtr& expr, const Catalog& catalog);

/// COUNT(E) under the same semantics.
[[nodiscard]] Result<int64_t> ExactCount(const ExprPtr& expr, const Catalog& catalog);

/// SUM(E.column) over the exact output (column must be numeric).
[[nodiscard]] Result<double> ExactSum(const ExprPtr& expr, const std::string& column,
                        const Catalog& catalog);

/// AVG(E.column) over the exact output; InvalidArgument when empty.
[[nodiscard]] Result<double> ExactAvg(const ExprPtr& expr, const std::string& column,
                        const Catalog& catalog);

}  // namespace tcq

#endif  // TCQ_EXEC_EXACT_H_
