#ifndef TCQ_EXEC_TUPLE_SET_H_
#define TCQ_EXEC_TUPLE_SET_H_

#include <cstdint>
#include <vector>

#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace tcq {

/// A materialized intermediate result: a bag of tuples with a schema.
///
/// The prototype keeps all intermediates "on disk" (paper §4); in this
/// implementation the bytes live in memory but every page written or read
/// is charged to the cost ledger using the schema's tuple width and the
/// block geometry below.
struct TupleSet {
  Schema schema;
  std::vector<Tuple> tuples;

  int64_t size() const { return static_cast<int64_t>(tuples.size()); }
};

/// Number of disk pages occupied by `num_tuples` tuples of `schema`
/// (the paper's `p = sel × points / blockingfactor`).
inline int64_t PagesFor(const Schema& schema, int64_t num_tuples,
                        int block_bytes = kDefaultBlockBytes) {
  if (num_tuples <= 0) return 0;
  int tuple_bytes = schema.TupleBytes();
  int bf = tuple_bytes > 0 ? block_bytes / tuple_bytes : 1;
  if (bf < 1) bf = 1;
  return (num_tuples + bf - 1) / bf;
}

}  // namespace tcq

#endif  // TCQ_EXEC_TUPLE_SET_H_
