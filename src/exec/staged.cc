#include "exec/staged.h"

#include <algorithm>
#include <chrono>

#include "exec/vectorized.h"
#include "obs/metric_names.h"
#include "util/check.h"
#include <cmath>
#include <functional>
#include <set>
#include <span>
#include <utility>

namespace tcq {

namespace {

/// The cost-formula basis for a sort of `n` tuples (eq. 4.3's n·log n
/// shape); shared with the cost predictor via the stage records.
double SortUnits(double n) {
  if (n <= 0) return 0.0;
  return n * std::log2(n + 2.0);
}

/// Merge-chunk granularity: a sorted left run is split into at most
/// kMaxMergeChunks pieces of at least kMinMergeChunk tuples each. Both are
/// constants (never derived from the worker count), so the task list — and
/// with it every charge — is identical at any parallelism. Small runs stay
/// one chunk, preserving the exact serial merge arithmetic.
constexpr size_t kMinMergeChunk = 2048;
constexpr size_t kMaxMergeChunks = 64;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<std::unique_ptr<StagedNode>> StagedTermEvaluator::BuildNode(
    const ExprPtr& expr, const Catalog& catalog, bool is_root,
    int* next_id) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  auto node = std::make_unique<StagedNode>();
  node->id = (*next_id)++;
  node->kind = expr->kind;
  node->expr = expr.get();

  switch (expr->kind) {
    case ExprKind::kScan: {
      TCQ_ASSIGN_OR_RETURN(node->rel, catalog.Find(expr->relation));
      node->out_schema = node->rel->schema();
      node->total_points = static_cast<double>(node->rel->NumTuples());
      return node;
    }
    case ExprKind::kSelect: {
      TCQ_ASSIGN_OR_RETURN(
          node->left, BuildNode(expr->left, catalog, false, next_id));
      node->out_schema = node->left->out_schema;
      TCQ_ASSIGN_OR_RETURN(
          BoundPredicate bound,
          BoundPredicate::Bind(expr->predicate, node->out_schema));
      node->predicate = std::make_unique<BoundPredicate>(std::move(bound));
      node->total_points = node->left->total_points;
      return node;
    }
    case ExprKind::kProject: {
      if (!is_root) {
        return Status::NotImplemented(
            "sampled evaluation supports Project only as the outermost "
            "operator (Goodman's estimator applies to the whole "
            "expression); got nested " +
            expr->ToString());
      }
      TCQ_ASSIGN_OR_RETURN(
          node->left, BuildNode(expr->left, catalog, false, next_id));
      for (const std::string& name : expr->columns) {
        TCQ_ASSIGN_OR_RETURN(int idx,
                             node->left->out_schema.IndexOf(name));
        node->proj_cols.push_back(idx);
      }
      node->out_schema =
          node->left->out_schema.SelectColumns(node->proj_cols);
      node->total_points = node->left->total_points;
      return node;
    }
    case ExprKind::kJoin: {
      TCQ_ASSIGN_OR_RETURN(
          node->left, BuildNode(expr->left, catalog, false, next_id));
      TCQ_ASSIGN_OR_RETURN(
          node->right, BuildNode(expr->right, catalog, false, next_id));
      for (const auto& [lname, rname] : expr->join_keys) {
        TCQ_ASSIGN_OR_RETURN(int li,
                             node->left->out_schema.IndexOf(lname));
        TCQ_ASSIGN_OR_RETURN(int ri,
                             node->right->out_schema.IndexOf(rname));
        node->lkey.push_back(li);
        node->rkey.push_back(ri);
      }
      node->out_schema =
          node->left->out_schema.ConcatForJoin(node->right->out_schema);
      node->total_points =
          node->left->total_points * node->right->total_points;
      return node;
    }
    case ExprKind::kIntersect: {
      TCQ_ASSIGN_OR_RETURN(
          node->left, BuildNode(expr->left, catalog, false, next_id));
      TCQ_ASSIGN_OR_RETURN(
          node->right, BuildNode(expr->right, catalog, false, next_id));
      if (!node->left->out_schema.CompatibleWith(node->right->out_schema)) {
        return Status::InvalidArgument("intersect operands incompatible");
      }
      // Empty key means "all columns" for the sort/merge helpers.
      node->out_schema = node->left->out_schema;
      node->total_points =
          node->left->total_points * node->right->total_points;
      return node;
    }
    case ExprKind::kUnion:
    case ExprKind::kDifference:
      return Status::InvalidArgument(
          "staged evaluation requires Union/Difference-free terms; run "
          "ExpandCount first");
  }
  return Status::Internal("unknown expression kind");
}

Result<std::unique_ptr<StagedTermEvaluator>> StagedTermEvaluator::Create(
    ExprPtr term, const Catalog& catalog, Fulfillment fulfillment,
    CostLedger* ledger, const CostModel& model) {
  std::unique_ptr<StagedTermEvaluator> evaluator(
      new StagedTermEvaluator(std::move(term), fulfillment, ledger, model));
  int next_id = 0;
  TCQ_ASSIGN_OR_RETURN(
      evaluator->root_,
      BuildNode(evaluator->term_, catalog, /*is_root=*/true, &next_id));
  // The sampling plan assumes each operand relation is a distinct
  // dimension of the point space; a relation scanned twice would require
  // two independent sample streams from the same relation.
  std::vector<std::string> scans;
  CollectScans(evaluator->term_, &scans);
  std::set<std::string> unique(scans.begin(), scans.end());
  if (unique.size() != scans.size()) {
    return Status::NotImplemented(
        "a relation appears more than once in one term (self-join / "
        "self-intersect); not supported by the sampled evaluator");
  }
  return evaluator;
}

Status StagedTermEvaluator::ExecuteStage(
    const std::map<std::string, std::vector<const Block*>>& new_blocks) {
  return ExecuteStageWithMode(new_blocks, fulfillment_);
}

void StagedTermEvaluator::SetObs(const ObsHandle& obs, int term_index) {
  tracer_ = obs.tracer;
  tuples_counter_ =
      obs.metering() ? obs.metrics->counter("exec.tuples_scanned") : nullptr;
  vector_batches_counter_ =
      obs.metering() ? obs.metrics->counter(metric_names::kVectorBatches)
                     : nullptr;
  vector_rows_counter_ =
      obs.metering() ? obs.metrics->counter(metric_names::kVectorRows)
                     : nullptr;
  term_index_ = term_index;
}

Status StagedTermEvaluator::ExecuteStageWithMode(
    const std::map<std::string, std::vector<const Block*>>& new_blocks,
    Fulfillment mode) {
  if (ran_partial_stage_ && mode == Fulfillment::kFull) {
    return Status::InvalidArgument(
        "a full-fulfillment stage cannot follow a partial one");
  }
  TraceSpan span(tracer_, "term_stage", "exec");
  span.Arg("term", static_cast<double>(term_index_));
  span.Arg("stage", static_cast<double>(num_stages_));
  stage_parallel_ = ParallelStats{};
  // Previous per-scan cumulative block counts, for coverage accounting.
  std::vector<const StagedNode*> scan_nodes;
  CollectScanNodes(root_.get(), &scan_nodes);
  std::vector<int64_t> prev_cum;
  for (const StagedNode* scan : scan_nodes) {
    prev_cum.push_back(scan->cum_blocks);
  }

  TCQ_RETURN_NOT_OK(ExecuteNode(root_.get(), new_blocks, mode));

  // Record per-scan new block counts and the space-block coverage gained
  // by this stage: full fulfillment covers every combination of the
  // cumulative samples; partial covers only the new×new combinations.
  std::vector<int64_t> counts;
  double prev_product = 1.0, cum_product = 1.0, new_product = 1.0;
  for (size_t i = 0; i < scan_nodes.size(); ++i) {
    auto it = new_blocks.find(scan_nodes[i]->rel->name());
    int64_t added =
        it == new_blocks.end() ? 0 : static_cast<int64_t>(it->second.size());
    counts.push_back(added);
    prev_product *= static_cast<double>(prev_cum[i]);
    cum_product *= static_cast<double>(scan_nodes[i]->cum_blocks);
    new_product *= static_cast<double>(added);
  }
  if (mode == Fulfillment::kFull) {
    // Cumulative per-scan block counts only grow, so the covered
    // product can never shrink; negative growth would mean the
    // coverage accounting (and with it every estimate scale factor)
    // ran backwards.
    TCQ_CHECK_INVARIANT(cum_product >= prev_product,
                        "space-block coverage decreased in a full stage");
    covered_space_blocks_ += cum_product - prev_product;
  } else {
    TCQ_CHECK_INVARIANT(new_product >= 0.0,
                        "negative new-block product in a partial stage");
    covered_space_blocks_ += new_product;
    ran_partial_stage_ = true;
  }
  stage_scan_blocks_.push_back(std::move(counts));
  if (tuples_counter_ != nullptr) {
    // Tuples fetched from disk blocks this stage: the scans' newest stage
    // records. Deterministic at a fixed seed, so the atomic adds keep the
    // counter bit-identical across thread counts.
    int64_t scanned = 0;
    for (const StagedNode* scan : scan_nodes) {
      if (!scan->stages.empty()) scanned += scan->stages.back().new_tuples;
    }
    if (scanned > 0) tuples_counter_->Add(scanned);
  }
  if (value_col_ >= 0) {
    for (const Tuple& t : root_->stage_out.back()) {
      const Value& v = t[static_cast<size_t>(value_col_)];
      double x = v.index() == 0
                     ? static_cast<double>(std::get<int64_t>(v))
                     : std::get<double>(v);
      value_sum_ += x;
      value_sq_sum_ += x * x;
    }
  }
  ++num_stages_;
  return Status::OK();
}

Status StagedTermEvaluator::TrackValueColumn(int index) {
  if (root_->kind == ExprKind::kProject) {
    return Status::NotImplemented(
        "SUM/AVG over a projection (distinct groups) is not supported");
  }
  if (index < 0 || index >= root_->out_schema.num_columns()) {
    return Status::InvalidArgument("aggregate column index out of range");
  }
  DataType type = root_->out_schema.column(index).type;
  if (type == DataType::kString) {
    return Status::InvalidArgument(
        "aggregate column must be numeric, got string column '" +
        root_->out_schema.column(index).name + "'");
  }
  value_col_ = index;
  return Status::OK();
}

Status StagedTermEvaluator::ExecuteNode(
    StagedNode* node,
    const std::map<std::string, std::vector<const Block*>>& new_blocks,
    Fulfillment mode) {
  const size_t s = static_cast<size_t>(num_stages_);
  NodeStageRecord rec;
  // Recorded step times must match what the clock actually advanced by,
  // including the stage's machine-speed noise factor — the adaptive cost
  // formulas are fitted from these "measured" times, noise and all, just
  // as the paper fit them from wall-clock measurements.
  const double speed =
      ledger_ != nullptr ? ledger_->current_stage_factor() : 1.0;
  auto scale_record = [speed](NodeStageRecord* r) {
    r->write.seconds *= speed;
    r->sort.seconds *= speed;
    r->process.seconds *= speed;
    r->output.seconds *= speed;
    r->seconds *= speed;
  };
  // Wall-clock mode helpers: steps are timed with real clock deltas; a
  // combined process+output delta is split proportionally to the two
  // steps' simulated charges (they interleave inside one operator call).
  auto now = [this] {
    return timing_clock_ != nullptr ? timing_clock_->Now() : 0.0;
  };
  auto split_delta = [](double delta, StepMetrics* process,
                        StepMetrics* output) {
    double total = process->seconds + output->seconds;
    if (total > 0.0) {
      process->seconds = delta * process->seconds / total;
      output->seconds = delta - process->seconds;
    } else {
      process->seconds = delta;
      output->seconds = 0.0;
    }
  };

  switch (node->kind) {
    case ExprKind::kScan: {
      auto it = new_blocks.find(node->rel->name());
      if (it == new_blocks.end()) {
        return Status::InvalidArgument("no sample blocks for relation '" +
                                       node->rel->name() + "'");
      }
      std::vector<Tuple> run;
      for (const Block* b : it->second) {
        BlockView view(b);
        run.insert(run.end(), view.rows().begin(), view.rows().end());
      }
      if (layout_ == Layout::kColumnar) {
        // Mirror the fetched rows as one columnar batch for the vectorized
        // select; blocks built by the relation loader carry their column
        // arrays, so this is a contiguous column-wise concatenation.
        ColumnBatch batch;
        batch.Configure(node->rel->schema());
        for (const Block* b : it->second) {
          BlockView view(b);
          if (view.columns().num_rows() == view.num_rows()) {
            batch.AppendBatch(view.columns());
          } else {
            for (const Tuple& t : view.rows()) batch.AppendRow(t);
          }
        }
        node->stage_out_cols.push_back(std::move(batch));
      }
      node->cum_blocks += static_cast<int64_t>(it->second.size());
      rec.new_blocks = static_cast<int64_t>(it->second.size());
      rec.new_points = static_cast<double>(run.size());
      rec.new_tuples = static_cast<int64_t>(run.size());
      node->cum_points += rec.new_points;
      node->cum_tuples += rec.new_tuples;
      node->stage_out.push_back(std::move(run));
      node->stages.push_back(std::move(rec));
      return Status::OK();
    }

    case ExprKind::kSelect: {
      TCQ_RETURN_NOT_OK(ExecuteNode(node->left.get(), new_blocks, mode));
      if (ledger_ != nullptr) {
        ledger_->Charge(CostCategory::kOpSetup, model_.op_setup_s);
      }
      OpMetrics om;
      double t0 = now();
      std::vector<Tuple> run;
      if (layout_ == Layout::kColumnar) {
        const StagedNode* child = node->left.get();
        ColumnBatch local;
        const ColumnBatch* batch = nullptr;
        if (child->kind == ExprKind::kScan &&
            s < child->stage_out_cols.size()) {
          batch = &child->stage_out_cols[s];
        } else {
          // Non-scan child: assemble the batch from its row output.
          local.Configure(node->out_schema);
          for (const Tuple& t : child->stage_out[s]) local.AppendRow(t);
          batch = &local;
        }
        run = SelectTuplesColumnar(child->stage_out[s], *batch,
                                   *node->predicate, node->out_schema,
                                   ledger_, model_, &om);
        if (vector_batches_counter_ != nullptr) {
          vector_batches_counter_->Add(1);
        }
        if (vector_rows_counter_ != nullptr && batch->num_rows() > 0) {
          vector_rows_counter_->Add(batch->num_rows());
        }
      } else {
        run = SelectTuples(node->left->stage_out[s], *node->predicate,
                           node->out_schema, ledger_, model_, &om);
      }
      double t1 = now();
      rec.process = om.process;
      rec.output = om.output;
      rec.new_points = node->left->stages[s].new_points;
      rec.new_tuples = static_cast<int64_t>(run.size());
      if (timing_clock_ != nullptr) {
        split_delta(t1 - t0, &rec.process, &rec.output);
        rec.seconds = t1 - t0;
      } else {
        rec.seconds = rec.process.seconds + rec.output.seconds +
                      model_.op_setup_s;
        scale_record(&rec);
      }
      node->cum_points += rec.new_points;
      node->cum_tuples += rec.new_tuples;
      node->stage_out.push_back(std::move(run));
      node->stages.push_back(std::move(rec));
      return Status::OK();
    }

    case ExprKind::kProject: {
      TCQ_RETURN_NOT_OK(ExecuteNode(node->left.get(), new_blocks, mode));
      if (ledger_ != nullptr) {
        ledger_->Charge(CostCategory::kOpSetup, model_.op_setup_s);
      }
      // Step 1: project the new child run and write it to a temp file.
      double t0 = now();
      std::vector<Tuple> projected =
          ProjectColumns(node->left->stage_out[s], node->proj_cols, ledger_,
                         model_, &rec.write);
      ChargeTempWrite(node->out_schema,
                      static_cast<int64_t>(projected.size()), ledger_,
                      model_, &rec.write);
      double t1 = now();
      // Step 2: sort the new run.
      rec.sort_units = SortUnits(static_cast<double>(projected.size()));
      SortRun(&projected, /*key=*/{}, ledger_, model_, &rec.sort);
      double t2 = now();
      // Step 3: merge with the previously sorted sample and re-derive the
      // distinct groups with occupancies.
      std::vector<Tuple> merged;
      merged.reserve(node->cum_projected_sorted.size() + projected.size());
      std::merge(node->cum_projected_sorted.begin(),
                 node->cum_projected_sorted.end(), projected.begin(),
                 projected.end(), std::back_inserter(merged),
                 [](const Tuple& a, const Tuple& b) {
                   return CompareTuples(a, b) < 0;
                 });
      if (ledger_ != nullptr) {
        ledger_->ChargeN(CostCategory::kMergeCompare,
                         static_cast<int64_t>(merged.size()),
                         model_.merge_compare_s);
      }
      rec.process.seconds +=
          model_.merge_compare_s * static_cast<double>(merged.size());
      rec.process.comparisons += static_cast<int64_t>(merged.size());
      node->cum_projected_sorted = std::move(merged);
      OpMetrics dedup_metrics;
      node->groups = DedupSorted(node->cum_projected_sorted,
                                 node->out_schema, ledger_, model_,
                                 &dedup_metrics);
      rec.process.seconds += dedup_metrics.process.seconds;
      rec.process.comparisons += dedup_metrics.process.comparisons;
      rec.process.in_tuples += dedup_metrics.process.in_tuples;
      rec.output = dedup_metrics.output;
      int64_t prev_groups = node->cum_tuples;
      node->cum_tuples = static_cast<int64_t>(node->groups.size());
      rec.new_tuples = node->cum_tuples - prev_groups;
      rec.new_points = node->left->stages[s].new_points;
      if (timing_clock_ != nullptr) {
        double t3 = now();
        rec.write.seconds = t1 - t0;
        rec.sort.seconds = t2 - t1;
        split_delta(t3 - t2, &rec.process, &rec.output);
        rec.seconds = t3 - t0;
      } else {
        rec.seconds = rec.write.seconds + rec.sort.seconds +
                      rec.process.seconds + rec.output.seconds +
                      model_.op_setup_s;
        scale_record(&rec);
      }
      node->cum_points += rec.new_points;
      node->stage_out.push_back({});  // projection is terminal
      node->stages.push_back(std::move(rec));
      return Status::OK();
    }

    case ExprKind::kJoin:
    case ExprKind::kIntersect: {
      const double prev_l = node->left->cum_points;
      const double prev_r = node->right->cum_points;
      TCQ_RETURN_NOT_OK(ExecuteNode(node->left.get(), new_blocks, mode));
      TCQ_RETURN_NOT_OK(ExecuteNode(node->right.get(), new_blocks, mode));
      if (ledger_ != nullptr) {
        ledger_->Charge(CostCategory::kOpSetup, model_.op_setup_s);
      }
      const bool is_join = node->kind == ExprKind::kJoin;
      // Steps 1–2 (Figures 4.4/4.6): write the new sample runs to temp
      // files and sort them (previous runs stay sorted from earlier
      // stages).
      double t0 = now();
      std::vector<Tuple> new_l = node->left->stage_out[s];
      std::vector<Tuple> new_r = node->right->stage_out[s];
      ChargeTempWrite(node->left->out_schema,
                      static_cast<int64_t>(new_l.size()), ledger_, model_,
                      &rec.write);
      ChargeTempWrite(node->right->out_schema,
                      static_cast<int64_t>(new_r.size()), ledger_, model_,
                      &rec.write);
      double t1 = now();
      rec.sort_units = SortUnits(static_cast<double>(new_l.size())) +
                       SortUnits(static_cast<double>(new_r.size()));
      const std::vector<int> lkey =
          is_join ? node->lkey : std::vector<int>{};
      const std::vector<int> rkey =
          is_join ? node->rkey : std::vector<int>{};
      if (layout_ == Layout::kColumnar && node->sorted_left.empty()) {
        // Decided once, before the first run is sorted, so every stage of
        // the node takes the same path and the per-stage key buffers stay
        // aligned with the sorted runs.
        node->columnar_merge_ok =
            !is_join ||
            ColumnarJoinKeysCompatible(node->left->out_schema, node->lkey,
                                       node->right->out_schema, node->rkey);
        if (node->columnar_merge_ok) {
          node->merge_key_width =
              EncodedKeyWidth(node->left->out_schema, lkey);
        }
      }
      const bool columnar =
          layout_ == Layout::kColumnar && node->columnar_merge_ok;
      // Runs the prepared task batch on the pool (inline when none),
      // recording the section's span and the tasks' summed durations for
      // the parallel-efficiency fit. Charges never happen inside tasks.
      auto run_section = [&](std::vector<std::function<void()>>* tasks,
                             const std::vector<double>* durations) {
        auto start = std::chrono::steady_clock::now();
        RunTasks(pool_, tasks, pool_max_width_);
        stage_parallel_.span_seconds += SecondsSince(start);
        for (double d : *durations) stage_parallel_.work_seconds += d;
        stage_parallel_.tasks += static_cast<int>(tasks->size());
      };
      // Steps 1–2 parallel part: the two new runs sort on their own tasks;
      // the realized comparison counts are charged post-barrier in fixed
      // (left, right) order, mirroring the serial SortRun sequence.
      std::vector<uint8_t> lkeys_buf, rkeys_buf;
      {
        int64_t sort_comp[2] = {0, 0};
        std::vector<double> durs(2, 0.0);
        std::vector<std::function<void()>> tasks;
        const Schema& lschema = node->left->out_schema;
        const Schema& rschema = node->right->out_schema;
        tasks.push_back([&new_l, &lkey, &sort_comp, &durs, columnar,
                         &lschema, &lkeys_buf] {
          auto start = std::chrono::steady_clock::now();
          if (columnar) {
            SortRunRangeColumnar(&new_l, lschema, lkey, &lkeys_buf,
                                 &sort_comp[0]);
          } else {
            SortRunRange(&new_l, lkey, &sort_comp[0]);
          }
          durs[0] = SecondsSince(start);
        });
        tasks.push_back([&new_r, &rkey, &sort_comp, &durs, columnar,
                         &rschema, &rkeys_buf] {
          auto start = std::chrono::steady_clock::now();
          if (columnar) {
            SortRunRangeColumnar(&new_r, rschema, rkey, &rkeys_buf,
                                 &sort_comp[1]);
          } else {
            SortRunRange(&new_r, rkey, &sort_comp[1]);
          }
          durs[1] = SecondsSince(start);
        });
        run_section(&tasks, &durs);
        for (int k = 0; k < 2; ++k) {
          if (ledger_ != nullptr) {
            ledger_->ChargeN(CostCategory::kSortCompare, sort_comp[k],
                             model_.sort_compare_s);
          }
          rec.sort.seconds +=
              model_.sort_compare_s * static_cast<double>(sort_comp[k]);
          rec.sort.comparisons += sort_comp[k];
        }
        rec.sort.in_tuples +=
            static_cast<int64_t>(new_l.size() + new_r.size());
        rec.sort.out_tuples +=
            static_cast<int64_t>(new_l.size() + new_r.size());
      }
      double t2 = now();
      node->sorted_left.push_back(std::move(new_l));
      node->sorted_right.push_back(std::move(new_r));
      if (columnar) {
        node->sorted_left_keys.push_back(std::move(lkeys_buf));
        node->sorted_right_keys.push_back(std::move(rkeys_buf));
      }

      // Step 3: merge run pairs. Full fulfillment: every pair whose newest
      // run is this stage (Figure 4.5). Partial: new×new only. Each pair's
      // left run is chunked at key-group boundaries and every (pair, chunk)
      // merges on its own task; chunk outputs concatenated in task order
      // equal the serial pair-by-pair merge exactly.
      std::vector<std::pair<size_t, size_t>> pairs;
      if (mode == Fulfillment::kFull) {
        for (size_t j = 0; j <= s; ++j) pairs.emplace_back(s, j);
        for (size_t i = 0; i < s; ++i) pairs.emplace_back(i, s);
      } else {
        pairs.emplace_back(s, s);
      }
      struct MergeChunk {
        size_t pair = 0;  // index into `pairs`
        size_t lbeg = 0, lend = 0, rbeg = 0, rend = 0;
        std::vector<Tuple> out;
        int64_t comparisons = 0;
        double seconds = 0.0;
      };
      std::vector<MergeChunk> chunks;
      for (size_t p = 0; p < pairs.size(); ++p) {
        const std::vector<Tuple>& lrun = node->sorted_left[pairs[p].first];
        const std::vector<Tuple>& rrun =
            node->sorted_right[pairs[p].second];
        std::vector<size_t> bounds = PartitionSortedRun(
            lrun, lkey, kMaxMergeChunks, kMinMergeChunk);
        for (size_t c = 0; c + 1 < bounds.size(); ++c) {
          MergeChunk chunk;
          chunk.pair = p;
          chunk.lbeg = bounds[c];
          chunk.lend = bounds[c + 1];
          // First chunk scans the right run from the top and the last to
          // its end, so a single-chunk pair reproduces the serial merge's
          // comparison count exactly; interior boundaries are located by
          // (uncharged) binary search.
          chunk.rbeg = c == 0 ? 0
                              : LowerBoundCrossKey(rrun, rkey,
                                                   lrun[bounds[c]], lkey);
          chunk.rend = c + 2 == bounds.size()
                           ? rrun.size()
                           : LowerBoundCrossKey(rrun, rkey,
                                                lrun[bounds[c + 1]], lkey);
          chunks.push_back(std::move(chunk));
        }
      }
      {
        std::vector<double> durs(chunks.size(), 0.0);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(chunks.size());
        for (size_t t = 0; t < chunks.size(); ++t) {
          MergeChunk* chunk = &chunks[t];
          const std::vector<Tuple>& lrun =
              node->sorted_left[pairs[chunk->pair].first];
          const std::vector<Tuple>& rrun =
              node->sorted_right[pairs[chunk->pair].second];
          std::span<const Tuple> lspan(lrun.data() + chunk->lbeg,
                                       chunk->lend - chunk->lbeg);
          std::span<const Tuple> rspan(rrun.data() + chunk->rbeg,
                                       chunk->rend - chunk->rbeg);
          const int kw = node->merge_key_width;
          const uint8_t* lkptr =
              columnar && chunk->lend > chunk->lbeg
                  ? node->sorted_left_keys[pairs[chunk->pair].first].data() +
                        chunk->lbeg * static_cast<size_t>(kw)
                  : nullptr;
          const uint8_t* rkptr =
              columnar && chunk->rend > chunk->rbeg
                  ? node->sorted_right_keys[pairs[chunk->pair].second]
                            .data() +
                        chunk->rbeg * static_cast<size_t>(kw)
                  : nullptr;
          double* dur = &durs[t];
          tasks.push_back([chunk, lspan, rspan, is_join, &lkey, &rkey,
                           columnar, lkptr, rkptr, kw, dur] {
            auto start = std::chrono::steady_clock::now();
            if (columnar) {
              chunk->out = is_join
                               ? MergeJoinRangeColumnar(lspan, lkptr, rspan,
                                                        rkptr, kw,
                                                        &chunk->comparisons)
                               : MergeIntersectRangeColumnar(
                                     lspan, lkptr, rspan, rkptr, kw,
                                     &chunk->comparisons);
            } else {
              chunk->out =
                  is_join ? MergeJoinRange(lspan, lkey, rspan, rkey,
                                           &chunk->comparisons)
                          : MergeIntersectRange(lspan, rspan,
                                                &chunk->comparisons);
            }
            *dur = SecondsSince(start);
          });
        }
        run_section(&tasks, &durs);
      }
      // Fixed-order reduction: per pair, sum the chunk counts and charge
      // merge comparisons + output writes exactly as the serial
      // MergeJoin/MergeIntersect calls did (pages from the pair's total
      // output, so the chunk count never changes the arithmetic).
      std::vector<Tuple> out;
      OpMetrics om;
      size_t ci = 0;
      for (size_t p = 0; p < pairs.size(); ++p) {
        int64_t comparisons = 0;
        int64_t out_tuples = 0;
        for (; ci < chunks.size() && chunks[ci].pair == p; ++ci) {
          comparisons += chunks[ci].comparisons;
          out_tuples += static_cast<int64_t>(chunks[ci].out.size());
          out.insert(out.end(),
                     std::make_move_iterator(chunks[ci].out.begin()),
                     std::make_move_iterator(chunks[ci].out.end()));
        }
        const std::vector<Tuple>& lrun = node->sorted_left[pairs[p].first];
        const std::vector<Tuple>& rrun =
            node->sorted_right[pairs[p].second];
        if (ledger_ != nullptr) {
          ledger_->ChargeN(CostCategory::kMergeCompare, comparisons,
                           model_.merge_compare_s);
        }
        om.process.seconds +=
            model_.merge_compare_s * static_cast<double>(comparisons);
        om.process.in_tuples +=
            static_cast<int64_t>(lrun.size() + rrun.size());
        om.process.comparisons += comparisons;
        int64_t pages = PagesFor(node->out_schema, out_tuples);
        if (ledger_ != nullptr) {
          ledger_->ChargeN(CostCategory::kTupleMove, out_tuples,
                           model_.tuple_move_s);
          ledger_->ChargeN(CostCategory::kBlockWrite, pages,
                           model_.block_write_s);
        }
        om.output.seconds +=
            model_.tuple_move_s * static_cast<double>(out_tuples) +
            model_.block_write_s * static_cast<double>(pages);
        om.output.out_tuples += out_tuples;
        om.output.out_pages += pages;
      }
      // The reduction cursor only moves forward and must end past the
      // last chunk: chunks are generated in pair order, and charging
      // them in any other order would break the bit-identical
      // any-thread-count guarantee (DESIGN.md, "Threading model").
      TCQ_CHECK_INVARIANT(ci == chunks.size(),
                          "merge-chunk reduction left chunks unconsumed "
                          "or out of pair order");

      if (mode == Fulfillment::kFull) {
        rec.new_points = node->left->cum_points * node->right->cum_points -
                         prev_l * prev_r;
      } else {
        rec.new_points = node->left->stages[s].new_points *
                         node->right->stages[s].new_points;
      }
      rec.process = om.process;
      rec.output = om.output;
      rec.new_tuples = static_cast<int64_t>(out.size());
      if (timing_clock_ != nullptr) {
        double t3 = now();
        rec.write.seconds = t1 - t0;
        rec.sort.seconds = t2 - t1;
        split_delta(t3 - t2, &rec.process, &rec.output);
        rec.seconds = t3 - t0;
      } else {
        rec.seconds = rec.write.seconds + rec.sort.seconds +
                      rec.process.seconds + rec.output.seconds +
                      model_.op_setup_s;
        scale_record(&rec);
      }
      node->cum_points += rec.new_points;
      node->cum_tuples += rec.new_tuples;
      node->stage_out.push_back(std::move(out));
      node->stages.push_back(std::move(rec));
      return Status::OK();
    }

    case ExprKind::kUnion:
    case ExprKind::kDifference:
      return Status::Internal("set op in staged term");
  }
  return Status::Internal("unknown expression kind");
}

void StagedTermEvaluator::CollectScanNodes(
    const StagedNode* node, std::vector<const StagedNode*>* out) const {
  if (node == nullptr) return;
  if (node->kind == ExprKind::kScan) {
    out->push_back(node);
    return;
  }
  CollectScanNodes(node->left.get(), out);
  CollectScanNodes(node->right.get(), out);
}

double StagedTermEvaluator::total_space_blocks() const {
  std::vector<const StagedNode*> scans;
  CollectScanNodes(root_.get(), &scans);
  double b = 1.0;
  for (const StagedNode* scan : scans) {
    b *= static_cast<double>(scan->rel->NumBlocks());
  }
  return b;
}

double StagedTermEvaluator::cum_space_blocks() const {
  return covered_space_blocks_;
}

std::vector<int64_t> StagedTermEvaluator::RootOccupancies() const {
  std::vector<int64_t> out;
  if (!root_is_project()) return out;
  out.reserve(root_->groups.size());
  for (const GroupCount& g : root_->groups) out.push_back(g.count);
  return out;
}

std::vector<const StagedNode*> StagedTermEvaluator::NodesPreOrder() const {
  std::vector<const StagedNode*> out;
  // Pre-order matches the id assignment in BuildNode.
  std::vector<const StagedNode*> stack{root_.get()};
  while (!stack.empty()) {
    const StagedNode* node = stack.back();
    stack.pop_back();
    out.push_back(node);
    if (node->right != nullptr) stack.push_back(node->right.get());
    if (node->left != nullptr) stack.push_back(node->left.get());
  }
  std::sort(out.begin(), out.end(),
            [](const StagedNode* a, const StagedNode* b) {
              return a->id < b->id;
            });
  return out;
}

}  // namespace tcq
