#include "exec/vectorized.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <variant>

namespace tcq {

namespace {

uint64_t LoadBigEndian64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}

/// Lexicographic byte comparison with memcmp semantics (sign of the
/// result), inlined and chunked 8 bytes at a time. The hot merge/sort
/// loops call this with a run-time width, which libc memcmp turns into an
/// out-of-line call per comparison; comparing big-endian 64-bit chunks
/// resolves almost every comparison on the first chunk (the leading key
/// column) at a fraction of the cost.
[[gnu::always_inline]] inline int CompareKeys(const uint8_t* a,
                                              const uint8_t* b, size_t w) {
  size_t off = 0;
  for (; off + 8 <= w; off += 8) {
    uint64_t x = LoadBigEndian64(a + off);
    uint64_t y = LoadBigEndian64(b + off);
    if (x != y) return x < y ? -1 : 1;
  }
  for (; off < w; ++off) {
    if (a[off] != b[off]) return a[off] < b[off] ? -1 : 1;
  }
  return 0;
}

/// Appends a 64-bit pattern big-endian, so memcmp order equals unsigned
/// integer order.
void PutBigEndian(uint64_t u, std::vector<uint8_t>* out) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<uint8_t>(u >> (8 * i)));
  }
}

uint64_t EncodeInt64(int64_t v) {
  return static_cast<uint64_t>(v) ^ (1ull << 63);
}

uint64_t EncodeDouble(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0, which CompareValues ties with +0.0
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  if ((u >> 63) != 0) {
    u = ~u;  // negative: reverse the order of the whole range
  } else {
    u ^= 1ull << 63;  // positive: lift above every negative
  }
  return u;
}

void EncodeValue(const Value& v, const Column& column,
                 std::vector<uint8_t>* out) {
  switch (column.type) {
    case DataType::kInt64:
      PutBigEndian(EncodeInt64(std::get<int64_t>(v)), out);
      break;
    case DataType::kDouble:
      PutBigEndian(EncodeDouble(std::get<double>(v)), out);
      break;
    case DataType::kString: {
      const std::string& s = std::get<std::string>(v);
      out->insert(out->end(), s.begin(), s.end());
      out->insert(out->end(), static_cast<size_t>(column.width) - s.size(),
                  0);
      break;
    }
  }
}

}  // namespace

int EncodedKeyWidth(const Schema& schema, const std::vector<int>& key) {
  if (key.empty()) return schema.TupleBytes();
  int width = 0;
  for (int k : key) width += schema.column(k).ByteWidth();
  return width;
}

void EncodeKeyColumns(std::span<const Tuple> run, const Schema& schema,
                      const std::vector<int>& key,
                      std::vector<uint8_t>* out) {
  out->reserve(out->size() +
               run.size() * static_cast<size_t>(EncodedKeyWidth(schema, key)));
  if (key.empty()) {
    for (const Tuple& t : run) {
      for (int c = 0; c < schema.num_columns(); ++c) {
        EncodeValue(t[static_cast<size_t>(c)], schema.column(c), out);
      }
    }
  } else {
    for (const Tuple& t : run) {
      for (int k : key) {
        EncodeValue(t[static_cast<size_t>(k)], schema.column(k), out);
      }
    }
  }
}

bool ColumnarJoinKeysCompatible(const Schema& left_schema,
                                const std::vector<int>& left_key,
                                const Schema& right_schema,
                                const std::vector<int>& right_key) {
  if (left_key.size() != right_key.size()) return false;
  for (size_t k = 0; k < left_key.size(); ++k) {
    const Column& l = left_schema.column(left_key[k]);
    const Column& r = right_schema.column(right_key[k]);
    if (l.type != r.type || l.ByteWidth() != r.ByteWidth()) return false;
  }
  return true;
}

void SortRunRangeColumnar(std::vector<Tuple>* tuples, const Schema& schema,
                          const std::vector<int>& key,
                          std::vector<uint8_t>* keys, int64_t* comparisons) {
  const size_t n = tuples->size();
  const size_t width = static_cast<size_t>(EncodedKeyWidth(schema, key));
  keys->clear();
  EncodeKeyColumns(std::span<const Tuple>(*tuples), schema, key, keys);
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const uint8_t* base = keys->data();
  // Same introsort over the same comparator outcomes as SortRunRange's
  // tuple sort, so the comparison count and the permutation are identical.
  int64_t comps = 0;
  std::sort(perm.begin(), perm.end(),
            [&comps, base, width](uint32_t a, uint32_t b) {
              ++comps;
              return CompareKeys(base + a * width, base + b * width, width) <
                     0;
            });
  *comparisons += comps;
  std::vector<Tuple> sorted_tuples;
  sorted_tuples.reserve(n);
  std::vector<uint8_t> sorted_keys(n * width);
  for (size_t i = 0; i < n; ++i) {
    sorted_tuples.push_back(std::move((*tuples)[perm[i]]));
    std::memcpy(sorted_keys.data() + i * width, base + perm[i] * width,
                width);
  }
  *tuples = std::move(sorted_tuples);
  *keys = std::move(sorted_keys);
}

std::vector<Tuple> MergeIntersectRangeColumnar(std::span<const Tuple> left,
                                               const uint8_t* left_keys,
                                               std::span<const Tuple> right,
                                               const uint8_t* right_keys,
                                               int key_width,
                                               int64_t* comparisons) {
  const size_t w = static_cast<size_t>(key_width);
  std::vector<Tuple> out;
  size_t i = 0, j = 0;
  int64_t comps = 0;
  while (i < left.size() && j < right.size()) {
    ++comps;
    int c = CompareKeys(left_keys + i * w, right_keys + j * w, w);
    if (c != 0) {
      // Branchless advance: which side moves is data-dependent and
      // unpredictable, so a conditional increment (cmov) beats a taken/
      // not-taken branch. Exactly one of the two increments is nonzero —
      // the iteration sequence matches the branchy row merge.
      i += static_cast<size_t>(c < 0);
      j += static_cast<size_t>(c > 0);
    } else {
      // Equal group: emit one output point per (left, right) pair.
      size_t i_end = i + 1;
      while (i_end < left.size()) {
        ++comps;
        if (CompareKeys(left_keys + i_end * w, left_keys + i * w, w) != 0) {
          break;
        }
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < right.size()) {
        ++comps;
        if (CompareKeys(right_keys + j_end * w, right_keys + j * w, w) !=
            0) {
          break;
        }
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          (void)b;
          out.push_back(left[a]);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  *comparisons += comps;
  return out;
}

std::vector<Tuple> MergeJoinRangeColumnar(std::span<const Tuple> left,
                                          const uint8_t* left_keys,
                                          std::span<const Tuple> right,
                                          const uint8_t* right_keys,
                                          int key_width,
                                          int64_t* comparisons) {
  const size_t w = static_cast<size_t>(key_width);
  std::vector<Tuple> out;
  size_t i = 0, j = 0;
  int64_t comps = 0;
  while (i < left.size() && j < right.size()) {
    // One charged comparison per cross probe, as in MergeJoinRange's
    // cmp_lr.
    ++comps;
    int c = CompareKeys(left_keys + i * w, right_keys + j * w, w);
    if (c != 0) {
      // Branchless advance: which side moves is data-dependent and
      // unpredictable, so a conditional increment (cmov) beats a taken/
      // not-taken branch. Exactly one of the two increments is nonzero —
      // the iteration sequence matches the branchy row merge.
      i += static_cast<size_t>(c < 0);
      j += static_cast<size_t>(c > 0);
    } else {
      size_t i_end = i + 1;
      while (i_end < left.size()) {
        ++comps;
        if (CompareKeys(left_keys + i_end * w, left_keys + i * w, w) != 0) {
          break;
        }
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < right.size()) {
        ++comps;
        if (CompareKeys(right_keys + j_end * w, right_keys + j * w, w) !=
            0) {
          break;
        }
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          Tuple joined = left[a];
          joined.insert(joined.end(), right[b].begin(), right[b].end());
          out.push_back(std::move(joined));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  *comparisons += comps;
  return out;
}

}  // namespace tcq
