#ifndef TCQ_EXEC_STAGED_H_
#define TCQ_EXEC_STAGED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/tuple_set.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "ra/expr.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/ledger.h"
#include "storage/column_batch.h"
#include "storage/relation.h"
#include "util/layout.h"
#include "util/result.h"

namespace tcq {

/// How samples from different stages are combined in binary operators
/// (paper §4, Figure 4.5).
enum class Fulfillment {
  /// Stage s evaluates every (left-run, right-run) pair whose newest run is
  /// s: new×new, new×old and old×new. Makes full use of all sampled data;
  /// per-stage cost grows with the cumulative sample.
  kFull,
  /// Stage s evaluates only new×new. Cheaper per stage; covers fewer
  /// points ([HoOT 88a]'s partial fulfillment).
  kPartial,
};

/// Realized work/span of the parallel sections of one stage: `work` is the
/// sum of per-task durations, `span` the elapsed time of the fan-out
/// sections. work/span is the realized speedup the engine feeds to
/// AdaptiveCostModel::ObserveParallelism in wall-clock mode.
struct ParallelStats {
  double work_seconds = 0.0;
  double span_seconds = 0.0;
  int tasks = 0;

  void Add(const ParallelStats& other) {
    work_seconds += other.work_seconds;
    span_seconds += other.span_seconds;
    tasks += other.tasks;
  }
};

/// Realized per-stage execution record of one operator node.
struct NodeStageRecord {
  double new_points = 0.0;   // newly covered points of this node's space
  int64_t new_tuples = 0;    // output tuples produced this stage
  int64_t new_blocks = 0;    // scan nodes: disk blocks fetched this stage
  double sort_units = 0.0;   // Σ n·log2(n+2) over the runs sorted this stage
  StepMetrics write;         // temp-file write step (binary ops, project)
  StepMetrics sort;          // sort step (binary ops, project)
  StepMetrics process;       // merge / scan / predicate-evaluation step
  StepMetrics output;        // result tuple moves + page writes
  double seconds = 0.0;      // total realized operator time this stage
};

/// Per-operator evaluation state of a staged term. Nodes mirror the Expr
/// tree; `id` is the pre-order index, used by the time-control layer to
/// key selectivities and cost coefficients to operators.
struct StagedNode {
  int id = 0;
  ExprKind kind = ExprKind::kScan;
  const Expr* expr = nullptr;
  Schema out_schema;

  // kScan
  RelationPtr rel;
  int64_t cum_blocks = 0;  // sampled blocks so far

  // kSelect
  std::unique_ptr<BoundPredicate> predicate;

  // kProject (root only)
  std::vector<int> proj_cols;
  std::vector<Tuple> cum_projected_sorted;  // all projected sample tuples
  std::vector<GroupCount> groups;           // current distinct groups

  // kJoin / kIntersect
  std::vector<int> lkey, rkey;  // key positions in the child schemas
  std::vector<std::vector<Tuple>> sorted_left;   // per-stage sorted runs
  std::vector<std::vector<Tuple>> sorted_right;

  // Columnar mode (Layout::kColumnar) only: the encoded sort keys of each
  // per-stage sorted run (indices aligned with sorted_left/sorted_right),
  // their byte width, and whether the columnar merge kernels apply to this
  // node's keys (join keys of mismatched type or width fall back to the
  // row kernels — see ColumnarJoinKeysCompatible).
  std::vector<std::vector<uint8_t>> sorted_left_keys;
  std::vector<std::vector<uint8_t>> sorted_right_keys;
  int merge_key_width = 0;
  bool columnar_merge_ok = true;

  // kScan, columnar mode only: per-stage columnar batches mirroring
  // stage_out, assembled from the fetched blocks' column arrays.
  std::vector<ColumnBatch> stage_out_cols;

  std::unique_ptr<StagedNode> left;
  std::unique_ptr<StagedNode> right;

  // Per-stage output runs (scan: fetched tuples; select: qualifying
  // tuples; binary: merged outputs of the stage's run pairs).
  std::vector<std::vector<Tuple>> stage_out;

  // Accounting.
  double total_points = 0.0;  // full point-space size of this subtree
  double cum_points = 0.0;    // points covered so far
  int64_t cum_tuples = 0;     // cumulative output tuples (distinct groups
                              // for a root Project — not additive)
  std::vector<NodeStageRecord> stages;
};

/// Evaluates one Union/Difference-free term of COUNT(E) stage by stage
/// over cluster samples, implementing the paper's estimator-evaluation
/// algorithms (Figures 4.3–4.7) with full or partial fulfillment.
///
/// The caller (the engine) draws disk blocks per relation per stage,
/// charges their random reads once, and passes them to every term sharing
/// the relation via `ExecuteStage`. Restrictions (documented in
/// DESIGN.md): no Union/Difference (expand first), Project only as the
/// root operator, and no relation may appear in two scans of one term.
class StagedTermEvaluator {
 public:
  [[nodiscard]] static Result<std::unique_ptr<StagedTermEvaluator>> Create(
      ExprPtr term, const Catalog& catalog, Fulfillment fulfillment,
      CostLedger* ledger, const CostModel& model);

  /// Wall-clock mode: realized step times in the stage records are taken
  /// from deltas of `clock` (real elapsed time) instead of the simulated
  /// charges. Pass the same clock the engine's deadline uses.
  void MeasureStepsWith(const Clock* clock) { timing_clock_ = clock; }

  /// Fans the per-stage run sorts and merge-pair partitions out across
  /// `pool` workers (null or 0-worker pool = inline execution). The task
  /// decomposition depends only on the data — chunks split at key-group
  /// boundaries — and all cost charges happen post-barrier in a fixed
  /// order, so results and simulated charges are bit-identical for any
  /// pool width. `pool` is not owned and must outlive this evaluator.
  /// `max_width` > 0 caps the threads participating in this evaluator's
  /// batches (counting the caller) — a query narrower than a shared
  /// high-water pool passes its configured width here; 0 = uncapped.
  void UseThreadPool(ThreadPool* pool, int max_width = 0) {
    pool_ = pool;
    pool_max_width_ = max_width;
  }

  /// Selects the evaluation path: Layout::kColumnar routes selections
  /// through the batch-vectorized bitmap kernel and sorts/merges through
  /// the encoded-key columnar kernels. Estimates, stage outputs and every
  /// simulated-time charge are bit-identical to the row path (the columnar
  /// kernels count comparisons at exactly the same points — DESIGN.md
  /// §11); only real elapsed time differs. Set before the first stage and
  /// keep fixed for the evaluator's lifetime.
  void SetLayout(Layout layout) { layout_ = layout; }
  Layout layout() const { return layout_; }

  /// Realized work/span of the last executed stage's parallel sections.
  const ParallelStats& last_stage_parallelism() const {
    return stage_parallel_;
  }

  /// Attaches observability sinks: each executed stage records a
  /// `term_stage` trace span and adds its scans' fetched tuples to the
  /// `exec.tuples_scanned` counter. ExecuteStage may run on a pool worker;
  /// both sinks are safe there (lock-free trace buffers, atomic counter)
  /// and the counter total is deterministic at a fixed seed because the
  /// scanned tuples are. `term_index` labels this evaluator's spans.
  void SetObs(const ObsHandle& obs, int term_index);

  /// Runs one stage over the newly drawn blocks. The map must contain an
  /// entry for every relation scanned by this term (value = pointers to
  /// the new blocks; may be empty).
  [[nodiscard]] Status ExecuteStage(
      const std::map<std::string, std::vector<const Block*>>& new_blocks);

  /// Runs one stage with an explicit per-stage fulfillment mode (the
  /// paper's §5.B hybrid: full stages first, then partial ones to use up
  /// residual time). Once a partial stage has run, a later full stage is
  /// rejected — its all-pairs merges would assume prior pairs that the
  /// partial stage never evaluated, corrupting the coverage accounting.
  [[nodiscard]] Status ExecuteStageWithMode(
      const std::map<std::string, std::vector<const Block*>>& new_blocks,
      Fulfillment mode);

  int num_stages() const { return num_stages_; }

  /// Root-level estimation inputs.
  int64_t cum_hits() const { return root_->cum_tuples; }
  double cum_points() const { return root_->cum_points; }
  double total_points() const { return root_->total_points; }

  /// Space-block coverage for the cluster estimator Ŷb = B·(Σ yi)/b.
  double total_space_blocks() const;
  double cum_space_blocks() const;

  /// True when the root is a projection, in which case the Goodman
  /// estimator applies and `RootOccupancies` is meaningful.
  bool root_is_project() const {
    return root_->kind == ExprKind::kProject;
  }
  /// Occupancy counts of the distinct groups in the cumulative sample.
  std::vector<int64_t> RootOccupancies() const;

  const StagedNode& root() const { return *root_; }
  /// Nodes in pre-order (id order); pointers remain owned by the tree.
  std::vector<const StagedNode*> NodesPreOrder() const;
  /// The term this evaluator runs.
  const ExprPtr& term() const { return term_; }
  Fulfillment fulfillment() const { return fulfillment_; }

  /// Enables aggregate-value tracking for SUM/AVG estimators: the numeric
  /// output column at `index` (position in the root output schema) is
  /// accumulated over every sampled output tuple. Not supported for
  /// projection roots (distinct-group sums need different machinery).
  [[nodiscard]] Status TrackValueColumn(int index);
  /// Σ v over sampled output tuples (0-valued points contribute nothing).
  double cum_value_sum() const { return value_sum_; }
  /// Σ v² over sampled output tuples.
  double cum_value_sq_sum() const { return value_sq_sum_; }
  bool tracking_values() const { return value_col_ >= 0; }

 private:
  StagedTermEvaluator(ExprPtr term, Fulfillment fulfillment,
                      CostLedger* ledger, CostModel model)
      : term_(std::move(term)),
        fulfillment_(fulfillment),
        ledger_(ledger),
        model_(model) {}

  [[nodiscard]] static Result<std::unique_ptr<StagedNode>> BuildNode(
      const ExprPtr& expr, const Catalog& catalog, bool is_root, int* next_id);

  [[nodiscard]] Status ExecuteNode(
      StagedNode* node,
      const std::map<std::string, std::vector<const Block*>>& new_blocks,
      Fulfillment mode);

  void CollectScanNodes(const StagedNode* node,
                        std::vector<const StagedNode*>* out) const;

  ExprPtr term_;
  Fulfillment fulfillment_;
  CostLedger* ledger_;
  const Clock* timing_clock_ = nullptr;
  Tracer* tracer_ = nullptr;
  Counter* tuples_counter_ = nullptr;
  Counter* vector_batches_counter_ = nullptr;
  Counter* vector_rows_counter_ = nullptr;
  int term_index_ = 0;
  Layout layout_ = Layout::kRow;
  ThreadPool* pool_ = nullptr;
  int pool_max_width_ = 0;
  ParallelStats stage_parallel_;
  CostModel model_;
  std::unique_ptr<StagedNode> root_;
  int num_stages_ = 0;
  int value_col_ = -1;
  double value_sum_ = 0.0;
  double value_sq_sum_ = 0.0;
  bool ran_partial_stage_ = false;
  double covered_space_blocks_ = 0.0;
  // Per-stage per-scan new block counts (scan id -> counts), for the
  // partial-fulfillment space-block bookkeeping.
  std::vector<std::vector<int64_t>> stage_scan_blocks_;
};

}  // namespace tcq

#endif  // TCQ_EXEC_STAGED_H_
