#include "exec/operators.h"

#include <algorithm>
#include <cassert>

namespace tcq {

namespace {

/// Accumulates charges into both the ledger and a local step counter so
/// each operator step knows the simulated time it consumed.
class ChargeScope {
 public:
  ChargeScope(CostLedger* ledger, StepMetrics* metrics)
      : ledger_(ledger), metrics_(metrics) {}

  void ChargeN(CostCategory category, int64_t count, double unit_seconds) {
    if (count <= 0) return;
    // The one sanctioned pass-through: callers of this scope already name
    // their CostCategory::k... literally at every ChargeN call site.
    if (ledger_ != nullptr) {
      ledger_->ChargeN(  // tcq-lint: allow(ledger-category-charged)
          category, count, unit_seconds);
    }
    if (metrics_ != nullptr) {
      metrics_->seconds += unit_seconds * static_cast<double>(count);
    }
  }

 private:
  CostLedger* ledger_;
  StepMetrics* metrics_;
};

/// Charges the output-writing step (tuple moves + page writes) and records
/// it into `step`.
void ChargeOutput(const Schema& schema, int64_t out_tuples,
                  CostLedger* ledger, const CostModel& model,
                  StepMetrics* step) {
  ChargeScope charge(ledger, step);
  int64_t pages = PagesFor(schema, out_tuples);
  charge.ChargeN(CostCategory::kTupleMove, out_tuples, model.tuple_move_s);
  charge.ChargeN(CostCategory::kBlockWrite, pages, model.block_write_s);
  if (step != nullptr) {
    step->out_tuples += out_tuples;
    step->out_pages += pages;
  }
}

}  // namespace

std::vector<Tuple> SelectTuples(const std::vector<Tuple>& tuples,
                                const BoundPredicate& predicate,
                                const Schema& schema, CostLedger* ledger,
                                const CostModel& model, OpMetrics* metrics) {
  StepMetrics* process = metrics != nullptr ? &metrics->process : nullptr;
  std::vector<Tuple> out;
  for (const Tuple& t : tuples) {
    if (predicate.Eval(t)) out.push_back(t);
  }
  int64_t n = static_cast<int64_t>(tuples.size());
  int64_t out_n = static_cast<int64_t>(out.size());
  ChargeScope charge(ledger, process);
  charge.ChargeN(CostCategory::kPredicate, n * predicate.num_comparisons(),
                 model.predicate_compare_s);
  if (process != nullptr) {
    process->in_tuples += n;
    process->comparisons += n * predicate.num_comparisons();
  }
  ChargeOutput(schema, out_n, ledger, model,
               metrics != nullptr ? &metrics->output : nullptr);
  return out;
}

std::vector<Tuple> SelectTuplesColumnar(const std::vector<Tuple>& tuples,
                                        const ColumnBatch& batch,
                                        const BoundPredicate& predicate,
                                        const Schema& schema,
                                        CostLedger* ledger,
                                        const CostModel& model,
                                        OpMetrics* metrics) {
  assert(static_cast<size_t>(batch.num_rows()) == tuples.size());
  StepMetrics* process = metrics != nullptr ? &metrics->process : nullptr;
  std::vector<uint8_t> mask;
  predicate.EvalBatch(batch, &mask);
  std::vector<Tuple> out;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (mask[i] != 0) out.push_back(tuples[i]);
  }
  int64_t n = static_cast<int64_t>(tuples.size());
  int64_t out_n = static_cast<int64_t>(out.size());
  ChargeScope charge(ledger, process);
  charge.ChargeN(CostCategory::kPredicate, n * predicate.num_comparisons(),
                 model.predicate_compare_s);
  if (process != nullptr) {
    process->in_tuples += n;
    process->comparisons += n * predicate.num_comparisons();
  }
  ChargeOutput(schema, out_n, ledger, model,
               metrics != nullptr ? &metrics->output : nullptr);
  return out;
}

void ChargeTempWrite(const Schema& schema, int64_t num_tuples,
                     CostLedger* ledger, const CostModel& model,
                     StepMetrics* metrics) {
  ChargeScope charge(ledger, metrics);
  int64_t pages = PagesFor(schema, num_tuples);
  charge.ChargeN(CostCategory::kTupleMove, num_tuples, model.tuple_move_s);
  charge.ChargeN(CostCategory::kBlockWrite, pages, model.block_write_s);
  if (metrics != nullptr) {
    metrics->in_tuples += num_tuples;
    metrics->out_tuples += num_tuples;
    metrics->out_pages += pages;
  }
}

void SortRunRange(std::vector<Tuple>* tuples, const std::vector<int>& key,
                  int64_t* comparisons) {
  if (key.empty()) {
    std::sort(tuples->begin(), tuples->end(),
              [comparisons](const Tuple& a, const Tuple& b) {
                ++*comparisons;
                return CompareTuples(a, b) < 0;
              });
  } else {
    std::sort(tuples->begin(), tuples->end(),
              [comparisons, &key](const Tuple& a, const Tuple& b) {
                ++*comparisons;
                return CompareTuplesOnKey(a, b, key) < 0;
              });
  }
}

void SortRun(std::vector<Tuple>* tuples, const std::vector<int>& key,
             CostLedger* ledger, const CostModel& model,
             StepMetrics* metrics) {
  int64_t comparisons = 0;
  SortRunRange(tuples, key, &comparisons);
  ChargeScope charge(ledger, metrics);
  charge.ChargeN(CostCategory::kSortCompare, comparisons,
                 model.sort_compare_s);
  if (metrics != nullptr) {
    metrics->in_tuples += static_cast<int64_t>(tuples->size());
    metrics->out_tuples += static_cast<int64_t>(tuples->size());
    metrics->comparisons += comparisons;
  }
}

std::vector<Tuple> MergeIntersectRange(std::span<const Tuple> left,
                                       std::span<const Tuple> right,
                                       int64_t* comparisons) {
  std::vector<Tuple> out;
  size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    ++*comparisons;
    int c = CompareTuples(left[i], right[j]);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Equal group: emit one output point per (left, right) pair.
      size_t i_end = i + 1;
      while (i_end < left.size()) {
        ++*comparisons;
        if (CompareTuples(left[i_end], left[i]) != 0) break;
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < right.size()) {
        ++*comparisons;
        if (CompareTuples(right[j_end], right[j]) != 0) break;
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          (void)b;
          out.push_back(left[a]);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

std::vector<Tuple> MergeJoinRange(std::span<const Tuple> left,
                                  const std::vector<int>& left_key,
                                  std::span<const Tuple> right,
                                  const std::vector<int>& right_key,
                                  int64_t* comparisons) {
  assert(left_key.size() == right_key.size());
  std::vector<Tuple> out;
  auto cmp_lr = [&](const Tuple& a, const Tuple& b) {
    ++*comparisons;
    for (size_t k = 0; k < left_key.size(); ++k) {
      int c = CompareValues(a[static_cast<size_t>(left_key[k])],
                            b[static_cast<size_t>(right_key[k])]);
      if (c != 0) return c;
    }
    return 0;
  };
  size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    int c = cmp_lr(left[i], right[j]);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      size_t i_end = i + 1;
      while (i_end < left.size()) {
        ++*comparisons;
        if (CompareTuplesOnKey(left[i_end], left[i], left_key) != 0) break;
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < right.size()) {
        ++*comparisons;
        if (CompareTuplesOnKey(right[j_end], right[j], right_key) != 0) break;
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          Tuple joined = left[a];
          joined.insert(joined.end(), right[b].begin(), right[b].end());
          out.push_back(std::move(joined));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

std::vector<size_t> PartitionSortedRun(const std::vector<Tuple>& run,
                                       const std::vector<int>& key,
                                       size_t max_parts, size_t min_chunk) {
  const size_t n = run.size();
  if (min_chunk == 0) min_chunk = 1;
  size_t parts = min_chunk > 0 ? n / min_chunk : n;
  if (parts > max_parts) parts = max_parts;
  if (parts < 1) parts = 1;
  std::vector<size_t> bounds;
  bounds.push_back(0);
  auto same_group = [&](const Tuple& a, const Tuple& b) {
    return key.empty() ? CompareTuples(a, b) == 0
                       : CompareTuplesOnKey(a, b, key) == 0;
  };
  for (size_t p = 1; p < parts; ++p) {
    size_t target = p * n / parts;
    // Advance to the start of the next key group so equal keys stay in
    // one chunk.
    while (target < n && target > 0 &&
           same_group(run[target - 1], run[target])) {
      ++target;
    }
    if (target > bounds.back() && target < n) bounds.push_back(target);
  }
  bounds.push_back(n);
  return bounds;
}

size_t LowerBoundCrossKey(std::span<const Tuple> run,
                          const std::vector<int>& run_key, const Tuple& probe,
                          const std::vector<int>& probe_key) {
  auto cmp = [&](const Tuple& elem) {
    if (run_key.empty()) return CompareTuples(elem, probe);
    int c = 0;
    for (size_t k = 0; k < run_key.size(); ++k) {
      c = CompareValues(elem[static_cast<size_t>(run_key[k])],
                        probe[static_cast<size_t>(probe_key[k])]);
      if (c != 0) break;
    }
    return c;
  };
  size_t lo = 0, hi = run.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cmp(run[mid]) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<Tuple> MergeIntersect(const std::vector<Tuple>& left,
                                  const std::vector<Tuple>& right,
                                  const Schema& schema, CostLedger* ledger,
                                  const CostModel& model,
                                  OpMetrics* metrics) {
  StepMetrics* process = metrics != nullptr ? &metrics->process : nullptr;
  int64_t comparisons = 0;
  std::vector<Tuple> out = MergeIntersectRange(
      std::span<const Tuple>(left), std::span<const Tuple>(right),
      &comparisons);
  ChargeScope charge(ledger, process);
  charge.ChargeN(CostCategory::kMergeCompare, comparisons,
                 model.merge_compare_s);
  if (process != nullptr) {
    process->in_tuples += static_cast<int64_t>(left.size() + right.size());
    process->comparisons += comparisons;
  }
  ChargeOutput(schema, static_cast<int64_t>(out.size()), ledger, model,
               metrics != nullptr ? &metrics->output : nullptr);
  return out;
}

std::vector<Tuple> MergeJoin(const std::vector<Tuple>& left,
                             const std::vector<int>& left_key,
                             const Schema& left_schema,
                             const std::vector<Tuple>& right,
                             const std::vector<int>& right_key,
                             const Schema& right_schema,
                             CostLedger* ledger, const CostModel& model,
                             OpMetrics* metrics) {
  assert(left_key.size() == right_key.size());
  StepMetrics* process = metrics != nullptr ? &metrics->process : nullptr;
  Schema out_schema = left_schema.ConcatForJoin(right_schema);
  int64_t comparisons = 0;
  std::vector<Tuple> out =
      MergeJoinRange(std::span<const Tuple>(left), left_key,
                     std::span<const Tuple>(right), right_key, &comparisons);
  ChargeScope charge(ledger, process);
  charge.ChargeN(CostCategory::kMergeCompare, comparisons,
                 model.merge_compare_s);
  if (process != nullptr) {
    process->in_tuples += static_cast<int64_t>(left.size() + right.size());
    process->comparisons += comparisons;
  }
  ChargeOutput(out_schema, static_cast<int64_t>(out.size()), ledger, model,
               metrics != nullptr ? &metrics->output : nullptr);
  return out;
}

std::vector<GroupCount> DedupSorted(const std::vector<Tuple>& tuples,
                                    const Schema& schema, CostLedger* ledger,
                                    const CostModel& model,
                                    OpMetrics* metrics) {
  StepMetrics* process = metrics != nullptr ? &metrics->process : nullptr;
  std::vector<GroupCount> out;
  int64_t comparisons = 0;
  for (const Tuple& t : tuples) {
    if (!out.empty()) {
      ++comparisons;
      if (CompareTuples(out.back().tuple, t) == 0) {
        ++out.back().count;
        continue;
      }
    }
    out.push_back(GroupCount{t, 1});
  }
  ChargeScope charge(ledger, process);
  charge.ChargeN(CostCategory::kMergeCompare, comparisons,
                 model.merge_compare_s);
  if (process != nullptr) {
    process->in_tuples += static_cast<int64_t>(tuples.size());
    process->comparisons += comparisons;
  }
  ChargeOutput(schema, static_cast<int64_t>(out.size()), ledger, model,
               metrics != nullptr ? &metrics->output : nullptr);
  return out;
}

std::vector<Tuple> ProjectColumns(const std::vector<Tuple>& tuples,
                                  const std::vector<int>& columns,
                                  CostLedger* ledger, const CostModel& model,
                                  StepMetrics* metrics) {
  std::vector<Tuple> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    Tuple projected;
    projected.reserve(columns.size());
    for (int c : columns) projected.push_back(t[static_cast<size_t>(c)]);
    out.push_back(std::move(projected));
  }
  ChargeScope charge(ledger, metrics);
  charge.ChargeN(CostCategory::kTupleMove,
                 static_cast<int64_t>(tuples.size()), model.tuple_move_s);
  if (metrics != nullptr) {
    metrics->in_tuples += static_cast<int64_t>(tuples.size());
    metrics->out_tuples += static_cast<int64_t>(out.size());
  }
  return out;
}

}  // namespace tcq
