#include "exec/exact.h"

#include <algorithm>

#include "exec/operators.h"

namespace tcq {

namespace {

void SortAll(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end(),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
}

void DedupAll(std::vector<Tuple>* tuples) {
  tuples->erase(std::unique(tuples->begin(), tuples->end(),
                            [](const Tuple& a, const Tuple& b) {
                              return CompareTuples(a, b) == 0;
                            }),
                tuples->end());
}

}  // namespace

Result<TupleSet> EvaluateExact(const ExprPtr& expr, const Catalog& catalog) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  switch (expr->kind) {
    case ExprKind::kScan: {
      TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(expr->relation));
      TupleSet out;
      out.schema = rel->schema();
      out.tuples.reserve(static_cast<size_t>(rel->NumTuples()));
      for (int64_t b = 0; b < rel->NumBlocks(); ++b) {
        BlockView view = rel->ViewBlock(b);
        out.tuples.insert(out.tuples.end(), view.rows().begin(),
                          view.rows().end());
      }
      return out;
    }
    case ExprKind::kSelect: {
      TCQ_ASSIGN_OR_RETURN(TupleSet child,
                           EvaluateExact(expr->left, catalog));
      TCQ_ASSIGN_OR_RETURN(
          BoundPredicate bound,
          BoundPredicate::Bind(expr->predicate, child.schema));
      TupleSet out;
      out.schema = child.schema;
      for (Tuple& t : child.tuples) {
        if (bound.Eval(t)) out.tuples.push_back(std::move(t));
      }
      return out;
    }
    case ExprKind::kProject: {
      TCQ_ASSIGN_OR_RETURN(TupleSet child,
                           EvaluateExact(expr->left, catalog));
      std::vector<int> indices;
      for (const std::string& name : expr->columns) {
        TCQ_ASSIGN_OR_RETURN(int idx, child.schema.IndexOf(name));
        indices.push_back(idx);
      }
      TupleSet out;
      out.schema = child.schema.SelectColumns(indices);
      out.tuples.reserve(child.tuples.size());
      for (const Tuple& t : child.tuples) {
        Tuple projected;
        projected.reserve(indices.size());
        for (int c : indices) projected.push_back(t[static_cast<size_t>(c)]);
        out.tuples.push_back(std::move(projected));
      }
      SortAll(&out.tuples);
      DedupAll(&out.tuples);
      return out;
    }
    case ExprKind::kJoin: {
      TCQ_ASSIGN_OR_RETURN(TupleSet l, EvaluateExact(expr->left, catalog));
      TCQ_ASSIGN_OR_RETURN(TupleSet r, EvaluateExact(expr->right, catalog));
      std::vector<int> lkey, rkey;
      for (const auto& [lname, rname] : expr->join_keys) {
        TCQ_ASSIGN_OR_RETURN(int li, l.schema.IndexOf(lname));
        TCQ_ASSIGN_OR_RETURN(int ri, r.schema.IndexOf(rname));
        lkey.push_back(li);
        rkey.push_back(ri);
      }
      std::sort(l.tuples.begin(), l.tuples.end(),
                [&lkey](const Tuple& a, const Tuple& b) {
                  return CompareTuplesOnKey(a, b, lkey) < 0;
                });
      std::sort(r.tuples.begin(), r.tuples.end(),
                [&rkey](const Tuple& a, const Tuple& b) {
                  return CompareTuplesOnKey(a, b, rkey) < 0;
                });
      CostModel model;  // unused rates; no ledger
      TupleSet out;
      out.schema = l.schema.ConcatForJoin(r.schema);
      out.tuples = MergeJoin(l.tuples, lkey, l.schema, r.tuples, rkey,
                             r.schema, /*ledger=*/nullptr, model,
                             /*metrics=*/nullptr);
      return out;
    }
    case ExprKind::kIntersect:
    case ExprKind::kUnion:
    case ExprKind::kDifference: {
      TCQ_ASSIGN_OR_RETURN(TupleSet l, EvaluateExact(expr->left, catalog));
      TCQ_ASSIGN_OR_RETURN(TupleSet r, EvaluateExact(expr->right, catalog));
      if (!l.schema.CompatibleWith(r.schema)) {
        return Status::InvalidArgument("set operands incompatible");
      }
      SortAll(&l.tuples);
      DedupAll(&l.tuples);
      SortAll(&r.tuples);
      DedupAll(&r.tuples);
      TupleSet out;
      out.schema = l.schema;
      if (expr->kind == ExprKind::kUnion) {
        std::merge(
            l.tuples.begin(), l.tuples.end(), r.tuples.begin(),
            r.tuples.end(), std::back_inserter(out.tuples),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
        DedupAll(&out.tuples);
      } else if (expr->kind == ExprKind::kIntersect) {
        std::set_intersection(
            l.tuples.begin(), l.tuples.end(), r.tuples.begin(),
            r.tuples.end(), std::back_inserter(out.tuples),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
      } else {
        std::set_difference(
            l.tuples.begin(), l.tuples.end(), r.tuples.begin(),
            r.tuples.end(), std::back_inserter(out.tuples),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
      }
      return out;
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<int64_t> ExactCount(const ExprPtr& expr, const Catalog& catalog) {
  TCQ_ASSIGN_OR_RETURN(TupleSet result, EvaluateExact(expr, catalog));
  return result.size();
}

Result<double> ExactSum(const ExprPtr& expr, const std::string& column,
                        const Catalog& catalog) {
  TCQ_ASSIGN_OR_RETURN(TupleSet result, EvaluateExact(expr, catalog));
  TCQ_ASSIGN_OR_RETURN(int col, result.schema.IndexOf(column));
  if (result.schema.column(col).type == DataType::kString) {
    return Status::InvalidArgument("SUM column must be numeric");
  }
  double sum = 0.0;
  for (const Tuple& t : result.tuples) {
    const Value& v = t[static_cast<size_t>(col)];
    sum += v.index() == 0 ? static_cast<double>(std::get<int64_t>(v))
                          : std::get<double>(v);
  }
  return sum;
}

Result<double> ExactAvg(const ExprPtr& expr, const std::string& column,
                        const Catalog& catalog) {
  TCQ_ASSIGN_OR_RETURN(TupleSet result, EvaluateExact(expr, catalog));
  if (result.tuples.empty()) {
    return Status::InvalidArgument("AVG over an empty result");
  }
  TCQ_ASSIGN_OR_RETURN(int col, result.schema.IndexOf(column));
  if (result.schema.column(col).type == DataType::kString) {
    return Status::InvalidArgument("AVG column must be numeric");
  }
  double sum = 0.0;
  for (const Tuple& t : result.tuples) {
    const Value& v = t[static_cast<size_t>(col)];
    sum += v.index() == 0 ? static_cast<double>(std::get<int64_t>(v))
                          : std::get<double>(v);
  }
  return sum / static_cast<double>(result.tuples.size());
}

}  // namespace tcq
