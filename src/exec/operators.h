#ifndef TCQ_EXEC_OPERATORS_H_
#define TCQ_EXEC_OPERATORS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exec/tuple_set.h"
#include "ra/predicate.h"
#include "sim/cost_model.h"
#include "sim/ledger.h"
#include "storage/relation.h"

namespace tcq {

/// Realized resource counts of one operator step, used both for cost
/// accounting and for fitting the adaptive cost-formula coefficients
/// (paper §4: "record the actual amount of time spent on each step").
struct StepMetrics {
  int64_t in_tuples = 0;
  int64_t out_tuples = 0;
  int64_t out_pages = 0;
  int64_t comparisons = 0;
  double seconds = 0.0;  // realized (simulated) time of the step
};

/// Step-separated metrics of one operator invocation: the paper's adaptive
/// cost formulas fit a coefficient per *step*, so reading/comparing time is
/// recorded separately from result-writing time.
struct OpMetrics {
  StepMetrics process;  // reading, predicate evaluation, merge comparisons
  StepMetrics output;   // tuple moves and page writes of the results
};

/// Evaluates a selection formula over `tuples`, charging one predicate
/// comparison per formula leaf per tuple plus output-page writes.
/// The input tuples are assumed already paid for (block fetch happens at
/// sampling time; intermediate inputs were paid for by the producer).
std::vector<Tuple> SelectTuples(const std::vector<Tuple>& tuples,
                                const BoundPredicate& predicate,
                                const Schema& schema, CostLedger* ledger,
                                const CostModel& model, OpMetrics* metrics);

/// Vectorized selection: evaluates the formula over the columnar batch
/// (selection bitmap via BoundPredicate::EvalBatch), then gathers the
/// passing rows from `tuples`. `batch` must hold the same rows as `tuples`
/// in the same order. Output and charges are identical to SelectTuples —
/// selection cost is per formula leaf per input tuple in both paths.
std::vector<Tuple> SelectTuplesColumnar(const std::vector<Tuple>& tuples,
                                        const ColumnBatch& batch,
                                        const BoundPredicate& predicate,
                                        const Schema& schema,
                                        CostLedger* ledger,
                                        const CostModel& model,
                                        OpMetrics* metrics);

/// Writes `tuples` to a temporary file (step 1 of the paper's intersect/
/// join/project algorithms, Figures 4.4/4.6/4.7): charges one tuple move
/// per tuple and one page write per output page.
void ChargeTempWrite(const Schema& schema, int64_t num_tuples,
                     CostLedger* ledger, const CostModel& model,
                     StepMetrics* metrics);

/// Sorts `tuples` in place on the given key columns (all columns when
/// `key` is empty), charging each realized comparison (step 2, external
/// sort; eq. 4.3's `C2·n·log n + C3·n` shape emerges from the realized
/// comparison count).
void SortRun(std::vector<Tuple>* tuples, const std::vector<int>& key,
             CostLedger* ledger, const CostModel& model,
             StepMetrics* metrics);

/// ---- Merge kernels ------------------------------------------------------
///
/// The raw sorted-run merge logic, exposed over index ranges so the staged
/// evaluator can partition one merge across pool workers: a left run is
/// split at key-group boundaries (PartitionSortedRun), each chunk merges
/// against its right subrange (LowerBoundCrossKey) on its own task, and
/// the chunk outputs concatenated in chunk order equal the serial merge's
/// output exactly. The kernels do no cost accounting — they only count
/// comparisons; callers charge ledgers/metrics from the counts afterwards,
/// in a fixed order, so results and charges are identical for any worker
/// count.

/// Sort kernel: sorts `*tuples` in place on `key` (all columns when
/// empty), appending the comparison count to `*comparisons` (must be
/// non-null). No cost accounting.
void SortRunRange(std::vector<Tuple>* tuples, const std::vector<int>& key,
                  int64_t* comparisons);

/// Merge-join kernel over sorted ranges. Appends the comparison count to
/// `*comparisons` (must be non-null).
std::vector<Tuple> MergeJoinRange(std::span<const Tuple> left,
                                  const std::vector<int>& left_key,
                                  std::span<const Tuple> right,
                                  const std::vector<int>& right_key,
                                  int64_t* comparisons);

/// Merge-intersect kernel over ranges sorted on all columns. Appends the
/// comparison count to `*comparisons` (must be non-null).
std::vector<Tuple> MergeIntersectRange(std::span<const Tuple> left,
                                       std::span<const Tuple> right,
                                       int64_t* comparisons);

/// Splits a run sorted on `key` (all columns when empty) into at most
/// `max_parts` contiguous chunks of roughly equal size, each at least
/// `min_chunk` tuples, with every boundary on a key-group start (equal-key
/// tuples never straddle chunks). Returns the boundary indices, starting
/// with 0 and ending with run.size(); size() - 1 is the chunk count.
/// Depends only on the data — not on the worker count — so a partitioned
/// evaluation is bit-identical at any parallelism.
std::vector<size_t> PartitionSortedRun(const std::vector<Tuple>& run,
                                       const std::vector<int>& key,
                                       size_t max_parts, size_t min_chunk);

/// First index in `run` (sorted on `run_key`) whose key compares >= the
/// probe's key (probe read through `probe_key`). Empty keys compare whole
/// tuples. Binary search; charges nothing.
size_t LowerBoundCrossKey(std::span<const Tuple> run,
                          const std::vector<int>& run_key, const Tuple& probe,
                          const std::vector<int>& probe_key);

/// Merge-intersects two runs sorted on all columns. Each matching group
/// contributes (left multiplicity × right multiplicity) output tuples —
/// the number of 1-points in the point space. Charges merge comparisons
/// and output-page writes.
std::vector<Tuple> MergeIntersect(const std::vector<Tuple>& left,
                                  const std::vector<Tuple>& right,
                                  const Schema& schema, CostLedger* ledger,
                                  const CostModel& model,
                                  OpMetrics* metrics);

/// Merge-joins two runs sorted on the given key columns, producing
/// concatenated tuples. Charges merge comparisons and output-page writes.
std::vector<Tuple> MergeJoin(const std::vector<Tuple>& left,
                             const std::vector<int>& left_key,
                             const Schema& left_schema,
                             const std::vector<Tuple>& right,
                             const std::vector<int>& right_key,
                             const Schema& right_schema,
                             CostLedger* ledger, const CostModel& model,
                             OpMetrics* metrics);

/// One distinct tuple and how many times it occurred.
struct GroupCount {
  Tuple tuple;
  int64_t count = 0;
};

/// Scans a run sorted on all columns and collapses duplicates, returning
/// each distinct tuple with its occupancy (step 3 of the paper's Project
/// algorithm, which writes "distinct tuples with their occupancy").
/// Charges one merge comparison per input tuple and output-page writes.
std::vector<GroupCount> DedupSorted(const std::vector<Tuple>& tuples,
                                    const Schema& schema, CostLedger* ledger,
                                    const CostModel& model,
                                    OpMetrics* metrics);

/// Projects `tuples` onto the given column positions (no dedup; charges
/// tuple moves only — dedup is SortRun + DedupSorted).
std::vector<Tuple> ProjectColumns(const std::vector<Tuple>& tuples,
                                  const std::vector<int>& columns,
                                  CostLedger* ledger, const CostModel& model,
                                  StepMetrics* metrics);

}  // namespace tcq

#endif  // TCQ_EXEC_OPERATORS_H_
