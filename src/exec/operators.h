#ifndef TCQ_EXEC_OPERATORS_H_
#define TCQ_EXEC_OPERATORS_H_

#include <cstdint>
#include <vector>

#include "exec/tuple_set.h"
#include "ra/predicate.h"
#include "sim/cost_model.h"
#include "sim/ledger.h"
#include "storage/relation.h"

namespace tcq {

/// Realized resource counts of one operator step, used both for cost
/// accounting and for fitting the adaptive cost-formula coefficients
/// (paper §4: "record the actual amount of time spent on each step").
struct StepMetrics {
  int64_t in_tuples = 0;
  int64_t out_tuples = 0;
  int64_t out_pages = 0;
  int64_t comparisons = 0;
  double seconds = 0.0;  // realized (simulated) time of the step
};

/// Step-separated metrics of one operator invocation: the paper's adaptive
/// cost formulas fit a coefficient per *step*, so reading/comparing time is
/// recorded separately from result-writing time.
struct OpMetrics {
  StepMetrics process;  // reading, predicate evaluation, merge comparisons
  StepMetrics output;   // tuple moves and page writes of the results
};

/// Evaluates a selection formula over `tuples`, charging one predicate
/// comparison per formula leaf per tuple plus output-page writes.
/// The input tuples are assumed already paid for (block fetch happens at
/// sampling time; intermediate inputs were paid for by the producer).
std::vector<Tuple> SelectTuples(const std::vector<Tuple>& tuples,
                                const BoundPredicate& predicate,
                                const Schema& schema, CostLedger* ledger,
                                const CostModel& model, OpMetrics* metrics);

/// Writes `tuples` to a temporary file (step 1 of the paper's intersect/
/// join/project algorithms, Figures 4.4/4.6/4.7): charges one tuple move
/// per tuple and one page write per output page.
void ChargeTempWrite(const Schema& schema, int64_t num_tuples,
                     CostLedger* ledger, const CostModel& model,
                     StepMetrics* metrics);

/// Sorts `tuples` in place on the given key columns (all columns when
/// `key` is empty), charging each realized comparison (step 2, external
/// sort; eq. 4.3's `C2·n·log n + C3·n` shape emerges from the realized
/// comparison count).
void SortRun(std::vector<Tuple>* tuples, const std::vector<int>& key,
             CostLedger* ledger, const CostModel& model,
             StepMetrics* metrics);

/// Merge-intersects two runs sorted on all columns. Each matching group
/// contributes (left multiplicity × right multiplicity) output tuples —
/// the number of 1-points in the point space. Charges merge comparisons
/// and output-page writes.
std::vector<Tuple> MergeIntersect(const std::vector<Tuple>& left,
                                  const std::vector<Tuple>& right,
                                  const Schema& schema, CostLedger* ledger,
                                  const CostModel& model,
                                  OpMetrics* metrics);

/// Merge-joins two runs sorted on the given key columns, producing
/// concatenated tuples. Charges merge comparisons and output-page writes.
std::vector<Tuple> MergeJoin(const std::vector<Tuple>& left,
                             const std::vector<int>& left_key,
                             const Schema& left_schema,
                             const std::vector<Tuple>& right,
                             const std::vector<int>& right_key,
                             const Schema& right_schema,
                             CostLedger* ledger, const CostModel& model,
                             OpMetrics* metrics);

/// One distinct tuple and how many times it occurred.
struct GroupCount {
  Tuple tuple;
  int64_t count = 0;
};

/// Scans a run sorted on all columns and collapses duplicates, returning
/// each distinct tuple with its occupancy (step 3 of the paper's Project
/// algorithm, which writes "distinct tuples with their occupancy").
/// Charges one merge comparison per input tuple and output-page writes.
std::vector<GroupCount> DedupSorted(const std::vector<Tuple>& tuples,
                                    const Schema& schema, CostLedger* ledger,
                                    const CostModel& model,
                                    OpMetrics* metrics);

/// Projects `tuples` onto the given column positions (no dedup; charges
/// tuple moves only — dedup is SortRun + DedupSorted).
std::vector<Tuple> ProjectColumns(const std::vector<Tuple>& tuples,
                                  const std::vector<int>& columns,
                                  CostLedger* ledger, const CostModel& model,
                                  StepMetrics* metrics);

}  // namespace tcq

#endif  // TCQ_EXEC_OPERATORS_H_
