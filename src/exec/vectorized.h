#ifndef TCQ_EXEC_VECTORIZED_H_
#define TCQ_EXEC_VECTORIZED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace tcq {

/// Columnar counterparts of the merge kernels in operators.h. The sort and
/// merge loops run over *encoded keys*: each key column is serialized into
/// a fixed-width, order-preserving byte form (int64: sign bit flipped,
/// big-endian; double: -0.0 normalized to +0.0, all bits flipped when
/// negative, else sign bit flipped, big-endian; string: the zero-padded
/// on-disk bytes), so one memcmp over the concatenation is an exact 3-way
/// substitute for CompareTuples/CompareTuplesOnKey. NaN doubles are outside
/// the encoding's contract (CompareValues itself has no total order for
/// them — DESIGN.md §11).
///
/// Bit-identity with the row kernels is load-bearing: each columnar kernel
/// increments `*comparisons` at exactly the call sites its row counterpart
/// does, and std::sort over an index permutation makes the same comparator
/// decisions as std::sort over the tuples, so realized comparison counts —
/// and therefore every simulated-time charge — are identical across
/// layouts.

/// Bytes of one encoded key (the sum of the key columns' byte widths; all
/// columns when `key` is empty).
int EncodedKeyWidth(const Schema& schema, const std::vector<int>& key);

/// Appends the order-preserving encodings of `run`'s key columns to `out`
/// (run.size() × EncodedKeyWidth bytes, row-major over keys).
void EncodeKeyColumns(std::span<const Tuple> run, const Schema& schema,
                      const std::vector<int>& key, std::vector<uint8_t>* out);

/// True when a join's two key column lists encode to comparable bytes
/// (pairwise same type and byte width) — the precondition for the columnar
/// merge-join kernel. Callers fall back to the row kernel otherwise.
bool ColumnarJoinKeysCompatible(const Schema& left_schema,
                                const std::vector<int>& left_key,
                                const Schema& right_schema,
                                const std::vector<int>& right_key);

/// Columnar sort kernel: sorts `*tuples` on `key` (all columns when empty)
/// by perm-sorting an index vector over encoded keys, then applying the
/// permutation to both the tuples and the key buffer. `*keys` is left
/// holding the sorted encoded keys (tuples->size() × width bytes) for the
/// downstream merge. Appends the comparison count to `*comparisons`;
/// bit-identical count and resulting order to SortRunRange.
void SortRunRangeColumnar(std::vector<Tuple>* tuples, const Schema& schema,
                          const std::vector<int>& key,
                          std::vector<uint8_t>* keys, int64_t* comparisons);

/// Columnar merge-intersect kernel: both runs sorted on all columns, with
/// `left_keys`/`right_keys` pointing at their encoded keys (stride
/// `key_width`). Same loop structure, comparison counts and output as
/// MergeIntersectRange.
std::vector<Tuple> MergeIntersectRangeColumnar(std::span<const Tuple> left,
                                               const uint8_t* left_keys,
                                               std::span<const Tuple> right,
                                               const uint8_t* right_keys,
                                               int key_width,
                                               int64_t* comparisons);

/// Columnar merge-join kernel: runs sorted on their join keys, encoded at
/// `left_keys`/`right_keys` (stride `key_width`, same width both sides —
/// see ColumnarJoinKeysCompatible). Same loop structure, comparison counts
/// and concatenated output as MergeJoinRange.
std::vector<Tuple> MergeJoinRangeColumnar(std::span<const Tuple> left,
                                          const uint8_t* left_keys,
                                          std::span<const Tuple> right,
                                          const uint8_t* right_keys,
                                          int key_width, int64_t* comparisons);

}  // namespace tcq

#endif  // TCQ_EXEC_VECTORIZED_H_
