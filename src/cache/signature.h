#ifndef TCQ_CACHE_SIGNATURE_H_
#define TCQ_CACHE_SIGNATURE_H_

#include <string>
#include <utility>

#include "ra/expr.h"

namespace tcq {

class CacheKey;
CacheKey CanonicalSignature(const Expr& expr);

/// Key of a warm-start cache entry: the canonicalized signature of an
/// operator subtree (relation set, operator kind, predicate print).
///
/// A CacheKey can only be produced by `CanonicalSignature` — the single
/// place that knows the canonical form — so two structurally equivalent
/// subtrees can never end up under different keys because a caller
/// hand-rolled its own string. The `cache-key-canonical` lint rule
/// (tools/tcq_lint.py) additionally rejects direct construction attempts
/// in library code outside this translation unit.
class CacheKey {
 public:
  const std::string& text() const { return text_; }

  bool operator<(const CacheKey& other) const { return text_ < other.text_; }
  bool operator==(const CacheKey& other) const {
    return text_ == other.text_;
  }

 private:
  friend CacheKey CanonicalSignature(const Expr& expr);
  explicit CacheKey(std::string text) : text_(std::move(text)) {}

  std::string text_;
};

/// Canonicalized signature of an operator subtree, suitable as a
/// cross-query cache key:
///   - predicates are printed with the canonical predicate printer
///     (Predicate::ToString), so textually different but identically
///     parsed formulas share a key;
///   - the children of commutative operators (Intersect) are ordered by
///     their signatures, so `a ∩ b` and `b ∩ a` share a key;
///   - scans print as `scan(<relation>)`, keying every entry to the
///     relation set it was observed on.
/// Two subtrees with equal signatures have equal output distributions
/// over the same catalog, which is what makes a cached selectivity a
/// valid stage-0 prior.
CacheKey CanonicalSignature(const Expr& expr);

}  // namespace tcq

#endif  // TCQ_CACHE_SIGNATURE_H_
