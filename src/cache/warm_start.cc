#include "cache/warm_start.h"

#include <utility>

namespace tcq {

RelationSamplePool* WarmStartCache::PoolFor(const std::string& relation,
                                           int64_t total_blocks) {
  auto it = pools_.find(relation);
  if (it == pools_.end()) {
    it = pools_
             .emplace(relation,
                      std::make_unique<RelationSamplePool>(total_blocks))
             .first;
  }
  return it->second.get();
}

const double* WarmStartCache::LookupPrior(const CacheKey& key) {
  auto it = priors_.find(key);
  if (it == priors_.end()) {
    ++prior_misses_;
    return nullptr;
  }
  ++prior_hits_;
  return &it->second;
}

void WarmStartCache::RecordPrior(const CacheKey& key, double selectivity) {
  priors_[key] = selectivity;
}

const AdaptiveCostModel::Snapshot* WarmStartCache::LookupCostSnapshot(
    const CacheKey& key) {
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return nullptr;
  ++snapshot_hits_;
  return &it->second;
}

void WarmStartCache::RecordCostSnapshot(const CacheKey& key,
                                        AdaptiveCostModel::Snapshot snapshot) {
  snapshots_[key] = std::move(snapshot);
}

WarmStartStats WarmStartCache::Stats() const {
  WarmStartStats s;
  s.relations = static_cast<int>(pools_.size());
  for (const auto& [name, pool] : pools_) {
    (void)name;
    s.pooled_blocks += pool->size();
    s.replayed_blocks += pool->replayed_total();
    s.fresh_blocks += pool->fresh_total();
  }
  s.prior_entries = static_cast<int64_t>(priors_.size());
  s.prior_hits = prior_hits_;
  s.prior_misses = prior_misses_;
  s.cost_snapshots = static_cast<int64_t>(snapshots_.size());
  s.cost_snapshot_hits = snapshot_hits_;
  return s;
}

void WarmStartCache::Clear() {
  pools_.clear();
  priors_.clear();
  snapshots_.clear();
  prior_hits_ = 0;
  prior_misses_ = 0;
  snapshot_hits_ = 0;
}

}  // namespace tcq
