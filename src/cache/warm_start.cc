#include "cache/warm_start.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.h"

namespace tcq {

WarmStartCache::WarmStartCache(int shards) {
  int n = std::max(1, shards);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

WarmStartCache::Shard& WarmStartCache::ShardFor(std::string_view key_text) {
  size_t h = std::hash<std::string_view>{}(key_text);
  return *shards_[h % shards_.size()];
}

const WarmStartCache::Shard& WarmStartCache::ShardFor(
    std::string_view key_text) const {
  size_t h = std::hash<std::string_view>{}(key_text);
  return *shards_[h % shards_.size()];
}

RelationSamplePool* WarmStartCache::PoolFor(const std::string& relation,
                                            int64_t total_blocks) {
  Shard& shard = ShardFor(relation);
  MutexLock lock(shard.mu);
  auto it = shard.pools.find(relation);
  if (it == shard.pools.end()) {
    it = shard.pools
             .emplace(relation,
                      std::make_unique<RelationSamplePool>(total_blocks))
             .first;
  }
  TCQ_CHECK_INVARIANT(it->second->total_blocks() == total_blocks,
                      "sample pool re-requested with a different block count");
  return it->second.get();
}

std::optional<double> WarmStartCache::LookupPrior(const CacheKey& key) {
  Shard& shard = ShardFor(key.text());
  MutexLock lock(shard.mu);
  auto it = shard.priors.find(key);
  if (it == shard.priors.end()) {
    ++shard.prior_misses;
    return std::nullopt;
  }
  ++shard.prior_hits;
  return it->second;
}

std::optional<double> WarmStartCache::PeekPrior(const CacheKey& key) const {
  const Shard& shard = ShardFor(key.text());
  MutexLock lock(shard.mu);
  auto it = shard.priors.find(key);
  if (it == shard.priors.end()) return std::nullopt;
  return it->second;
}

void WarmStartCache::RecordPrior(const CacheKey& key, double selectivity) {
  Shard& shard = ShardFor(key.text());
  MutexLock lock(shard.mu);
  shard.priors[key] = selectivity;
}

SelPredictor* WarmStartCache::PredictorFor(const SelPredictorOptions& options) {
  MutexLock lock(predictor_mu_);
  if (predictor_ == nullptr) {
    predictor_ = std::make_unique<SelPredictor>(options);
  }
  return predictor_.get();
}

SelPredictor* WarmStartCache::predictor() const {
  MutexLock lock(predictor_mu_);
  return predictor_.get();
}

std::optional<AdaptiveCostModel::Snapshot> WarmStartCache::LookupCostSnapshot(
    const CacheKey& key) {
  Shard& shard = ShardFor(key.text());
  MutexLock lock(shard.mu);
  auto it = shard.snapshots.find(key);
  if (it == shard.snapshots.end()) return std::nullopt;
  ++shard.snapshot_hits;
  return it->second;
}

void WarmStartCache::RecordCostSnapshot(const CacheKey& key,
                                        AdaptiveCostModel::Snapshot snapshot) {
  Shard& shard = ShardFor(key.text());
  MutexLock lock(shard.mu);
  shard.snapshots[key] = std::move(snapshot);
}

WarmStartStats WarmStartCache::Stats() const {
  WarmStartStats s;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    s.relations += static_cast<int>(shard->pools.size());
    for (const auto& [name, pool] : shard->pools) {
      (void)name;
      s.pooled_blocks += pool->size();
      s.replayed_blocks += pool->replayed_total();
      s.fresh_blocks += pool->fresh_total();
    }
    s.prior_entries += static_cast<int64_t>(shard->priors.size());
    s.prior_hits += shard->prior_hits;
    s.prior_misses += shard->prior_misses;
    s.cost_snapshots += static_cast<int64_t>(shard->snapshots.size());
    s.cost_snapshot_hits += shard->snapshot_hits;
  }
  if (SelPredictor* p = predictor()) {
    SelPredictorStats ps = p->stats();
    s.predictor_entries = ps.chooser_entries;
    s.predictor_history_hits = ps.history_hits;
    s.predictor_history_misses = ps.history_misses;
    s.predictor_updates = ps.updates;
  }
  return s;
}

void WarmStartCache::Clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->pools.clear();
    shard->priors.clear();
    shard->snapshots.clear();
    shard->prior_hits = 0;
    shard->prior_misses = 0;
    shard->snapshot_hits = 0;
  }
  MutexLock lock(predictor_mu_);
  predictor_.reset();
}

}  // namespace tcq
