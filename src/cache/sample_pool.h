#ifndef TCQ_CACHE_SAMPLE_POOL_H_
#define TCQ_CACHE_SAMPLE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Session-lifetime pool of the disk blocks drawn from one relation,
/// in the order they were first drawn (the BlinkDB-style sample reuse
/// lever, adapted to the paper's cluster-sampling setting).
///
/// Unbiasedness: every block ever appended was drawn uniformly from the
/// blocks not yet in the pool (BlockSampler's without-replacement draw),
/// so the pool's draw order is a realization of uniform without-
/// replacement sampling of the relation. Any *prefix* of that order is
/// therefore itself a uniform without-replacement sample — a later query
/// that replays the pooled prefix before drawing fresh blocks sees
/// exactly the distribution a cold query would have drawn, and the
/// cluster-sampling estimators of §2 stay unbiased. The consumed-block
/// membership bitmap is what keeps replay + fresh draws without
/// replacement: fresh draws are uniform over the complement of the pool.
///
/// Each appended block also records the seed substream id
/// (SubstreamSeed(seed, relation, stage)) whose draw produced it, so
/// pool entries stay attributable to the (relation, substream) that drew
/// them — CacheStats provenance and the determinism tests key on it.
///
/// Thread safety: all methods synchronize on an internal mutex, so
/// concurrent queries served out of one tcq::Server may share a pool.
/// Samplers never hold references into the pool's vectors across calls:
/// a pool-aware BlockSampler copies the pooled prefix at construction
/// (SnapshotOrder) and replays from its private copy, and fresh draws go
/// through TryAppend, which refuses blocks that a concurrent query
/// appended first — keeping the pool duplicate-free (still a without-
/// replacement draw order). With a single owner, behaviour is
/// bit-identical to the historical unsynchronized pool.
class RelationSamplePool {
 public:
  explicit RelationSamplePool(int64_t total_blocks)
      : total_blocks_(total_blocks),
        consumed_(static_cast<size_t>(total_blocks), 0) {}

  /// Fixed at construction; safe without the lock.
  int64_t total_blocks() const { return total_blocks_; }
  /// Number of pooled (previously drawn) blocks.
  int64_t size() const {
    MutexLock lock(mu_);
    return static_cast<int64_t>(order_.size());
  }
  /// Copy of the pooled blocks in first-draw order; a sampler replays
  /// this snapshot so later concurrent appends cannot shift it.
  std::vector<uint32_t> SnapshotOrder() const {
    MutexLock lock(mu_);
    return order_;
  }
  /// True when `block` is already in the pool (consumed for sampling
  /// purposes — a fresh draw must never produce it again).
  bool Contains(uint32_t block) const {
    MutexLock lock(mu_);
    return consumed_[static_cast<size_t>(block)] != 0;
  }
  /// Seed substream id that drew pool entry `i`.
  uint64_t substream_of(int64_t i) const {
    MutexLock lock(mu_);
    return substreams_[static_cast<size_t>(i)];
  }

  /// Retains one freshly drawn block; `substream` identifies the
  /// (seed, relation, stage) substream the draw came from. Returns false
  /// — leaving the pool unchanged — when a concurrent query already
  /// appended the block; the caller keeps its draw either way.
  bool TryAppend(uint32_t block, uint64_t substream) {
    MutexLock lock(mu_);
    char& consumed = consumed_[static_cast<size_t>(block)];
    if (consumed != 0) return false;
    consumed = 1;
    order_.push_back(block);
    substreams_.push_back(substream);
    ++fresh_total_;
    return true;
  }

  /// Replay accounting (called by the pool-aware BlockSampler).
  void NoteReplayed(int64_t n) {
    MutexLock lock(mu_);
    replayed_total_ += n;
  }

  /// Cumulative blocks served by replaying the pooled prefix, across all
  /// queries of the session.
  int64_t replayed_total() const {
    MutexLock lock(mu_);
    return replayed_total_;
  }
  /// Cumulative fresh draws retained into the pool.
  int64_t fresh_total() const {
    MutexLock lock(mu_);
    return fresh_total_;
  }

 private:
  const int64_t total_blocks_;  // immutable copy of consumed_.size()
  mutable Mutex mu_;
  // Pooled blocks in first-draw order.
  std::vector<uint32_t> order_ TCQ_GUARDED_BY(mu_);
  // Provenance, parallel to order_.
  std::vector<uint64_t> substreams_ TCQ_GUARDED_BY(mu_);
  // Membership bitmap.
  std::vector<char> consumed_ TCQ_GUARDED_BY(mu_);
  int64_t replayed_total_ TCQ_GUARDED_BY(mu_) = 0;
  int64_t fresh_total_ TCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace tcq

#endif  // TCQ_CACHE_SAMPLE_POOL_H_
