#include "cache/signature.h"

#include <algorithm>
#include <string>
#include <vector>

namespace tcq {

namespace {

std::string Canonical(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kScan:
      return "scan(" + e.relation + ")";
    case ExprKind::kSelect:
      return "select[" +
             (e.predicate != nullptr ? e.predicate->ToString() : "?") + "](" +
             Canonical(*e.left) + ")";
    case ExprKind::kProject: {
      // Projection keeps a column *set*; order does not change the
      // distinct-group count the cached selectivity describes.
      std::vector<std::string> cols = e.columns;
      std::sort(cols.begin(), cols.end());
      std::string joined;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (i > 0) joined += ",";
        joined += cols[i];
      }
      return "project[" + joined + "](" + Canonical(*e.left) + ")";
    }
    case ExprKind::kJoin: {
      // Join keys are an unordered conjunction of equalities.
      std::vector<std::string> keys;
      keys.reserve(e.join_keys.size());
      for (const auto& [l, r] : e.join_keys) keys.push_back(l + "=" + r);
      std::sort(keys.begin(), keys.end());
      std::string joined;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) joined += ",";
        joined += keys[i];
      }
      return "join[" + joined + "](" + Canonical(*e.left) + "," +
             Canonical(*e.right) + ")";
    }
    case ExprKind::kIntersect: {
      std::string l = Canonical(*e.left);
      std::string r = Canonical(*e.right);
      if (r < l) std::swap(l, r);  // commutative: order by signature
      return "intersect(" + l + "," + r + ")";
    }
    case ExprKind::kUnion: {
      std::string l = Canonical(*e.left);
      std::string r = Canonical(*e.right);
      if (r < l) std::swap(l, r);
      return "union(" + l + "," + r + ")";
    }
    case ExprKind::kDifference:
      return "difference(" + Canonical(*e.left) + "," + Canonical(*e.right) +
             ")";
  }
  return "?";
}

}  // namespace

CacheKey CanonicalSignature(const Expr& expr) {
  return CacheKey(Canonical(expr));
}

}  // namespace tcq
