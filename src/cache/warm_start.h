#ifndef TCQ_CACHE_WARM_START_H_
#define TCQ_CACHE_WARM_START_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cache/sample_pool.h"
#include "cache/signature.h"
#include "cost/adaptive_model.h"

namespace tcq {

/// Aggregate view of a warm-start cache (Session::CacheStats()).
struct WarmStartStats {
  int relations = 0;           // relations with a sample pool
  int64_t pooled_blocks = 0;   // blocks currently retained across pools
  int64_t replayed_blocks = 0;  // draws served from pooled prefixes
  int64_t fresh_blocks = 0;     // fresh draws retained into pools
  int64_t prior_entries = 0;    // cached operator selectivities
  int64_t prior_hits = 0;       // stage-0 lookups that found a prior
  int64_t prior_misses = 0;     // stage-0 lookups that fell back to defaults
  int64_t cost_snapshots = 0;       // cached fitted cost-coefficient sets
  int64_t cost_snapshot_hits = 0;   // queries that started from one
};

/// Session-lifetime warm-start state shared by consecutive queries: the
/// per-relation sample pools (pooled-prefix replay; see sample_pool.h for
/// the unbiasedness argument), the selectivity prior cache (stage-0 of
/// Sample-Size-Determine starts from the last observed selectivity of a
/// canonically equal operator instead of the default prior), and the
/// fitted cost-coefficient snapshots of AdaptiveCostModel keyed by whole-
/// query signature.
///
/// All keys are CacheKeys produced by CanonicalSignature — never raw
/// strings — so equivalent operators cannot shadow each other under
/// different spellings (enforced by the `cache-key-canonical` lint rule).
///
/// Not thread-safe: owned by a Session, which runs one query at a time.
/// The engine only touches the cache from its serial sections and from
/// the per-relation draw tasks (each of which touches only its own
/// relation's pool), so cached runs stay bit-identical across thread
/// counts at a fixed seed.
class WarmStartCache {
 public:
  /// The relation's sample pool, created empty on first use.
  RelationSamplePool* PoolFor(const std::string& relation,
                              int64_t total_blocks);

  /// Last observed selectivity of a canonically equal operator, or null;
  /// counts a prior hit or miss.
  const double* LookupPrior(const CacheKey& key);
  /// Records (or overwrites with) the latest observed selectivity.
  void RecordPrior(const CacheKey& key, double selectivity);

  /// Fitted cost-coefficient snapshot of the last run of a canonically
  /// equal query, or null; counts a snapshot hit when found.
  const AdaptiveCostModel::Snapshot* LookupCostSnapshot(const CacheKey& key);
  void RecordCostSnapshot(const CacheKey& key,
                          AdaptiveCostModel::Snapshot snapshot);

  WarmStartStats Stats() const;

  /// Drops every pool, prior, and snapshot (counters included).
  void Clear();

 private:
  std::map<std::string, std::unique_ptr<RelationSamplePool>> pools_;
  std::map<CacheKey, double> priors_;
  std::map<CacheKey, AdaptiveCostModel::Snapshot> snapshots_;
  int64_t prior_hits_ = 0;
  int64_t prior_misses_ = 0;
  int64_t snapshot_hits_ = 0;
};

}  // namespace tcq

#endif  // TCQ_CACHE_WARM_START_H_
