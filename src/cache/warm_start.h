#ifndef TCQ_CACHE_WARM_START_H_
#define TCQ_CACHE_WARM_START_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

#include "cache/sample_pool.h"
#include "cache/signature.h"
#include "cost/adaptive_model.h"
#include "cost/sel_predictor.h"

namespace tcq {

/// Aggregate view of a warm-start cache (Session::CacheStats()).
struct WarmStartStats {
  int relations = 0;           // relations with a sample pool
  int64_t pooled_blocks = 0;   // blocks currently retained across pools
  int64_t replayed_blocks = 0;  // draws served from pooled prefixes
  int64_t fresh_blocks = 0;     // fresh draws retained into pools
  int64_t prior_entries = 0;    // cached operator selectivities
  int64_t prior_hits = 0;       // stage-0 lookups that found a prior
  int64_t prior_misses = 0;     // stage-0 lookups that fell back to defaults
  int64_t cost_snapshots = 0;       // cached fitted cost-coefficient sets
  int64_t cost_snapshot_hits = 0;   // queries that started from one
  // Hybrid selectivity predictor (all zero until a predictor-enabled run
  // instantiates it; see PredictorFor).
  int64_t predictor_entries = 0;       // chooser entries (nodes tracked)
  int64_t predictor_history_hits = 0;  // predictions with a history hit
  int64_t predictor_history_misses = 0;
  int64_t predictor_updates = 0;       // realized selectivities scored
};

/// Session-lifetime warm-start state shared by consecutive queries: the
/// per-relation sample pools (pooled-prefix replay; see sample_pool.h for
/// the unbiasedness argument), the selectivity prior cache (stage-0 of
/// Sample-Size-Determine starts from the last observed selectivity of a
/// canonically equal operator instead of the default prior), and the
/// fitted cost-coefficient snapshots of AdaptiveCostModel keyed by whole-
/// query signature.
///
/// All keys are CacheKeys produced by CanonicalSignature — never raw
/// strings — so equivalent operators cannot shadow each other under
/// different spellings (enforced by the `cache-key-canonical` lint rule).
///
/// Thread safety: the cache is sharded by key (priors and cost snapshots
/// by signature text, sample pools by relation name) with one mutex per
/// shard, so concurrent queries served out of one tcq::Server contend
/// only when they touch the same shard. Lookups return *copies*
/// (std::optional) rather than pointers into shard maps, since a
/// concurrent Record/Clear may rehash or erase behind a reference; the
/// returned RelationSamplePool pointer is stable (pools are never
/// destroyed before Clear) and the pool is internally synchronized. With
/// a single owner, cached runs stay bit-identical across thread counts
/// at a fixed seed: shard assignment depends only on key text, and every
/// counter is updated under its shard lock in engine serial sections.
class WarmStartCache {
 public:
  static constexpr int kDefaultShards = 8;

  explicit WarmStartCache(int shards = kDefaultShards);

  /// The relation's sample pool, created empty on first use. The pointer
  /// stays valid until Clear() or destruction.
  RelationSamplePool* PoolFor(const std::string& relation,
                              int64_t total_blocks);

  /// Last observed selectivity of a canonically equal operator, or
  /// nullopt; counts a prior hit or miss.
  std::optional<double> LookupPrior(const CacheKey& key);
  /// Same lookup without touching the hit/miss counters — for EXPLAIN
  /// and other read-only previews that must not skew the stats.
  std::optional<double> PeekPrior(const CacheKey& key) const;
  /// Records (or overwrites with) the latest observed selectivity.
  void RecordPrior(const CacheKey& key, double selectivity);

  /// The session's hybrid selectivity predictor (DESIGN.md §12), created
  /// lazily with `options` on first use so its history persists across
  /// runs alongside the priors. The pointer stays valid until Clear() or
  /// destruction; later calls ignore `options` (first writer wins, as
  /// with pools). SelPredictor is internally synchronized.
  SelPredictor* PredictorFor(const SelPredictorOptions& options);
  /// The predictor if one was ever created, else nullptr (EXPLAIN peeks).
  SelPredictor* predictor() const;

  /// Fitted cost-coefficient snapshot of the last run of a canonically
  /// equal query, or nullopt; counts a snapshot hit when found.
  std::optional<AdaptiveCostModel::Snapshot> LookupCostSnapshot(
      const CacheKey& key);
  void RecordCostSnapshot(const CacheKey& key,
                          AdaptiveCostModel::Snapshot snapshot);

  WarmStartStats Stats() const;

  /// Drops every pool, prior, and snapshot (counters included). Must not
  /// race a running query: callers (Session/Server) only clear while no
  /// query holds a pool pointer.
  void Clear();

 private:
  struct Shard {
    mutable Mutex mu;
    std::map<std::string, std::unique_ptr<RelationSamplePool>> pools
        TCQ_GUARDED_BY(mu);
    std::map<CacheKey, double> priors TCQ_GUARDED_BY(mu);
    std::map<CacheKey, AdaptiveCostModel::Snapshot> snapshots
        TCQ_GUARDED_BY(mu);
    int64_t prior_hits TCQ_GUARDED_BY(mu) = 0;
    int64_t prior_misses TCQ_GUARDED_BY(mu) = 0;
    int64_t snapshot_hits TCQ_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(std::string_view key_text);
  const Shard& ShardFor(std::string_view key_text) const;

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable Mutex predictor_mu_;
  std::unique_ptr<SelPredictor> predictor_ TCQ_GUARDED_BY(predictor_mu_);
};

}  // namespace tcq

#endif  // TCQ_CACHE_WARM_START_H_
