#ifndef TCQ_PARALLEL_THREAD_POOL_H_
#define TCQ_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tcq {

/// Fixed-size pool of worker threads executing batches of independent
/// tasks. The engine uses it to fan per-stage work out across cores:
/// per-relation block draws, inclusion–exclusion terms, and the
/// old×new / new×new merge-pair partitions of a full-fulfillment stage.
///
/// Design notes:
///  - `RunAll` blocks until every task of the batch has finished, and the
///    *calling* thread participates in execution ("helping"). Nested
///    RunAll calls from inside a task therefore cannot deadlock: a thread
///    only blocks once every task of its batch is claimed, and every
///    claimed task is being executed by some thread.
///  - Determinism is the caller's contract: tasks write to disjoint,
///    pre-allocated result slots, and reductions happen after RunAll
///    returns, in a fixed order. Under that contract results are
///    independent of the worker count (see DESIGN.md, "Threading model").
class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 is allowed (RunAll then runs inline).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }
  /// Logical parallelism of a RunAll call: the workers plus the helping
  /// caller.
  int width() const { return workers() + 1; }

  /// Runs every task (in unspecified order, possibly concurrently) and
  /// returns once all have finished. `tasks` must outlive the call. Tasks
  /// may themselves call RunAll on the same pool.
  void RunAll(std::vector<std::function<void()>>* tasks);

  /// The machine's hardware concurrency (≥ 1).
  static int HardwareThreads();

 private:
  struct Batch;

  void WorkerLoop();
  static void ExecuteFrom(const std::shared_ptr<Batch>& batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<std::shared_ptr<Batch>> pending_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Runs the batch on `pool`, or inline in index order when `pool` is null
/// or the batch is trivial. Call sites use this so the serial (threads=1)
/// and parallel paths share one shape: fill slots, then reduce in order.
void RunTasks(ThreadPool* pool, std::vector<std::function<void()>>* tasks);

}  // namespace tcq

#endif  // TCQ_PARALLEL_THREAD_POOL_H_
