#ifndef TCQ_PARALLEL_THREAD_POOL_H_
#define TCQ_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Fixed-size pool of worker threads executing batches of independent
/// tasks. The engine uses it to fan per-stage work out across cores:
/// per-relation block draws, inclusion–exclusion terms, and the
/// old×new / new×new merge-pair partitions of a full-fulfillment stage.
///
/// Design notes:
///  - `RunAll` blocks until every task of the batch has finished, and the
///    *calling* thread participates in execution ("helping"). Nested
///    RunAll calls from inside a task therefore cannot deadlock: a thread
///    only blocks once every task of its batch is claimed, and every
///    claimed task is being executed by some thread.
///  - Determinism is the caller's contract: tasks write to disjoint,
///    pre-allocated result slots, and reductions happen after RunAll
///    returns, in a fixed order. Under that contract results are
///    independent of the worker count (see DESIGN.md, "Threading model").
class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 is allowed (RunAll then runs inline).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }
  /// Logical parallelism of a RunAll call: the workers plus the helping
  /// caller.
  int width() const { return workers() + 1; }

  /// Runs every task (in unspecified order, possibly concurrently) and
  /// returns once all have finished. `tasks` must outlive the call. Tasks
  /// may themselves call RunAll on the same pool.
  ///
  /// `max_width` > 0 caps the number of threads that may execute tasks of
  /// this batch, counting the helping caller — a query narrower than the
  /// pool can reuse a wide (high-water) pool without gaining parallelism
  /// beyond its configured width. 0 means no cap.
  void RunAll(std::vector<std::function<void()>>* tasks, int max_width = 0)
      TCQ_EXCLUDES(mu_);

  /// Lifetime execution statistics (scheduling-dependent: how tasks split
  /// between workers and helping callers varies run to run — export these
  /// as metric gauges, never as deterministic counters).
  int64_t batches_run() const {
    return batches_.load(std::memory_order_relaxed);
  }
  int64_t tasks_run_by_workers() const {
    return worker_tasks_.load(std::memory_order_relaxed);
  }
  int64_t tasks_run_by_callers() const {
    return caller_tasks_.load(std::memory_order_relaxed);
  }

  /// The machine's hardware concurrency (≥ 1).
  static int HardwareThreads();

 private:
  struct Batch;

  void WorkerLoop() TCQ_EXCLUDES(mu_);
  void ExecuteFrom(const std::shared_ptr<Batch>& batch, bool is_worker);

  Mutex mu_;
  CondVar work_cv_;
  std::vector<std::shared_ptr<Batch>> pending_ TCQ_GUARDED_BY(mu_);
  bool stop_ TCQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> worker_tasks_{0};
  std::atomic<int64_t> caller_tasks_{0};
};

/// Runs the batch on `pool`, or inline in index order when `pool` is null
/// or the batch is trivial. Call sites use this so the serial (threads=1)
/// and parallel paths share one shape: fill slots, then reduce in order.
/// `max_width` is forwarded to ThreadPool::RunAll.
void RunTasks(ThreadPool* pool, std::vector<std::function<void()>>* tasks,
              int max_width = 0);

}  // namespace tcq

#endif  // TCQ_PARALLEL_THREAD_POOL_H_
