#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace tcq {

/// One RunAll invocation: a task list with an atomic claim cursor and a
/// completion latch. Tasks are claimed by index; a batch is drained when
/// every index is claimed and done when every claimed task returned.
/// `max_participants` > 0 caps how many threads may claim tasks; a thread
/// joins by winning a slot on `participants` before it first claims.
struct ThreadPool::Batch {
  std::vector<std::function<void()>>* tasks = nullptr;
  size_t total = 0;
  std::atomic<size_t> next{0};
  int max_participants = 0;  // 0 = uncapped
  std::atomic<int> participants{0};

  Mutex mu;
  CondVar done_cv;
  size_t finished TCQ_GUARDED_BY(mu) = 0;

  bool Drained() const {
    return next.load(std::memory_order_relaxed) >= total;
  }
  /// Acquires a participant slot; fails when the cap is reached. A slot
  /// is never released: a full batch is finished by its participants, so
  /// fullness is monotone and full batches can be dropped from the
  /// pending list without ever re-advertising them.
  bool TryJoin() {
    if (max_participants <= 0) return true;
    int n = participants.fetch_add(1, std::memory_order_relaxed);
    if (n < max_participants) return true;
    participants.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  bool Full() const {
    return max_participants > 0 &&
           participants.load(std::memory_order_relaxed) >= max_participants;
  }
};

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(static_cast<size_t>(std::max(0, workers)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::ExecuteFrom(const std::shared_ptr<Batch>& batch,
                             bool is_worker) {
  std::atomic<int64_t>& tally = is_worker ? worker_tasks_ : caller_tasks_;
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->total) return;
    (*batch->tasks)[i]();
    tally.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(batch->mu);
    ++batch->finished;
    // Each index is claimed exactly once (fetch_add), so completions
    // can never outnumber tasks; more means a task ran twice and the
    // disjoint-slot determinism contract is void.
    TCQ_CHECK_INVARIANT(batch->finished <= batch->total,
                        "thread-pool batch finished more tasks than it has");
    if (batch->finished == batch->total) batch->done_cv.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(mu_);
      // Manual wait loop (not a predicate lambda) so the thread-safety
      // analysis sees the guarded reads happen under mu_.
      while (!stop_ && pending_.empty()) work_cv_.Wait(mu_);
      if (stop_) return;
      // Drop drained and participant-full batches (their participants
      // finish them); join the first one with work and a free slot. A
      // failed join races with another worker taking the last slot — the
      // batch is then full and dropped, so the loop cannot busy-wait.
      for (auto it = pending_.begin(); it != pending_.end();) {
        if ((*it)->Drained() || (*it)->Full() || !(*it)->TryJoin()) {
          it = pending_.erase(it);
        } else {
          batch = *it;
          break;
        }
      }
    }
    if (batch != nullptr) ExecuteFrom(batch, /*is_worker=*/true);
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>>* tasks,
                        int max_width) {
  if (tasks == nullptr || tasks->empty()) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (threads_.empty() || tasks->size() == 1 || max_width == 1) {
    for (auto& task : *tasks) task();
    caller_tasks_.fetch_add(static_cast<int64_t>(tasks->size()),
                            std::memory_order_relaxed);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = tasks;
  batch->total = tasks->size();
  batch->max_participants = std::max(0, max_width);
  // The caller always participates; with a cap its slot is the first one
  // (participants == 0 here, so the join cannot fail).
  TCQ_CHECK_INVARIANT(batch->TryJoin(), "caller failed to join its own batch");
  {
    MutexLock lock(mu_);
    pending_.push_back(batch);
  }
  work_cv_.NotifyAll();
  ExecuteFrom(batch, /*is_worker=*/false);  // help until every task is claimed
  {
    MutexLock lock(batch->mu);
    while (batch->finished != batch->total) batch->done_cv.Wait(batch->mu);
  }
  TCQ_CHECK_INVARIANT(
      batch->next.load(std::memory_order_relaxed) >= batch->total,
      "RunAll returned with unclaimed tasks");
}

void RunTasks(ThreadPool* pool, std::vector<std::function<void()>>* tasks,
              int max_width) {
  if (tasks == nullptr) return;
  if (pool == nullptr) {
    for (auto& task : *tasks) task();
    return;
  }
  pool->RunAll(tasks, max_width);
}

}  // namespace tcq
