#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace tcq {

/// One RunAll invocation: a task list with an atomic claim cursor and a
/// completion latch. Tasks are claimed by index; a batch is drained when
/// every index is claimed and done when every claimed task returned.
struct ThreadPool::Batch {
  std::vector<std::function<void()>>* tasks = nullptr;
  size_t total = 0;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t finished = 0;
};

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(static_cast<size_t>(std::max(0, workers)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::ExecuteFrom(const std::shared_ptr<Batch>& batch) {
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->total) return;
    (*batch->tasks)[i]();
    std::lock_guard<std::mutex> lock(batch->mu);
    ++batch->finished;
    // Each index is claimed exactly once (fetch_add), so completions
    // can never outnumber tasks; more means a task ran twice and the
    // disjoint-slot determinism contract is void.
    TCQ_CHECK_INVARIANT(batch->finished <= batch->total,
                        "thread-pool batch finished more tasks than it has");
    if (batch->finished == batch->total) batch->done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      // Drop drained batches; claim the first one with work left.
      for (auto it = pending_.begin(); it != pending_.end();) {
        if ((*it)->next.load(std::memory_order_relaxed) >= (*it)->total) {
          it = pending_.erase(it);
        } else {
          batch = *it;
          break;
        }
      }
    }
    if (batch != nullptr) ExecuteFrom(batch);
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>>* tasks) {
  if (tasks == nullptr || tasks->empty()) return;
  if (threads_.empty() || tasks->size() == 1) {
    for (auto& task : *tasks) task();
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = tasks;
  batch->total = tasks->size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(batch);
  }
  work_cv_.notify_all();
  ExecuteFrom(batch);  // the caller helps until every task is claimed
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock,
                      [&batch] { return batch->finished == batch->total; });
  TCQ_CHECK_INVARIANT(
      batch->next.load(std::memory_order_relaxed) >= batch->total,
      "RunAll returned with unclaimed tasks");
}

void RunTasks(ThreadPool* pool, std::vector<std::function<void()>>* tasks) {
  if (tasks == nullptr) return;
  if (pool == nullptr) {
    for (auto& task : *tasks) task();
    return;
  }
  pool->RunAll(tasks);
}

}  // namespace tcq
