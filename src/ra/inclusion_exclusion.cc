#include "ra/inclusion_exclusion.h"

#include <algorithm>

namespace tcq {

namespace {

bool IsSetOp(const ExprPtr& e) {
  return e->kind == ExprKind::kUnion || e->kind == ExprKind::kDifference;
}

/// Rebuilds a unary node over a new child.
ExprPtr RebuildUnary(const ExprPtr& node, ExprPtr child) {
  if (node->kind == ExprKind::kSelect) {
    return Select(std::move(child), node->predicate);
  }
  return Project(std::move(child), node->columns);
}

/// Rebuilds a binary (join/intersect) node over new children.
ExprPtr RebuildBinary(const ExprPtr& node, ExprPtr l, ExprPtr r) {
  if (node->kind == ExprKind::kJoin) {
    return Join(std::move(l), std::move(r), node->join_keys);
  }
  return Intersect(std::move(l), std::move(r));
}

/// Distributes a unary operator over a normalized (set-ops-at-top) child.
Result<ExprPtr> DistributeUnary(const ExprPtr& node, const ExprPtr& child) {
  if (!IsSetOp(child)) return RebuildUnary(node, child);
  if (node->kind == ExprKind::kProject &&
      child->kind == ExprKind::kDifference) {
    return Status::NotImplemented(
        "projection over set difference does not distribute; cannot expand "
        "by inclusion-exclusion: " +
        node->ToString());
  }
  TCQ_ASSIGN_OR_RETURN(ExprPtr l, DistributeUnary(node, child->left));
  TCQ_ASSIGN_OR_RETURN(ExprPtr r, DistributeUnary(node, child->right));
  if (child->kind == ExprKind::kUnion) return Union(std::move(l), std::move(r));
  return Difference(std::move(l), std::move(r));
}

/// Distributes a binary operator (join/intersect) over normalized children.
/// Identities (set semantics):
///   (A ∪ B) op C = (A op C) ∪ (B op C)
///   (A − B) op C = (A op C) − (B op C)
/// and symmetrically on the right.
Result<ExprPtr> DistributeBinary(const ExprPtr& node, const ExprPtr& l,
                                 const ExprPtr& r) {
  if (IsSetOp(l)) {
    TCQ_ASSIGN_OR_RETURN(ExprPtr a, DistributeBinary(node, l->left, r));
    TCQ_ASSIGN_OR_RETURN(ExprPtr b, DistributeBinary(node, l->right, r));
    if (l->kind == ExprKind::kUnion) return Union(std::move(a), std::move(b));
    return Difference(std::move(a), std::move(b));
  }
  if (IsSetOp(r)) {
    TCQ_ASSIGN_OR_RETURN(ExprPtr a, DistributeBinary(node, l, r->left));
    TCQ_ASSIGN_OR_RETURN(ExprPtr b, DistributeBinary(node, l, r->right));
    if (r->kind == ExprKind::kUnion) return Union(std::move(a), std::move(b));
    return Difference(std::move(a), std::move(b));
  }
  return RebuildBinary(node, l, r);
}

/// Expands one normalized tree into signed Union/Difference-free terms.
///
///   terms(A ∪ B) = terms(A) + terms(B) − terms(norm(A ∩ B))
///   terms(A − B) = terms(A) − terms(norm(A ∩ B))
///
/// where norm(A ∩ B) re-distributes the new Intersect over any set ops
/// remaining in A or B. Terminates because each recursive call sees
/// strictly fewer Union/Difference nodes.
Status ExpandNormalized(const ExprPtr& expr, int sign,
                        std::vector<SignedTerm>* out) {
  if (!IsSetOp(expr)) {
    out->push_back(SignedTerm{sign, expr});
    return Status::OK();
  }
  const ExprPtr& a = expr->left;
  const ExprPtr& b = expr->right;
  TCQ_RETURN_NOT_OK(ExpandNormalized(a, sign, out));
  if (expr->kind == ExprKind::kUnion) {
    TCQ_RETURN_NOT_OK(ExpandNormalized(b, sign, out));
  }
  // Both Union and Difference subtract COUNT(A ∩ B).
  auto intersect_node = Intersect(a, b);
  TCQ_ASSIGN_OR_RETURN(ExprPtr normalized,
                       DistributeBinary(intersect_node, a, b));
  return ExpandNormalized(normalized, -sign, out);
}

/// Canonicalizes intersections bottom-up: flattens Intersect spines,
/// removes duplicate operands (A ∩ A = A), and orders operands by their
/// printed form so that semantically equal intersections compare equal
/// structurally. This keeps inclusion–exclusion terms like
/// (r1 ∩ r3) ∩ (r2 ∩ r3) in the minimal form r1 ∩ r2 ∩ r3.
ExprPtr CanonicalizeIntersects(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind == ExprKind::kScan) return expr;
  // Recurse into children first.
  ExprPtr left = expr->left ? CanonicalizeIntersects(expr->left) : nullptr;
  ExprPtr right = expr->right ? CanonicalizeIntersects(expr->right) : nullptr;
  ExprPtr rebuilt;
  switch (expr->kind) {
    case ExprKind::kSelect:
      rebuilt = Select(left, expr->predicate);
      break;
    case ExprKind::kProject:
      rebuilt = Project(left, expr->columns);
      break;
    case ExprKind::kJoin:
      rebuilt = Join(left, right, expr->join_keys);
      break;
    case ExprKind::kIntersect:
      rebuilt = Intersect(left, right);
      break;
    case ExprKind::kUnion:
      rebuilt = Union(left, right);
      break;
    case ExprKind::kDifference:
      rebuilt = Difference(left, right);
      break;
    case ExprKind::kScan:
      return expr;  // unreachable
  }
  if (rebuilt->kind != ExprKind::kIntersect) return rebuilt;

  // Flatten the intersect spine while hoisting selections out of the
  // operands: σp(X) ∩ Y = σp(X ∩ Y), because intersection keeps only
  // tuples present on both sides, so a predicate on either side
  // constrains the result identically. Peeling a Select can expose a
  // nested Intersect (and vice versa), so both are processed from one
  // worklist. This collapses inclusion–exclusion cross terms like
  // σp(A∩B) ∩ σp(A∩C) toward a single point space per relation.
  std::vector<ExprPtr> operands;
  std::vector<PredicatePtr> predicates;
  std::vector<ExprPtr> work{rebuilt};
  while (!work.empty()) {
    ExprPtr op = work.back();
    work.pop_back();
    if (op->kind == ExprKind::kIntersect) {
      work.push_back(op->left);
      work.push_back(op->right);
      continue;
    }
    if (op->kind == ExprKind::kSelect) {
      bool duplicate = false;
      for (const PredicatePtr& p : predicates) {
        if (PredicateEquals(p, op->predicate)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) predicates.push_back(op->predicate);
      work.push_back(op->left);
      continue;
    }
    operands.push_back(std::move(op));
  }

  // Factor joins with a structurally identical side and the same keys:
  //   (L ⋈ R1) ∩ (L ⋈ R2) = L ⋈ (R1 ∩ R2)
  //   (L1 ⋈ R) ∩ (L2 ⋈ R) = (L1 ∩ L2) ⋈ R
  // (valid because the intersect of concatenated tuples forces both
  // halves equal). Repeat until no pair factors.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < operands.size() && !changed; ++i) {
      for (size_t j = i + 1; j < operands.size() && !changed; ++j) {
        const ExprPtr& a = operands[i];
        const ExprPtr& b = operands[j];
        if (a->kind != ExprKind::kJoin || b->kind != ExprKind::kJoin ||
            a->join_keys != b->join_keys) {
          continue;
        }
        ExprPtr merged;
        if (ExprEquals(a->left, b->left)) {
          merged = Join(a->left,
                        CanonicalizeIntersects(Intersect(a->right, b->right)),
                        a->join_keys);
        } else if (ExprEquals(a->right, b->right)) {
          merged = Join(CanonicalizeIntersects(Intersect(a->left, b->left)),
                        a->right, a->join_keys);
        } else {
          continue;
        }
        operands[i] = std::move(merged);
        operands.erase(operands.begin() + static_cast<ptrdiff_t>(j));
        changed = true;
      }
    }
  }

  // Dedup by structural equality.
  std::vector<ExprPtr> unique;
  for (const ExprPtr& op : operands) {
    bool seen = false;
    for (const ExprPtr& u : unique) {
      if (ExprEquals(u, op)) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(op);
  }
  // Canonical order for commutativity.
  std::sort(unique.begin(), unique.end(),
            [](const ExprPtr& a, const ExprPtr& b) {
              return a->ToString() < b->ToString();
            });
  ExprPtr acc = unique[0];
  for (size_t i = 1; i < unique.size(); ++i) {
    acc = Intersect(acc, unique[i]);
  }
  // Re-apply the hoisted selections (canonical order) above the spine.
  std::sort(predicates.begin(), predicates.end(),
            [](const PredicatePtr& a, const PredicatePtr& b) {
              return a->ToString() < b->ToString();
            });
  for (const PredicatePtr& p : predicates) {
    acc = Select(acc, p);
  }
  return acc;
}

}  // namespace

Result<ExprPtr> PullUpSetOps(const ExprPtr& expr) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  switch (expr->kind) {
    case ExprKind::kScan:
      return expr;
    case ExprKind::kSelect:
    case ExprKind::kProject: {
      TCQ_ASSIGN_OR_RETURN(ExprPtr child, PullUpSetOps(expr->left));
      return DistributeUnary(expr, child);
    }
    case ExprKind::kJoin:
    case ExprKind::kIntersect: {
      TCQ_ASSIGN_OR_RETURN(ExprPtr l, PullUpSetOps(expr->left));
      TCQ_ASSIGN_OR_RETURN(ExprPtr r, PullUpSetOps(expr->right));
      return DistributeBinary(expr, l, r);
    }
    case ExprKind::kUnion:
    case ExprKind::kDifference: {
      TCQ_ASSIGN_OR_RETURN(ExprPtr l, PullUpSetOps(expr->left));
      TCQ_ASSIGN_OR_RETURN(ExprPtr r, PullUpSetOps(expr->right));
      if (expr->kind == ExprKind::kUnion) {
        return Union(std::move(l), std::move(r));
      }
      return Difference(std::move(l), std::move(r));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<std::vector<SignedTerm>> ExpandCount(const ExprPtr& expr) {
  TCQ_ASSIGN_OR_RETURN(ExprPtr normalized, PullUpSetOps(expr));
  std::vector<SignedTerm> raw;
  TCQ_RETURN_NOT_OK(ExpandNormalized(normalized, 1, &raw));
  // Canonicalize intersections, then merge structurally identical terms.
  for (SignedTerm& term : raw) {
    term.expr = CanonicalizeIntersects(term.expr);
  }
  std::vector<SignedTerm> merged;
  for (SignedTerm& term : raw) {
    bool found = false;
    for (SignedTerm& existing : merged) {
      if (ExprEquals(existing.expr, term.expr)) {
        existing.sign += term.sign;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(term));
  }
  std::vector<SignedTerm> out;
  for (SignedTerm& term : merged) {
    if (term.sign != 0) out.push_back(std::move(term));
  }
  return out;
}

}  // namespace tcq
