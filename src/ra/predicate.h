#ifndef TCQ_RA_PREDICATE_H_
#define TCQ_RA_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/column_batch.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/result.h"
#include "util/status.h"

namespace tcq {

/// Comparison operators of the selection formula mini-language.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpSymbol(CompareOp op);

struct Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Node of a selection formula: comparisons of a column against a literal
/// or another column, combined with AND / OR / NOT. Columns are referenced
/// by name and resolved against a schema via `BoundPredicate::Bind`.
struct Predicate {
  enum class Kind { kCompareLiteral, kCompareColumns, kAnd, kOr, kNot };

  Kind kind = Kind::kCompareLiteral;
  // kCompareLiteral: `column op literal`. kCompareColumns: `column op rhs_column`.
  std::string column;
  std::string rhs_column;
  CompareOp op = CompareOp::kEq;
  Value literal = int64_t{0};
  // kAnd / kOr use left+right; kNot uses left.
  PredicatePtr left;
  PredicatePtr right;

  std::string ToString() const;

 private:
  // Accumulator-style "(left <op> right)"; the equivalent operator+ chain
  // trips GCC 12's -Wrestrict false positive (PR 105329) at -O2.
  std::string BinaryToString(std::string_view op) const;
};

/// Structural equality of predicate trees.
bool PredicateEquals(const PredicatePtr& a, const PredicatePtr& b);

/// Factories.
PredicatePtr CmpLiteral(std::string column, CompareOp op, Value literal);
PredicatePtr CmpColumns(std::string column, CompareOp op,
                        std::string rhs_column);
PredicatePtr And(PredicatePtr l, PredicatePtr r);
PredicatePtr Or(PredicatePtr l, PredicatePtr r);
PredicatePtr Not(PredicatePtr p);

/// A predicate resolved against a concrete schema: column names replaced by
/// positions, type-checked once, then evaluated per tuple with no lookups.
class BoundPredicate {
 public:
  [[nodiscard]] static Result<BoundPredicate> Bind(const PredicatePtr& predicate,
                                     const Schema& schema);

  /// Evaluates the formula on `tuple` (which must match the bound schema).
  bool Eval(const Tuple& tuple) const { return EvalNode(0, tuple); }

  /// Vectorized evaluation over a columnar batch: resizes `*out` to
  /// batch.num_rows() and fills it with the formula's truth value per row
  /// (1/0). Per comparison node, one tight loop over the column's
  /// contiguous array with the operator hoisted out; AND/OR/NOT combine
  /// whole masks (no short-circuit — the formula is pure, so the result is
  /// identical to Eval row by row, and selection cost is charged per leaf
  /// per tuple in both paths anyway).
  void EvalBatch(const ColumnBatch& batch, std::vector<uint8_t>* out) const;

  /// Number of comparison leaves — the paper's cost formulas charge per
  /// comparison in the selection formula.
  int num_comparisons() const { return num_comparisons_; }

 private:
  struct Node {
    Predicate::Kind kind;
    int lhs_index = -1;
    int rhs_index = -1;  // column comparison only
    CompareOp op = CompareOp::kEq;
    Value literal = int64_t{0};
    int left = -1;   // child node indices
    int right = -1;
  };

  bool EvalNode(int node, const Tuple& tuple) const;
  void EvalNodeBatch(int node, const ColumnBatch& batch, uint8_t* out) const;
  [[nodiscard]] Status Build(const Predicate& p, const Schema& schema, int* out_index);

  std::vector<Node> nodes_;
  int num_comparisons_ = 0;
};

}  // namespace tcq

#endif  // TCQ_RA_PREDICATE_H_
