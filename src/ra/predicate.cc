#include "ra/predicate.h"

namespace tcq {

std::string_view CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {
bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}
}  // namespace

std::string Predicate::BinaryToString(std::string_view op) const {
  std::string out = "(";
  out += left->ToString();
  out += op;
  out += right->ToString();
  out += ")";
  return out;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kCompareLiteral:
      return column + " " + std::string(CompareOpSymbol(op)) + " " +
             ValueToString(literal);
    case Kind::kCompareColumns:
      return column + " " + std::string(CompareOpSymbol(op)) + " " +
             rhs_column;
    case Kind::kAnd:
      return BinaryToString(" AND ");
    case Kind::kOr:
      return BinaryToString(" OR ");
    case Kind::kNot:
      return "NOT (" + left->ToString() + ")";
  }
  return "?";
}

bool PredicateEquals(const PredicatePtr& a, const PredicatePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Predicate::Kind::kCompareLiteral:
      return a->column == b->column && a->op == b->op &&
             a->literal == b->literal;
    case Predicate::Kind::kCompareColumns:
      return a->column == b->column && a->op == b->op &&
             a->rhs_column == b->rhs_column;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredicateEquals(a->left, b->left) &&
             PredicateEquals(a->right, b->right);
    case Predicate::Kind::kNot:
      return PredicateEquals(a->left, b->left);
  }
  return false;
}

PredicatePtr CmpLiteral(std::string column, CompareOp op, Value literal) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kCompareLiteral;
  p->column = std::move(column);
  p->op = op;
  p->literal = std::move(literal);
  return p;
}

PredicatePtr CmpColumns(std::string column, CompareOp op,
                        std::string rhs_column) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kCompareColumns;
  p->column = std::move(column);
  p->op = op;
  p->rhs_column = std::move(rhs_column);
  return p;
}

namespace {
PredicatePtr Binary(Predicate::Kind kind, PredicatePtr l, PredicatePtr r) {
  auto p = std::make_shared<Predicate>();
  p->kind = kind;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}
}  // namespace

PredicatePtr And(PredicatePtr l, PredicatePtr r) {
  return Binary(Predicate::Kind::kAnd, std::move(l), std::move(r));
}

PredicatePtr Or(PredicatePtr l, PredicatePtr r) {
  return Binary(Predicate::Kind::kOr, std::move(l), std::move(r));
}

PredicatePtr Not(PredicatePtr p) {
  auto n = std::make_shared<Predicate>();
  n->kind = Predicate::Kind::kNot;
  n->left = std::move(p);
  return n;
}

Result<BoundPredicate> BoundPredicate::Bind(const PredicatePtr& predicate,
                                            const Schema& schema) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null predicate");
  }
  BoundPredicate bound;
  int root = -1;
  TCQ_RETURN_NOT_OK(bound.Build(*predicate, schema, &root));
  // Build appends depth-first with the root placed at index 0 by
  // construction order below; assert that holds.
  if (root != 0) {
    return Status::Internal("predicate root not at index 0");
  }
  return bound;
}

Status BoundPredicate::Build(const Predicate& p, const Schema& schema,
                             int* out_index) {
  int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(index)].kind = p.kind;
  *out_index = index;

  switch (p.kind) {
    case Predicate::Kind::kCompareLiteral: {
      TCQ_ASSIGN_OR_RETURN(int lhs, schema.IndexOf(p.column));
      if (schema.column(lhs).type != ValueType(p.literal)) {
        return Status::InvalidArgument("literal type mismatch for column '" +
                                       p.column + "'");
      }
      Node& n = nodes_[static_cast<size_t>(index)];
      n.lhs_index = lhs;
      n.op = p.op;
      n.literal = p.literal;
      ++num_comparisons_;
      return Status::OK();
    }
    case Predicate::Kind::kCompareColumns: {
      TCQ_ASSIGN_OR_RETURN(int lhs, schema.IndexOf(p.column));
      TCQ_ASSIGN_OR_RETURN(int rhs, schema.IndexOf(p.rhs_column));
      if (schema.column(lhs).type != schema.column(rhs).type) {
        return Status::InvalidArgument("column type mismatch: '" + p.column +
                                       "' vs '" + p.rhs_column + "'");
      }
      Node& n = nodes_[static_cast<size_t>(index)];
      n.lhs_index = lhs;
      n.rhs_index = rhs;
      n.op = p.op;
      ++num_comparisons_;
      return Status::OK();
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      if (p.left == nullptr || p.right == nullptr) {
        return Status::InvalidArgument("binary predicate with null child");
      }
      int left = -1, right = -1;
      TCQ_RETURN_NOT_OK(Build(*p.left, schema, &left));
      TCQ_RETURN_NOT_OK(Build(*p.right, schema, &right));
      nodes_[static_cast<size_t>(index)].left = left;
      nodes_[static_cast<size_t>(index)].right = right;
      return Status::OK();
    }
    case Predicate::Kind::kNot: {
      if (p.left == nullptr) {
        return Status::InvalidArgument("NOT with null child");
      }
      int left = -1;
      TCQ_RETURN_NOT_OK(Build(*p.left, schema, &left));
      nodes_[static_cast<size_t>(index)].left = left;
      return Status::OK();
    }
  }
  return Status::Internal("unknown predicate kind");
}

bool BoundPredicate::EvalNode(int node, const Tuple& tuple) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  switch (n.kind) {
    case Predicate::Kind::kCompareLiteral:
      return ApplyOp(
          n.op, CompareValues(tuple[static_cast<size_t>(n.lhs_index)],
                              n.literal));
    case Predicate::Kind::kCompareColumns:
      return ApplyOp(
          n.op, CompareValues(tuple[static_cast<size_t>(n.lhs_index)],
                              tuple[static_cast<size_t>(n.rhs_index)]));
    case Predicate::Kind::kAnd:
      return EvalNode(n.left, tuple) && EvalNode(n.right, tuple);
    case Predicate::Kind::kOr:
      return EvalNode(n.left, tuple) || EvalNode(n.right, tuple);
    case Predicate::Kind::kNot:
      return !EvalNode(n.left, tuple);
  }
  return false;
}

}  // namespace tcq
