#include "ra/predicate.h"

#include <cstring>
#include <string_view>
#include <variant>

namespace tcq {

std::string_view CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {
bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}
}  // namespace

std::string Predicate::BinaryToString(std::string_view op) const {
  std::string out = "(";
  out += left->ToString();
  out += op;
  out += right->ToString();
  out += ")";
  return out;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kCompareLiteral:
      return column + " " + std::string(CompareOpSymbol(op)) + " " +
             ValueToString(literal);
    case Kind::kCompareColumns:
      return column + " " + std::string(CompareOpSymbol(op)) + " " +
             rhs_column;
    case Kind::kAnd:
      return BinaryToString(" AND ");
    case Kind::kOr:
      return BinaryToString(" OR ");
    case Kind::kNot:
      return "NOT (" + left->ToString() + ")";
  }
  return "?";
}

bool PredicateEquals(const PredicatePtr& a, const PredicatePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Predicate::Kind::kCompareLiteral:
      return a->column == b->column && a->op == b->op &&
             a->literal == b->literal;
    case Predicate::Kind::kCompareColumns:
      return a->column == b->column && a->op == b->op &&
             a->rhs_column == b->rhs_column;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredicateEquals(a->left, b->left) &&
             PredicateEquals(a->right, b->right);
    case Predicate::Kind::kNot:
      return PredicateEquals(a->left, b->left);
  }
  return false;
}

PredicatePtr CmpLiteral(std::string column, CompareOp op, Value literal) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kCompareLiteral;
  p->column = std::move(column);
  p->op = op;
  p->literal = std::move(literal);
  return p;
}

PredicatePtr CmpColumns(std::string column, CompareOp op,
                        std::string rhs_column) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kCompareColumns;
  p->column = std::move(column);
  p->op = op;
  p->rhs_column = std::move(rhs_column);
  return p;
}

namespace {
PredicatePtr Binary(Predicate::Kind kind, PredicatePtr l, PredicatePtr r) {
  auto p = std::make_shared<Predicate>();
  p->kind = kind;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}
}  // namespace

PredicatePtr And(PredicatePtr l, PredicatePtr r) {
  return Binary(Predicate::Kind::kAnd, std::move(l), std::move(r));
}

PredicatePtr Or(PredicatePtr l, PredicatePtr r) {
  return Binary(Predicate::Kind::kOr, std::move(l), std::move(r));
}

PredicatePtr Not(PredicatePtr p) {
  auto n = std::make_shared<Predicate>();
  n->kind = Predicate::Kind::kNot;
  n->left = std::move(p);
  return n;
}

Result<BoundPredicate> BoundPredicate::Bind(const PredicatePtr& predicate,
                                            const Schema& schema) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null predicate");
  }
  BoundPredicate bound;
  int root = -1;
  TCQ_RETURN_NOT_OK(bound.Build(*predicate, schema, &root));
  // Build appends depth-first with the root placed at index 0 by
  // construction order below; assert that holds.
  if (root != 0) {
    return Status::Internal("predicate root not at index 0");
  }
  return bound;
}

Status BoundPredicate::Build(const Predicate& p, const Schema& schema,
                             int* out_index) {
  int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(index)].kind = p.kind;
  *out_index = index;

  switch (p.kind) {
    case Predicate::Kind::kCompareLiteral: {
      TCQ_ASSIGN_OR_RETURN(int lhs, schema.IndexOf(p.column));
      if (schema.column(lhs).type != ValueType(p.literal)) {
        return Status::InvalidArgument("literal type mismatch for column '" +
                                       p.column + "'");
      }
      Node& n = nodes_[static_cast<size_t>(index)];
      n.lhs_index = lhs;
      n.op = p.op;
      n.literal = p.literal;
      ++num_comparisons_;
      return Status::OK();
    }
    case Predicate::Kind::kCompareColumns: {
      TCQ_ASSIGN_OR_RETURN(int lhs, schema.IndexOf(p.column));
      TCQ_ASSIGN_OR_RETURN(int rhs, schema.IndexOf(p.rhs_column));
      if (schema.column(lhs).type != schema.column(rhs).type) {
        return Status::InvalidArgument("column type mismatch: '" + p.column +
                                       "' vs '" + p.rhs_column + "'");
      }
      Node& n = nodes_[static_cast<size_t>(index)];
      n.lhs_index = lhs;
      n.rhs_index = rhs;
      n.op = p.op;
      ++num_comparisons_;
      return Status::OK();
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      if (p.left == nullptr || p.right == nullptr) {
        return Status::InvalidArgument("binary predicate with null child");
      }
      int left = -1, right = -1;
      TCQ_RETURN_NOT_OK(Build(*p.left, schema, &left));
      TCQ_RETURN_NOT_OK(Build(*p.right, schema, &right));
      nodes_[static_cast<size_t>(index)].left = left;
      nodes_[static_cast<size_t>(index)].right = right;
      return Status::OK();
    }
    case Predicate::Kind::kNot: {
      if (p.left == nullptr) {
        return Status::InvalidArgument("NOT with null child");
      }
      int left = -1;
      TCQ_RETURN_NOT_OK(Build(*p.left, schema, &left));
      nodes_[static_cast<size_t>(index)].left = left;
      return Status::OK();
    }
  }
  return Status::Internal("unknown predicate kind");
}

namespace {

/// Tight comparison loops with the operator switch hoisted out of the loop
/// so each case auto-vectorizes over the contiguous column.
template <typename T>
void CompareLiteralMask(const T* v, size_t n, T lit, CompareOp op,
                        uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i) out[i] = v[i] == lit;
      break;
    case CompareOp::kNe:
      for (size_t i = 0; i < n; ++i) out[i] = v[i] != lit;
      break;
    case CompareOp::kLt:
      for (size_t i = 0; i < n; ++i) out[i] = v[i] < lit;
      break;
    case CompareOp::kLe:
      for (size_t i = 0; i < n; ++i) out[i] = v[i] <= lit;
      break;
    case CompareOp::kGt:
      for (size_t i = 0; i < n; ++i) out[i] = v[i] > lit;
      break;
    case CompareOp::kGe:
      for (size_t i = 0; i < n; ++i) out[i] = v[i] >= lit;
      break;
  }
}

template <typename T>
void CompareColumnsMask(const T* a, const T* b, size_t n, CompareOp op,
                        uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] == b[i];
      break;
    case CompareOp::kNe:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] != b[i];
      break;
    case CompareOp::kLt:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] < b[i];
      break;
    case CompareOp::kLe:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] <= b[i];
      break;
    case CompareOp::kGt:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] > b[i];
      break;
    case CompareOp::kGe:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] >= b[i];
      break;
  }
}

/// A fixed-width cell with its zero padding stripped — the decoded string's
/// bytes (embedded NULs are not representable, see page_codec.h).
std::string_view TrimmedCell(const uint8_t* p, size_t width) {
  size_t len = width;
  while (len > 0 && p[len - 1] == 0) --len;
  return std::string_view(reinterpret_cast<const char*>(p), len);
}

int Sign(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

void CompareStringLiteralMask(const ColumnBatch::ColumnData& col, size_t n,
                              const std::string& lit, CompareOp op,
                              uint8_t* out) {
  const size_t w = static_cast<size_t>(col.width);
  const uint8_t* data = col.bytes.data();
  if (lit.find('\0') != std::string::npos) {
    // NUL-bearing literals defeat the padded-memcmp trick; compare the
    // trimmed cells exactly as CompareValues would.
    for (size_t i = 0; i < n; ++i) {
      out[i] = ApplyOp(op, Sign(TrimmedCell(data + i * w, w).compare(lit)));
    }
  } else if (lit.size() <= w) {
    std::string padded = lit;
    padded.resize(w, '\0');
    for (size_t i = 0; i < n; ++i) {
      out[i] = ApplyOp(op, std::memcmp(data + i * w, padded.data(), w));
    }
  } else {
    // Literal longer than the column: a cell equal through the column's
    // width is a strict prefix of the literal, hence smaller.
    for (size_t i = 0; i < n; ++i) {
      int c = std::memcmp(data + i * w, lit.data(), w);
      out[i] = ApplyOp(op, c != 0 ? c : -1);
    }
  }
}

void CompareStringColumnsMask(const ColumnBatch::ColumnData& a,
                              const ColumnBatch::ColumnData& b, size_t n,
                              CompareOp op, uint8_t* out) {
  const size_t wa = static_cast<size_t>(a.width);
  const size_t wb = static_cast<size_t>(b.width);
  const uint8_t* da = a.bytes.data();
  const uint8_t* db = b.bytes.data();
  if (wa == wb) {
    // Equal widths: both cells are zero-padded, so memcmp is exact 3-way.
    for (size_t i = 0; i < n; ++i) {
      out[i] = ApplyOp(op, std::memcmp(da + i * wa, db + i * wa, wa));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] = ApplyOp(op, Sign(TrimmedCell(da + i * wa, wa)
                                    .compare(TrimmedCell(db + i * wb, wb))));
    }
  }
}

}  // namespace

void BoundPredicate::EvalBatch(const ColumnBatch& batch,
                               std::vector<uint8_t>* out) const {
  out->assign(static_cast<size_t>(batch.num_rows()), 0);
  if (batch.num_rows() > 0) EvalNodeBatch(0, batch, out->data());
}

void BoundPredicate::EvalNodeBatch(int node, const ColumnBatch& batch,
                                   uint8_t* out) const {
  const Node& nd = nodes_[static_cast<size_t>(node)];
  const size_t n = static_cast<size_t>(batch.num_rows());
  switch (nd.kind) {
    case Predicate::Kind::kCompareLiteral: {
      const ColumnBatch::ColumnData& col = batch.column(nd.lhs_index);
      switch (col.type) {
        case DataType::kInt64:
          CompareLiteralMask(col.i64.data(), n, std::get<int64_t>(nd.literal),
                             nd.op, out);
          break;
        case DataType::kDouble:
          CompareLiteralMask(col.f64.data(), n, std::get<double>(nd.literal),
                             nd.op, out);
          break;
        case DataType::kString:
          CompareStringLiteralMask(col, n, std::get<std::string>(nd.literal),
                                   nd.op, out);
          break;
      }
      return;
    }
    case Predicate::Kind::kCompareColumns: {
      const ColumnBatch::ColumnData& lhs = batch.column(nd.lhs_index);
      const ColumnBatch::ColumnData& rhs = batch.column(nd.rhs_index);
      switch (lhs.type) {
        case DataType::kInt64:
          CompareColumnsMask(lhs.i64.data(), rhs.i64.data(), n, nd.op, out);
          break;
        case DataType::kDouble:
          CompareColumnsMask(lhs.f64.data(), rhs.f64.data(), n, nd.op, out);
          break;
        case DataType::kString:
          CompareStringColumnsMask(lhs, rhs, n, nd.op, out);
          break;
      }
      return;
    }
    case Predicate::Kind::kAnd: {
      std::vector<uint8_t> rhs(n);
      EvalNodeBatch(nd.left, batch, out);
      EvalNodeBatch(nd.right, batch, rhs.data());
      for (size_t i = 0; i < n; ++i) out[i] &= rhs[i];
      return;
    }
    case Predicate::Kind::kOr: {
      std::vector<uint8_t> rhs(n);
      EvalNodeBatch(nd.left, batch, out);
      EvalNodeBatch(nd.right, batch, rhs.data());
      for (size_t i = 0; i < n; ++i) out[i] |= rhs[i];
      return;
    }
    case Predicate::Kind::kNot:
      EvalNodeBatch(nd.left, batch, out);
      for (size_t i = 0; i < n; ++i) out[i] = out[i] == 0 ? 1 : 0;
      return;
  }
}

bool BoundPredicate::EvalNode(int node, const Tuple& tuple) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  switch (n.kind) {
    case Predicate::Kind::kCompareLiteral:
      return ApplyOp(
          n.op, CompareValues(tuple[static_cast<size_t>(n.lhs_index)],
                              n.literal));
    case Predicate::Kind::kCompareColumns:
      return ApplyOp(
          n.op, CompareValues(tuple[static_cast<size_t>(n.lhs_index)],
                              tuple[static_cast<size_t>(n.rhs_index)]));
    case Predicate::Kind::kAnd:
      return EvalNode(n.left, tuple) && EvalNode(n.right, tuple);
    case Predicate::Kind::kOr:
      return EvalNode(n.left, tuple) || EvalNode(n.right, tuple);
    case Predicate::Kind::kNot:
      return !EvalNode(n.left, tuple);
  }
  return false;
}

}  // namespace tcq
