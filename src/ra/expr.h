#ifndef TCQ_RA_EXPR_H_
#define TCQ_RA_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ra/predicate.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace tcq {

/// Relational-algebra operator kinds. The paper's estimator executes only
/// Select/Project/Join/Intersect directly; Union and Difference are
/// rewritten away by inclusion–exclusion (see inclusion_exclusion.h).
enum class ExprKind {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kIntersect,
  kUnion,
  kDifference,
};

std::string_view ExprKindName(ExprKind kind);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable RA expression tree node. Construct via the factory functions
/// below; fields that do not apply to a node's kind are left empty.
struct Expr {
  ExprKind kind = ExprKind::kScan;

  std::string relation;              // kScan: base relation name
  PredicatePtr predicate;            // kSelect
  std::vector<std::string> columns;  // kProject: kept column names
  // kJoin: pairs of (left column name, right column name) equated.
  std::vector<std::pair<std::string, std::string>> join_keys;

  ExprPtr left;   // unary ops use `left` as the single child
  ExprPtr right;  // binary ops

  std::string ToString() const;

 private:
  // Accumulator-style "(left <op> right)"; the equivalent operator+ chain
  // trips GCC 12's -Wrestrict false positive (PR 105329) at -O2.
  std::string BinaryToString(std::string_view op) const;
};

ExprPtr Scan(std::string relation);
ExprPtr Select(ExprPtr child, PredicatePtr predicate);
ExprPtr Project(ExprPtr child, std::vector<std::string> columns);
ExprPtr Join(ExprPtr left, ExprPtr right,
             std::vector<std::pair<std::string, std::string>> join_keys);
ExprPtr Intersect(ExprPtr left, ExprPtr right);
ExprPtr Union(ExprPtr left, ExprPtr right);
ExprPtr Difference(ExprPtr left, ExprPtr right);

/// Computes the output schema of `expr` against `catalog`, validating
/// column references, predicate types, join-key types, and set-operation
/// compatibility along the way.
[[nodiscard]] Result<Schema> InferSchema(const ExprPtr& expr, const Catalog& catalog);

/// Appends the names of base relations scanned by `expr`, left-to-right,
/// one entry per Scan node (duplicates preserved).
void CollectScans(const ExprPtr& expr, std::vector<std::string>* names);

/// Structural equality of expression trees (used to merge identical
/// inclusion–exclusion terms).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// True if the tree contains any Union or Difference node.
bool ContainsSetDifferenceOrUnion(const ExprPtr& expr);

}  // namespace tcq

#endif  // TCQ_RA_EXPR_H_
