#include "ra/expr.h"

namespace tcq {

std::string_view ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kScan:
      return "Scan";
    case ExprKind::kSelect:
      return "Select";
    case ExprKind::kProject:
      return "Project";
    case ExprKind::kJoin:
      return "Join";
    case ExprKind::kIntersect:
      return "Intersect";
    case ExprKind::kUnion:
      return "Union";
    case ExprKind::kDifference:
      return "Difference";
  }
  return "?";
}

std::string Expr::BinaryToString(std::string_view op) const {
  std::string out = "(";
  out += left->ToString();
  out += op;
  out += right->ToString();
  out += ")";
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kScan:
      return relation;
    case ExprKind::kSelect:
      return "Select[" + (predicate ? predicate->ToString() : "?") + "](" +
             left->ToString() + ")";
    case ExprKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) cols += ",";
        cols += columns[i];
      }
      return "Project[" + cols + "](" + left->ToString() + ")";
    }
    case ExprKind::kJoin: {
      std::string keys;
      for (size_t i = 0; i < join_keys.size(); ++i) {
        if (i > 0) keys += ",";
        keys += join_keys[i].first + "=" + join_keys[i].second;
      }
      return "Join[" + keys + "](" + left->ToString() + ", " +
             right->ToString() + ")";
    }
    case ExprKind::kIntersect:
      return BinaryToString(" ∩ ");
    case ExprKind::kUnion:
      return BinaryToString(" ∪ ");
    case ExprKind::kDifference:
      return BinaryToString(" − ");
  }
  return "?";
}

ExprPtr Scan(std::string relation) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kScan;
  e->relation = std::move(relation);
  return e;
}

ExprPtr Select(ExprPtr child, PredicatePtr predicate) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSelect;
  e->left = std::move(child);
  e->predicate = std::move(predicate);
  return e;
}

ExprPtr Project(ExprPtr child, std::vector<std::string> columns) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kProject;
  e->left = std::move(child);
  e->columns = std::move(columns);
  return e;
}

ExprPtr Join(ExprPtr left, ExprPtr right,
             std::vector<std::pair<std::string, std::string>> join_keys) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kJoin;
  e->left = std::move(left);
  e->right = std::move(right);
  e->join_keys = std::move(join_keys);
  return e;
}

namespace {
ExprPtr BinarySetOp(ExprKind kind, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}
}  // namespace

ExprPtr Intersect(ExprPtr left, ExprPtr right) {
  return BinarySetOp(ExprKind::kIntersect, std::move(left), std::move(right));
}
ExprPtr Union(ExprPtr left, ExprPtr right) {
  return BinarySetOp(ExprKind::kUnion, std::move(left), std::move(right));
}
ExprPtr Difference(ExprPtr left, ExprPtr right) {
  return BinarySetOp(ExprKind::kDifference, std::move(left),
                     std::move(right));
}

Result<Schema> InferSchema(const ExprPtr& expr, const Catalog& catalog) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  switch (expr->kind) {
    case ExprKind::kScan: {
      TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(expr->relation));
      return rel->schema();
    }
    case ExprKind::kSelect: {
      TCQ_ASSIGN_OR_RETURN(Schema child, InferSchema(expr->left, catalog));
      // Binding validates column references and literal types.
      TCQ_ASSIGN_OR_RETURN(BoundPredicate bound,
                           BoundPredicate::Bind(expr->predicate, child));
      (void)bound;
      return child;
    }
    case ExprKind::kProject: {
      TCQ_ASSIGN_OR_RETURN(Schema child, InferSchema(expr->left, catalog));
      if (expr->columns.empty()) {
        return Status::InvalidArgument("projection onto zero columns");
      }
      std::vector<int> indices;
      for (const std::string& name : expr->columns) {
        TCQ_ASSIGN_OR_RETURN(int idx, child.IndexOf(name));
        indices.push_back(idx);
      }
      return child.SelectColumns(indices);
    }
    case ExprKind::kJoin: {
      TCQ_ASSIGN_OR_RETURN(Schema l, InferSchema(expr->left, catalog));
      TCQ_ASSIGN_OR_RETURN(Schema r, InferSchema(expr->right, catalog));
      if (expr->join_keys.empty()) {
        return Status::InvalidArgument("join requires at least one key");
      }
      for (const auto& [lname, rname] : expr->join_keys) {
        TCQ_ASSIGN_OR_RETURN(int li, l.IndexOf(lname));
        TCQ_ASSIGN_OR_RETURN(int ri, r.IndexOf(rname));
        if (l.column(li).type != r.column(ri).type) {
          return Status::InvalidArgument("join key type mismatch: '" + lname +
                                         "' vs '" + rname + "'");
        }
      }
      return l.ConcatForJoin(r);
    }
    case ExprKind::kIntersect:
    case ExprKind::kUnion:
    case ExprKind::kDifference: {
      TCQ_ASSIGN_OR_RETURN(Schema l, InferSchema(expr->left, catalog));
      TCQ_ASSIGN_OR_RETURN(Schema r, InferSchema(expr->right, catalog));
      if (!l.CompatibleWith(r)) {
        return Status::InvalidArgument(
            std::string(ExprKindName(expr->kind)) +
            " operands have incompatible schemas: " + l.ToString() + " vs " +
            r.ToString());
      }
      return l;
    }
  }
  return Status::Internal("unknown expression kind");
}

void CollectScans(const ExprPtr& expr, std::vector<std::string>* names) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kScan) {
    names->push_back(expr->relation);
    return;
  }
  CollectScans(expr->left, names);
  CollectScans(expr->right, names);
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kScan:
      return a->relation == b->relation;
    case ExprKind::kSelect:
      return PredicateEquals(a->predicate, b->predicate) &&
             ExprEquals(a->left, b->left);
    case ExprKind::kProject:
      return a->columns == b->columns && ExprEquals(a->left, b->left);
    case ExprKind::kJoin:
      return a->join_keys == b->join_keys && ExprEquals(a->left, b->left) &&
             ExprEquals(a->right, b->right);
    case ExprKind::kIntersect:
    case ExprKind::kUnion:
    case ExprKind::kDifference:
      return ExprEquals(a->left, b->left) && ExprEquals(a->right, b->right);
  }
  return false;
}

bool ContainsSetDifferenceOrUnion(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind == ExprKind::kUnion || expr->kind == ExprKind::kDifference) {
    return true;
  }
  return ContainsSetDifferenceOrUnion(expr->left) ||
         ContainsSetDifferenceOrUnion(expr->right);
}

}  // namespace tcq
