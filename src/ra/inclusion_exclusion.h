#ifndef TCQ_RA_INCLUSION_EXCLUSION_H_
#define TCQ_RA_INCLUSION_EXCLUSION_H_

#include <vector>

#include "ra/expr.h"
#include "util/result.h"

namespace tcq {

/// One term of the inclusion–exclusion expansion of COUNT(E):
/// `sign * COUNT(expr)` where `expr` contains only
/// Scan/Select/Project/Join/Intersect.
struct SignedTerm {
  int sign = 1;  // +1 or -1 before merging; any integer after merging
  ExprPtr expr;
};

/// Rewrites `COUNT(expr)` into a signed sum of COUNTs of Union/Difference-
/// free expressions, per the paper's use of the Principle of Inclusion and
/// Exclusion (§2, §4.2):
///
///   COUNT(A ∪ B) = COUNT(A) + COUNT(B) − COUNT(A ∩ B)
///   COUNT(A − B) = COUNT(A) − COUNT(A ∩ B)
///
/// Union/Difference nodes below Select/Join/Intersect/Project are first
/// pulled to the top using distributivity (valid under set semantics). One
/// exception: projection does *not* distribute over Difference
/// (π(A−B) ≠ π(A) − π(B)), so such inputs return NotImplemented.
///
/// Structurally identical terms are merged (signs summed) and zero-sign
/// terms dropped, so the returned signs may have magnitude > 1.
[[nodiscard]] Result<std::vector<SignedTerm>> ExpandCount(const ExprPtr& expr);

/// Pulls all Union/Difference nodes above Select/Join/Intersect/Project.
/// Exposed for testing; `ExpandCount` calls it internally.
[[nodiscard]] Result<ExprPtr> PullUpSetOps(const ExprPtr& expr);

}  // namespace tcq

#endif  // TCQ_RA_INCLUSION_EXCLUSION_H_
