#ifndef TCQ_RA_PARSER_H_
#define TCQ_RA_PARSER_H_

#include <string>
#include <string_view>

#include "ra/expr.h"
#include "util/result.h"

namespace tcq {

/// Parses the textual relational-algebra query language of the prototype
/// (the paper's ERAM system "uses relational algebra expressions as its
/// query language"). Grammar (case-insensitive keywords):
///
///   expr       := term (("UNION" | "INTERSECT" | "MINUS") term)*
///   term       := "SELECT"  "[" predicate "]" "(" expr ")"
///               | "PROJECT" "[" ident ("," ident)* "]" "(" expr ")"
///               | "JOIN" "[" ident "=" ident ("," ident "=" ident)* "]"
///                        "(" expr "," expr ")"
///               | "(" expr ")"
///               | ident                          -- base-relation scan
///   predicate  := disjunct ("OR" disjunct)*
///   disjunct   := conjunct ("AND" conjunct)*
///   conjunct   := "NOT" conjunct | "(" predicate ")" | comparison
///   comparison := ident op (integer | float | 'string' | ident)
///   op         := "=" | "!=" | "<" | "<=" | ">" | ">="
///
/// Set operators associate left. A right-hand identifier in a comparison
/// names a column (column-to-column comparison); quoted text and numbers
/// are literals (a number with a '.' is a double, otherwise int64).
///
/// Examples:
///   SELECT[key < 2000](r1)
///   JOIN[key = key](r1, r2)
///   PROJECT[region](SELECT[amount >= 100 AND region != 'EU'](orders))
///   (r1 UNION r2) MINUS r3
[[nodiscard]] Result<ExprPtr> ParseQuery(std::string_view text);

}  // namespace tcq

#endif  // TCQ_RA_PARSER_H_
