#include "ra/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace tcq {

namespace {

enum class TokenKind {
  kIdent,    // relation / column names, keywords
  kInteger,
  kFloat,
  kString,   // 'quoted'
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kOp,       // = != < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

/// Parse diagnostic pointing at a byte offset, reported as the 1-based
/// line/column a human sees in their editor.
Status ParseErrorAt(std::string_view text, size_t offset,
                    const std::string& what) {
  size_t line = 1;
  size_t column = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return Status::InvalidArgument("parse error at line " +
                                 std::to_string(line) + ", column " +
                                 std::to_string(column) + ": " + what);
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      size_t start = pos_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(text_.substr(start, pos_ - start)),
                          start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        ++pos_;
        bool is_float = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.')) {
          if (text_[pos_] == '.') is_float = true;
          ++pos_;
        }
        tokens.push_back({is_float ? TokenKind::kFloat
                                   : TokenKind::kInteger,
                          std::string(text_.substr(start, pos_ - start)),
                          start});
        continue;
      }
      switch (c) {
        case '\'': {
          ++pos_;
          std::string value;
          while (pos_ < text_.size() && text_[pos_] != '\'') {
            value += text_[pos_++];
          }
          if (pos_ >= text_.size()) {
            return ParseErrorAt(text_, start, "unterminated string literal");
          }
          ++pos_;  // closing quote
          tokens.push_back({TokenKind::kString, value, start});
          continue;
        }
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", start});
          ++pos_;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", start});
          ++pos_;
          continue;
        case '[':
          tokens.push_back({TokenKind::kLBracket, "[", start});
          ++pos_;
          continue;
        case ']':
          tokens.push_back({TokenKind::kRBracket, "]", start});
          ++pos_;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", start});
          ++pos_;
          continue;
        case '=':
          tokens.push_back({TokenKind::kOp, "=", start});
          ++pos_;
          continue;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenKind::kOp, "!=", start});
            pos_ += 2;
            continue;
          }
          return ParseErrorAt(text_, start, "stray '!'");
        case '<':
        case '>': {
          std::string op(1, c);
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            op += '=';
            ++pos_;
          }
          tokens.push_back({TokenKind::kOp, op, start});
          continue;
        }
        default:
          return ParseErrorAt(
              text_, start, std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsKeyword(const Token& t, const char* keyword) {
  return t.kind == TokenKind::kIdent && ToUpper(t.text) == keyword;
}

class Parser {
 public:
  Parser(std::string_view text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return ErrorHere("trailing input after query");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// Diagnostic anchored at the current token.
  Status ErrorHere(const std::string& what) const {
    return ParseErrorAt(text_, Peek().offset, what);
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return ErrorHere(std::string("expected ") + what);
    }
    Advance();
    return Status::OK();
  }

  Result<ExprPtr> ParseExpr() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseTerm());
    while (IsKeyword(Peek(), "UNION") || IsKeyword(Peek(), "INTERSECT") ||
           IsKeyword(Peek(), "MINUS")) {
      std::string op = ToUpper(Advance().text);
      TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseTerm());
      if (op == "UNION") {
        left = Union(std::move(left), std::move(right));
      } else if (op == "INTERSECT") {
        left = Intersect(std::move(left), std::move(right));
      } else {
        left = Difference(std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseTerm() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kLParen) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return e;
    }
    if (IsKeyword(t, "SELECT")) {
      Advance();
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
      TCQ_ASSIGN_OR_RETURN(PredicatePtr pred, ParsePredicate());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      TCQ_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Select(std::move(child), std::move(pred));
    }
    if (IsKeyword(t, "PROJECT")) {
      Advance();
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
      std::vector<std::string> columns;
      do {
        if (Peek().kind != TokenKind::kIdent) {
          return ErrorHere("expected column name");
        }
        columns.push_back(Advance().text);
      } while (Peek().kind == TokenKind::kComma && (Advance(), true));
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      TCQ_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Project(std::move(child), std::move(columns));
    }
    if (IsKeyword(t, "JOIN")) {
      Advance();
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
      std::vector<std::pair<std::string, std::string>> keys;
      do {
        if (Peek().kind != TokenKind::kIdent) {
          return ErrorHere("expected join column name");
        }
        std::string lhs = Advance().text;
        if (Peek().kind != TokenKind::kOp || Peek().text != "=") {
          return ErrorHere("expected '='");
        }
        Advance();
        if (Peek().kind != TokenKind::kIdent) {
          return ErrorHere("expected join column name");
        }
        keys.emplace_back(std::move(lhs), Advance().text);
      } while (Peek().kind == TokenKind::kComma && (Advance(), true));
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseExpr());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseExpr());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Join(std::move(left), std::move(right), std::move(keys));
    }
    if (t.kind == TokenKind::kIdent) {
      return Scan(Advance().text);
    }
    return ParseErrorAt(text_, t.offset, "expected a query term");
  }

  Result<PredicatePtr> ParsePredicate() {
    TCQ_ASSIGN_OR_RETURN(PredicatePtr left, ParseDisjunct());
    while (IsKeyword(Peek(), "OR")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(PredicatePtr right, ParseDisjunct());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseDisjunct() {
    TCQ_ASSIGN_OR_RETURN(PredicatePtr left, ParseConjunct());
    while (IsKeyword(Peek(), "AND")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(PredicatePtr right, ParseConjunct());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseConjunct() {
    if (IsKeyword(Peek(), "NOT")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(PredicatePtr inner, ParseConjunct());
      return Not(std::move(inner));
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(PredicatePtr inner, ParsePredicate());
      TCQ_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    // comparison: ident op rhs
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected column name");
    }
    std::string column = Advance().text;
    if (Peek().kind != TokenKind::kOp) {
      return ErrorHere("expected comparison operator");
    }
    std::string op_text = Advance().text;
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "!=") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return ErrorHere("unknown operator '" + op_text + "'");
    }
    const Token& rhs = Peek();
    switch (rhs.kind) {
      case TokenKind::kInteger: {
        Advance();
        return CmpLiteral(std::move(column), op,
                          static_cast<int64_t>(std::atoll(rhs.text.c_str())));
      }
      case TokenKind::kFloat: {
        Advance();
        return CmpLiteral(std::move(column), op,
                          std::atof(rhs.text.c_str()));
      }
      case TokenKind::kString: {
        Advance();
        return CmpLiteral(std::move(column), op, rhs.text);
      }
      case TokenKind::kIdent: {
        Advance();
        return CmpColumns(std::move(column), op, rhs.text);
      }
      default:
        return ParseErrorAt(text_, rhs.offset,
                            "expected a literal or column after operator");
    }
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view text) {
  Lexer lexer(text);
  TCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(text, std::move(tokens));
  return parser.Parse();
}

}  // namespace tcq
