#ifndef TCQ_OBS_REPORT_H_
#define TCQ_OBS_REPORT_H_

/// Per-stage reports emitted by the staged evaluator loop (the paper's
/// Figure 3.1 while-body) and the observer interface that receives them
/// live. Kept free of engine/ra dependencies so callers can consume
/// reports without pulling in the executor.

#include <cstdint>
#include <string>
#include <vector>

#include "util/layout.h"

namespace tcq {

/// One operator's revised sample selectivity at the start of a stage
/// (paper §3.1, Figure 3.3): `term` is the inclusion–exclusion term index,
/// `node` the operator's pre-order id inside the term, `op` the operator
/// kind name ("Select", "Join", ...).
struct OperatorSelectivity {
  int term = 0;
  int node = 0;
  std::string op;
  double selectivity = 0.0;
  /// Hybrid-predictor annotations (DESIGN.md §12); defaults when the
  /// predictor is off. `component` names the chooser's pick ("observed",
  /// "prior", "history", "default"), `confidence` its saturating-counter
  /// confidence in [0, 1], `width_scale` the resulting d_β multiplier.
  std::string component;
  double confidence = 0.0;
  double width_scale = 1.0;
};

/// What happened during one stage. The first block of fields is the
/// planning/outcome record the engine always kept; the second block is
/// the observability extension: ledger spend against the quota, the
/// parallel sections' realized work/span, and the per-operator revised
/// selectivities the planner saw (ŝ of §3.1).
struct StageReport {
  int index = 0;                  // 0-based
  double time_left_before = 0.0;  // Ti
  double planned_fraction = 0.0;  // fi
  double d_beta_used = 0.0;
  double predicted_seconds = 0.0;
  double actual_seconds = 0.0;
  int64_t blocks_drawn = 0;       // over all relations
  bool within_quota = false;      // stage finished before the deadline
  double estimate_after = 0.0;
  double variance_after = 0.0;    // V̂ after this stage

  double quota_s = 0.0;            // T
  /// Evaluation path the stage's operators ran on (ExecutorOptions::
  /// layout). Constant across a run's stages; reported per stage so
  /// report consumers need no side channel to the options.
  Layout layout = Layout::kRow;
  double ledger_spend_s = 0.0;     // clock advance during this stage
  double cumulative_spend_s = 0.0; // clock advance since the query started
  double work_seconds = 0.0;       // parallel sections: Σ task durations
  double span_seconds = 0.0;       // parallel sections: elapsed
  int parallel_tasks = 0;
  std::vector<OperatorSelectivity> selectivities;
  /// True when the hybrid selectivity predictor planned this stage.
  bool predictor_used = false;

  // Fault-injection tally of this stage (all zero with faults disabled;
  // see DESIGN.md §10). Retried reads are *attempts*, never fresh draws:
  // `blocks_drawn` counts each drawn block exactly once however many
  // times it was re-read.
  int64_t transient_faults = 0;  // read attempts that failed transiently
  int64_t retries = 0;           // re-read attempts performed
  int64_t blocks_lost = 0;       // drawn blocks excluded as unreadable
  int64_t stragglers = 0;        // reads at inflated latency
  double fault_delay_s = 0.0;    // backoff + straggler seconds charged
};

/// Receives live progress from a running query. Invoked synchronously
/// from the engine's serial sections (once per stage, never from worker
/// threads), so implementations need no locking against the engine; a
/// slow observer slows the query. Virtual dispatch happens once per
/// stage, never on the per-tuple hot path.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;
  /// Before stage 0. `num_terms` counts the sampled inclusion–exclusion
  /// terms of the expanded query.
  virtual void OnQueryBegin(double quota_s, int num_terms) {
    (void)quota_s;
    (void)num_terms;
  }
  /// After every stage, including a final aborted one (report.within_quota
  /// is false for it).
  virtual void OnStage(const StageReport& report) { (void)report; }
  /// After the loop, with the returned estimate.
  virtual void OnQueryEnd(double estimate, double variance, bool overspent) {
    (void)estimate;
    (void)variance;
    (void)overspent;
  }
};

}  // namespace tcq

#endif  // TCQ_OBS_REPORT_H_
