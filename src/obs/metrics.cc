#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace tcq {

namespace {

void AppendNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p == 'n' || *p == 'i') {  // nan / inf: not valid JSON literals
      out->append("0");
      return;
    }
  }
  out->append(buf);
}

void AppendName(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void Histogram::Record(double v) {
  int idx = 0;
  if (v > 0.0) {
    int exp = 0;
    std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
    idx = exp - 1 + kZeroExp;
    if (idx < 0) idx = 0;
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[static_cast<size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::BucketUpperBound(int i) {
  return std::ldexp(1.0, i + 1 - kZeroExp);
}

Counter* Metrics::counter(std::string_view name) {
  WriterMutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Metrics::gauge(std::string_view name) {
  WriterMutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Metrics::histogram(std::string_view name) {
  WriterMutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string Metrics::CountersJsonLocked() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n    ");
    AppendName(&out, name);
    out.push_back(':');
    AppendNumber(&out, static_cast<double>(c->value()));
  }
  out.append(first ? "}" : "\n  }");
  return out;
}

std::string Metrics::HistogramsJsonLocked() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n    ");
    AppendName(&out, name);
    out.append(":{\"count\":");
    AppendNumber(&out, static_cast<double>(h->count()));
    out.append(",\"sum\":");
    AppendNumber(&out, h->sum());
    out.append(",\"buckets\":{");
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      int64_t n = h->bucket(i);
      if (n == 0) continue;  // sparse: only occupied buckets
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('"');
      char bound[40];
      std::snprintf(bound, sizeof(bound), "le_%.9g",
                    Histogram::BucketUpperBound(i));
      out.append(bound);
      out.append("\":");
      AppendNumber(&out, static_cast<double>(n));
    }
    out.append("}}");
  }
  out.append(first ? "}" : "\n  }");
  return out;
}

std::string Metrics::ToJson() const {
  ReaderMutexLock lock(mu_);
  std::string out = "{\n  \"counters\":";
  out.append(CountersJsonLocked());
  out.append(",\n  \"gauges\":{");
  bool first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n    ");
    AppendName(&out, name);
    out.push_back(':');
    AppendNumber(&out, g->value());
  }
  out.append(first ? "}" : "\n  }");
  out.append(",\n  \"histograms\":");
  out.append(HistogramsJsonLocked());
  out.append("\n}\n");
  return out;
}

std::string Metrics::DeterministicJson() const {
  ReaderMutexLock lock(mu_);
  std::string out = "{\n  \"counters\":";
  out.append(CountersJsonLocked());
  out.append(",\n  \"histograms\":");
  out.append(HistogramsJsonLocked());
  out.append("\n}\n");
  return out;
}

}  // namespace tcq
