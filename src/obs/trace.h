#ifndef TCQ_OBS_TRACE_H_
#define TCQ_OBS_TRACE_H_

/// Span/event tracing for the TCQ pipeline, exportable as Chrome
/// `trace_event` JSON (load the file in chrome://tracing or Perfetto).
///
/// Design constraints (see DESIGN.md §7 "Observability"):
///  - Near-zero cost when disabled: every instrumentation site guards on a
///    plain `Tracer*` null/enabled check; no event is materialized, no
///    clock is read, and no virtual call happens on the disabled path.
///  - Lock-free recording on the hot path: each recording thread appends
///    to its own buffer. A mutex is taken only the first time a thread
///    records into a given tracer (buffer registration) and at export.
///  - Deterministic timestamps in simulation: `UseClock` points the tracer
///    at the engine's VirtualClock so a simulated run's trace is a pure
///    function of the seed (the golden-schema test relies on this).
///
/// Export (`ExportChromeJson` / `ExportToFile`) must only be called when
/// no span is in flight — i.e. after the engine's stage barriers, which is
/// when the public API exports. The formatting itself is private to this
/// module: the tcq_lint rule `trace-format-outside-obs` keeps every other
/// library directory from assembling trace JSON by hand.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Configuration of a query trace (QueryBuilder::WithTrace).
struct TraceOptions {
  /// Master switch; a disabled tracer records nothing and costs one
  /// branch per instrumentation site.
  bool enabled = true;
  /// When non-empty, the public API writes the Chrome trace_event JSON
  /// here after the query finishes.
  std::string export_path;
  /// Safety cap per recording thread; events beyond it are dropped (and
  /// counted in `dropped_events`).
  size_t max_events_per_thread = 1 << 20;
};

/// One recorded event. `name`/`cat`/argument keys must be string literals
/// (or otherwise outlive the tracer): events store the pointers only, so
/// recording never allocates for metadata.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char ph = 'X';  // 'X' complete, 'i' instant, 'C' counter
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int num_args = 0;
  const char* arg_key[2] = {nullptr, nullptr};
  double arg_val[2] = {0.0, 0.0};
};

class Tracer {
 public:
  explicit Tracer(TraceOptions options = TraceOptions());
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  const TraceOptions& options() const { return options_; }

  /// Timestamps come from `clock` (not owned; e.g. the engine's
  /// VirtualClock, making simulated traces deterministic). Without a
  /// clock, a monotonic timer anchored at construction is used. Call
  /// before recording starts; the clock must outlive the tracer.
  void UseClock(const Clock* clock) { clock_ = clock; }

  /// Current timestamp in microseconds (virtual or monotonic).
  double NowUs() const;

  /// Records a completed span [ts_us, ts_us + dur_us).
  void Complete(const char* name, const char* cat, double ts_us,
                double dur_us, int num_args = 0,
                const char* k0 = nullptr, double v0 = 0.0,
                const char* k1 = nullptr, double v1 = 0.0);
  /// Records an instant event at the current time.
  void Instant(const char* name, const char* cat,
               const char* k0 = nullptr, double v0 = 0.0);
  /// Records a counter sample (rendered as a track in chrome://tracing).
  void Counter(const char* name, double value);

  /// Total events currently buffered across all threads; takes the
  /// registration mutex — not for hot paths. Safe to call while other
  /// threads record: it sums the per-buffer published counters, not the
  /// append-only event vectors themselves.
  size_t event_count() const TCQ_EXCLUDES(mu_);
  /// Events discarded because a thread hit `max_events_per_thread`.
  int64_t dropped_events() const TCQ_EXCLUDES(mu_);

  /// Serializes every buffered event as a Chrome trace_event JSON object
  /// ({"traceEvents": [...], ...}). Only call when no recording is in
  /// flight (after the engine's stage barriers).
  std::string ExportChromeJson() const TCQ_EXCLUDES(mu_);
  /// ExportChromeJson to a file.
  [[nodiscard]] Status ExportToFile(const std::string& path) const;

 private:
  struct ThreadBuffer;

  ThreadBuffer* LocalBuffer() TCQ_EXCLUDES(mu_);
  void Record(const TraceEvent& event);

  TraceOptions options_;
  bool enabled_ = false;
  uint64_t id_ = 0;  // process-unique, guards the thread-local cache
  const Clock* clock_ = nullptr;
  std::chrono::steady_clock::time_point fallback_start_;
  mutable Mutex mu_;  // buffer registration + export only
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ TCQ_GUARDED_BY(mu_);
};

/// RAII span: captures the start time at construction and records one
/// complete event at destruction. A null/disabled tracer makes every
/// operation (including construction) a no-op branch.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* cat)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        cat_(cat),
        start_us_(tracer_ != nullptr ? tracer_->NowUs() : 0.0) {}
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->Complete(name_, cat_, start_us_, tracer_->NowUs() - start_us_,
                        num_args_, key_[0], val_[0], key_[1], val_[1]);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two numeric arguments shown in the trace viewer.
  void Arg(const char* key, double value) {
    if (tracer_ == nullptr || num_args_ >= 2) return;
    key_[num_args_] = key;
    val_[num_args_] = value;
    ++num_args_;
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  double start_us_;
  int num_args_ = 0;
  const char* key_[2] = {nullptr, nullptr};
  double val_[2] = {0.0, 0.0};
};

}  // namespace tcq

#endif  // TCQ_OBS_TRACE_H_
