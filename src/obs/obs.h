#ifndef TCQ_OBS_OBS_H_
#define TCQ_OBS_OBS_H_

/// ObsHandle: the bundle of observability sinks threaded through the
/// pipeline (ExecutorOptions, StagePlanContext, samplers, evaluators).
/// Plain non-owning pointers — the default-constructed handle means "no
/// observability" and every instrumentation site reduces to a null check,
/// with no virtual dispatch on the hot path. The pointed-to objects must
/// outlive the query run.

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tcq {

struct ObsHandle {
  Tracer* tracer = nullptr;
  Metrics* metrics = nullptr;
  ProgressObserver* observer = nullptr;

  /// True when span/event recording would actually store something.
  bool tracing() const { return tracer != nullptr && tracer->enabled(); }
  /// True when metric updates have a sink.
  bool metering() const { return metrics != nullptr; }
};

}  // namespace tcq

#endif  // TCQ_OBS_OBS_H_
