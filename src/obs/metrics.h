#ifndef TCQ_OBS_METRICS_H_
#define TCQ_OBS_METRICS_H_

/// Metrics registry for the TCQ pipeline: counters, gauges and histograms
/// keyed by dotted names ("engine.blocks_drawn", "timectrl.sel.t0.n1").
///
/// Determinism contract (relied on by the bit-identity test): counters are
/// monotone integer accumulators and may be incremented from concurrent
/// tasks — additive integer updates commute, so at a fixed seed the totals
/// are identical for any thread count. Gauges and histograms carry doubles
/// and must only be written from the engine's serial (post-barrier)
/// sections; scheduling-dependent quantities (pool steal counts, queue
/// depths) are exported as gauges, never counters, so the deterministic
/// counter section stays bit-identical across widths.
///
/// Lookup (`counter()` / `gauge()` / `histogram()`) takes the registry
/// mutex; instrumented components resolve their instruments once and keep
/// the returned pointer, which stays valid for the registry's lifetime.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcq {

/// Monotone integer accumulator; thread-safe, order-independent.
class Counter {
 public:
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-value instrument. Thread-safe to read; write from serial sections
/// only when determinism of the exported value matters.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // Serial-section use only (see header contract); the relaxed RMW loop
    // is for safe publication, not for concurrent accumulation order.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two bucketed histogram of non-negative values. Bucket i counts
/// values in [2^(i-kZeroExp), 2^(i+1-kZeroExp)); values below the first
/// bound land in bucket 0, above the last in the final bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kZeroExp = 32;  // bucket 0 starts at 2^-32

  void Record(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i's value range.
  static double BucketUpperBound(int i);

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Finds or creates the named instrument. The returned pointer stays
  /// valid for the registry's lifetime.
  Counter* counter(std::string_view name) TCQ_EXCLUDES(mu_);
  Gauge* gauge(std::string_view name) TCQ_EXCLUDES(mu_);
  Histogram* histogram(std::string_view name) TCQ_EXCLUDES(mu_);

  /// Full registry as JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}, names sorted, doubles printed round-trip.
  std::string ToJson() const TCQ_EXCLUDES(mu_);
  /// Only the deterministic sections (counters + histograms) — the
  /// subset the bit-identity test compares across thread counts.
  std::string DeterministicJson() const TCQ_EXCLUDES(mu_);

 private:
  std::string CountersJsonLocked() const TCQ_REQUIRES_SHARED(mu_);
  std::string HistogramsJsonLocked() const TCQ_REQUIRES_SHARED(mu_);

  /// Reader/writer split: lookups mutate the maps (find-or-create) and
  /// take the writer side; exports only read and may overlap each other.
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TCQ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TCQ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      TCQ_GUARDED_BY(mu_);
};

}  // namespace tcq

#endif  // TCQ_OBS_METRICS_H_
