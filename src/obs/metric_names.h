#ifndef TCQ_OBS_METRIC_NAMES_H_
#define TCQ_OBS_METRIC_NAMES_H_

/// The single registry of metric instrument names. Every string literal
/// passed to Metrics::counter() / gauge() / histogram() anywhere in the
/// tree must appear here — enforced by the tcq_lint rule
/// `metric-name-registry` — so dashboards built against these names can
/// never silently drift from the code. Dynamically composed names
/// (`gauge(base + "_s")`) are exempt from the rule; keep them rare.
///
/// Call sites in the serving/fault/cache/engine layers use the named
/// constants; leaf instruments elsewhere may keep the literal spelling
/// as long as it matches an entry below. Constants are grouped by
/// subsystem prefix and sorted within each group.

namespace tcq::metric_names {

// cache.* — WarmStartCache / sample-pool reuse (engine export section).
inline constexpr char kCacheBlocksFresh[] = "cache.blocks_fresh";
inline constexpr char kCacheBlocksReplayed[] = "cache.blocks_replayed";
inline constexpr char kCachePoolBlocks[] = "cache.pool_blocks";
inline constexpr char kCachePriorEntries[] = "cache.prior_entries";
inline constexpr char kCachePriorHits[] = "cache.prior_hits";
inline constexpr char kCachePriorMisses[] = "cache.prior_misses";

// engine.* — per-run executor telemetry.
inline constexpr char kEngineBlocksDrawn[] = "engine.blocks_drawn";
inline constexpr char kEngineOverspendS[] = "engine.overspend_s";
inline constexpr char kEngineQuotaS[] = "engine.quota_s";
inline constexpr char kEngineSpendS[] = "engine.spend_s";
inline constexpr char kEngineStagesRun[] = "engine.stages_run";
inline constexpr char kEngineTimeLeftS[] = "engine.time_left_s";
inline constexpr char kEngineUtilization[] = "engine.utilization";

// estimator.* — running-estimator diagnostics.
inline constexpr char kEstimatorCombines[] = "estimator.combines";
inline constexpr char kEstimatorEstimate[] = "estimator.estimate";
inline constexpr char kEstimatorStageVariance[] = "estimator.stage_variance";
inline constexpr char kEstimatorVariance[] = "estimator.variance";

// exec.* — operator-level work counts.
inline constexpr char kExecTuplesScanned[] = "exec.tuples_scanned";

// fault.* — injected-fault tallies and recovery overhead.
inline constexpr char kFaultBlocksLost[] = "fault.blocks_lost";
inline constexpr char kFaultDelayS[] = "fault.delay_s";
inline constexpr char kFaultRetries[] = "fault.retries";
inline constexpr char kFaultStragglers[] = "fault.stragglers";
inline constexpr char kFaultTransient[] = "fault.transient";
inline constexpr char kFaultVarianceWidening[] = "fault.variance_widening";

// ledger.* — simulated-cost accounting.
inline constexpr char kLedgerTotalS[] = "ledger.total_s";

// pool.* — ThreadPool scheduling (gauges; scheduling-dependent).
inline constexpr char kPoolBatches[] = "pool.batches";
inline constexpr char kPoolTasksByCallers[] = "pool.tasks_by_callers";
inline constexpr char kPoolTasksByWorkers[] = "pool.tasks_by_workers";
inline constexpr char kPoolWidth[] = "pool.width";
inline constexpr char kPoolWorkers[] = "pool.workers";

// predictor.* — hybrid selectivity predictor (DESIGN.md §12).
inline constexpr char kPredictorAbsError[] = "predictor.abs_error";
inline constexpr char kPredictorEntries[] = "predictor.entries";
inline constexpr char kPredictorHistoryHits[] = "predictor.history_hits";
inline constexpr char kPredictorHistoryMisses[] = "predictor.history_misses";
inline constexpr char kPredictorPredictions[] = "predictor.predictions";
inline constexpr char kPredictorWidthScale[] = "predictor.width_scale";

// sampling.* — block-sampling telemetry.
inline constexpr char kSamplingBlocksDrawn[] = "sampling.blocks_drawn";

// serve.* — admission controller, circuit breaker, server loop.
inline constexpr char kServeActive[] = "serve.active";
inline constexpr char kServeAdmitted[] = "serve.admitted";
inline constexpr char kServeBreakerOpen[] = "serve.breaker_open";
inline constexpr char kServeBreakerProbeAborts[] = "serve.breaker_probe_aborts";
inline constexpr char kServeBreakerProbes[] = "serve.breaker_probes";
inline constexpr char kServeBreakerSheds[] = "serve.breaker_sheds";
inline constexpr char kServeBreakerShrinks[] = "serve.breaker_shrinks";
inline constexpr char kServeBreakerTrips[] = "serve.breaker_trips";
inline constexpr char kServeCompleted[] = "serve.completed";
inline constexpr char kServeDeadlineMissS[] = "serve.deadline_miss_s";
inline constexpr char kServeDeadlineMissed[] = "serve.deadline_missed";
inline constexpr char kServeLatencyS[] = "serve.latency_s";
inline constexpr char kServeOutstandingQuotaS[] = "serve.outstanding_quota_s";
inline constexpr char kServeQueueDepth[] = "serve.queue_depth";
inline constexpr char kServeQueued[] = "serve.queued";
inline constexpr char kServeRejected[] = "serve.rejected";
inline constexpr char kServeShrunk[] = "serve.shrunk";
inline constexpr char kServeSubmitted[] = "serve.submitted";

// session.* — standalone-session configuration echoes.
inline constexpr char kSessionPoolWorkers[] = "session.pool_workers";

// timectrl.* — time-control (Sample-Size-Determine) diagnostics.
inline constexpr char kTimectrlIntersectFallback[] =
    "timectrl.intersect_fallback";
inline constexpr char kTimectrlSelectivity[] = "timectrl.selectivity";
inline constexpr char kTimectrlSsdProbes[] = "timectrl.ssd_probes";

// vector.* — vectorized (columnar-layout) evaluation path counters.
// Deterministic at a fixed seed: batch boundaries follow the drawn blocks.
inline constexpr char kVectorBatches[] = "vector.batches";
inline constexpr char kVectorRows[] = "vector.rows";

}  // namespace tcq::metric_names

#endif  // TCQ_OBS_METRIC_NAMES_H_
