#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "util/mutex.h"

namespace tcq {

/// Events recorded by one thread. Appended only by the owning thread;
/// read at export, which the caller synchronizes (post-barrier contract
/// documented in trace.h). `count` and `dropped` are the published
/// counters behind event_count()/dropped_events(): those accessors may
/// run concurrently with recording — summing events.size() directly
/// would race the owner's push_back, so the owner publishes the size
/// with a release store after each append instead.
struct Tracer::ThreadBuffer {
  std::thread::id owner;
  uint32_t tid = 0;  // logical id: registration order, caller usually 0
  std::vector<TraceEvent> events;
  std::atomic<size_t> count{0};    // == events.size(), release-published
  std::atomic<int64_t> dropped{0};
};

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

/// Thread-local cache of the last tracer this thread recorded into. The
/// id check (not just the pointer) guards against a new tracer reusing a
/// destroyed tracer's address.
struct TlsCache {
  uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  // %.17g round-trips doubles; trace timestamps/args stay exact.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no NaN/Inf literals; clamp to null-safe 0.
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p == 'n' || *p == 'i') {  // nan / inf
      out->append("0");
      return;
    }
  }
  out->append(buf);
}

void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (const char* p = s; *p != '\0'; ++p) {
    char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Serializes one event as a trace_event object. Private to this module:
/// all trace formatting lives in src/obs/ (lint: trace-format-outside-obs).
void AppendTraceEventJson(std::string* out, const TraceEvent& e) {
  out->append("{\"name\":");
  AppendJsonString(out, e.name);
  out->append(",\"cat\":");
  AppendJsonString(out, e.cat);
  out->append(",\"ph\":\"");
  out->push_back(e.ph);
  out->append("\",\"pid\":1,\"tid\":");
  AppendJsonNumber(out, static_cast<double>(e.tid));
  out->append(",\"ts\":");
  AppendJsonNumber(out, e.ts_us);
  if (e.ph == 'X') {
    out->append(",\"dur\":");
    AppendJsonNumber(out, e.dur_us);
  }
  if (e.num_args > 0) {
    out->append(",\"args\":{");
    for (int i = 0; i < e.num_args; ++i) {
      if (i > 0) out->push_back(',');
      AppendJsonString(out, e.arg_key[i]);
      out->push_back(':');
      AppendJsonNumber(out, e.arg_val[i]);
    }
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace

Tracer::Tracer(TraceOptions options)
    : options_(std::move(options)),
      enabled_(options_.enabled),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      fallback_start_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

double Tracer::NowUs() const {
  if (clock_ != nullptr) return clock_->Now() * 1e6;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - fallback_start_)
      .count();
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  if (tls_cache.tracer_id == id_) {
    return static_cast<ThreadBuffer*>(tls_cache.buffer);
  }
  // Slow path: first record from this thread into this tracer (or the
  // thread interleaved another tracer since). Reuses the thread's
  // existing buffer if one was registered earlier.
  MutexLock lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  ThreadBuffer* buf = nullptr;
  for (const auto& b : buffers_) {
    if (b->owner == self) {
      buf = b.get();
      break;
    }
  }
  if (buf == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buf = buffers_.back().get();
    buf->owner = self;
    buf->tid = static_cast<uint32_t>(buffers_.size() - 1);
  }
  tls_cache.tracer_id = id_;
  tls_cache.buffer = buf;
  return buf;
}

void Tracer::Record(const TraceEvent& event) {
  ThreadBuffer* buf = LocalBuffer();
  if (buf->events.size() >= options_.max_events_per_thread) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events.push_back(event);
  buf->events.back().tid = buf->tid;
  buf->count.store(buf->events.size(), std::memory_order_release);
}

void Tracer::Complete(const char* name, const char* cat, double ts_us,
                      double dur_us, int num_args, const char* k0, double v0,
                      const char* k1, double v1) {
  if (!enabled_) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.num_args = num_args;
  e.arg_key[0] = k0;
  e.arg_val[0] = v0;
  e.arg_key[1] = k1;
  e.arg_val[1] = v1;
  Record(e);
}

void Tracer::Instant(const char* name, const char* cat, const char* k0,
                     double v0) {
  if (!enabled_) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = NowUs();
  if (k0 != nullptr) {
    e.num_args = 1;
    e.arg_key[0] = k0;
    e.arg_val[0] = v0;
  }
  Record(e);
}

void Tracer::Counter(const char* name, double value) {
  if (!enabled_) return;
  TraceEvent e;
  e.name = name;
  e.cat = "counter";
  e.ph = 'C';
  e.ts_us = NowUs();
  e.num_args = 1;
  e.arg_key[0] = "value";
  e.arg_val[0] = value;
  Record(e);
}

size_t Tracer::event_count() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& b : buffers_) {
    n += b->count.load(std::memory_order_acquire);
  }
  return n;
}

int64_t Tracer::dropped_events() const {
  MutexLock lock(mu_);
  int64_t n = 0;
  for (const auto& b : buffers_) {
    n += b->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

std::string Tracer::ExportChromeJson() const {
  MutexLock lock(mu_);
  std::string out;
  out.append("{\"traceEvents\":[");
  bool first = true;
  // The buffers' tids fix each event's track; events within a buffer are
  // already in that thread's recording order, so emitting buffer-by-buffer
  // is deterministic for a deterministic recording.
  for (const auto& b : buffers_) {
    for (const TraceEvent& e : b->events) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('\n');
      AppendTraceEventJson(&out, e);
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":");
  AppendJsonString(&out, clock_ != nullptr ? "virtual" : "monotonic");
  out.append("}}\n");
  return out;
}

Status Tracer::ExportToFile(const std::string& path) const {
  const std::string json = ExportChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace tcq
