#include "timectrl/strategy.h"

#include <algorithm>

namespace tcq {

Result<StagePlan> OneAtATimeStrategy::PlanStage(
    const StagePlanContext& context) {
  double d_beta = options_.d_beta;
  if (options_.decay_with_time_left && context.quota > 0.0) {
    d_beta *= std::clamp(context.time_left / context.quota, 0.0, 1.0);
  }
  QCostFn qcost = [&context, d_beta](double f) {
    return context.qcost(f, d_beta);
  };
  TCQ_ASSIGN_OR_RETURN(
      SampleSizeResult r,
      SampleSizeDetermine(qcost, context.time_left, context.epsilon,
                          context.f_max, context.f_min_step, &context.obs));
  StagePlan plan;
  plan.fraction = r.fraction;
  plan.predicted_seconds = r.predicted_seconds;
  plan.predictor_used = context.predictor_active;
  plan.d_beta_used = d_beta;
  return plan;
}

Result<StagePlan> SingleIntervalStrategy::PlanStage(
    const StagePlanContext& context) {
  const double d_alpha = options_.d_alpha;
  QCostFn qcost = [&context, d_alpha](double f) -> Result<double> {
    TCQ_ASSIGN_OR_RETURN(double mean, context.qcost(f, 0.0));
    TCQ_ASSIGN_OR_RETURN(double sigma, context.qcost_sigma(f));
    return mean + d_alpha * sigma;
  };
  TCQ_ASSIGN_OR_RETURN(
      SampleSizeResult r,
      SampleSizeDetermine(qcost, context.time_left, context.epsilon,
                          context.f_max, context.f_min_step, &context.obs));
  StagePlan plan;
  plan.fraction = r.fraction;
  plan.predicted_seconds = r.predicted_seconds;
  plan.predictor_used = context.predictor_active;
  plan.d_beta_used = 0.0;
  return plan;
}

Result<StagePlan> HeuristicStrategy::PlanStage(
    const StagePlanContext& context) {
  if (gamma_ <= 0.0) gamma_ = options_.gamma;
  double target = gamma_ * context.time_left;
  QCostFn qcost = [&context](double f) { return context.qcost(f, 0.0); };
  TCQ_ASSIGN_OR_RETURN(
      SampleSizeResult r,
      SampleSizeDetermine(qcost, target, context.epsilon, context.f_max,
                          context.f_min_step, &context.obs));
  StagePlan plan;
  plan.fraction = r.fraction;
  plan.predicted_seconds = r.predicted_seconds;
  plan.predictor_used = context.predictor_active;
  plan.d_beta_used = 0.0;
  return plan;
}

void HeuristicStrategy::OnStageOutcome(double predicted_seconds,
                                       double actual_seconds,
                                       bool overspent) {
  (void)predicted_seconds;
  (void)actual_seconds;
  if (gamma_ <= 0.0) gamma_ = options_.gamma;
  if (overspent) {
    gamma_ *= options_.shrink;
  } else {
    gamma_ = std::min(options_.gamma_max, gamma_ * options_.grow);
  }
}

}  // namespace tcq
