#ifndef TCQ_TIMECTRL_STOPPING_H_
#define TCQ_TIMECTRL_STOPPING_H_

#include <cmath>
#include <cstdlib>

#include "estimator/count_estimator.h"

namespace tcq {

/// Deadline semantics (paper §3.2).
enum class DeadlineMode {
  /// The stage running when the quota expires is aborted and its time
  /// wasted; the estimate from the last *completed* stage is returned.
  /// (The paper's implementation choice for real-time databases.)
  kHard,
  /// The last stage is allowed to finish past the quota (the
  /// while-loop-check semantics of Figure 3.1 as printed).
  kSoft,
};

/// Precision-based stopping (the second criterion type in §3.2): stop
/// early when the estimate is good enough, even with time left.
struct PrecisionStop {
  /// Stop when the CI half-width falls below `rel_halfwidth` × estimate
  /// (0 disables).
  double rel_halfwidth = 0.0;
  /// Stop when the CI half-width falls below this absolute count
  /// (0 disables).
  double abs_halfwidth = 0.0;
  /// Confidence level of the interval.
  double confidence = 0.95;
  /// Stop when the estimate changed by less than `min_improvement`
  /// (relative) over the previous stage (0 disables) — the paper's
  /// "does not improve much over the last few stages".
  double min_improvement = 0.0;

  bool enabled() const {
    return rel_halfwidth > 0.0 || abs_halfwidth > 0.0 ||
           min_improvement > 0.0;
  }
};

/// True when the current estimate satisfies the precision criteria.
/// `previous_value` is the estimate after the previous stage (NaN when
/// there is none).
inline bool ShouldStopForPrecision(const PrecisionStop& options,
                                   const CountEstimate& estimate,
                                   double previous_value) {
  if (!options.enabled()) return false;
  ConfidenceInterval ci =
      NormalConfidenceInterval(estimate, options.confidence);
  if (options.abs_halfwidth > 0.0 &&
      ci.HalfWidth() <= options.abs_halfwidth) {
    return true;
  }
  if (options.rel_halfwidth > 0.0 && estimate.value > 0.0 &&
      ci.HalfWidth() <= options.rel_halfwidth * estimate.value) {
    return true;
  }
  if (options.min_improvement > 0.0 && !std::isnan(previous_value)) {
    double denom = std::abs(previous_value) > 1.0 ? std::abs(previous_value)
                                                  : 1.0;
    if (std::abs(estimate.value - previous_value) / denom <
        options.min_improvement) {
      return true;
    }
  }
  return false;
}

}  // namespace tcq

#endif  // TCQ_TIMECTRL_STOPPING_H_
