#ifndef TCQ_TIMECTRL_SAMPLE_SIZE_H_
#define TCQ_TIMECTRL_SAMPLE_SIZE_H_

#include <functional>

#include "obs/obs.h"
#include "util/result.h"

namespace tcq {

/// Predicted stage cost as a function of the candidate sample fraction.
using QCostFn = std::function<Result<double>(double f)>;

/// Outcome of Sample-Size-Determine.
struct SampleSizeResult {
  /// Chosen fraction; 0 means even the smallest possible stage does not
  /// fit in the remaining time (terminate the query).
  double fraction = 0.0;
  /// Predicted cost at `fraction`.
  double predicted_seconds = 0.0;
};

/// Sample-Size-Determine (Figure 3.4): finds the largest sample fraction
/// whose predicted stage cost approximates `time_left`, by bisection on
/// [0, f_max]:
///   while |μ_ti − Ti| > ε:  μ < Ti ? low = f : high = f;  f = (low+high)/2
///
/// `f_min_step` is the fraction equivalent of one disk block — the cost
/// function is a step function of f, so the loop also terminates once the
/// bracket is narrower than a block, returning the largest *feasible*
/// fraction seen (cost ≤ time_left). Returns fraction 0 when qcost(f_min_step)
/// already exceeds the budget.
///
/// `obs` (optional) counts every cost-formula probe in the
/// `timectrl.ssd_probes` counter and records the bisection as a trace
/// span. Planning runs in the engine's serial section, so the probe count
/// is deterministic at a fixed seed.
[[nodiscard]] Result<SampleSizeResult> SampleSizeDetermine(const QCostFn& qcost,
                                             double time_left,
                                             double epsilon, double f_max,
                                             double f_min_step,
                                             const ObsHandle* obs = nullptr);

}  // namespace tcq

#endif  // TCQ_TIMECTRL_SAMPLE_SIZE_H_
