#include "timectrl/sample_size.h"

#include <cmath>

namespace tcq {

Result<SampleSizeResult> SampleSizeDetermine(const QCostFn& qcost,
                                             double time_left,
                                             double epsilon, double f_max,
                                             double f_min_step) {
  SampleSizeResult best;
  if (f_max <= 0.0 || time_left <= 0.0) return best;

  // If everything remaining fits, take it all.
  TCQ_ASSIGN_OR_RETURN(double cost_max, qcost(f_max));
  if (cost_max <= time_left) {
    best.fraction = f_max;
    best.predicted_seconds = cost_max;
    return best;
  }
  // If even one block's worth does not fit, give up (the paper observed
  // exactly this for Join/Intersect at large d_β: the remaining time
  // cannot fund another full-fulfillment stage).
  double f_smallest = std::min(f_min_step, f_max);
  TCQ_ASSIGN_OR_RETURN(double cost_min, qcost(f_smallest));
  if (cost_min > time_left) return best;

  best.fraction = f_smallest;
  best.predicted_seconds = cost_min;
  double low = f_smallest;
  double high = f_max;
  double f = (low + high) / 2.0;
  for (int iter = 0; iter < 64; ++iter) {
    TCQ_ASSIGN_OR_RETURN(double cost, qcost(f));
    if (cost <= time_left) {
      if (f > best.fraction) {
        best.fraction = f;
        best.predicted_seconds = cost;
      }
      if (time_left - cost <= epsilon) break;
      low = f;
    } else {
      high = f;
    }
    if (high - low <= f_min_step / 2.0) break;
    f = (low + high) / 2.0;
  }
  return best;
}

}  // namespace tcq
