#include "timectrl/sample_size.h"

#include <cmath>

namespace tcq {

Result<SampleSizeResult> SampleSizeDetermine(const QCostFn& qcost,
                                             double time_left,
                                             double epsilon, double f_max,
                                             double f_min_step,
                                             const ObsHandle* obs) {
  Counter* probes = obs != nullptr && obs->metering()
                        ? obs->metrics->counter("timectrl.ssd_probes")
                        : nullptr;
  Tracer* tracer = obs != nullptr ? obs->tracer : nullptr;
  TraceSpan span(tracer, "sample_size_determine", "timectrl");
  int64_t probe_count = 0;
  auto probe = [&](double f) {
    ++probe_count;
    return qcost(f);
  };

  SampleSizeResult best;
  if (f_max <= 0.0 || time_left <= 0.0) return best;

  // If everything remaining fits, take it all.
  TCQ_ASSIGN_OR_RETURN(double cost_max, probe(f_max));
  if (cost_max <= time_left) {
    best.fraction = f_max;
    best.predicted_seconds = cost_max;
    if (probes != nullptr) probes->Add(probe_count);
    span.Arg("fraction", best.fraction);
    return best;
  }
  // If even one block's worth does not fit, give up (the paper observed
  // exactly this for Join/Intersect at large d_β: the remaining time
  // cannot fund another full-fulfillment stage).
  double f_smallest = std::min(f_min_step, f_max);
  TCQ_ASSIGN_OR_RETURN(double cost_min, probe(f_smallest));
  if (cost_min > time_left) {
    if (probes != nullptr) probes->Add(probe_count);
    span.Arg("fraction", 0.0);
    return best;
  }

  best.fraction = f_smallest;
  best.predicted_seconds = cost_min;
  double low = f_smallest;
  double high = f_max;
  double f = (low + high) / 2.0;
  for (int iter = 0; iter < 64; ++iter) {
    TCQ_ASSIGN_OR_RETURN(double cost, probe(f));
    if (cost <= time_left) {
      if (f > best.fraction) {
        best.fraction = f;
        best.predicted_seconds = cost;
      }
      if (time_left - cost <= epsilon) break;
      low = f;
    } else {
      high = f;
    }
    if (high - low <= f_min_step / 2.0) break;
    f = (low + high) / 2.0;
  }
  if (probes != nullptr) probes->Add(probe_count);
  span.Arg("fraction", best.fraction);
  span.Arg("probes", static_cast<double>(probe_count));
  return best;
}

}  // namespace tcq
