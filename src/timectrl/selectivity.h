#ifndef TCQ_TIMECTRL_SELECTIVITY_H_
#define TCQ_TIMECTRL_SELECTIVITY_H_

#include <map>

#include "exec/staged.h"
#include "obs/obs.h"

namespace tcq {

/// Stage-1 defaults and knobs for the run-time selectivity estimation
/// (paper Figure 3.3 + §3.4).
struct SelectivityOptions {
  /// First-stage selectivity assumed for Select/Project/Join: the paper's
  /// reference algorithm uses the maximum (1); §5's join experiment
  /// overrides it to 0.1.
  double initial_select = 1.0;
  double initial_project = 1.0;
  double initial_join = 1.0;
  /// Intersect's first-stage default is 1/max(|r1|, |r2|) (Figure 3.3);
  /// this scales it (1.0 = paper behaviour).
  double initial_intersect_scale = 1.0;
  /// Confidence parameter of the zero-selectivity fix: after a stage with
  /// zero output tuples, use the (1−beta) upper confidence bound
  /// 1 − beta^(1/m) instead of 0 (§3.4; see DESIGN.md substitutions).
  double zero_hit_beta = 0.05;
  /// Prestored-selectivity mode (§3.1's alternative the paper rejects for
  /// generality): the initial selectivities are used at *every* stage and
  /// never revised from samples. For ablations: set the initial values to
  /// the true selectivities to simulate a perfectly maintained statistics
  /// store, or to wrong ones to show what staleness costs.
  bool freeze_initial = false;
};

/// Revise-Selectivities (Figure 3.3): returns sel^(i-1) for every non-scan
/// operator node id of `term`, from the cumulative samples of stages
/// 1..i−1, with the stage-1 defaults above and the zero-hit fix applied.
///
/// `stage0_priors` (optional) maps node ids to warm-start selectivity
/// priors from the session's cache: while a node has no cumulative
/// samples yet, its prior replaces the generic stage-1 default, so a
/// repeated query plans its first stage from the previous run's realized
/// selectivity instead of the maximally pessimistic 1.0. Priors only
/// ever substitute for *assumed* values — as soon as the node has sampled
/// points, the revision from samples wins, and `freeze_initial` (the
/// prestored-statistics ablation) ignores priors entirely.
std::map<int, double> ReviseSelectivities(
    const StagedTermEvaluator& term, const SelectivityOptions& options,
    const std::map<int, double>* stage0_priors = nullptr);

/// Same, additionally recording every revised value into the
/// `timectrl.selectivity` histogram. Call from the engine's serial
/// section only: the revised values are deterministic at a fixed seed, so
/// the histogram stays bit-identical across thread counts.
std::map<int, double> ReviseSelectivities(
    const StagedTermEvaluator& term, const SelectivityOptions& options,
    const ObsHandle& obs,
    const std::map<int, double>* stage0_priors = nullptr);

/// Per-node point-space deltas for a candidate fraction `f` of the next
/// stage: `new_points` the stage would cover and `remaining_points` not
/// yet covered (Figure 3.5's m_i and N_i). Purely structural — does not
/// depend on selectivities.
struct NodePoints {
  double new_points = 0.0;
  double remaining_points = 0.0;
};
std::map<int, NodePoints> PredictNodePoints(const StagedTermEvaluator& term,
                                            double f);
/// Same, for an explicit fulfillment mode of the candidate stage (hybrid
/// planning).
std::map<int, NodePoints> PredictNodePoints(const StagedTermEvaluator& term,
                                            double f, Fulfillment mode);

/// ComputeSel⁺ (Figure 3.5): inflates each operator's selectivity so that
/// P(sel⁺ ≥ realized stage selectivity) ≈ 1 − β, using the simple-random-
/// sampling variance approximation:
///   sel⁺ = sel^(i-1) + d_β · sqrt( sel(1−sel)(N_i−m_i) / (m_i(N_i−1)) )
/// clamped to [0, 1]. `sel_prev` comes from ReviseSelectivities; m_i/N_i
/// from PredictNodePoints at the candidate fraction `f`.
std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta);
std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta,
                                     Fulfillment mode);

}  // namespace tcq

#endif  // TCQ_TIMECTRL_SELECTIVITY_H_
