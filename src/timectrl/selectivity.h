#ifndef TCQ_TIMECTRL_SELECTIVITY_H_
#define TCQ_TIMECTRL_SELECTIVITY_H_

#include <map>

#include "exec/staged.h"
#include "obs/obs.h"

namespace tcq {

/// Stage-1 defaults and knobs for the run-time selectivity estimation
/// (paper Figure 3.3 + §3.4).
struct SelectivityOptions {
  /// First-stage selectivity assumed for Select/Project/Join: the paper's
  /// reference algorithm uses the maximum (1); §5's join experiment
  /// overrides it to 0.1.
  double initial_select = 1.0;
  double initial_project = 1.0;
  double initial_join = 1.0;
  /// Intersect's first-stage default is 1/max(|r1|, |r2|) (Figure 3.3);
  /// this scales it (1.0 = paper behaviour).
  double initial_intersect_scale = 1.0;
  /// Confidence parameter of the zero-selectivity fix: after a stage with
  /// zero output tuples, use the (1−beta) upper confidence bound
  /// 1 − beta^(1/m) instead of 0 (§3.4; see DESIGN.md substitutions).
  double zero_hit_beta = 0.05;
  /// Prestored-selectivity mode (§3.1's alternative the paper rejects for
  /// generality): the initial selectivities are used at *every* stage and
  /// never revised from samples. For ablations: set the initial values to
  /// the true selectivities to simulate a perfectly maintained statistics
  /// store, or to wrong ones to show what staleness costs.
  bool freeze_initial = false;
};

/// Stage-1 default selectivity of one operator node (Figure 3.3).
/// Intersect normally defaults to 1/max(|r1|, |r2|); when neither side's
/// point space is known yet (`total_points` unset, e.g. a bare evaluator
/// built for planning probes) the historical code returned 1.0 — the
/// most pessimistic value — instead of the selection default. It now
/// falls back to `options.initial_select` and reports the event through
/// `intersect_fallback` (optional) so the obs-enabled revision path can
/// count it.
double InitialSelectivity(const StagedNode& node,
                          const SelectivityOptions& options,
                          bool* intersect_fallback = nullptr);

/// A warm-start prior sanitized for stage-0 planning: clamped to [0, 1]
/// and floored by the §3.4 zero-hit upper bound at the node's full point
/// space, ZeroHitUpperBound(total_points, zero_hit_beta). A cached prior
/// of exactly (or nearly) 0.0 would otherwise freeze sel⁺ at 0 — zero
/// inflation from zero variance — and guarantee overspending the moment
/// an output tuple appears; the floor is the tightest upper bound still
/// consistent with having seen zero hits over the whole space.
double SanitizedStagePrior(double prior, double total_points,
                           double zero_hit_beta);

/// Revise-Selectivities (Figure 3.3): returns sel^(i-1) for every non-scan
/// operator node id of `term`, from the cumulative samples of stages
/// 1..i−1, with the stage-1 defaults above and the zero-hit fix applied.
///
/// `stage0_priors` (optional) maps node ids to warm-start selectivity
/// priors from the session's cache: while a node has no cumulative
/// samples yet, its prior — routed through SanitizedStagePrior —
/// replaces the generic stage-1 default, so a repeated query plans its
/// first stage from the previous run's realized selectivity instead of
/// the maximally pessimistic 1.0. Priors only ever substitute for
/// *assumed* values — as soon as the node has sampled points, the
/// revision from samples wins, and `freeze_initial` (the prestored-
/// statistics ablation) ignores priors entirely.
///
/// `intersect_fallbacks` (optional) counts the nodes whose value came
/// from the InitialSelectivity intersect fallback above.
std::map<int, double> ReviseSelectivities(
    const StagedTermEvaluator& term, const SelectivityOptions& options,
    const std::map<int, double>* stage0_priors = nullptr,
    int* intersect_fallbacks = nullptr);

/// Same, additionally recording every revised value into the
/// `timectrl.selectivity` histogram and counting intersect-default
/// fallbacks in the `timectrl.intersect_fallback` counter. Call from the
/// engine's serial section only: the revised values are deterministic at
/// a fixed seed, so the histogram stays bit-identical across thread
/// counts.
std::map<int, double> ReviseSelectivities(
    const StagedTermEvaluator& term, const SelectivityOptions& options,
    const ObsHandle& obs,
    const std::map<int, double>* stage0_priors = nullptr);

/// Per-node point-space deltas for a candidate fraction `f` of the next
/// stage: `new_points` the stage would cover and `remaining_points` not
/// yet covered (Figure 3.5's m_i and N_i). Purely structural — does not
/// depend on selectivities.
struct NodePoints {
  double new_points = 0.0;
  double remaining_points = 0.0;
};
std::map<int, NodePoints> PredictNodePoints(const StagedTermEvaluator& term,
                                            double f);
/// Same, for an explicit fulfillment mode of the candidate stage (hybrid
/// planning).
std::map<int, NodePoints> PredictNodePoints(const StagedTermEvaluator& term,
                                            double f, Fulfillment mode);

/// ComputeSel⁺ (Figure 3.5): inflates each operator's selectivity so that
/// P(sel⁺ ≥ realized stage selectivity) ≈ 1 − β, using the simple-random-
/// sampling variance approximation:
///   sel⁺ = sel^(i-1) + d_β · sqrt( sel(1−sel)(N_i−m_i) / (m_i(N_i−1)) )
/// clamped to [0, 1]. `sel_prev` comes from ReviseSelectivities; m_i/N_i
/// from PredictNodePoints at the candidate fraction `f`. A node whose
/// predicted m_i is 0 (an exhausted side under partial fulfillment) gets
/// no inflation: there is nothing to sample, so there is no stage
/// selectivity to overshoot.
std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta);
std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta,
                                     Fulfillment mode);
/// Same, with per-node inflation-width multipliers from the hybrid
/// selectivity predictor (DESIGN.md §12): node id → multiplier on d_β,
/// so high-confidence predictions inflate less and low-confidence ones
/// more. With `width_scales` non-null, inflation is also applied at
/// stage 1 — the predictor supplies a defensible variance basis where
/// the flat path has none (its "no samples yet" exemption) — using the
/// SRS variance of the predicted selectivity at the candidate fraction.
/// Passing nullptr is exactly the flat d_β behaviour above.
std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta,
                                     Fulfillment mode,
                                     const std::map<int, double>* width_scales);

}  // namespace tcq

#endif  // TCQ_TIMECTRL_SELECTIVITY_H_
