#include "timectrl/selectivity.h"

#include <algorithm>
#include <cmath>

#include "cost/adaptive_model.h"
#include "util/stats.h"

namespace tcq {

double InitialSelectivity(const StagedNode& node,
                          const SelectivityOptions& options,
                          bool* intersect_fallback) {
  if (intersect_fallback != nullptr) *intersect_fallback = false;
  switch (node.kind) {
    case ExprKind::kSelect:
      return options.initial_select;
    case ExprKind::kProject:
      return options.initial_project;
    case ExprKind::kJoin:
      return options.initial_join;
    case ExprKind::kIntersect: {
      // Figure 3.3: sel = 1 / maximum(|r1|, |r2|).
      double max_side = std::max(node.left->total_points,
                                 node.right->total_points);
      if (max_side <= 0.0) {
        // Neither side's point space is known (total_points unset):
        // 1/max is undefined. The historical 1.0 here was the most
        // pessimistic possible default; fall back to the selection
        // default instead and let callers count the event.
        if (intersect_fallback != nullptr) *intersect_fallback = true;
        return options.initial_select;
      }
      return std::min(1.0, options.initial_intersect_scale / max_side);
    }
    default:
      return 1.0;
  }
}

double SanitizedStagePrior(double prior, double total_points,
                           double zero_hit_beta) {
  double p = std::clamp(prior, 0.0, 1.0);
  int64_t m = static_cast<int64_t>(total_points);
  if (m < 1) m = 1;
  // §3.4 fix, applied to cached priors: a recorded selectivity of (or
  // near) zero means the previous run saw zero hits — the honest stage-0
  // plan uses the (1−β) upper confidence bound of a zero-hit sample over
  // the node's full point space, never a hard 0 that would freeze sel⁺.
  return std::max(p, ZeroHitUpperBound(m, zero_hit_beta));
}

namespace {

struct PointsWalk {
  double new_points = 0.0;
  double cum_before = 0.0;
};

PointsWalk WalkPoints(const StagedNode& node, double f,
                      Fulfillment fulfillment,
                      std::map<int, NodePoints>* out) {
  PointsWalk p;
  switch (node.kind) {
    case ExprKind::kScan: {
      int64_t total = node.rel->NumBlocks();
      int64_t d_new = std::min<int64_t>(BlocksForFraction(f, total),
                                        total - node.cum_blocks);
      p.new_points =
          static_cast<double>(d_new * node.rel->blocking_factor());
      p.cum_before = node.cum_points;
      break;
    }
    case ExprKind::kSelect:
    case ExprKind::kProject: {
      p = WalkPoints(*node.left, f, fulfillment, out);
      break;
    }
    case ExprKind::kJoin:
    case ExprKind::kIntersect: {
      PointsWalk l = WalkPoints(*node.left, f, fulfillment, out);
      PointsWalk r = WalkPoints(*node.right, f, fulfillment, out);
      if (fulfillment == Fulfillment::kFull) {
        p.new_points = (l.cum_before + l.new_points) *
                           (r.cum_before + r.new_points) -
                       l.cum_before * r.cum_before;
      } else {
        p.new_points = l.new_points * r.new_points;
      }
      p.cum_before = node.cum_points;
      break;
    }
    case ExprKind::kUnion:
    case ExprKind::kDifference:
      break;  // never present in staged terms
  }
  if (node.kind != ExprKind::kScan) {
    NodePoints np;
    np.new_points = p.new_points;
    np.remaining_points = std::max(0.0, node.total_points - node.cum_points);
    (*out)[node.id] = np;
  }
  return p;
}

}  // namespace

std::map<int, double> ReviseSelectivities(
    const StagedTermEvaluator& term, const SelectivityOptions& options,
    const std::map<int, double>* stage0_priors,
    int* intersect_fallbacks) {
  std::map<int, double> out;
  for (const StagedNode* node : term.NodesPreOrder()) {
    if (node->kind == ExprKind::kScan) continue;
    if (options.freeze_initial || term.num_stages() == 0 ||
        node->cum_points <= 0.0) {
      bool fell_back = false;
      double sel = InitialSelectivity(*node, options, &fell_back);
      if (!options.freeze_initial && stage0_priors != nullptr) {
        auto it = stage0_priors->find(node->id);
        if (it != stage0_priors->end()) {
          sel = SanitizedStagePrior(it->second, node->total_points,
                                    options.zero_hit_beta);
          fell_back = false;  // the prior, not the default, was used
        }
      }
      if (fell_back && intersect_fallbacks != nullptr) {
        ++*intersect_fallbacks;
      }
      out[node->id] = sel;
      continue;
    }
    if (node->cum_tuples == 0) {
      // §3.4: all sampled points were 0 — a zero selectivity (with zero
      // estimated variance) would freeze sel⁺ at 0 and guarantee
      // overspending once an output tuple finally appears. Use the closed
      // upper confidence bound instead.
      int64_t m = static_cast<int64_t>(node->cum_points);
      if (m < 1) m = 1;
      out[node->id] = ZeroHitUpperBound(m, options.zero_hit_beta);
      continue;
    }
    out[node->id] =
        static_cast<double>(node->cum_tuples) / node->cum_points;
  }
  return out;
}

std::map<int, NodePoints> PredictNodePoints(const StagedTermEvaluator& term,
                                            double f) {
  return PredictNodePoints(term, f, term.fulfillment());
}

std::map<int, NodePoints> PredictNodePoints(const StagedTermEvaluator& term,
                                            double f, Fulfillment mode) {
  std::map<int, NodePoints> out;
  WalkPoints(term.root(), f, mode, &out);
  return out;
}

std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta) {
  return ComputeSelPlus(term, sel_prev, f, d_beta, term.fulfillment());
}

std::map<int, double> ComputeSelPlus(const StagedTermEvaluator& term,
                                     const std::map<int, double>& sel_prev,
                                     double f, double d_beta,
                                     Fulfillment mode) {
  return ComputeSelPlus(term, sel_prev, f, d_beta, mode, nullptr);
}

std::map<int, double> ComputeSelPlus(
    const StagedTermEvaluator& term, const std::map<int, double>& sel_prev,
    double f, double d_beta, Fulfillment mode,
    const std::map<int, double>* width_scales) {
  std::map<int, NodePoints> points = PredictNodePoints(term, f, mode);
  std::map<int, double> out;
  // At stage 1 no samples exist, so there is no variation to estimate
  // Var(sel) from (Figure 3.5 uses "the variation among previously
  // sampled units"); the assumed initial selectivity is used as is —
  // unless the predictor supplied widths, in which case its selectivity
  // (at the candidate fraction's predicted points) is the variance
  // basis even at stage 1.
  const bool can_inflate = width_scales != nullptr || term.num_stages() > 0;
  for (const auto& [id, sel] : sel_prev) {
    double inflated = sel;
    auto it = points.find(id);
    if (can_inflate && d_beta > 0.0 && it != points.end()) {
      double m = it->second.new_points;
      double remaining = it->second.remaining_points;
      // m can be 0 for an exhausted side under partial fulfillment:
      // nothing will be sampled there, so there is no stage selectivity
      // to overshoot and inflating from a 0-sample variance is
      // meaningless.
      if (m > 0.0) {
        double width = 1.0;
        if (width_scales != nullptr) {
          auto w = width_scales->find(id);
          if (w != width_scales->end()) width = w->second;
        }
        double var = SrsProportionVariance(sel, remaining, m);
        inflated = sel + d_beta * width * std::sqrt(var);
      }
    }
    out[id] = std::clamp(inflated, 0.0, 1.0);
  }
  return out;
}

std::map<int, double> ReviseSelectivities(
    const StagedTermEvaluator& term, const SelectivityOptions& options,
    const ObsHandle& obs, const std::map<int, double>* stage0_priors) {
  int intersect_fallbacks = 0;
  std::map<int, double> revised =
      ReviseSelectivities(term, options, stage0_priors, &intersect_fallbacks);
  if (obs.metering()) {
    Histogram* h = obs.metrics->histogram("timectrl.selectivity");
    for (const auto& [id, sel] : revised) {
      (void)id;
      h->Record(sel);
    }
    if (intersect_fallbacks > 0) {
      obs.metrics->counter("timectrl.intersect_fallback")
          ->Add(intersect_fallbacks);
    }
  }
  return revised;
}

}  // namespace tcq
