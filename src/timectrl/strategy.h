#ifndef TCQ_TIMECTRL_STRATEGY_H_
#define TCQ_TIMECTRL_STRATEGY_H_

#include <functional>
#include <memory>
#include <string_view>

#include "timectrl/sample_size.h"
#include "util/result.h"

namespace tcq {

/// Everything a time-control strategy may consult when planning the next
/// stage. The cost closures are provided by the engine and evaluate the
/// full-query time-cost formula (overhead + fetches + all terms).
struct StagePlanContext {
  int next_stage = 0;      // 0-based index of the stage being planned
  double time_left = 0.0;  // Ti
  double quota = 0.0;      // T
  double f_max = 0.0;      // largest fraction still drawable
  double f_min_step = 0.0;  // one disk block, as a fraction
  double epsilon = 0.0;     // Figure 3.4's tolerance

  /// True when a hybrid selectivity predictor supplied the selectivities
  /// (and inflation widths) behind `qcost` (DESIGN.md §12). Strategies
  /// copy it into StagePlan::predictor_used for the stage report.
  bool predictor_active = false;

  /// Observability sinks for the planning pass (tracer spans around the
  /// Sample-Size-Determine bisection, probe counters). Default-empty =
  /// no instrumentation.
  ObsHandle obs;

  /// QCOST(f, SEL⁺(d_β)): predicted stage cost with the operator
  /// selectivities inflated by d_β standard deviations (Figure 3.5).
  std::function<Result<double>(double f, double d_beta)> qcost;
  /// First-order standard deviation of the stage cost at fraction f
  /// (selectivity-variance propagated through the cost formula), for the
  /// Single-Interval strategy.
  std::function<Result<double>(double f)> qcost_sigma;
};

/// The plan for one stage.
struct StagePlan {
  double fraction = 0.0;  // 0 => stop: no affordable stage remains
  double predicted_seconds = 0.0;
  double d_beta_used = 0.0;
  /// Echo of StagePlanContext::predictor_active for the stage report.
  bool predictor_used = false;
};

/// Strategy interface (paper §3.3): decide how much of the remaining quota
/// to commit to the next stage, trading per-stage overhead against the
/// risk of overspending.
class TimeControlStrategy {
 public:
  virtual ~TimeControlStrategy() = default;
  [[nodiscard]] virtual Result<StagePlan> PlanStage(const StagePlanContext& context) = 0;
  /// Feedback after the stage ran (used by the heuristic strategy).
  virtual void OnStageOutcome(double predicted_seconds,
                              double actual_seconds, bool overspent) {
    (void)predicted_seconds;
    (void)actual_seconds;
    (void)overspent;
  }
  virtual std::string_view name() const = 0;
};

/// One-at-a-Time-Interval strategy (§3.3.2, the paper's implementation
/// choice): each operator's selectivity is individually inflated to sel⁺
/// with parameter d_β, and the largest fraction with
/// QCOST(f, SEL⁺) ≈ Ti is taken.
class OneAtATimeStrategy : public TimeControlStrategy {
 public:
  struct Options {
    double d_beta = 12.0;
    /// §3.3.1's refinement: scale d_β by the share of quota left, taking
    /// higher risk (smaller margin) as time runs out.
    bool decay_with_time_left = false;
  };

  explicit OneAtATimeStrategy(Options options) : options_(options) {}
  OneAtATimeStrategy() : OneAtATimeStrategy(Options()) {}

  [[nodiscard]] Result<StagePlan> PlanStage(const StagePlanContext& context) override;
  std::string_view name() const override { return "one-at-a-time"; }

 private:
  Options options_;
};

/// Single-Interval strategy (§3.3.1): controls the risk of the query as a
/// whole by reserving d_α·sqrt(Var(QCOST)) of the remaining time:
/// solve μ(f) + d_α·σ(f) ≈ Ti.
class SingleIntervalStrategy : public TimeControlStrategy {
 public:
  struct Options {
    double d_alpha = 1.64;  // one-sided 95% under normality
  };

  explicit SingleIntervalStrategy(Options options) : options_(options) {}
  SingleIntervalStrategy() : SingleIntervalStrategy(Options()) {}

  [[nodiscard]] Result<StagePlan> PlanStage(const StagePlanContext& context) override;
  std::string_view name() const override { return "single-interval"; }

 private:
  Options options_;
};

/// Heuristic strategy (§3.3 mentions it; the paper defers details to its
/// tech report — see DESIGN.md): commit a fixed share γ of the remaining
/// time each stage, shrinking γ multiplicatively after any overspend and
/// growing it slowly after on-time stages.
class HeuristicStrategy : public TimeControlStrategy {
 public:
  struct Options {
    double gamma = 0.5;
    double shrink = 0.7;
    double grow = 1.05;
    double gamma_max = 0.9;
  };

  explicit HeuristicStrategy(Options options) : options_(options) {}
  HeuristicStrategy() : HeuristicStrategy(Options()) {}

  [[nodiscard]] Result<StagePlan> PlanStage(const StagePlanContext& context) override;
  void OnStageOutcome(double predicted_seconds, double actual_seconds,
                      bool overspent) override;
  std::string_view name() const override { return "heuristic"; }
  double gamma() const { return gamma_ > 0.0 ? gamma_ : options_.gamma; }

 private:
  Options options_;
  double gamma_ = 0.0;  // 0 until first use
};

}  // namespace tcq

#endif  // TCQ_TIMECTRL_STRATEGY_H_
