#ifndef TCQ_API_TCQ_H_
#define TCQ_API_TCQ_H_

/// Public façade of the library: a `Session` owning the catalog and the
/// execution thread pool, and a fluent `QueryBuilder` for one-off
/// time-constrained aggregate queries:
///
///   tcq::Session session;
///   TCQ_RETURN_NOT_OK(session.Register(orders));
///   auto result = session.Query("COUNT(SELECT[amount >= 100](orders))")
///                     .WithQuota(2.0)
///                     .WithThreads(8)
///                     .WithConfidence(0.95)
///                     .Run();
///
/// The free functions in engine/executor.h remain available for callers
/// that manage their own Catalog and options.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "cache/warm_start.h"
#include "engine/executor.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "ra/expr.h"
#include "storage/relation.h"
#include "util/result.h"

namespace tcq {

class Session;

/// Fluent configuration of one time-constrained aggregate query. Obtained
/// from Session::Query; every `With*` returns *this for chaining and
/// `Run()` executes. The builder starts from the session's default
/// options, so per-query settings override session-wide ones.
class QueryBuilder {
 public:
  /// Time quota in (simulated or wall-clock) seconds. Default 5. Stored
  /// in ExecutorOptions::quota_s, so observers, EXPLAIN and With() edits
  /// all see the same value.
  QueryBuilder& WithQuota(double seconds) {
    options_.quota_s = seconds;
    return *this;
  }
  /// Execution width, counting the calling thread; the session's shared
  /// pool is (re)sized to serve it. Estimates are bit-identical for any
  /// value at the same seed.
  QueryBuilder& WithThreads(int threads) {
    threads_ = threads;
    return *this;
  }
  /// Confidence level of the reported interval, in (0, 1).
  QueryBuilder& WithConfidence(double level) {
    options_.confidence = level;
    return *this;
  }
  QueryBuilder& WithSeed(uint64_t seed) {
    options_.seed = seed;
    return *this;
  }
  /// Overspend-risk margin d_β of the default One-at-a-Time strategy
  /// (use WithStrategy for the other strategies' parameters).
  QueryBuilder& WithRiskMargin(double d_beta) {
    options_.strategy.one_at_a_time.d_beta = d_beta;
    return *this;
  }
  QueryBuilder& WithStrategy(const StrategyConfig& strategy) {
    options_.strategy = strategy;
    return *this;
  }
  QueryBuilder& WithDeadline(DeadlineMode mode) {
    options_.deadline_mode = mode;
    return *this;
  }
  QueryBuilder& WithFulfillment(Fulfillment fulfillment) {
    options_.fulfillment = fulfillment;
    return *this;
  }
  /// §5.B hybrid: spend residual time on partial-fulfillment stages once
  /// no full stage fits.
  QueryBuilder& WithFinalPartialStages(bool on = true) {
    options_.final_partial_stages = on;
    return *this;
  }
  /// Error-constrained stopping (§3.2): stop early once the interval is
  /// tight enough.
  QueryBuilder& WithPrecision(const PrecisionStop& precision) {
    options_.precision = precision;
    return *this;
  }
  /// Run against real elapsed time instead of the simulator.
  QueryBuilder& WithWallClock(bool on = true) {
    options_.use_wall_clock = on;
    return *this;
  }
  QueryBuilder& WithCostModel(const CostModel& model) {
    options_.physical = model;
    return *this;
  }
  QueryBuilder& WithMaxStages(int max_stages) {
    options_.max_stages = max_stages;
    return *this;
  }
  /// Sample-Size-Determine's tolerance ε (Figure 3.4), in (0, 1).
  QueryBuilder& WithEpsilon(double epsilon_s) {
    options_.epsilon_s = epsilon_s;
    return *this;
  }
  /// Stage-1 selectivity defaults and revision knobs (Figure 3.3 / §3.4).
  QueryBuilder& WithSelectivity(const SelectivityOptions& selectivity) {
    options_.selectivity = selectivity;
    return *this;
  }
  /// Adaptive cost-coefficient fitting knobs.
  QueryBuilder& WithAdaptiveCost(const AdaptiveCostModel::Options& cost) {
    options_.cost = cost;
    return *this;
  }
  /// Attaches (or detaches) the session's warm-start cache for this query:
  /// block draws replay the sample pools earlier queries of the session
  /// filled, stage-0 planning starts from cached operator selectivities,
  /// and the run's own samples feed the cache back. Off by default
  /// (Session::Options::warm_start flips the session default);
  /// WithWarmStart(false) is bit-identical to a session that never warmed
  /// anything, at any seed and thread count. Explain() always plans cold.
  QueryBuilder& WithWarmStart(bool on = true) {
    warm_start_ = on;
    return *this;
  }

  /// Enables tracing with a builder-owned tracer: the run records spans,
  /// instants and counter tracks; when `trace.export_path` is non-empty
  /// the Chrome trace_event JSON (chrome://tracing, Perfetto) is written
  /// there after Run(). Access the tracer afterwards via `tracer()`.
  QueryBuilder& WithTrace(TraceOptions trace) {
    owned_tracer_ = std::make_shared<Tracer>(std::move(trace));
    options_.obs.tracer = owned_tracer_.get();
    return *this;
  }
  /// Records into a caller-owned tracer instead (must outlive Run()).
  QueryBuilder& WithTracer(Tracer* tracer) {
    owned_tracer_.reset();
    options_.obs.tracer = tracer;
    return *this;
  }
  /// Publishes counters/gauges/histograms into a caller-owned registry
  /// (must outlive Run()). See src/obs/metrics.h for the determinism
  /// contract: the counter and histogram sections are bit-identical
  /// across thread counts at a fixed seed.
  QueryBuilder& WithMetrics(Metrics* metrics) {
    options_.obs.metrics = metrics;
    return *this;
  }
  /// Streams per-stage StageReports to `observer` while the query runs
  /// (called synchronously from the engine's serial sections; must
  /// outlive Run()).
  QueryBuilder& WithObserver(ProgressObserver& observer) {
    options_.obs.observer = &observer;
    return *this;
  }

  /// Deprecated escape hatch for options without a typed setter yet;
  /// prefer the With* setters above. Arbitrary edits to the underlying
  /// ExecutorOptions (including quota_s, which WithQuota also sets).
  QueryBuilder& With(const std::function<void(ExecutorOptions*)>& edit) {
    edit(&options_);
    return *this;
  }

  /// Aggregate selection; COUNT is the default.
  QueryBuilder& Count() {
    aggregate_ = AggregateSpec::Count();
    return *this;
  }
  QueryBuilder& Sum(std::string column) {
    aggregate_ = AggregateSpec::Sum(std::move(column));
    return *this;
  }
  QueryBuilder& Avg(std::string column) {
    aggregate_ = AggregateSpec::Avg(std::move(column));
    return *this;
  }

  /// Executes the query against the session's catalog and pool. With a
  /// WithTrace export path, the Chrome trace JSON is written on success.
  [[nodiscard]] Result<QueryResult> Run();

  /// Runs the planner without drawing a single sample: the stages the
  /// time-control strategy would schedule from its stage-0 priors (see
  /// ExplainTimeConstrainedAggregate for the exact semantics).
  [[nodiscard]] Result<ExplainResult> Explain();

  /// The builder-owned tracer from WithTrace (null otherwise); read
  /// `tracer()->ExportChromeJson()` after Run() for the in-memory trace.
  Tracer* tracer() const { return owned_tracer_.get(); }

 private:
  friend class Session;
  QueryBuilder(Session* session, ExprPtr expr, Status parse_status,
               ExecutorOptions options, int threads, bool warm_start)
      : session_(session),
        expr_(std::move(expr)),
        parse_status_(std::move(parse_status)),
        options_(std::move(options)),
        threads_(threads),
        warm_start_(warm_start) {}

  Session* session_;
  ExprPtr expr_;
  Status parse_status_;  // non-OK when Query(text) failed to parse
  ExecutorOptions options_;
  AggregateSpec aggregate_;
  std::shared_ptr<Tracer> owned_tracer_;  // WithTrace; shared with copies
  int threads_;
  bool warm_start_;  // from Session::Options; WithWarmStart overrides
};

/// Owns a Catalog and the worker pool queries execute on. Sessions are
/// cheap to create; keep one alive across queries to reuse the pool and
/// the registered relations. Not thread-safe: run one query at a time per
/// session (one query already uses every configured worker).
class Session {
 public:
  struct Options {
    /// Default execution width of queries (QueryBuilder::WithThreads
    /// overrides per query). 1 = serial.
    int threads = 1;
    /// Warm-start queries by default (QueryBuilder::WithWarmStart
    /// overrides per query): repeated or overlapping queries replay the
    /// session's sample pools and seed their planning from cached
    /// selectivities and cost coefficients. Off keeps every query cold
    /// and bit-identical to the historical engine.
    bool warm_start = false;
    /// Per-query option defaults (seed, strategy, cost model, ...).
    ExecutorOptions defaults;
  };

  Session() = default;
  explicit Session(Options options) : options_(std::move(options)) {}
  explicit Session(Catalog catalog) : catalog_(std::move(catalog)) {}
  Session(Catalog catalog, Options options)
      : catalog_(std::move(catalog)), options_(std::move(options)) {}

  /// Registers a relation under its own name; AlreadyExists on duplicates.
  [[nodiscard]] Status Register(RelationPtr relation) {
    return catalog_.Register(std::move(relation));
  }
  /// Replaces the whole catalog (e.g. after LoadCatalog).
  void ResetCatalog(Catalog catalog) { catalog_ = std::move(catalog); }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Starts a query from the prototype's relational-algebra text (see
  /// ra/parser.h for the grammar), optionally wrapped in COUNT(...):
  /// "COUNT(SELECT[key < 2000](r1))" and "SELECT[key < 2000](r1)" are
  /// equivalent. Parse errors — with line/column diagnostics — surface
  /// from Run() / Explain().
  QueryBuilder Query(std::string_view text);
  /// Starts a query from an expression tree.
  QueryBuilder Query(ExprPtr expr);

  /// Parses `text` and runs the planner without executing anything (no
  /// sample drawn, no pool spun up): the session-default options' quota
  /// and strategy produce the predicted stage schedule. Equivalent to
  /// `Query(text).Explain()`.
  [[nodiscard]] Result<ExplainResult> Explain(std::string_view text);

  /// The shared pool's current worker count (0 = no pool yet). The pool
  /// is kept at its high-water size: narrower queries reuse it with a
  /// participant cap instead of forcing a rebuild.
  int pool_workers() const {
    return pool_ == nullptr ? 0 : pool_->workers();
  }

  /// Flips the session-wide warm-start default for subsequent queries
  /// (per-query WithWarmStart still overrides). Turning it off does not
  /// drop accumulated cache state; use ClearCache() for that.
  void SetWarmStart(bool on) { options_.warm_start = on; }

  /// Aggregate view of the warm-start cache: pooled/replayed/fresh block
  /// counts, selectivity-prior entries and hit rates, cost-coefficient
  /// snapshots. All-zero before the first warm query.
  WarmStartStats CacheStats() const {
    return warm_cache_ == nullptr ? WarmStartStats{} : warm_cache_->Stats();
  }

  /// Drops every pooled block, cached selectivity and cost snapshot; the
  /// next warm query starts cold (e.g. after the underlying data
  /// changed — the cache has no invalidation of its own).
  void ClearCache() {
    if (warm_cache_ != nullptr) warm_cache_->Clear();
  }

 private:
  friend class QueryBuilder;

  /// Returns the shared pool sized for at least `threads` execution width
  /// (null for serial). The pool is created lazily, grows when a query
  /// asks for more width, and never shrinks — narrower queries cap their
  /// batch participation instead (high-water reuse).
  ThreadPool* EnsurePool(int threads);

  /// The session's warm-start cache, created empty on first use.
  WarmStartCache* EnsureWarmCache();

  Catalog catalog_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<WarmStartCache> warm_cache_;
};

}  // namespace tcq

#endif  // TCQ_API_TCQ_H_
