#ifndef TCQ_API_TCQ_H_
#define TCQ_API_TCQ_H_

/// Public façade of the library: a `Session` handle over the catalog and
/// execution state queries run on, and a fluent `QueryBuilder` for
/// one-off time-constrained aggregate queries:
///
///   tcq::Session session;
///   TCQ_RETURN_NOT_OK(session.Register(orders));
///   auto result = session.Query("COUNT(SELECT[amount >= 100](orders))")
///                     .WithQuota(2.0)
///                     .WithThreads(8)
///                     .WithConfidence(0.95)
///                     .Run();
///
/// A standalone Session owns its catalog, thread pool, and warm-start
/// cache privately. Sessions opened on a `tcq::Server` (src/serve/) are
/// thin handles over the server's shared state instead, and their
/// queries pass through the server's admission controller. The free
/// functions in engine/executor.h remain available for callers that
/// manage their own Catalog and options.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "cache/warm_start.h"
#include "engine/executor.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "ra/expr.h"
#include "storage/relation.h"
#include "util/result.h"

namespace tcq {

class Session;

/// Execution state a Session's queries run on: the catalog, the worker
/// pool, and the warm-start cache, plus the run entry point itself.
/// Implemented privately by standalone sessions (session-owned state,
/// one query at a time) and by tcq::Server (shared state behind an
/// admission controller, safe for concurrent RunQuery calls). The api/
/// layer never depends on serve/ — the server plugs in through this
/// interface.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  virtual Catalog& catalog() = 0;
  virtual const Catalog& catalog() const = 0;
  /// Replaces the whole catalog (e.g. after LoadCatalog). Must not race
  /// running queries.
  virtual void ResetCatalog(Catalog catalog) = 0;

  /// Current worker count of the execution pool (0 = none yet).
  virtual int pool_workers() const = 0;

  /// The backing warm-start cache if one exists already, else nullptr.
  /// Read-only consumers (EXPLAIN's predictor peek) use this; it never
  /// creates the cache, so cold sessions stay cold.
  virtual WarmStartCache* warm_cache_if_any() { return nullptr; }

  /// Aggregate warm-start cache statistics (all-zero before the first
  /// warm query).
  virtual WarmStartStats CacheStats() const = 0;
  /// Drops all warm-start state. Must not race running queries.
  virtual void ClearCache() = 0;

  /// Runs one validated query. `options` arrives with threads/quota and
  /// obs sinks resolved by the builder; the backend supplies the pool and
  /// (when `warm_start`) the cache, and may shrink `options.quota_s`
  /// under admission control before the engine sees it.
  [[nodiscard]] virtual Result<QueryResult> RunQuery(
      const ExprPtr& expr, const AggregateSpec& aggregate,
      ExecutorOptions options, bool warm_start) = 0;
};

/// Fluent configuration of one time-constrained aggregate query. Obtained
/// from Session::Query; every `With*` returns *this for chaining and
/// `Run()` executes. The builder starts from the session's default
/// options, so per-query settings override session-wide ones.
class QueryBuilder {
 public:
  /// Time quota in (simulated or wall-clock) seconds. Default 5. Stored
  /// in ExecutorOptions::quota_s, so observers, EXPLAIN and admission
  /// control all see the same value.
  QueryBuilder& WithQuota(double seconds) {
    options_.quota_s = seconds;
    return *this;
  }
  /// Execution width, counting the calling thread; the backing pool is
  /// (re)sized or capped to serve it. Estimates are bit-identical for
  /// any value at the same seed.
  QueryBuilder& WithThreads(int threads) {
    threads_ = threads;
    return *this;
  }
  /// Confidence level of the reported interval, in (0, 1).
  QueryBuilder& WithConfidence(double level) {
    options_.confidence = level;
    return *this;
  }
  QueryBuilder& WithSeed(uint64_t seed) {
    options_.seed = seed;
    return *this;
  }
  /// Overspend-risk margin d_β of the default One-at-a-Time strategy
  /// (use WithStrategy for the other strategies' parameters).
  QueryBuilder& WithRiskMargin(double d_beta) {
    options_.strategy.one_at_a_time.d_beta = d_beta;
    return *this;
  }
  QueryBuilder& WithStrategy(const StrategyConfig& strategy) {
    options_.strategy = strategy;
    return *this;
  }
  QueryBuilder& WithDeadline(DeadlineMode mode) {
    options_.deadline_mode = mode;
    return *this;
  }
  /// Serving-layer completion deadline in real seconds (see
  /// ExecutorOptions::serve_deadline_s): a tcq::Server's admission queue
  /// orders waiters by it and gives up waiting once it expires. 0 (the
  /// default) means "use the quota". Standalone runs ignore it.
  QueryBuilder& WithServeDeadline(double seconds) {
    options_.serve_deadline_s = seconds;
    return *this;
  }
  QueryBuilder& WithFulfillment(Fulfillment fulfillment) {
    options_.fulfillment = fulfillment;
    return *this;
  }
  /// §5.B hybrid: spend residual time on partial-fulfillment stages once
  /// no full stage fits.
  QueryBuilder& WithFinalPartialStages(bool on = true) {
    options_.final_partial_stages = on;
    return *this;
  }
  /// Error-constrained stopping (§3.2): stop early once the interval is
  /// tight enough.
  QueryBuilder& WithPrecision(const PrecisionStop& precision) {
    options_.precision = precision;
    return *this;
  }
  /// Run against real elapsed time instead of the simulator.
  QueryBuilder& WithWallClock(bool on = true) {
    options_.use_wall_clock = on;
    return *this;
  }
  /// Evaluation path of the operators (ExecutorOptions::layout):
  /// Layout::kColumnar runs selections through batch predicate masks and
  /// sort/merge through encoded-key kernels over the per-block column
  /// arrays; Layout::kRow (the default) is the classic tuple-at-a-time
  /// path. Estimates, variances, and stage schedules are bit-identical
  /// across layouts at the same seed — only wall-clock speed (and the
  /// wall-clock planner's initial cost coefficients) differ. EXPLAIN and
  /// StageReport::layout report the choice.
  QueryBuilder& WithLayout(Layout layout) {
    options_.layout = layout;
    return *this;
  }
  /// Arms deterministic fault injection (ExecutorOptions::faults; see
  /// DESIGN.md §10): transient read errors retried with quota-charged
  /// backoff, permanently lost blocks dropped from the frame with the
  /// variance widened, and straggler reads. Off by default; with
  /// `faults.enabled == false` the run is bit-identical to one that
  /// never heard of faults, at any seed and thread count.
  QueryBuilder& WithFaults(const FaultOptions& faults) {
    options_.faults = faults;
    return *this;
  }
  QueryBuilder& WithCostModel(const CostModel& model) {
    options_.physical = model;
    return *this;
  }
  QueryBuilder& WithMaxStages(int max_stages) {
    options_.max_stages = max_stages;
    return *this;
  }
  /// Sample-Size-Determine's tolerance ε (Figure 3.4), in (0, 1).
  QueryBuilder& WithEpsilon(double epsilon_s) {
    options_.epsilon_s = epsilon_s;
    return *this;
  }
  /// Stage-1 selectivity defaults and revision knobs (Figure 3.3 / §3.4).
  QueryBuilder& WithSelectivity(const SelectivityOptions& selectivity) {
    options_.selectivity = selectivity;
    return *this;
  }
  /// Adaptive cost-coefficient fitting knobs.
  QueryBuilder& WithAdaptiveCost(const AdaptiveCostModel::Options& cost) {
    options_.cost = cost;
    return *this;
  }
  /// Combine inclusion–exclusion terms with the Cauchy–Schwarz variance
  /// bound instead of the independent sum — never-understated intervals
  /// whatever the term correlations (ExecutorOptions::
  /// conservative_term_variance).
  QueryBuilder& WithConservativeTermVariance(bool on = true) {
    options_.conservative_term_variance = on;
    return *this;
  }
  /// Attaches (or detaches) the backing warm-start cache for this query:
  /// block draws replay the sample pools earlier queries filled, stage-0
  /// planning starts from cached operator selectivities, and the run's
  /// own samples feed the cache back. Off by default
  /// (Session::Options::warm_start flips the session default);
  /// WithWarmStart(false) is bit-identical to a session that never warmed
  /// anything, at any seed and thread count. Explain() always plans cold.
  QueryBuilder& WithWarmStart(bool on = true) {
    warm_start_ = on;
    return *this;
  }
  /// Arms the hybrid stage-0 selectivity predictor (DESIGN.md §12) with
  /// its default knobs: a tournament chooser over the within-query
  /// observation, the warm-start prior and a query-stream history table,
  /// whose confidence also scales the sel⁺ inflation width per node.
  /// Most useful together with WithWarmStart — the predictor's history
  /// then persists across the session's runs. Off by default;
  /// WithSelPredictor(false) is bit-identical to a build without the
  /// predictor at any seed and thread count.
  QueryBuilder& WithSelPredictor(bool on = true) {
    options_.sel_predictor.enabled = on;
    return *this;
  }
  /// Same, with explicit predictor knobs (`options.enabled` decides).
  QueryBuilder& WithSelPredictor(const SelPredictorOptions& options) {
    options_.sel_predictor = options;
    return *this;
  }

  /// Enables tracing with a builder-owned tracer: the run records spans,
  /// instants and counter tracks; when `trace.export_path` is non-empty
  /// the Chrome trace_event JSON (chrome://tracing, Perfetto) is written
  /// there after Run(). Access the tracer afterwards via `tracer()`.
  QueryBuilder& WithTrace(TraceOptions trace) {
    owned_tracer_ = std::make_shared<Tracer>(std::move(trace));
    options_.obs.tracer = owned_tracer_.get();
    return *this;
  }
  /// Records into a caller-owned tracer instead (must outlive Run()).
  QueryBuilder& WithTracer(Tracer* tracer) {
    owned_tracer_.reset();
    options_.obs.tracer = tracer;
    return *this;
  }
  /// Publishes counters/gauges/histograms into a caller-owned registry
  /// (must outlive Run()). See src/obs/metrics.h for the determinism
  /// contract: the counter and histogram sections are bit-identical
  /// across thread counts at a fixed seed.
  QueryBuilder& WithMetrics(Metrics* metrics) {
    options_.obs.metrics = metrics;
    return *this;
  }
  /// Streams per-stage StageReports to `observer` while the query runs
  /// (called synchronously from the engine's serial sections; must
  /// outlive Run()).
  QueryBuilder& WithObserver(ProgressObserver& observer) {
    options_.obs.observer = &observer;
    return *this;
  }

  /// Escape hatch for arbitrary edits to the underlying ExecutorOptions.
  /// Every field now has a typed With* setter — use those: they are
  /// greppable, they keep admission control and EXPLAIN in sync with
  /// what actually runs, and the `raw-options-edit` lint rule flags this
  /// hatch outside tests.
  [[deprecated(
      "every ExecutorOptions field has a typed With* setter; use those "
      "instead of raw edits")]]
  QueryBuilder& With(const std::function<void(ExecutorOptions*)>& edit) {
    edit(&options_);
    return *this;
  }

  /// Aggregate selection; COUNT is the default.
  QueryBuilder& Count() {
    aggregate_ = AggregateSpec::Count();
    return *this;
  }
  QueryBuilder& Sum(std::string column) {
    aggregate_ = AggregateSpec::Sum(std::move(column));
    return *this;
  }
  QueryBuilder& Avg(std::string column) {
    aggregate_ = AggregateSpec::Avg(std::move(column));
    return *this;
  }

  /// Outcome of parsing/validating the query text or expression this
  /// builder was created from: OK, or the parse error — with line/column
  /// diagnostics — that Run()/Explain() would return. Lets callers (and
  /// the Server admission path) reject malformed queries before spending
  /// any budget on them.
  const Status& status() const { return parse_status_; }

  /// Executes the query against the session's backend. With a WithTrace
  /// export path, the Chrome trace JSON is written on success.
  [[nodiscard]] Result<QueryResult> Run();

  /// Runs the planner without drawing a single sample: the stages the
  /// time-control strategy would schedule from its stage-0 priors (see
  /// ExplainTimeConstrainedAggregate for the exact semantics).
  [[nodiscard]] Result<ExplainResult> Explain();

  /// The builder-owned tracer from WithTrace (null otherwise); read
  /// `tracer()->ExportChromeJson()` after Run() for the in-memory trace.
  Tracer* tracer() const { return owned_tracer_.get(); }

 private:
  friend class Session;
  QueryBuilder(Session* session, ExprPtr expr, Status parse_status,
               ExecutorOptions options, int threads, bool warm_start)
      : session_(session),
        expr_(std::move(expr)),
        parse_status_(std::move(parse_status)),
        options_(std::move(options)),
        threads_(threads),
        warm_start_(warm_start) {}

  Session* session_;
  ExprPtr expr_;
  Status parse_status_;  // non-OK when Query(text) failed to parse
  ExecutorOptions options_;
  AggregateSpec aggregate_;
  std::shared_ptr<Tracer> owned_tracer_;  // WithTrace; shared with copies
  int threads_;
  bool warm_start_;  // from Session::Options; WithWarmStart overrides
};

/// A handle over the execution state queries run on, plus per-session
/// defaults. A standalone Session (the constructors below) privately
/// owns its catalog, worker pool, and warm-start cache — cheap to
/// create, not thread-safe: run one query at a time per standalone
/// session (one query already uses every configured worker). Sessions
/// returned by tcq::Server::OpenSession() share the server's state
/// instead: those handles are cheap values, and many of them may Run()
/// concurrently — the server's admission controller arbitrates.
class Session {
 public:
  struct Options {
    /// Default execution width of queries (QueryBuilder::WithThreads
    /// overrides per query). 1 = serial.
    int threads = 1;
    /// Warm-start queries by default (QueryBuilder::WithWarmStart
    /// overrides per query): repeated or overlapping queries replay the
    /// backing sample pools and seed their planning from cached
    /// selectivities and cost coefficients. Off keeps every query cold
    /// and bit-identical to the historical engine.
    bool warm_start = false;
    /// Per-query option defaults (seed, strategy, cost model, ...).
    ExecutorOptions defaults;
  };

  Session();
  explicit Session(Options options);
  explicit Session(Catalog catalog);
  Session(Catalog catalog, Options options);

  /// Registers a relation under its own name; AlreadyExists on
  /// duplicates. On a server-backed session this registers into the
  /// server's shared catalog — do not race running queries.
  [[nodiscard]] Status Register(RelationPtr relation) {
    return backend_->catalog().Register(std::move(relation));
  }
  /// Replaces the whole catalog (e.g. after LoadCatalog).
  void ResetCatalog(Catalog catalog) {
    backend_->ResetCatalog(std::move(catalog));
  }

  Catalog& catalog() { return backend_->catalog(); }
  const Catalog& catalog() const {
    return static_cast<const QueryBackend&>(*backend_).catalog();
  }

  /// Starts a query from the prototype's relational-algebra text (see
  /// ra/parser.h for the grammar), optionally wrapped in COUNT(...):
  /// "COUNT(SELECT[key < 2000](r1))" and "SELECT[key < 2000](r1)" are
  /// equivalent. Parse errors — with line/column diagnostics — are
  /// available immediately from QueryBuilder::status() and surface from
  /// Run() / Explain().
  QueryBuilder Query(std::string_view text);
  /// Starts a query from an expression tree.
  QueryBuilder Query(ExprPtr expr);

  /// Parses `text` and runs the planner without executing anything (no
  /// sample drawn, no pool spun up): the session-default options' quota
  /// and strategy produce the predicted stage schedule. Equivalent to
  /// `Query(text).Explain()`.
  [[nodiscard]] Result<ExplainResult> Explain(std::string_view text);

  /// The backing pool's current worker count (0 = no pool yet). A
  /// standalone session keeps its pool at the high-water size; a
  /// server-backed session reports the server's fixed-width pool.
  int pool_workers() const { return backend_->pool_workers(); }

  /// Flips the session-wide warm-start default for subsequent queries
  /// (per-query WithWarmStart still overrides). Turning it off does not
  /// drop accumulated cache state; use ClearCache() for that.
  void SetWarmStart(bool on) { options_.warm_start = on; }

  /// Aggregate view of the backing warm-start cache: pooled/replayed/
  /// fresh block counts, selectivity-prior entries and hit rates,
  /// cost-coefficient snapshots. All-zero before the first warm query.
  WarmStartStats CacheStats() const { return backend_->CacheStats(); }

  /// Drops every pooled block, cached selectivity and cost snapshot; the
  /// next warm query starts cold (e.g. after the underlying data
  /// changed — the cache has no invalidation of its own). On a
  /// server-backed session this clears the server's shared cache.
  void ClearCache() { backend_->ClearCache(); }

 private:
  friend class QueryBuilder;
  friend class Server;

  /// A session over externally owned state (tcq::Server::OpenSession).
  Session(std::shared_ptr<QueryBackend> backend, Options options)
      : backend_(std::move(backend)), options_(std::move(options)) {}

  std::shared_ptr<QueryBackend> backend_;
  Options options_;
};

}  // namespace tcq

#endif  // TCQ_API_TCQ_H_
