#include "api/tcq.h"

#include <cctype>

#include "ra/parser.h"

namespace tcq {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strips an optional COUNT( ... ) wrapper (case-insensitive) when the
/// opening parenthesis matches the text's final character; otherwise the
/// text is returned untouched and handed to the RA parser as-is.
std::string_view StripCountWrapper(std::string_view text) {
  std::string_view t = Trim(text);
  constexpr std::string_view kCount = "COUNT";
  if (t.size() <= kCount.size()) return t;
  for (size_t i = 0; i < kCount.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(t[i])) != kCount[i]) {
      return t;
    }
  }
  std::string_view rest = Trim(t.substr(kCount.size()));
  if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')') return t;
  // The opening parenthesis must close at the very end, so e.g. a future
  // "COUNT(a) op COUNT(b)" form is not mangled.
  int depth = 0;
  for (size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == '(') ++depth;
    if (rest[i] == ')' && --depth == 0 && i + 1 != rest.size()) return t;
  }
  if (depth != 0) return t;
  return Trim(rest.substr(1, rest.size() - 2));
}

}  // namespace

QueryBuilder Session::Query(std::string_view text) {
  Result<ExprPtr> parsed = ParseQuery(StripCountWrapper(text));
  if (!parsed.ok()) {
    return QueryBuilder(this, nullptr, parsed.status(), options_.defaults,
                        options_.threads, options_.warm_start);
  }
  return QueryBuilder(this, std::move(*parsed), Status::OK(),
                      options_.defaults, options_.threads,
                      options_.warm_start);
}

QueryBuilder Session::Query(ExprPtr expr) {
  Status status = expr == nullptr
                      ? Status::InvalidArgument("null query expression")
                      : Status::OK();
  return QueryBuilder(this, std::move(expr), std::move(status),
                      options_.defaults, options_.threads,
                      options_.warm_start);
}

Result<ExplainResult> Session::Explain(std::string_view text) {
  return Query(text).Explain();
}

WarmStartCache* Session::EnsureWarmCache() {
  if (warm_cache_ == nullptr) {
    warm_cache_ = std::make_unique<WarmStartCache>();
  }
  return warm_cache_.get();
}

ThreadPool* Session::EnsurePool(int threads) {
  if (threads <= 1) return nullptr;
  const int workers = threads - 1;
  // High-water sizing: only grow. A narrower query reuses the wide pool —
  // the engine caps its batches at min(threads, pool width) — so
  // alternating 8- and 2-thread queries no longer tear the pool down and
  // respawn workers on every switch.
  if (pool_ == nullptr || pool_->workers() < workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  return pool_.get();
}

Result<QueryResult> QueryBuilder::Run() {
  TCQ_RETURN_NOT_OK(parse_status_);
  ExecutorOptions options = options_;
  options.threads = threads_;
  TCQ_RETURN_NOT_OK(options.Validate());
  options.pool = session_->EnsurePool(threads_);
  // Warm start is an engine-level concern: the builder only decides
  // whether to hand the session's cache to this run. A null cache takes
  // exactly the historical cold code paths.
  options.warm_cache =
      warm_start_ ? session_->EnsureWarmCache() : nullptr;
  if (options.obs.metrics != nullptr) {
    options.obs.metrics->gauge("session.pool_workers")
        ->Set(session_->pool_workers());
  }
  Result<QueryResult> result = RunTimeConstrainedAggregate(
      expr_, aggregate_, session_->catalog(), options);
  if (result.ok() && owned_tracer_ != nullptr &&
      !owned_tracer_->options().export_path.empty()) {
    TCQ_RETURN_NOT_OK(
        owned_tracer_->ExportToFile(owned_tracer_->options().export_path));
  }
  return result;
}

Result<ExplainResult> QueryBuilder::Explain() {
  TCQ_RETURN_NOT_OK(parse_status_);
  ExecutorOptions options = options_;
  options.threads = threads_;
  TCQ_RETURN_NOT_OK(options.Validate());
  // Planning only: no pool, no samples, no side effects.
  options.pool = nullptr;
  return ExplainTimeConstrainedAggregate(expr_, aggregate_,
                                         session_->catalog(), options);
}

}  // namespace tcq
